//! Quickstart: evaluate one SCADA configuration against one compound
//! threat in a dozen lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use compound_threats::{CaseStudy, CaseStudyConfig};
use ct_scada::{oahu::SiteChoice, Architecture};
use ct_threat::ThreatScenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A reduced ensemble (200 realizations) keeps the quickstart fast;
    // use `CaseStudyConfig::default()` for the paper's full 1000.
    let config = CaseStudyConfig::builder().realizations(200).build()?;
    let study = CaseStudy::build(&config)?;

    let profile = study.profile(
        Architecture::C6P6P6,
        ThreatScenario::HurricaneIntrusionIsolation,
        SiteChoice::Waiau,
    )?;

    println!(
        "\"6+6+6\" under a Category 2 hurricane followed by a server\n\
         intrusion + site isolation attack (Honolulu + Waiau + DRFortress):"
    );
    println!("  {profile}");
    println!();
    println!(
        "Even the strongest architecture is red {:.0}% of the time — the\n\
         compound threat model exceeds what any existing configuration\n\
         was designed for (paper Sec. VI-D).",
        100.0 * profile.red()
    );
    Ok(())
}
