//! Drives the discrete-event replication simulator directly: executes
//! each SCADA configuration under each attack combination and prints
//! the observed operational state next to Table I's rule-based answer.
//!
//! This is the executable justification for Table I — the paper takes
//! the conditions from prior work; here they emerge from protocol
//! runs (quorum votes, view changes, cold-backup activations, forged
//! replies).
//!
//! ```text
//! cargo run --release --example protocol_sim
//! ```

use compound_threats::crossval::{cross_validate, reachable_states};
use ct_replication::VerdictConfig;
use ct_scada::Architecture;
use ct_simnet::SimTime;

fn main() {
    let config = VerdictConfig {
        run_duration: SimTime::from_secs(60.0),
        ..VerdictConfig::default()
    };

    let mut total = 0usize;
    let mut agreed = 0usize;
    for arch in Architecture::ALL {
        println!("Configuration {arch}:");
        for state in reachable_states(arch) {
            let cv = cross_validate(&state, &config);
            total += 1;
            if cv.agrees() {
                agreed += 1;
            }
            println!(
                "  {:<44} rule: {:<6}  executed: {:<6}  {}  ({} responses, gap {:.1}s)",
                state.to_string(),
                cv.rule.to_string(),
                cv.observed.to_string(),
                if cv.agrees() { "agree" } else { "DISAGREE" },
                cv.verdict.accepted,
                cv.verdict.max_gap.as_secs(),
            );
        }
        println!();
    }
    println!("{agreed}/{total} states agree between Table I and protocol execution.");
}
