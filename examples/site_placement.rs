//! Control-site placement search — the paper's future-work question:
//! *"How should we choose additional control site locations to
//! maximize availability when increasing redundancy for compound
//! threat scenarios?"*
//!
//! Ranks every control-capable Oahu asset as the backup control
//! center for configurations "6-6" and "6+6+6" under each threat
//! scenario.
//!
//! ```text
//! cargo run --release --example site_placement
//! ```

use compound_threats::placement::rank_backup_sites;
use compound_threats::{CaseStudy, CaseStudyConfig};
use ct_scada::Architecture;
use ct_threat::ThreatScenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let study = CaseStudy::build(&CaseStudyConfig::default())?;

    for arch in [Architecture::C6_6, Architecture::C6P6P6] {
        for scenario in ThreatScenario::ALL {
            let ranking = rank_backup_sites(&study, arch, scenario)?;
            println!("{arch} under {scenario} — backup-site ranking:");
            for (i, r) in ranking.iter().take(5).enumerate() {
                let name = study
                    .topology()
                    .asset(&r.backup_asset_id)
                    .map(|a| a.name.clone())
                    .unwrap_or_else(|| r.backup_asset_id.clone());
                println!(
                    "  {}. {:<32} green {:5.1}%  orange {:5.1}%  red {:5.1}%  gray {:5.1}%",
                    i + 1,
                    name,
                    100.0 * r.profile.green(),
                    100.0 * r.profile.orange(),
                    100.0 * r.profile.red(),
                    100.0 * r.profile.gray(),
                );
            }
            println!();
        }
    }

    println!(
        "The hazard-aware choices (Kahe, the west-coast plants) dominate the\n\
         connectivity-driven choice (Waiau) in every scenario — the paper's\n\
         Sec. VII observation, generalized to a full search."
    );
    Ok(())
}
