//! Deployment-planning view: expected downtime per threat event and
//! hazard-intensity sensitivity.
//!
//! Attaches explicit durations to the paper's qualitative states
//! (orange = cold-backup activation, red = repair, gray = intrusion
//! recovery) and sweeps the hurricane category, turning the color
//! profiles into the numbers a utility would plan with.
//!
//! ```text
//! cargo run --release --example downtime_planning
//! ```

use compound_threats::availability::{downtime_report, DowntimeModel};
use compound_threats::sensitivity::category_sweep;
use compound_threats::{CaseStudy, CaseStudyConfig};
use ct_hydro::Category;
use ct_scada::{oahu::SiteChoice, Architecture};
use ct_threat::ThreatScenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let study = CaseStudy::build(&CaseStudyConfig::default())?;
    let model = DowntimeModel::default();

    println!(
        "Durations assumed: orange {:.1} h (cold-backup activation), red {:.0} h\n\
         (site repair / attack duration), gray {:.0} h (intrusion recovery).\n",
        model.orange_hours, model.red_hours, model.gray_hours
    );

    for choice in [SiteChoice::Waiau, SiteChoice::Kahe] {
        println!("=== Backup sited at {:?} ===", choice);
        for scenario in ThreatScenario::ALL {
            let report = downtime_report(&study, scenario, choice, &model)?;
            print!("{report}");
        }
        println!();
    }

    println!("=== Hazard-intensity sensitivity (hurricane-only, Waiau backup) ===");
    let sweep = category_sweep(
        &CaseStudyConfig::default(),
        &Category::ALL[..4],
        ThreatScenario::Hurricane,
        SiteChoice::Waiau,
    )?;
    println!(
        "{:<12} {:>14} {:>22}",
        "category", "P(CC floods)", "expected downtime \"6+6+6\""
    );
    for point in &sweep {
        let p666 = point
            .profile(Architecture::C6P6P6)
            .expect("architecture present");
        println!(
            "{:<12} {:>13.1}% {:>20.1} h",
            point.category.to_string(),
            100.0 * point.p_honolulu_flood,
            model.expected_hours(p666)
        );
    }
    println!(
        "\nThe architecture ranking is stable across categories; what grows with\n\
         intensity is the shared hazard floor that no SCADA architecture can\n\
         remove — only siting (and hardening) can."
    );
    Ok(())
}
