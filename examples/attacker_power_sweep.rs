//! Probabilistic attacker power — the paper's Sec. VII open question
//! ("How to model realistic attacker power?") explored as a
//! sensitivity sweep: attack success probability from 0 to 1, expected
//! outcome profile per configuration.
//!
//! ```text
//! cargo run --release --example attacker_power_sweep
//! ```

use compound_threats::attacker_power::power_sweep;
use compound_threats::{CaseStudy, CaseStudyConfig};
use ct_scada::{oahu::SiteChoice, Architecture};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let study = CaseStudy::build(&CaseStudyConfig::default())?;

    println!(
        "Expected operational profiles vs attack success probability p\n\
         (attacker attempts one intrusion and one isolation, each\n\
         succeeding independently with probability p; Waiau siting).\n"
    );

    for arch in Architecture::ALL {
        println!("Configuration {arch}:");
        println!(
            "  {:>5} {:>8} {:>8} {:>8} {:>8}",
            "p", "green", "orange", "red", "gray"
        );
        for (p, e) in power_sweep(&study, arch, SiteChoice::Waiau, 5)? {
            println!(
                "  {:>5.2} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%",
                p,
                100.0 * e.green,
                100.0 * e.orange,
                100.0 * e.red,
                100.0 * e.gray
            );
        }
        println!();
    }

    println!(
        "Reading: the industry configurations (\"2\", \"2-2\") degrade into gray\n\
         linearly with attacker capability, while \"6+6+6\" holds its hurricane-only\n\
         profile until the full worst-case attacker is assumed."
    );
    Ok(())
}
