//! Runs the 2-D shallow-water surge solver (the ADCIRC stand-in) on a
//! single worst-case Category 2 storm, prints an ASCII inundation map
//! of Oahu, and compares the solver's coastal peaks against the fast
//! parametric model used for the 1000-realization ensembles.
//!
//! ```text
//! cargo run --release --example surge_explorer
//! ```

use ct_geo::terrain::{synthesize_oahu, OahuTerrainConfig};
use ct_geo::LatLon;
use ct_hydro::shoreline::postprocess;
use ct_hydro::{
    ParametricSurge, ShallowWaterConfig, ShallowWaterSolver, StationId, Stations, StormParams,
    StormTrack, SurgeCalibration,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dem = synthesize_oahu(&OahuTerrainConfig::default());

    // A direct-hit Category 2 storm: passing just west of the island
    // heading north, strongest (right-side) winds onshore at the south
    // shore, at high tide.
    let storm = StormParams {
        track: StormTrack::straight(LatLon::new(19.2, -158.35), 5.0, 6.0, 48.0)?,
        central_pressure_hpa: 966.0,
        ambient_pressure_hpa: 1010.0,
        rmax_km: 35.0,
        b: 1.6,
        tide_m: 0.3,
    };

    println!("Running the shallow-water solver (this is the expensive model)...");
    let solver = ShallowWaterSolver::new(&dem, ShallowWaterConfig::default());
    let outcome = solver.run(&storm)?;
    println!(
        "  {} steps at dt = {:.2} s; peak water speed {:.1} m/s\n",
        outcome.steps, outcome.dt_s, outcome.max_speed_ms
    );

    // Paper Sec. V-A: smooth the coarse-mesh water surface and extend
    // it onto the shoreline before reading off inundation.
    let surface = postprocess(&outcome, 3.0, 3.0);

    // ASCII map: '.' sea, '#' dry land, digits = inundation depth (m).
    let bed = &outcome.bed;
    println!(
        "Inundation map (rows north to south; ~{:.1} km/char):",
        bed.cell_km() * 2.0
    );
    for r in (0..bed.rows()).rev().step_by(2) {
        let mut line = String::new();
        for c in (0..bed.cols()).step_by(2) {
            let ground = *bed.get(c, r).unwrap();
            if ground <= 0.0 {
                line.push('.');
                continue;
            }
            let s = *surface.get(c, r).unwrap();
            let depth = if s.is_nan() {
                0.0
            } else {
                (s - ground).max(0.0)
            };
            line.push(if depth < 0.25 {
                '#'
            } else {
                std::char::from_digit((depth.min(9.0)) as u32, 10).unwrap_or('9')
            });
        }
        if line.contains('#') || line.contains('.') {
            println!("  {line}");
        }
    }

    // Compare coastal peaks against the parametric model.
    let stations = Stations::from_dem(&dem);
    let parametric = ParametricSurge::new(stations, SurgeCalibration::default());
    let fast = parametric.station_surge(&storm)?;
    println!("\nPeak coastal water level, solver vs parametric (m):");
    for id in [
        StationId::South,
        StationId::Ewa,
        StationId::West,
        StationId::North,
        StationId::East,
    ] {
        let st = parametric.stations().get(id);
        let enu = dem.projection().to_enu(st.pos);
        let solver_level = outcome.coastal_peak_near(enu, 6.0).unwrap_or(f64::NAN);
        println!(
            "  {:<18} solver {:5.2}   parametric {:5.2}",
            id.to_string(),
            solver_level,
            fast.get(id)
        );
    }
    println!(
        "\nThe ensembles use the parametric model (ms per storm). The solver\n\
         validates the spatial pattern (the shallow-shelf Ewa/south shore\n\
         leads; the windward and north shores are suppressed); its absolute\n\
         values sit below the parametric model, which is calibrated as an\n\
         *effective* flood level including wave setup and runup."
    );
    Ok(())
}
