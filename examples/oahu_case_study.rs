//! Full reproduction of the paper's Oahu case study: regenerates
//! Figures 6-11 as probability tables with ASCII profile bars.
//!
//! ```text
//! cargo run --release --example oahu_case_study
//! ```
//!
//! Uses the paper's parameters: 1000 hurricane realizations of a
//! Category 2 storm, five SCADA configurations, four threat
//! scenarios, and both control-site choices (Waiau and Kahe backups).

use compound_threats::figures::{reproduce_all, Figure};
use compound_threats::report::{figure_table, profile_bar};
use compound_threats::{CaseStudy, CaseStudyConfig};
use ct_scada::oahu;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Building the Oahu case study (synthetic terrain + 1000-realization");
    println!("Category 2 hurricane ensemble at every power asset)...\n");

    let config = CaseStudyConfig::default();
    let study = CaseStudy::build(&config)?;

    // The headline hazard statistic the whole case study pivots on.
    let honolulu = study.flood_probability(oahu::HONOLULU_CC)?;
    let waiau = study.flood_probability(oahu::WAIAU)?;
    let kahe = study.flood_probability(oahu::KAHE)?;
    println!("Control-site flood probabilities over the ensemble:");
    println!("  Honolulu CC : {:5.1} %  (paper: 9.5 %)", 100.0 * honolulu);
    println!(
        "  Waiau       : {:5.1} %  (floods whenever Honolulu does)",
        100.0 * waiau
    );
    println!(
        "  Kahe        : {:5.1} %  (the least-impacted site)\n",
        100.0 * kahe
    );

    for data in reproduce_all(&study)? {
        print!("{}", figure_table(&data));
        for (arch, p) in &data.rows {
            println!(
                "  {:<8} |{}|",
                format!("\"{}\"", arch.label()),
                profile_bar(p)
            );
        }
        println!();
    }

    println!("Legend: G green (operational), O orange (disrupted until cold-backup");
    println!("activation), R red (non-operational), X gray (safety compromised).");
    println!();
    println!(
        "Key takeaway (paper Sec. VII): no configuration is fully green under the\n\
         complete compound threat with the Waiau backup ({}), while moving the\n\
         backup to Kahe ({}) makes \"6+6+6\" fully green under hurricane + intrusion.",
        Figure::Fig9,
        Figure::Fig11
    );
    Ok(())
}
