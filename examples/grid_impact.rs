//! Grid-impact extension: what happens to the *power grid itself*
//! under the same hurricane ensemble, and how often the grid is badly
//! damaged exactly when its SCADA system cannot operate ("compound
//! blindness").
//!
//! The paper scopes physical grid damage out of its model; this
//! example adds it back via the ct-grid substrate (wind fragility,
//! flooded substations, DC power flow, overload cascades).
//!
//! ```text
//! cargo run --release --example grid_impact
//! ```

use compound_threats::grid_impact::{blind_grid_stats, grid_impact, GridImpactConfig};
use compound_threats::{CaseStudy, CaseStudyConfig};
use ct_scada::{oahu::SiteChoice, Architecture};
use ct_threat::ThreatScenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let study = CaseStudy::build(&CaseStudyConfig::default())?;
    let config = GridImpactConfig::default();

    println!("Evaluating grid damage over the 1000-realization ensemble...");
    let summary = grid_impact(&study, &config)?;

    println!("\nLoad served after hurricane damage:");
    println!(
        "  mean served, SCADA operational (shedding)   : {:5.1} %",
        100.0 * summary.mean_served_supervised()
    );
    println!(
        "  mean served, SCADA down (unchecked cascade) : {:5.1} %",
        100.0 * summary.mean_served_blind()
    );
    for t in [0.99, 0.9, 0.5] {
        println!(
            "  P(blind served < {:>4.0} %) : {:5.1} %",
            100.0 * t,
            100.0 * summary.p_loss_below(t)
        );
    }
    let cascades = summary.cascade_trips.iter().filter(|&&t| t > 0).count();
    println!(
        "  realizations with cascading line trips: {} / {}",
        cascades,
        summary.cascade_trips.len()
    );

    println!("\nCompound blindness: P(major grid damage AND SCADA degraded)");
    println!(
        "{:<8} {:>12} {:>12} {:>10} {:>8}",
        "config", "P(damage)", "P(degraded)", "P(joint)", "lift"
    );
    for arch in Architecture::ALL {
        let stats = blind_grid_stats(
            &study,
            &summary,
            arch,
            ThreatScenario::Hurricane,
            SiteChoice::Waiau,
            &config,
        )?;
        println!(
            "{:<8} {:>11.1}% {:>11.1}% {:>9.1}% {:>8.2}",
            format!("\"{}\"", arch.label()),
            100.0 * stats.p_grid_damaged,
            100.0 * stats.p_scada_degraded,
            100.0 * stats.p_joint,
            stats.correlation_lift
        );
    }
    println!(
        "\nLift > 1 confirms the compound-threat thesis physically: the storms\n\
         that damage the grid are the same ones that take its control system\n\
         down, so the 'needs SCADA most' and 'has SCADA least' events coincide."
    );

    println!("\nExpected load served when operator response depends on SCADA state");
    println!("(green realizations get corrective shedding; others ride the cascade):");
    for scenario in [
        ThreatScenario::Hurricane,
        ThreatScenario::HurricaneIntrusionIsolation,
    ] {
        println!("  {scenario}:");
        for arch in Architecture::ALL {
            let served = compound_threats::grid_impact::expected_served_with_scada(
                &study,
                &summary,
                arch,
                scenario,
                SiteChoice::Waiau,
            )?;
            println!(
                "    {:<8} {:5.1} %",
                format!("\"{}\"", arch.label()),
                100.0 * served
            );
        }
    }
    Ok(())
}
