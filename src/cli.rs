//! Typed command-line parsing shared by the workspace binaries.
//!
//! The binaries used to scan `argv` ad hoc (`args.iter().position(..)`
//! per flag), which silently ignored typos — `ct figures --csvv`
//! would run for minutes and print the wrong format. This module
//! replaces that with a declarative [`CommandSpec`] per subcommand:
//! flags and positionals are declared once, unknown flags are *errors*,
//! `--help`/`-h` is implicit on every command, and usage text is
//! generated from the same table that drives parsing, so help can
//! never drift from behavior.
//!
//! ```
//! use compound_threats_suite::cli::{CommandSpec, FlagSpec};
//!
//! const RUN: CommandSpec = CommandSpec {
//!     name: "run",
//!     summary: "evaluate one shard of the ensemble",
//!     positionals: &[],
//!     flags: &[FlagSpec { name: "--shards", value_name: Some("K"), help: "total shards" }],
//! };
//! let args = RUN.parse(&["--shards".into(), "4".into()]).unwrap();
//! assert_eq!(args.parsed::<usize>("--shards").unwrap(), Some(4));
//! assert!(RUN.parse(&["--shard".into()]).is_err()); // typo: unknown flag
//! ```

use std::collections::HashMap;
use std::fmt;

/// One flag a command accepts. `value_name: None` marks a boolean
/// switch; `Some("N")` marks a valued flag rendered as `--flag <N>`.
#[derive(Debug, Clone, Copy)]
pub struct FlagSpec {
    /// The flag as typed, including dashes (e.g. `--csv`).
    pub name: &'static str,
    /// Placeholder for the value in help output; `None` for switches.
    pub value_name: Option<&'static str>,
    /// One-line description for `--help`.
    pub help: &'static str,
}

/// A subcommand's full interface: its positionals and flags.
#[derive(Debug, Clone, Copy)]
pub struct CommandSpec {
    /// Subcommand name (e.g. `figures`).
    pub name: &'static str,
    /// One-line description for listings and `--help`.
    pub summary: &'static str,
    /// Positional arguments in order: `(placeholder, required)`.
    pub positionals: &'static [(&'static str, bool)],
    /// Flags the command accepts.
    pub flags: &'static [FlagSpec],
}

/// Parse failures; every variant names the offending token so the
/// message is actionable without re-running with `--help`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// A flag the command does not declare.
    UnknownFlag {
        /// The token as typed.
        flag: String,
        /// The command it was passed to.
        command: &'static str,
    },
    /// A valued flag at the end of the line or followed by a flag.
    MissingValue {
        /// The flag missing its value.
        flag: &'static str,
    },
    /// A flag value that failed to parse.
    InvalidValue {
        /// The flag whose value was rejected.
        flag: &'static str,
        /// The value as typed.
        value: String,
        /// Why it was rejected.
        reason: String,
    },
    /// More positional arguments than the command declares.
    UnexpectedPositional {
        /// The extra token.
        value: String,
        /// The command it was passed to.
        command: &'static str,
    },
    /// A required positional argument was not supplied.
    MissingPositional {
        /// The placeholder name of the missing argument.
        name: &'static str,
        /// The command it was required by.
        command: &'static str,
    },
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::UnknownFlag { flag, command } => {
                write!(f, "unknown flag '{flag}' for '{command}' (see --help)")
            }
            CliError::MissingValue { flag } => write!(f, "{flag} requires a value"),
            CliError::InvalidValue {
                flag,
                value,
                reason,
            } => write!(f, "invalid {flag} value '{value}': {reason}"),
            CliError::UnexpectedPositional { value, command } => {
                write!(
                    f,
                    "unexpected argument '{value}' for '{command}' (see --help)"
                )
            }
            CliError::MissingPositional { name, command } => {
                write!(f, "'{command}' requires <{name}> (see --help)")
            }
        }
    }
}

impl std::error::Error for CliError {}

/// The parsed arguments of one command invocation.
#[derive(Debug)]
pub struct CliArgs {
    spec: CommandSpec,
    help: bool,
    flags: HashMap<&'static str, Option<String>>,
    positionals: Vec<String>,
}

impl CommandSpec {
    /// Parses the tokens *after* the subcommand name.
    ///
    /// `--flag value` and `--flag=value` are both accepted. `--help`
    /// and `-h` are implicit on every command and suppress
    /// required-positional validation (the caller prints help and
    /// exits instead of running).
    ///
    /// # Errors
    ///
    /// Any [`CliError`]; unknown flags are errors, not ignored.
    pub fn parse(&self, argv: &[String]) -> Result<CliArgs, CliError> {
        let mut flags: HashMap<&'static str, Option<String>> = HashMap::new();
        let mut positionals = Vec::new();
        let mut help = false;
        let mut it = argv.iter().peekable();
        while let Some(token) = it.next() {
            if token == "--help" || token == "-h" {
                help = true;
                continue;
            }
            if let Some(stripped) = token.strip_prefix("--") {
                let (name, inline) = match stripped.split_once('=') {
                    Some((n, v)) => (format!("--{n}"), Some(v.to_string())),
                    None => (token.clone(), None),
                };
                let Some(spec) = self.flags.iter().find(|f| f.name == name) else {
                    return Err(CliError::UnknownFlag {
                        flag: token.clone(),
                        command: self.name,
                    });
                };
                let value = match (spec.value_name, inline) {
                    (None, None) => None,
                    (None, Some(v)) => {
                        return Err(CliError::InvalidValue {
                            flag: spec.name,
                            value: v,
                            reason: "flag takes no value".into(),
                        })
                    }
                    (Some(_), Some(v)) => Some(v),
                    (Some(_), None) => match it.peek() {
                        Some(v) if !v.starts_with("--") => {
                            Some(it.next().expect("peeked value exists").clone())
                        }
                        _ => return Err(CliError::MissingValue { flag: spec.name }),
                    },
                };
                flags.insert(spec.name, value);
            } else {
                if positionals.len() >= self.positionals.len() {
                    return Err(CliError::UnexpectedPositional {
                        value: token.clone(),
                        command: self.name,
                    });
                }
                positionals.push(token.clone());
            }
        }
        if !help {
            for (i, (name, required)) in self.positionals.iter().enumerate() {
                if *required && positionals.len() <= i {
                    return Err(CliError::MissingPositional {
                        name,
                        command: self.name,
                    });
                }
            }
        }
        Ok(CliArgs {
            spec: *self,
            help,
            flags,
            positionals,
        })
    }

    /// The generated `--help` text: usage line, positionals, flags.
    pub fn help_text(&self) -> String {
        use fmt::Write;
        let mut s = String::new();
        let _ = write!(s, "usage: ct {}", self.name);
        for (name, required) in self.positionals {
            if *required {
                let _ = write!(s, " <{name}>");
            } else {
                let _ = write!(s, " [{name}]");
            }
        }
        if !self.flags.is_empty() {
            let _ = write!(s, " [options]");
        }
        let _ = writeln!(s, "\n\n{}", self.summary);
        if !self.flags.is_empty() {
            let _ = writeln!(s, "\noptions:");
            for f in self.flags {
                let rendered = match f.value_name {
                    Some(v) => format!("{} <{v}>", f.name),
                    None => f.name.to_string(),
                };
                let _ = writeln!(s, "  {rendered:<24} {}", f.help);
            }
        }
        s
    }
}

impl CliArgs {
    /// Whether `--help`/`-h` was given.
    pub fn help(&self) -> bool {
        self.help
    }

    /// Whether `name` was given (switch or valued).
    pub fn flag(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }

    /// The raw value of a valued flag, if given.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.flags.get(name).and_then(|v| v.as_deref())
    }

    /// The value of `name` parsed as `T`; `Ok(None)` when absent.
    ///
    /// # Errors
    ///
    /// [`CliError::InvalidValue`] carrying the parse failure.
    pub fn parsed<T>(&self, name: &'static str) -> Result<Option<T>, CliError>
    where
        T: std::str::FromStr,
        T::Err: fmt::Display,
    {
        match self.value(name) {
            None => Ok(None),
            Some(v) => v
                .parse::<T>()
                .map(Some)
                .map_err(|e| CliError::InvalidValue {
                    flag: name,
                    value: v.to_string(),
                    reason: e.to_string(),
                }),
        }
    }

    /// The `i`-th positional argument, if given.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positionals.get(i).map(String::as_str)
    }

    /// The spec this invocation was parsed against.
    pub fn spec(&self) -> &CommandSpec {
        &self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: CommandSpec = CommandSpec {
        name: "demo",
        summary: "demo command",
        positionals: &[("config", true), ("scenario", false)],
        flags: &[
            FlagSpec {
                name: "--csv",
                value_name: None,
                help: "emit CSV",
            },
            FlagSpec {
                name: "--realizations",
                value_name: Some("N"),
                help: "ensemble size",
            },
        ],
    };

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_flags_values_and_positionals() {
        let a = SPEC
            .parse(&argv(&[
                "6-6",
                "--csv",
                "--realizations",
                "250",
                "compound",
            ]))
            .unwrap();
        assert!(a.flag("--csv"));
        assert_eq!(a.parsed::<usize>("--realizations").unwrap(), Some(250));
        assert_eq!(a.positional(0), Some("6-6"));
        assert_eq!(a.positional(1), Some("compound"));
        assert!(!a.help());
    }

    #[test]
    fn accepts_equals_form() {
        let a = SPEC.parse(&argv(&["x", "--realizations=99"])).unwrap();
        assert_eq!(a.parsed::<usize>("--realizations").unwrap(), Some(99));
    }

    #[test]
    fn rejects_unknown_flags_and_typos() {
        let e = SPEC.parse(&argv(&["x", "--csvv"])).unwrap_err();
        assert!(matches!(e, CliError::UnknownFlag { .. }));
        assert!(e.to_string().contains("--csvv"));
    }

    #[test]
    fn rejects_missing_or_bad_values() {
        let e = SPEC.parse(&argv(&["x", "--realizations"])).unwrap_err();
        assert_eq!(
            e,
            CliError::MissingValue {
                flag: "--realizations"
            }
        );
        let e = SPEC
            .parse(&argv(&["x", "--realizations", "--csv"]))
            .unwrap_err();
        assert_eq!(
            e,
            CliError::MissingValue {
                flag: "--realizations"
            }
        );
        let a = SPEC.parse(&argv(&["x", "--realizations", "many"])).unwrap();
        let e = a.parsed::<usize>("--realizations").unwrap_err();
        assert!(matches!(e, CliError::InvalidValue { .. }));
        assert!(e.to_string().contains("many"));
        let e = SPEC.parse(&argv(&["x", "--csv=yes"])).unwrap_err();
        assert!(matches!(e, CliError::InvalidValue { .. }));
    }

    #[test]
    fn validates_positional_arity() {
        let e = SPEC.parse(&argv(&[])).unwrap_err();
        assert_eq!(
            e,
            CliError::MissingPositional {
                name: "config",
                command: "demo"
            }
        );
        let e = SPEC.parse(&argv(&["a", "b", "c"])).unwrap_err();
        assert!(matches!(e, CliError::UnexpectedPositional { .. }));
    }

    #[test]
    fn help_suppresses_validation_and_renders_flags() {
        let a = SPEC.parse(&argv(&["--help"])).unwrap();
        assert!(a.help());
        let a = SPEC.parse(&argv(&["-h"])).unwrap();
        assert!(a.help());
        let text = SPEC.help_text();
        assert!(text.contains("usage: ct demo <config> [scenario]"));
        assert!(text.contains("--realizations <N>"));
        assert!(text.contains("emit CSV"));
    }
}
