//! `ct` — command-line interface to the compound-threats framework.
//!
//! ```text
//! ct figures [--realizations N] [--csv]     reproduce Figs. 6-11
//! ct figure <6|7|8|9|10|11> [--csv]         one figure
//! ct placement <config> <scenario>          rank backup sites
//! ct downtime [waiau|kahe]                  expected downtime report
//! ct grid                                   grid-impact summary
//! ct crossval                               Table I vs protocol execution
//! ct topology                               export the Oahu assets as CSV
//! ct hazard [--realizations N] [--full]     flood probabilities (or the
//!                                           full inundation matrix) as CSV
//! ct report [--realizations N]              full case-study report (markdown)
//! ```
//!
//! Scenarios: `hurricane`, `intrusion`, `isolation`, `compound`.
//! Configs: `2`, `2-2`, `6`, `6-6`, `6+6+6`.

use compound_threats::availability::{downtime_report, DowntimeModel};
use compound_threats::crossval::{cross_validate, reachable_states};
use compound_threats::figures::{reproduce, reproduce_all, Figure};
use compound_threats::grid_impact::{grid_impact, GridImpactConfig};
use compound_threats::placement::rank_backup_sites;
use compound_threats::report::{figure_csv, figure_table, profile_bar};
use compound_threats::{CaseStudy, CaseStudyConfig};
use ct_replication::VerdictConfig;
use ct_scada::{export, oahu, Architecture};
use ct_simnet::SimTime;
use ct_threat::ThreatScenario;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: ct <command>\n\
         \n\
         commands:\n\
         \x20 figures [--realizations N] [--csv]   reproduce Figs. 6-11\n\
         \x20 figure <6..11> [--csv]               one figure\n\
         \x20 placement <config> <scenario>        rank backup control sites\n\
         \x20 downtime [waiau|kahe]                expected downtime per event\n\
         \x20 grid                                 grid-impact summary\n\
         \x20 crossval                             Table I vs protocol execution\n\
         \x20 topology                             Oahu assets as CSV\n\
         \x20 hazard [--full]                      hazard ensemble as CSV\n\
         \x20 report                               full case-study markdown report\n\
         \n\
         scenarios: hurricane | intrusion | isolation | compound\n\
         configs:   2 | 2-2 | 6 | 6-6 | 6+6+6"
    );
    ExitCode::FAILURE
}

fn parse_scenario(s: &str) -> Option<ThreatScenario> {
    match s {
        "hurricane" => Some(ThreatScenario::Hurricane),
        "intrusion" => Some(ThreatScenario::HurricaneIntrusion),
        "isolation" => Some(ThreatScenario::HurricaneIsolation),
        "compound" => Some(ThreatScenario::HurricaneIntrusionIsolation),
        _ => None,
    }
}

fn build_study(realizations: Option<usize>) -> Result<CaseStudy, Box<dyn std::error::Error>> {
    let config = match realizations {
        Some(n) => CaseStudyConfig::with_realizations(n),
        None => CaseStudyConfig::default(),
    };
    Ok(CaseStudy::build(&config)?)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = run(&args);
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let Some(command) = args.first() else {
        return Ok(usage());
    };
    let csv = args.iter().any(|a| a == "--csv");
    let realizations = args
        .iter()
        .position(|a| a == "--realizations")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok());

    match command.as_str() {
        "figures" => {
            let study = build_study(realizations)?;
            for data in reproduce_all(&study)? {
                if csv {
                    print!("{}", figure_csv(&data));
                } else {
                    print!("{}", figure_table(&data));
                    for (arch, p) in &data.rows {
                        println!(
                            "  {:<8} |{}|",
                            format!("\"{}\"", arch.label()),
                            profile_bar(p)
                        );
                    }
                    println!();
                }
            }
        }
        "figure" => {
            let Some(n) = args.get(1).and_then(|v| v.parse::<u32>().ok()) else {
                return Ok(usage());
            };
            let Some(fig) = Figure::ALL.into_iter().find(|f| f.number() == n) else {
                eprintln!("no figure {n}; the paper has figures 6-11");
                return Ok(ExitCode::FAILURE);
            };
            let study = build_study(realizations)?;
            let data = reproduce(&study, fig)?;
            if csv {
                print!("{}", figure_csv(&data));
            } else {
                print!("{}", figure_table(&data));
            }
        }
        "placement" => {
            let (Some(arch_s), Some(scen_s)) = (args.get(1), args.get(2)) else {
                return Ok(usage());
            };
            let Some(arch) = Architecture::from_label(arch_s) else {
                eprintln!("unknown config '{arch_s}'");
                return Ok(ExitCode::FAILURE);
            };
            let Some(scenario) = parse_scenario(scen_s) else {
                eprintln!("unknown scenario '{scen_s}'");
                return Ok(ExitCode::FAILURE);
            };
            let study = build_study(realizations)?;
            let ranking = rank_backup_sites(&study, arch, scenario)?;
            if ranking.is_empty() {
                println!("configuration {arch} has no backup site to place");
                return Ok(ExitCode::SUCCESS);
            }
            println!("Backup-site ranking for {arch} under {scenario}:");
            for (i, r) in ranking.iter().enumerate() {
                println!(
                    "  {:>2}. {:<16} green {:5.1}%  orange {:5.1}%  red {:5.1}%  gray {:5.1}%",
                    i + 1,
                    r.backup_asset_id,
                    100.0 * r.profile.green(),
                    100.0 * r.profile.orange(),
                    100.0 * r.profile.red(),
                    100.0 * r.profile.gray()
                );
            }
        }
        "downtime" => {
            let choice = match args.get(1).map(String::as_str) {
                Some("kahe") => oahu::SiteChoice::Kahe,
                _ => oahu::SiteChoice::Waiau,
            };
            let study = build_study(realizations)?;
            let model = DowntimeModel::default();
            for scenario in ThreatScenario::ALL {
                print!("{}", downtime_report(&study, scenario, choice, &model)?);
            }
        }
        "grid" => {
            let study = build_study(realizations)?;
            let summary = grid_impact(&study, &GridImpactConfig::default())?;
            println!(
                "mean served, SCADA operational : {:5.1} %",
                100.0 * summary.mean_served_supervised()
            );
            println!(
                "mean served, SCADA down        : {:5.1} %",
                100.0 * summary.mean_served_blind()
            );
            println!(
                "P(blind served < 90%)          : {:5.1} %",
                100.0 * summary.p_loss_below(0.9)
            );
        }
        "crossval" => {
            let config = VerdictConfig {
                run_duration: SimTime::from_secs(60.0),
                ..VerdictConfig::default()
            };
            let mut total = 0;
            let mut agreed = 0;
            for arch in Architecture::ALL {
                for state in reachable_states(arch) {
                    let cv = cross_validate(&state, &config);
                    total += 1;
                    agreed += usize::from(cv.agrees());
                    if !cv.agrees() {
                        println!(
                            "DISAGREE {state}: rule {} vs executed {}",
                            cv.rule, cv.observed
                        );
                    }
                }
            }
            println!("{agreed}/{total} states agree between Table I and execution");
            if agreed != total {
                return Ok(ExitCode::FAILURE);
            }
        }
        "topology" => {
            print!("{}", export::to_csv(&oahu::topology()));
        }
        "report" => {
            let study = build_study(realizations)?;
            let report = compound_threats::summary::write_report(
                &study,
                &compound_threats::summary::ReportOptions::default(),
            )?;
            print!("{report}");
        }
        "hazard" => {
            let study = build_study(realizations)?;
            if args.iter().any(|a| a == "--full") {
                print!(
                    "{}",
                    ct_hydro::export::realizations_to_csv(study.realizations())
                );
            } else {
                print!(
                    "{}",
                    ct_hydro::export::flood_probabilities_to_csv(study.realizations())
                );
            }
        }
        _ => return Ok(usage()),
    }
    Ok(ExitCode::SUCCESS)
}
