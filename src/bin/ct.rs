//! `ct` — command-line interface to the compound-threats framework.
//!
//! ```text
//! ct figures [--realizations N] [--csv]     reproduce Figs. 6-11
//! ct figure <6|7|8|9|10|11> [--csv]         one figure
//! ct placement <config> <scenario>          rank backup sites
//! ct downtime [waiau|kahe]                  expected downtime report
//! ct grid                                   grid-impact summary
//! ct crossval                               Table I vs protocol execution
//! ct topology                               export the Oahu assets as CSV
//! ct hazard [--realizations N] [--full]     flood probabilities (or the
//!                                           full inundation matrix) as CSV
//! ct report [--realizations N]              full case-study report (markdown)
//! ```
//!
//! Every subcommand accepts `--metrics <path>`: on exit the process
//! writes the [`ct_obs`] span/counter snapshot there (CSV, or a
//! markdown summary when the path ends in `.md`).
//!
//! Worker-thread count comes from the `CT_THREADS` environment
//! variable (default: all cores, capped at 16).
//!
//! Scenarios: `hurricane`, `intrusion`, `isolation`, `compound`.
//! Configs: `2`, `2-2`, `6`, `6-6`, `6+6+6`.

use compound_threats::availability::{downtime_report, DowntimeModel};
use compound_threats::crossval::{cross_validate, reachable_states};
use compound_threats::error::CoreError;
use compound_threats::figures::{reproduce, reproduce_all, Figure};
use compound_threats::grid_impact::{grid_impact, GridImpactConfig};
use compound_threats::placement::rank_backup_sites;
use compound_threats::report::{figure_csv, figure_table, profile_bar};
use compound_threats::{CaseStudy, CaseStudyConfig};
use ct_replication::VerdictConfig;
use ct_scada::{export, oahu, Architecture};
use ct_simnet::SimTime;
use ct_threat::ThreatScenario;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: ct <command> [--metrics <path>]\n\
         \n\
         commands:\n\
         \x20 figures [--realizations N] [--csv]   reproduce Figs. 6-11\n\
         \x20 figure <6..11> [--csv]               one figure\n\
         \x20 placement <config> <scenario>        rank backup control sites\n\
         \x20 downtime [waiau|kahe]                expected downtime per event\n\
         \x20 grid                                 grid-impact summary\n\
         \x20 crossval                             Table I vs protocol execution\n\
         \x20 topology                             Oahu assets as CSV\n\
         \x20 hazard [--full]                      hazard ensemble as CSV\n\
         \x20 report                               full case-study markdown report\n\
         \n\
         global options:\n\
         \x20 --metrics <path>   write the observability snapshot on exit\n\
         \x20                    (CSV; markdown when <path> ends in .md)\n\
         \x20 --realizations N   hazard-ensemble size (default: paper's 1000)\n\
         \n\
         scenarios: hurricane | intrusion | isolation | compound\n\
         configs:   2 | 2-2 | 6 | 6-6 | 6+6+6\n\
         env:       CT_THREADS=<n> caps the worker-thread count"
    );
    ExitCode::FAILURE
}

/// Options shared by every subcommand.
struct GlobalOpts {
    csv: bool,
    realizations: Option<usize>,
    metrics: Option<String>,
}

/// The value following `flag`, required to exist if the flag does.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Result<Option<&'a str>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => match args.get(i + 1) {
            Some(v) if !v.starts_with("--") => Ok(Some(v)),
            _ => Err(format!("{flag} requires a value")),
        },
    }
}

impl GlobalOpts {
    fn parse(args: &[String]) -> Result<Self, Box<dyn std::error::Error>> {
        let realizations = flag_value(args, "--realizations")?
            .map(|v| {
                v.parse::<usize>()
                    .map_err(|e| format!("invalid --realizations value '{v}': {e}"))
            })
            .transpose()?;
        let metrics = flag_value(args, "--metrics")?.map(String::from);
        Ok(Self {
            csv: args.iter().any(|a| a == "--csv"),
            realizations,
            metrics,
        })
    }
}

fn build_study(realizations: Option<usize>) -> Result<CaseStudy, Box<dyn std::error::Error>> {
    let config = match realizations {
        Some(n) => CaseStudyConfig::builder().realizations(n).build()?,
        None => CaseStudyConfig::default(),
    };
    Ok(CaseStudy::build(&config)?)
}

/// Writes the global observability snapshot to `path` (markdown when
/// the path ends in `.md`, CSV otherwise).
fn write_metrics(path: &str) -> Result<(), CoreError> {
    let snap = ct_obs::snapshot();
    let body = if path.ends_with(".md") {
        snap.to_markdown()
    } else {
        snap.to_csv()
    };
    std::fs::write(path, body).map_err(|e| CoreError::Io {
        path: path.to_string(),
        message: e.to_string(),
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let Some(command) = args.first() else {
        return Ok(usage());
    };
    let opts = GlobalOpts::parse(args)?;
    if opts.metrics.is_some() {
        // Pre-register the canonical metric set so the snapshot lists
        // every counter (zero-valued included), whatever the command.
        ct_obs::names::register_defaults(ct_obs::global());
    }
    let code = run_command(command, args, &opts)?;
    if let Some(path) = &opts.metrics {
        write_metrics(path)?;
    }
    Ok(code)
}

fn run_command(
    command: &str,
    args: &[String],
    opts: &GlobalOpts,
) -> Result<ExitCode, Box<dyn std::error::Error>> {
    match command {
        "figures" => {
            let study = build_study(opts.realizations)?;
            for data in reproduce_all(&study)? {
                if opts.csv {
                    print!("{}", figure_csv(&data));
                } else {
                    print!("{}", figure_table(&data));
                    for (arch, p) in &data.rows {
                        println!(
                            "  {:<8} |{}|",
                            format!("\"{}\"", arch.label()),
                            profile_bar(p)
                        );
                    }
                    println!();
                }
            }
        }
        "figure" => {
            let Some(n) = args.get(1).and_then(|v| v.parse::<u32>().ok()) else {
                return Ok(usage());
            };
            let Some(fig) = Figure::ALL.into_iter().find(|f| f.number() == n) else {
                eprintln!("no figure {n}; the paper has figures 6-11");
                return Ok(ExitCode::FAILURE);
            };
            let study = build_study(opts.realizations)?;
            let data = reproduce(&study, fig)?;
            if opts.csv {
                print!("{}", figure_csv(&data));
            } else {
                print!("{}", figure_table(&data));
            }
        }
        "placement" => {
            let (Some(arch_s), Some(scen_s)) = (args.get(1), args.get(2)) else {
                return Ok(usage());
            };
            let Some(arch) = Architecture::from_label(arch_s) else {
                eprintln!("unknown config '{arch_s}'");
                return Ok(ExitCode::FAILURE);
            };
            let scenario: ThreatScenario = match scen_s.parse() {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{e}");
                    return Ok(ExitCode::FAILURE);
                }
            };
            let study = build_study(opts.realizations)?;
            let ranking = rank_backup_sites(&study, arch, scenario)?;
            if ranking.is_empty() {
                println!("configuration {arch} has no backup site to place");
                return Ok(ExitCode::SUCCESS);
            }
            println!("Backup-site ranking for {arch} under {scenario}:");
            for (i, r) in ranking.iter().enumerate() {
                println!(
                    "  {:>2}. {:<16} green {:5.1}%  orange {:5.1}%  red {:5.1}%  gray {:5.1}%",
                    i + 1,
                    r.backup_asset_id,
                    100.0 * r.profile.green(),
                    100.0 * r.profile.orange(),
                    100.0 * r.profile.red(),
                    100.0 * r.profile.gray()
                );
            }
        }
        "downtime" => {
            let choice = match args.get(1).filter(|a| !a.starts_with("--")) {
                Some(s) => match s.parse::<oahu::SiteChoice>() {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("{e}");
                        return Ok(ExitCode::FAILURE);
                    }
                },
                None => oahu::SiteChoice::Waiau,
            };
            let study = build_study(opts.realizations)?;
            let model = DowntimeModel::default();
            for scenario in ThreatScenario::ALL {
                print!("{}", downtime_report(&study, scenario, choice, &model)?);
            }
        }
        "grid" => {
            let study = build_study(opts.realizations)?;
            let summary = grid_impact(&study, &GridImpactConfig::default())?;
            println!(
                "mean served, SCADA operational : {:5.1} %",
                100.0 * summary.mean_served_supervised()
            );
            println!(
                "mean served, SCADA down        : {:5.1} %",
                100.0 * summary.mean_served_blind()
            );
            println!(
                "P(blind served < 90%)          : {:5.1} %",
                100.0 * summary.p_loss_below(0.9)
            );
        }
        "crossval" => {
            let config = VerdictConfig {
                run_duration: SimTime::from_secs(60.0),
                ..VerdictConfig::default()
            };
            let mut total = 0;
            let mut agreed = 0;
            for arch in Architecture::ALL {
                for state in reachable_states(arch) {
                    let cv = cross_validate(&state, &config);
                    total += 1;
                    agreed += usize::from(cv.agrees());
                    if !cv.agrees() {
                        println!(
                            "DISAGREE {state}: rule {} vs executed {}",
                            cv.rule, cv.observed
                        );
                    }
                }
            }
            println!("{agreed}/{total} states agree between Table I and execution");
            if agreed != total {
                return Ok(ExitCode::FAILURE);
            }
        }
        "topology" => {
            print!("{}", export::to_csv(&oahu::topology()));
        }
        "report" => {
            let study = build_study(opts.realizations)?;
            let report = compound_threats::summary::write_report(
                &study,
                &compound_threats::summary::ReportOptions::default(),
            )?;
            print!("{report}");
        }
        "hazard" => {
            let study = build_study(opts.realizations)?;
            if args.iter().any(|a| a == "--full") {
                print!(
                    "{}",
                    ct_hydro::export::realizations_to_csv(study.realizations())
                );
            } else {
                print!(
                    "{}",
                    ct_hydro::export::flood_probabilities_to_csv(study.realizations())
                );
            }
        }
        _ => return Ok(usage()),
    }
    Ok(ExitCode::SUCCESS)
}
