//! `ct` — command-line interface to the compound-threats framework.
//!
//! Run `ct --help` for the command listing and `ct <command> --help`
//! for per-command flags; both are generated from the same
//! [`CommandSpec`] table that drives parsing, so they cannot drift
//! from behavior.
//!
//! Ensemble evaluation can run through a content-addressed artifact
//! store (`--store <url>`): records already stored are loaded
//! bit-exactly instead of recomputed. `ct run --shards K --shard I`
//! evaluates one interleaved slice of the ensemble into the store
//! (resumable after interruption), and `ct merge` assembles the full
//! study from the store, computing anything missing — its output is
//! identical to `ct figures` without a store.
//!
//! A store URL is a local directory (`path` or `file://path`) or a
//! `ct serve` endpoint (`http://host:port`): `ct serve --store <dir>`
//! hosts a local store over HTTP so shards on other machines can
//! share it, and answers `GET /probe` state-probability queries from
//! the artifacts it hosts.
//!
//! Worker-thread count comes from the `CT_THREADS` environment
//! variable (default: all cores, capped at 16).
//!
//! Scenarios: `hurricane`, `intrusion`, `isolation`, `compound`.
//! Configs: `2`, `2-2`, `6`, `6-6`, `6+6+6`.
//! Hazard engines (`--hazard`): `surge`, `wind`, `compound`.
//! Regions (`--region`): `oahu` (default) or a seeded synthetic
//! portfolio, `synth:<seed>:<regions>:<assets>`.

use compound_threats::availability::{downtime_report, DowntimeModel};
use compound_threats::check::{check_cell, CheckMode, CheckOptions};
use compound_threats::crossval::{cross_validate, reachable_states};
use compound_threats::error::CoreError;
use compound_threats::figures::{reproduce, reproduce_all, Figure};
use compound_threats::grid_impact::{grid_impact, GridImpactConfig};
use compound_threats::placement::rank_backup_sites;
use compound_threats::prelude::{
    bench_serve, run_shard, BenchMode, BenchOp, BenchServeOptions, HazardSpec, ProbeQuery,
    ServeOptions, Server, ShardSpec, Store, StoreBackend, StoreUrl,
};
use compound_threats::report::{figure_csv, figure_table, profile_bar};
use compound_threats::{CaseStudy, CaseStudyConfig};
use compound_threats_suite::cli::{CliArgs, CommandSpec, FlagSpec};
use ct_replication::VerdictConfig;
use ct_scada::{export, oahu, Architecture, RegionSpec};
use ct_simnet::SimTime;
use ct_threat::ThreatScenario;
use std::process::ExitCode;

const METRICS: FlagSpec = FlagSpec {
    name: "--metrics",
    value_name: Some("path"),
    help: "write the observability snapshot on exit (CSV; markdown for .md)",
};
const REALIZATIONS: FlagSpec = FlagSpec {
    name: "--realizations",
    value_name: Some("N"),
    help: "hazard-ensemble size (default: paper's 1000)",
};
const HAZARD: FlagSpec = FlagSpec {
    name: "--hazard",
    value_name: Some("h"),
    help: "hazard engine: surge | wind | compound (default surge)",
};
const REGION: FlagSpec = FlagSpec {
    name: "--region",
    value_name: Some("spec"),
    help: "region portfolio: oahu | synth:<seed>:<regions>:<assets> (default oahu)",
};
const CSV: FlagSpec = FlagSpec {
    name: "--csv",
    value_name: None,
    help: "emit CSV instead of tables",
};
const STORE: FlagSpec = FlagSpec {
    name: "--store",
    value_name: Some("url"),
    help: "artifact store: a directory, file://dir, or http://host:port (ct serve)",
};
const ADDR: FlagSpec = FlagSpec {
    name: "--addr",
    value_name: Some("host:port"),
    help: "serve: bind address (default 127.0.0.1:7171; port 0 picks a free port)",
};
const CACHE_BYTES: FlagSpec = FlagSpec {
    name: "--cache-bytes",
    value_name: Some("N"),
    help: "serve: in-memory record-cache budget in bytes (default 256 MiB)",
};
const PACKED: FlagSpec = FlagSpec {
    name: "--packed",
    value_name: None,
    help: "create the store with the packed segment layout (existing stores auto-detect)",
};
const CONNECTIONS: FlagSpec = FlagSpec {
    name: "--connections",
    value_name: Some("N"),
    help: "bench-serve: concurrent kept-alive connections (default 64)",
};
const INFLIGHT: FlagSpec = FlagSpec {
    name: "--inflight",
    value_name: Some("M"),
    help: "bench-serve: pipelined requests per connection, closed mode (default 4)",
};
const SECONDS: FlagSpec = FlagSpec {
    name: "--seconds",
    value_name: Some("S"),
    help: "bench-serve: measured duration per phase in seconds (default 5)",
};
const PAYLOAD_BYTES: FlagSpec = FlagSpec {
    name: "--payload-bytes",
    value_name: Some("N"),
    help: "bench-serve: record payload size (default 256)",
};
const KEYS: FlagSpec = FlagSpec {
    name: "--keys",
    value_name: Some("N"),
    help: "bench-serve: distinct object keys cycled through (default 1024)",
};
const MODE: FlagSpec = FlagSpec {
    name: "--mode",
    value_name: Some("m"),
    help: "bench-serve: loop discipline, closed | open (default closed)",
};
const RATE: FlagSpec = FlagSpec {
    name: "--rate",
    value_name: Some("ops"),
    help: "bench-serve: total offered ops/s in open mode (default 10000)",
};
const OP: FlagSpec = FlagSpec {
    name: "--op",
    value_name: Some("verb"),
    help: "bench-serve: traffic to measure, put | get | both (default both)",
};
const SHARDS: FlagSpec = FlagSpec {
    name: "--shards",
    value_name: Some("K"),
    help: "total shard count (default 1)",
};
const SHARD: FlagSpec = FlagSpec {
    name: "--shard",
    value_name: Some("I"),
    help: "this process's shard index, 0-based (default 0)",
};
const FULL: FlagSpec = FlagSpec {
    name: "--full",
    value_name: None,
    help: "full per-realization inundation matrix instead of probabilities",
};
const REPAIR: FlagSpec = FlagSpec {
    name: "--repair",
    value_name: None,
    help: "evict corrupt records and sweep orphaned tmp files",
};
const TMP_AGE: FlagSpec = FlagSpec {
    name: "--tmp-age",
    value_name: Some("secs"),
    help: "min age before a tmp file counts as orphaned (default 3600)",
};
const PRUNE: FlagSpec = FlagSpec {
    name: "--prune",
    value_name: Some("secs"),
    help: "also remove records older than this many seconds (destructive)",
};
const ARCH: FlagSpec = FlagSpec {
    name: "--arch",
    value_name: Some("c"),
    help: "check: configuration to check, 2 | 2-2 | 6 | 6-6 | 6+6+6",
};
const SCENARIO: FlagSpec = FlagSpec {
    name: "--scenario",
    value_name: Some("s"),
    help: "check: threat scenario, hurricane | intrusion | isolation | compound",
};
const DEPTH: FlagSpec = FlagSpec {
    name: "--depth",
    value_name: Some("N"),
    help: "check: exhaustive tier, max choice points per path (default 2)",
};
const SCHEDULES: FlagSpec = FlagSpec {
    name: "--schedules",
    value_name: Some("N"),
    help: "check: randomized tier, schedules per state (selects this tier)",
};
const SEED: FlagSpec = FlagSpec {
    name: "--seed",
    value_name: Some("S"),
    help: "check: randomized tier base seed; run i uses S+i (default 1)",
};

/// Every `ct` subcommand; parsing, dispatch, and all help text derive
/// from this table.
const COMMANDS: &[CommandSpec] = &[
    CommandSpec {
        name: "figures",
        summary: "reproduce Figs. 6-11",
        positionals: &[],
        flags: &[CSV, HAZARD, REGION, REALIZATIONS, STORE, PACKED, METRICS],
    },
    CommandSpec {
        name: "figure",
        summary: "reproduce one figure (6..11)",
        positionals: &[("number", true)],
        flags: &[CSV, HAZARD, REGION, REALIZATIONS, STORE, PACKED, METRICS],
    },
    CommandSpec {
        name: "run",
        summary: "evaluate one shard of the ensemble into an artifact store",
        positionals: &[],
        flags: &[
            STORE,
            PACKED,
            SHARDS,
            SHARD,
            HAZARD,
            REGION,
            REALIZATIONS,
            METRICS,
        ],
    },
    CommandSpec {
        name: "merge",
        summary: "assemble a sharded run from the store and print the figures",
        positionals: &[],
        flags: &[STORE, PACKED, CSV, HAZARD, REGION, REALIZATIONS, METRICS],
    },
    CommandSpec {
        name: "fsck",
        summary: "validate every store record; --repair heals what it finds",
        positionals: &[],
        flags: &[STORE, PACKED, REPAIR, TMP_AGE, PRUNE, METRICS],
    },
    CommandSpec {
        name: "serve",
        summary: "host a local store over http for remote shards and probes",
        positionals: &[],
        flags: &[STORE, PACKED, ADDR, CACHE_BYTES],
    },
    CommandSpec {
        name: "probe",
        summary: "ask a serving store for one scenario's outcome profile",
        positionals: &[("scenario", true), ("site", true)],
        flags: &[STORE, HAZARD, REGION, REALIZATIONS, METRICS],
    },
    CommandSpec {
        name: "bench-serve",
        summary: "drive keep-alive load at a serving store and report latency",
        positionals: &[],
        flags: &[
            STORE,
            CONNECTIONS,
            INFLIGHT,
            SECONDS,
            PAYLOAD_BYTES,
            KEYS,
            MODE,
            RATE,
            OP,
            METRICS,
        ],
    },
    CommandSpec {
        name: "placement",
        summary: "rank backup control sites",
        positionals: &[("config", true), ("scenario", true)],
        flags: &[HAZARD, REGION, REALIZATIONS, STORE, PACKED, METRICS],
    },
    CommandSpec {
        name: "downtime",
        summary: "expected downtime per event (site: waiau|kahe)",
        positionals: &[("site", false)],
        flags: &[HAZARD, REGION, REALIZATIONS, STORE, PACKED, METRICS],
    },
    CommandSpec {
        name: "grid",
        summary: "grid-impact summary",
        positionals: &[],
        flags: &[HAZARD, REALIZATIONS, STORE, PACKED, METRICS],
    },
    CommandSpec {
        name: "crossval",
        summary: "Table I vs protocol execution",
        positionals: &[],
        flags: &[METRICS],
    },
    CommandSpec {
        name: "check",
        summary: "model-check one Table I cell over many schedules",
        positionals: &[],
        flags: &[ARCH, SCENARIO, DEPTH, SCHEDULES, SEED, METRICS],
    },
    CommandSpec {
        name: "topology",
        summary: "export a region portfolio's assets as CSV",
        positionals: &[],
        flags: &[REGION, METRICS],
    },
    CommandSpec {
        name: "hazard",
        summary: "flood probabilities (or inundation matrix) as CSV",
        positionals: &[],
        flags: &[FULL, HAZARD, REGION, REALIZATIONS, STORE, PACKED, METRICS],
    },
    CommandSpec {
        name: "report",
        summary: "full case-study report (markdown)",
        positionals: &[],
        flags: &[HAZARD, REGION, REALIZATIONS, STORE, PACKED, METRICS],
    },
];

fn usage() -> String {
    let mut s = String::from("usage: ct <command> [options]\n\ncommands:\n");
    for c in COMMANDS {
        s.push_str(&format!("  {:<10} {}\n", c.name, c.summary));
    }
    s.push_str(
        "\nrun 'ct <command> --help' for that command's flags\n\
         scenarios: hurricane | intrusion | isolation | compound\n\
         configs:   2 | 2-2 | 6 | 6-6 | 6+6+6\n\
         hazards:   surge | wind | compound\n\
         regions:   oahu | synth:<seed>:<regions>:<assets>\n\
         stores:    --store <dir> | file://<dir> | http://host:port (see 'ct serve')\n\
         env:       CT_THREADS=<n> caps the worker-thread count\n\
         \x20          CT_FAULTS=site:nth:kind[:limit],... arms deterministic failpoints\n\
         \x20          CT_STORE_RETRY_BUDGET_MS=<ms> backoff budget for transient store I/O (default 3)\n\
         \x20          CT_SERVE_IDLE_MS=<ms> serve: close kept-alive connections idle this long (default 5000)\n\
         \x20          CT_REMOTE_POOL=<n> client: idle kept-alive sockets pooled per store (default 8)\n\
         \x20          CT_SEGMENT_ROLL_BYTES=<n> packed-store segment roll threshold (default 64 MiB)\n\
         \x20          CT_SEGMENT_SYNC_BYTES=<n> packed-store group-fsync threshold (default 8 MiB)",
    );
    s
}

/// The study's configuration from the common flags.
fn study_config(args: &CliArgs) -> Result<CaseStudyConfig, Box<dyn std::error::Error>> {
    let mut builder = CaseStudyConfig::builder();
    if let Some(region) = args.parsed::<RegionSpec>("--region")? {
        builder = builder.region(region);
    }
    if let Some(n) = args.parsed::<usize>("--realizations")? {
        builder = builder.realizations(n);
    }
    if let Some(hazard) = args.parsed::<HazardSpec>("--hazard")? {
        builder = builder.hazard(hazard);
    }
    Ok(builder.build()?)
}

/// The parsed `--store` URL, if any. Unknown schemes and malformed
/// authorities are loud parse errors, never silent paths.
fn store_url(args: &CliArgs) -> Result<Option<StoreUrl>, Box<dyn std::error::Error>> {
    Ok(args.parsed::<StoreUrl>("--store")?)
}

/// Opens the store backend named by `--store`, if any: local for a
/// directory URL, the HTTP client for `http://host:port`. `--packed`
/// selects the packed segment layout for a fresh local root; existing
/// stores auto-detect their layout either way (opening an existing
/// loose root with `--packed` is an error, never a silent rewrite).
fn open_store(
    args: &CliArgs,
) -> Result<Option<std::sync::Arc<dyn StoreBackend>>, Box<dyn std::error::Error>> {
    match store_url(args)? {
        Some(url) => Ok(Some(url.open(args.flag("--packed"))?)),
        None => Ok(None),
    }
}

/// Opens the store backend named by `--store`, required.
fn require_store(
    args: &CliArgs,
) -> Result<std::sync::Arc<dyn StoreBackend>, Box<dyn std::error::Error>> {
    match open_store(args)? {
        Some(store) => Ok(store),
        None => Err(format!("'{}' requires --store <url>", args.spec().name).into()),
    }
}

/// The `host:port` of the serving store named by `--store`, for
/// commands that speak to a live `ct serve` daemon and nothing else.
fn require_http_authority(args: &CliArgs) -> Result<String, Box<dyn std::error::Error>> {
    match store_url(args)? {
        Some(StoreUrl::Http { authority }) => Ok(authority),
        Some(url) => Err(format!(
            "'{}' talks to a serving store and cannot use {url}; \
             pass --store http://host:port (see 'ct serve')",
            args.spec().name
        )
        .into()),
        None => Err(format!("'{}' requires --store http://host:port", args.spec().name).into()),
    }
}

/// The local root named by `--store`, for commands that own the bytes
/// on disk (`fsck`, `serve`) and therefore cannot run against an
/// `http://` URL.
fn require_local_root(args: &CliArgs) -> Result<std::path::PathBuf, Box<dyn std::error::Error>> {
    match store_url(args)? {
        Some(url) => match url.local_root() {
            Some(root) => Ok(root.to_path_buf()),
            None => Err(format!(
                "'{}' operates on the store's local files and cannot target {url}; \
                 run it on the serving machine with a directory --store",
                args.spec().name
            )
            .into()),
        },
        None => Err(format!("'{}' requires --store <dir>", args.spec().name).into()),
    }
}

/// Builds the study from the common flags, through the artifact store
/// when one was named.
fn build_study(args: &CliArgs) -> Result<CaseStudy, Box<dyn std::error::Error>> {
    let config = study_config(args)?;
    Ok(CaseStudy::build_with_store(
        &config,
        open_store(args)?.as_deref(),
    )?)
}

/// Prints every figure, as CSV or tables — shared by `figures` and
/// `merge` so the two paths cannot drift apart. A multi-region
/// portfolio gets the per-region outcome summary instead of the Oahu
/// figure set (the figures are the paper's, and the paper is Oahu).
fn print_figures(study: &CaseStudy, csv: bool) -> Result<(), Box<dyn std::error::Error>> {
    if study.region_count() > 1 {
        print!("{}", study.portfolio_summary()?);
        return Ok(());
    }
    for data in reproduce_all(study)? {
        if csv {
            print!("{}", figure_csv(&data));
        } else {
            print!("{}", figure_table(&data));
            for (arch, p) in &data.rows {
                println!(
                    "  {:<8} |{}|",
                    format!("\"{}\"", arch.label()),
                    profile_bar(p)
                );
            }
            println!();
        }
    }
    Ok(())
}

/// Writes the global observability snapshot to `path` (markdown when
/// the path ends in `.md`, CSV otherwise).
fn write_metrics(path: &str) -> Result<(), CoreError> {
    let snap = ct_obs::snapshot();
    let body = if path.ends_with(".md") {
        snap.to_markdown()
    } else {
        snap.to_csv()
    };
    std::fs::write(path, body).map_err(|e| CoreError::Io {
        path: path.to_string(),
        message: e.to_string(),
    })
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(argv: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let Some(command) = argv.first() else {
        eprintln!("{}", usage());
        return Ok(ExitCode::FAILURE);
    };
    if command == "--help" || command == "-h" || command == "help" {
        println!("{}", usage());
        return Ok(ExitCode::SUCCESS);
    }
    let Some(spec) = COMMANDS.iter().find(|c| c.name == *command) else {
        eprintln!("unknown command '{command}'\n\n{}", usage());
        return Ok(ExitCode::FAILURE);
    };
    let args = spec.parse(&argv[1..])?;
    if args.help() {
        print!("{}", spec.help_text());
        return Ok(ExitCode::SUCCESS);
    }
    // A malformed CT_FAULTS must fail the run loudly: the alternative
    // is a fault campaign that silently tests nothing.
    if let Some(e) = ct_store::faults::env_arming_error() {
        return Err(format!("CT_FAULTS: {e}").into());
    }
    if args.flag("--metrics") {
        // Pre-register the canonical metric set so the snapshot lists
        // every counter (zero-valued included), whatever the command.
        ct_obs::names::register_defaults(ct_obs::global());
    }
    let code = run_command(&args)?;
    if let Some(path) = args.value("--metrics") {
        write_metrics(path)?;
    }
    Ok(code)
}

fn run_command(args: &CliArgs) -> Result<ExitCode, Box<dyn std::error::Error>> {
    match args.spec().name {
        "figures" => {
            let study = build_study(args)?;
            print_figures(&study, args.flag("--csv"))?;
        }
        "figure" => {
            let number = args.positional(0).expect("required positional");
            let Some(fig) = number
                .parse::<u32>()
                .ok()
                .and_then(|n| Figure::ALL.into_iter().find(|f| f.number() == n))
            else {
                eprintln!("no figure '{number}'; the paper has figures 6-11");
                return Ok(ExitCode::FAILURE);
            };
            let study = build_study(args)?;
            let data = reproduce(&study, fig)?;
            if args.flag("--csv") {
                print!("{}", figure_csv(&data));
            } else {
                print!("{}", figure_table(&data));
            }
        }
        "run" => {
            let store = require_store(args)?;
            let config = study_config(args)?;
            let shards = args.parsed::<usize>("--shards")?.unwrap_or(1);
            let index = args.parsed::<usize>("--shard")?.unwrap_or(0);
            let shard = ShardSpec::new(index, shards)?;
            let report = run_shard(&config, store.as_ref(), shard)?;
            println!(
                "shard {index}/{shards}: {} computed, {} reused, {} records total",
                report.computed, report.reused, report.total
            );
        }
        "merge" => {
            let store = require_store(args)?;
            let config = study_config(args)?;
            let study = CaseStudy::merge_from_store(&config, store.as_ref())?;
            print_figures(&study, args.flag("--csv"))?;
        }
        "serve" => {
            let root = require_local_root(args)?;
            let mut options = ServeOptions {
                packed: args.flag("--packed"),
                ..ServeOptions::default()
            };
            if let Some(addr) = args.value("--addr") {
                options.addr = addr.to_string();
            }
            if let Some(bytes) = args.parsed::<u64>("--cache-bytes")? {
                options.cache_bytes = bytes;
            }
            let server = Server::bind(&root, &options)?;
            println!(
                "serving {} at {} ({} workers, {} byte cache); GET /healthz, /metricsz, /probe",
                root.display(),
                server.url(),
                options.threads,
                options.cache_bytes,
            );
            use std::io::Write;
            std::io::stdout().flush().ok();
            server.join_forever();
        }
        "fsck" => {
            let root = require_local_root(args)?;
            let store = if args.flag("--packed") {
                Store::open_packed(&root)?
            } else {
                Store::open(&root)?
            };
            let options = ct_store::FsckOptions {
                repair: args.flag("--repair"),
                tmp_max_age: std::time::Duration::from_secs(
                    args.parsed::<u64>("--tmp-age")?.unwrap_or(3600),
                ),
                prune_max_age: args
                    .parsed::<u64>("--prune")?
                    .map(std::time::Duration::from_secs),
            };
            let report = store.fsck(&options)?;
            print!("{}", report.to_csv());
            // Without --repair, surviving problems mean the store
            // needs attention: signal it through the exit code so
            // scripts can gate on `ct fsck`.
            if !options.repair && !report.clean() {
                return Ok(ExitCode::FAILURE);
            }
        }
        "probe" => {
            let authority = require_http_authority(args)?;
            let scen_s = args.positional(0).expect("required positional");
            let scenario: ThreatScenario = match scen_s.parse() {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{e}");
                    return Ok(ExitCode::FAILURE);
                }
            };
            let site = match args
                .positional(1)
                .expect("required positional")
                .parse::<oahu::SiteChoice>()
            {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("{e}");
                    return Ok(ExitCode::FAILURE);
                }
            };
            let mut query = ProbeQuery {
                scenario,
                site,
                hazard: HazardSpec::default(),
                realizations: compound_threats::serve::DEFAULT_PROBE_REALIZATIONS,
                region: RegionSpec::default(),
            };
            if let Some(hazard) = args.parsed::<HazardSpec>("--hazard")? {
                query.hazard = hazard;
            }
            if let Some(n) = args.parsed::<usize>("--realizations")? {
                query.realizations = n;
            }
            if let Some(region) = args.parsed::<RegionSpec>("--region")? {
                query.region = region;
            }
            println!("# GET {}", query.target());
            print!("{}", query.fetch(&authority)?);
        }
        "bench-serve" => {
            let authority = require_http_authority(args)?;
            let mut options = BenchServeOptions {
                authority,
                ..BenchServeOptions::default()
            };
            if let Some(n) = args.parsed::<usize>("--connections")? {
                options.connections = n;
            }
            if let Some(n) = args.parsed::<usize>("--inflight")? {
                options.inflight = n;
            }
            if let Some(s) = args.parsed::<f64>("--seconds")? {
                options.seconds = s;
            }
            if let Some(n) = args.parsed::<usize>("--payload-bytes")? {
                options.payload_bytes = n;
            }
            if let Some(n) = args.parsed::<usize>("--keys")? {
                options.keys = n;
            }
            if let Some(mode) = args.parsed::<BenchMode>("--mode")? {
                options.mode = mode;
            }
            if let Some(rate) = args.parsed::<f64>("--rate")? {
                options.rate = rate;
            }
            options.ops = match args.value("--op") {
                None | Some("both") => vec![BenchOp::Put, BenchOp::Get],
                Some("put") => vec![BenchOp::Put],
                Some("get") => vec![BenchOp::Get],
                Some(other) => {
                    eprintln!("unknown --op '{other}' (put | get | both)");
                    return Ok(ExitCode::FAILURE);
                }
            };
            for row in bench_serve(&options)? {
                println!("{}", row.to_csv());
            }
        }
        "placement" => {
            let arch_s = args.positional(0).expect("required positional");
            let scen_s = args.positional(1).expect("required positional");
            let Some(arch) = Architecture::from_label(arch_s) else {
                eprintln!("unknown config '{arch_s}'");
                return Ok(ExitCode::FAILURE);
            };
            let scenario: ThreatScenario = match scen_s.parse() {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{e}");
                    return Ok(ExitCode::FAILURE);
                }
            };
            let study = build_study(args)?;
            let ranking = rank_backup_sites(&study, arch, scenario)?;
            if ranking.is_empty() {
                println!("configuration {arch} has no backup site to place");
                return Ok(ExitCode::SUCCESS);
            }
            println!("Backup-site ranking for {arch} under {scenario}:");
            for (i, r) in ranking.iter().enumerate() {
                println!(
                    "  {:>2}. {:<16} green {:5.1}%  orange {:5.1}%  red {:5.1}%  gray {:5.1}%",
                    i + 1,
                    r.backup_asset_id,
                    100.0 * r.profile.green(),
                    100.0 * r.profile.orange(),
                    100.0 * r.profile.red(),
                    100.0 * r.profile.gray()
                );
            }
        }
        "downtime" => {
            let choice = match args.positional(0) {
                Some(s) => match s.parse::<oahu::SiteChoice>() {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("{e}");
                        return Ok(ExitCode::FAILURE);
                    }
                },
                None => oahu::SiteChoice::Waiau,
            };
            let study = build_study(args)?;
            let model = DowntimeModel::default();
            for scenario in ThreatScenario::ALL {
                print!("{}", downtime_report(&study, scenario, choice, &model)?);
            }
        }
        "grid" => {
            let study = build_study(args)?;
            let summary = grid_impact(&study, &GridImpactConfig::default())?;
            println!(
                "mean served, SCADA operational : {:5.1} %",
                100.0 * summary.mean_served_supervised()
            );
            println!(
                "mean served, SCADA down        : {:5.1} %",
                100.0 * summary.mean_served_blind()
            );
            println!(
                "P(blind served < 90%)          : {:5.1} %",
                100.0 * summary.p_loss_below(0.9)
            );
        }
        "crossval" => {
            let config = VerdictConfig {
                run_duration: SimTime::from_secs(60.0),
                ..VerdictConfig::default()
            };
            let mut total = 0;
            let mut agreed = 0;
            for arch in Architecture::ALL {
                for state in reachable_states(arch) {
                    let cv = cross_validate(&state, &config);
                    total += 1;
                    agreed += usize::from(cv.agrees());
                    if !cv.agrees() {
                        println!(
                            "DISAGREE {state}: rule {} vs executed {}",
                            cv.rule, cv.observed
                        );
                    }
                }
            }
            println!("{agreed}/{total} states agree between Table I and execution");
            if agreed != total {
                return Ok(ExitCode::FAILURE);
            }
        }
        "check" => {
            let Some(arch_s) = args.value("--arch") else {
                eprintln!("'check' requires --arch <config> (2 | 2-2 | 6 | 6-6 | 6+6+6)");
                return Ok(ExitCode::FAILURE);
            };
            let Some(arch) = Architecture::from_label(arch_s) else {
                eprintln!("unknown config '{arch_s}'");
                return Ok(ExitCode::FAILURE);
            };
            let Some(scen_s) = args.value("--scenario") else {
                eprintln!(
                    "'check' requires --scenario <s> (hurricane | intrusion | isolation | compound)"
                );
                return Ok(ExitCode::FAILURE);
            };
            let scenario: ThreatScenario = match scen_s.parse() {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{e}");
                    return Ok(ExitCode::FAILURE);
                }
            };
            let depth = args.parsed::<usize>("--depth")?;
            let schedules = args.parsed::<u64>("--schedules")?;
            let mode = match (depth, schedules) {
                (Some(_), Some(_)) => {
                    eprintln!("--depth selects the exhaustive tier and --schedules the randomized one; pass exactly one");
                    return Ok(ExitCode::FAILURE);
                }
                (None, Some(schedules)) => CheckMode::Randomized {
                    schedules,
                    seed: args.parsed::<u64>("--seed")?.unwrap_or(1),
                },
                (depth, None) => {
                    if args.value("--seed").is_some() {
                        eprintln!("--seed applies to the randomized tier; pass --schedules <N>");
                        return Ok(ExitCode::FAILURE);
                    }
                    CheckMode::Exhaustive {
                        depth: depth.unwrap_or(2),
                    }
                }
            };
            let report = check_cell(&CheckOptions {
                architecture: arch,
                scenario,
                mode,
            });
            print!("{}", report.to_csv());
            if !report.ok() {
                return Ok(ExitCode::FAILURE);
            }
        }
        "topology" => {
            let spec = args
                .parsed::<RegionSpec>("--region")?
                .unwrap_or(RegionSpec::Oahu);
            let terrain = ct_geo::terrain::OahuTerrainConfig::default();
            for (r, terrain_spec) in spec.terrain_specs(&terrain).iter().enumerate() {
                let def = if spec.is_synthetic() {
                    let dem = ct_geo::synthesize_region(terrain_spec)?;
                    spec.region_def(r, &dem)?
                } else {
                    let dem = ct_geo::terrain::synthesize_oahu(&terrain);
                    spec.region_def(r, &dem)?
                };
                if spec.region_count() > 1 {
                    println!("# region {} ({})", def.index, def.name);
                }
                print!("{}", export::to_csv(&def.topology));
            }
        }
        "report" => {
            let study = build_study(args)?;
            let report = compound_threats::summary::write_report(
                &study,
                &compound_threats::summary::ReportOptions::default(),
            )?;
            print!("{report}");
        }
        "hazard" => {
            let study = build_study(args)?;
            if args.flag("--full") {
                print!(
                    "{}",
                    ct_hydro::export::realizations_to_csv(study.realizations())
                );
            } else {
                print!(
                    "{}",
                    ct_hydro::export::flood_probabilities_to_csv(study.realizations())
                );
            }
        }
        other => unreachable!("command '{other}' is in COMMANDS but not dispatched"),
    }
    Ok(ExitCode::SUCCESS)
}
