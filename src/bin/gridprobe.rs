fn main() {
    let g = ct_grid::oahu::grid();
    let s = ct_grid::dc_power_flow(&g, &ct_grid::OutageSet::none()).unwrap();
    for (lid, flow) in &s.flows_mw {
        let l = &g.lines()[lid.0];
        println!(
            "{:>2} {:<14}->{:<14} flow {:8.1} cap {:6.0} util {:4.0}%",
            lid.0,
            g.buses()[l.from.0].name,
            g.buses()[l.to.0].name,
            flow,
            l.capacity_mw,
            100.0 * flow.abs() / l.capacity_mw
        );
    }
}
