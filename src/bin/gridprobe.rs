//! `gridprobe` — quick look at the Oahu DC power flow: one line per
//! transmission line with its flow, capacity, and utilization.

use compound_threats_suite::cli::{CommandSpec, FlagSpec};
use std::process::ExitCode;

const SPEC: CommandSpec = CommandSpec {
    name: "gridprobe",
    summary: "print per-line DC power-flow utilization for the intact Oahu grid",
    positionals: &[],
    flags: &[FlagSpec {
        name: "--min-util",
        value_name: Some("pct"),
        help: "only show lines at or above this utilization percentage",
    }],
};

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(argv: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let args = SPEC.parse(argv)?;
    if args.help() {
        // This is a standalone binary, not a `ct` subcommand.
        print!("{}", SPEC.help_text().replace("usage: ct ", "usage: "));
        return Ok(ExitCode::SUCCESS);
    }
    let min_util = args.parsed::<f64>("--min-util")?.unwrap_or(0.0);
    let g = ct_grid::oahu::grid();
    let s = ct_grid::dc_power_flow(&g, &ct_grid::OutageSet::none())?;
    for (lid, flow) in &s.flows_mw {
        let l = &g.lines()[lid.0];
        let util = 100.0 * flow.abs() / l.capacity_mw;
        if util < min_util {
            continue;
        }
        println!(
            "{:>2} {:<14}->{:<14} flow {:8.1} cap {:6.0} util {:4.0}%",
            lid.0,
            g.buses()[l.from.0].name,
            g.buses()[l.to.0].name,
            flow,
            l.capacity_mw,
            util
        );
    }
    Ok(ExitCode::SUCCESS)
}
