//! Umbrella crate for the compound-threats reproduction: re-exports
//! every workspace crate so examples and integration tests have one
//! import root.
//!
//! * [`geo`] — geospatial substrate (coordinates, DEM, synthetic Oahu
//!   terrain);
//! * [`hydro`] — hurricane wind fields, storm-surge models, and the
//!   Monte-Carlo realization ensemble (the ADCIRC stand-in);
//! * [`simnet`] — deterministic discrete-event simulation kernel;
//! * [`replication`] — executable SCADA replication architectures;
//! * [`scada`] — power-asset topologies and the five paper
//!   configurations;
//! * [`threat`] — compound threat model, worst-case attacker, Table I
//!   classifier;
//! * [`grid`] — power-grid substrate (DC power flow, fragility,
//!   cascading outages) for the grid-impact extension;
//! * [`framework`] — the analysis pipeline, figure reproduction,
//!   placement search and attacker-power extensions.
//!
//! See the repository README for a tour and `DESIGN.md` for the
//! system inventory.
//!
//! The [`cli`] module holds the typed argument parser shared by the
//! `ct` and `gridprobe` binaries.

pub mod cli;

pub use compound_threats as framework;
pub use ct_geo as geo;
pub use ct_grid as grid;
pub use ct_hydro as hydro;
pub use ct_replication as replication;
pub use ct_scada as scada;
pub use ct_simnet as simnet;
pub use ct_threat as threat;
