//! Prints the stable digest of the default Oahu DEM through the same
//! hash the artifact keys use, so CI can pin the Oahu preset against
//! accidental terrain drift (`oahu_dem_digest_is_pinned` asserts the
//! same value in-tree).

use compound_threats::artifact::dem_digest;
use ct_geo::terrain::{synthesize_oahu, OahuTerrainConfig};

fn main() {
    let dem = synthesize_oahu(&OahuTerrainConfig::default());
    let grid = dem.elevation_grid();
    println!("oahu dem digest: {}", dem_digest(&dem).to_hex());
    println!("cols={} rows={}", grid.cols(), grid.rows());
}
