//! Typed `/probe` queries: one parser for the server and the CLI.
//!
//! `GET /probe?scenario=…&site=…[&hazard=…][&realizations=N][&region=…]`
//! asks a serving store for the outcome probabilities of one
//! scenario × site under one hazard ensemble, in one region portfolio
//! (region 0 of the portfolio is profiled; the default is Oahu). [`ProbeQuery`] is the
//! typed form of that query string: `FromStr` parses and validates
//! it (loudly — unknown or malformed parameters are rejected, never
//! ignored, so a typo'd `relizations=500` cannot silently probe the
//! 60-realization default), and `Display` renders the canonical
//! fully-explicit form, so a parsed query round-trips byte for byte
//! into a URL, a log line, or a child process's argv.
//!
//! The server routes `/probe` through this type, and
//! `ct probe --store http://…` builds one from CLI flags and
//! [`ProbeQuery::fetch`]es it over the same wire — one grammar, two
//! entry points, zero drift.

use crate::error::CoreError;
use crate::serve::DEFAULT_PROBE_REALIZATIONS;
use ct_hazard::HazardSpec;
use ct_scada::oahu::SiteChoice;
use ct_scada::RegionSpec;
use ct_store::remote::{query_param, read_response, write_request};
use ct_threat::ThreatScenario;
use std::fmt;
use std::net::TcpStream;
use std::str::FromStr;

/// One validated `/probe` query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeQuery {
    /// The compound-threat scenario to profile.
    pub scenario: ThreatScenario,
    /// The SCADA control-site choice.
    pub site: SiteChoice,
    /// The hazard ensemble (defaults to the paper's surge model).
    pub hazard: HazardSpec,
    /// Ensemble size (defaults to
    /// [`DEFAULT_PROBE_REALIZATIONS`] — a probe is a live question,
    /// not a reproduction run).
    pub realizations: usize,
    /// The region portfolio to probe (defaults to Oahu). Synthetic
    /// portfolios are addressed with the CLI grammar,
    /// `synth:<seed>:<regions>:<assets>`.
    pub region: RegionSpec,
}

impl ProbeQuery {
    /// The request target this query probes: `/probe?<canonical>`.
    pub fn target(&self) -> String {
        format!("/probe?{self}")
    }

    /// Asks the serving store at `authority` (`host:port`) and
    /// returns the state-probability CSV.
    ///
    /// # Errors
    ///
    /// Connect/transport failures, or any non-200 answer (the
    /// server's explanation is carried in the message).
    pub fn fetch(&self, authority: &str) -> Result<String, CoreError> {
        let url = format!("http://{authority}{}", self.target());
        let fail = |message: String| CoreError::Io {
            path: url.clone(),
            message,
        };
        let mut stream = TcpStream::connect(authority).map_err(|e| fail(e.to_string()))?;
        write_request(&mut stream, "GET", &self.target(), &[], false)
            .map_err(|e| fail(e.to_string()))?;
        let response = read_response(&mut stream).map_err(|e| fail(e.to_string()))?;
        let body = String::from_utf8_lossy(&response.body);
        if response.status != 200 {
            return Err(fail(format!(
                "server answered {}: {}",
                response.status,
                body.trim()
            )));
        }
        Ok(body.into_owned())
    }
}

impl FromStr for ProbeQuery {
    type Err = String;

    /// Parses the query-string form, e.g.
    /// `scenario=compound&site=waiau&hazard=surge&realizations=60`.
    /// Order-insensitive; `hazard`, `realizations`, and `region` are
    /// optional; anything else — unknown keys, bare words, empty
    /// values — is an error naming the offender.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        for pair in s.split('&').filter(|p| !p.is_empty()) {
            let Some((key, _)) = pair.split_once('=') else {
                return Err(format!(
                    "malformed probe parameter '{pair}' (want key=value)"
                ));
            };
            if !matches!(
                key,
                "scenario" | "site" | "hazard" | "realizations" | "region"
            ) {
                return Err(format!(
                    "unknown probe parameter '{key}' \
                     (expected scenario, site, hazard, realizations, region)"
                ));
            }
        }
        let Some(scenario) = query_param(s, "scenario") else {
            return Err("probe needs scenario= (e.g. hurricane-intrusion-isolation)".into());
        };
        let scenario: ThreatScenario = scenario.parse().map_err(|e| format!("{e}"))?;
        let Some(site) = query_param(s, "site") else {
            return Err("probe needs site= (waiau | kahe)".into());
        };
        let site: SiteChoice = site.parse().map_err(|e| format!("{e}"))?;
        let hazard = match query_param(s, "hazard") {
            None => HazardSpec::default(),
            Some(h) => h.parse::<HazardSpec>().map_err(|e| format!("{e}"))?,
        };
        let realizations = match query_param(s, "realizations") {
            None => DEFAULT_PROBE_REALIZATIONS,
            Some(n) => n
                .parse::<usize>()
                .map_err(|_| "realizations= must be a positive integer".to_string())?,
        };
        let region = match query_param(s, "region") {
            None => RegionSpec::default(),
            Some(r) => r.parse::<RegionSpec>().map_err(|e| format!("{e}"))?,
        };
        Ok(ProbeQuery {
            scenario,
            site,
            hazard,
            realizations,
            region,
        })
    }
}

impl fmt::Display for ProbeQuery {
    /// The canonical fully-explicit query string; `FromStr` of this
    /// output always round-trips.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scenario={}&site={}&hazard={}&realizations={}&region={}",
            self.scenario.keyword(),
            self.site.keyword(),
            self.hazard.keyword(),
            self.realizations,
            self.region
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_with_defaults_and_round_trips() {
        let q: ProbeQuery = "scenario=compound&site=waiau".parse().unwrap();
        assert_eq!(q.scenario, ThreatScenario::HurricaneIntrusionIsolation);
        assert_eq!(q.site, SiteChoice::Waiau);
        assert_eq!(q.hazard, HazardSpec::default());
        assert_eq!(q.realizations, DEFAULT_PROBE_REALIZATIONS);
        assert_eq!(q.region, RegionSpec::Oahu);
        let reparsed: ProbeQuery = q.to_string().parse().unwrap();
        assert_eq!(q, reparsed);
        assert!(q.target().starts_with("/probe?scenario="));
    }

    #[test]
    fn order_is_insensitive() {
        let a: ProbeQuery = "realizations=12&site=kahe&scenario=hurricane&hazard=wind"
            .parse()
            .unwrap();
        let b: ProbeQuery = "scenario=hurricane&site=kahe&hazard=wind&realizations=12"
            .parse()
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn synthetic_region_round_trips() {
        let q: ProbeQuery = "scenario=compound&site=waiau&region=synth:7:3:24"
            .parse()
            .unwrap();
        assert_eq!(
            q.region,
            RegionSpec::Synth {
                seed: 7,
                regions: 3,
                assets: 24
            }
        );
        assert!(q.to_string().contains("&region=synth:7:3:24"));
        let reparsed: ProbeQuery = q.to_string().parse().unwrap();
        assert_eq!(q, reparsed);
    }

    #[test]
    fn rejections_are_loud_and_name_the_offender() {
        for (input, fragment) in [
            ("site=waiau", "scenario"),
            ("scenario=compound", "site"),
            ("scenario=florble&site=waiau", "florble"),
            ("scenario=compound&site=atlantis", "atlantis"),
            (
                "scenario=compound&site=waiau&hazard=earthquake",
                "earthquake",
            ),
            (
                "scenario=compound&site=waiau&realizations=lots",
                "positive integer",
            ),
            (
                "scenario=compound&site=waiau&florble=1",
                "unknown probe parameter 'florble'",
            ),
            ("scenario=compound&site=waiau&region=synth:bad", "region"),
            (
                "scenario=compound&site=waiau&florble",
                "malformed probe parameter 'florble'",
            ),
        ] {
            let err = input.parse::<ProbeQuery>().unwrap_err();
            assert!(
                err.contains(fragment),
                "input '{input}': error '{err}' should mention '{fragment}'"
            );
        }
    }
}
