//! Text renderers for figures and tables (no plotting dependencies:
//! the "figures" are probability tables plus ASCII bars).

use crate::figures::FigureData;
use crate::profile::OutcomeProfile;
use ct_hazard::HazardSpec;
use ct_threat::OperationalState;
use std::fmt::Write as _;

/// The caption suffix that marks a figure computed under a non-paper
/// hazard engine. Empty for surge, so the original figures render
/// byte-identically to the pre-hazard-engine pipeline.
fn hazard_label(data: &FigureData) -> String {
    match data.hazard {
        HazardSpec::Surge => String::new(),
        other => format!(" [hazard: {other}]"),
    }
}

/// Renders a figure as an aligned text table with one row per
/// architecture.
pub fn figure_table(data: &FigureData) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "{}: {}{}",
        data.figure,
        data.figure.caption(),
        hazard_label(data)
    )
    .expect("writing to String cannot fail");
    writeln!(
        out,
        "{:<8} {:>8} {:>8} {:>8} {:>8}",
        "config", "green", "orange", "red", "gray"
    )
    .expect("writing to String cannot fail");
    for (arch, p) in &data.rows {
        writeln!(
            out,
            "{:<8} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%",
            format!("\"{}\"", arch.label()),
            100.0 * p.green(),
            100.0 * p.orange(),
            100.0 * p.red(),
            100.0 * p.gray()
        )
        .expect("writing to String cannot fail");
    }
    out
}

/// Renders a figure as a Markdown table.
pub fn figure_markdown(data: &FigureData) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "**{} — {}{}**",
        data.figure,
        data.figure.caption(),
        hazard_label(data)
    )
    .expect("writing to String cannot fail");
    writeln!(out).expect("writing to String cannot fail");
    writeln!(out, "| config | green | orange | red | gray |")
        .expect("writing to String cannot fail");
    writeln!(out, "|---|---|---|---|---|").expect("writing to String cannot fail");
    for (arch, p) in &data.rows {
        writeln!(
            out,
            "| \"{}\" | {:.1}% | {:.1}% | {:.1}% | {:.1}% |",
            arch.label(),
            100.0 * p.green(),
            100.0 * p.orange(),
            100.0 * p.red(),
            100.0 * p.gray()
        )
        .expect("writing to String cannot fail");
    }
    out
}

/// Renders a figure as CSV (`figure,config,green,orange,red,gray`).
pub fn figure_csv(data: &FigureData) -> String {
    let mut out = String::from("figure,config,green,orange,red,gray\n");
    for (arch, p) in &data.rows {
        writeln!(
            out,
            "{},{},{:.4},{:.4},{:.4},{:.4}",
            data.figure.number(),
            arch.label(),
            p.green(),
            p.orange(),
            p.red(),
            p.gray()
        )
        .expect("writing to String cannot fail");
    }
    out
}

/// An ASCII stacked bar for one profile (40 characters wide):
/// `G` green, `O` orange, `R` red, `X` gray, `.` filler.
pub fn profile_bar(profile: &OutcomeProfile) -> String {
    const WIDTH: usize = 40;
    let mut bar = String::with_capacity(WIDTH);
    let segments = [
        (OperationalState::Green, 'G'),
        (OperationalState::Orange, 'O'),
        (OperationalState::Red, 'R'),
        (OperationalState::Gray, 'X'),
    ];
    for (state, ch) in segments {
        let n = (profile.fraction(state) * WIDTH as f64).round() as usize;
        for _ in 0..n {
            bar.push(ch);
        }
    }
    bar.truncate(WIDTH);
    while bar.len() < WIDTH {
        bar.push('.');
    }
    bar
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::Figure;
    use ct_scada::Architecture;
    use OperationalState::*;

    fn sample() -> FigureData {
        FigureData {
            figure: Figure::Fig6,
            hazard: HazardSpec::Surge,
            rows: vec![
                (
                    Architecture::C2,
                    OutcomeProfile::from_outcomes(std::iter::repeat_n(Green, 9).chain([Red])),
                ),
                (Architecture::C6P6P6, OutcomeProfile::from_outcomes([Green])),
            ],
        }
    }

    #[test]
    fn text_table_contains_rows_and_caption() {
        let t = figure_table(&sample());
        assert!(t.contains("Fig. 6"));
        assert!(t.contains("\"2\""));
        assert!(t.contains("90.0%"));
        assert!(t.contains("\"6+6+6\""));
    }

    #[test]
    fn only_non_surge_hazards_are_labelled() {
        // Surge renders exactly as the pre-hazard-engine pipeline did.
        assert!(!figure_table(&sample()).contains("[hazard:"));
        assert!(!figure_markdown(&sample()).contains("[hazard:"));
        let wind = FigureData {
            hazard: HazardSpec::Wind,
            ..sample()
        };
        assert!(figure_table(&wind).contains("[hazard: wind]"));
        assert!(figure_markdown(&wind).contains("[hazard: wind]"));
    }

    #[test]
    fn markdown_is_well_formed() {
        let md = figure_markdown(&sample());
        assert!(md.contains("| config |"));
        assert_eq!(md.matches('\n').count(), md.lines().count());
        assert!(md.contains("| \"2\" | 90.0% |"));
    }

    #[test]
    fn csv_has_numeric_fractions() {
        let csv = figure_csv(&sample());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "figure,config,green,orange,red,gray");
        assert!(lines[1].starts_with("6,2,0.9000,"));
    }

    #[test]
    fn bar_width_fixed_and_composition_sane() {
        let p = OutcomeProfile::from_outcomes(
            std::iter::repeat_n(Green, 20).chain(std::iter::repeat_n(Red, 20)),
        );
        let bar = profile_bar(&p);
        assert_eq!(bar.chars().count(), 40);
        assert_eq!(bar.matches('G').count(), 20);
        assert_eq!(bar.matches('R').count(), 20);
        // Empty profile is all filler.
        assert_eq!(profile_bar(&OutcomeProfile::new()), ".".repeat(40));
    }
}
