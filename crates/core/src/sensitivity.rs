//! Hazard-intensity sensitivity: the case study repeated across
//! Saffir-Simpson categories.
//!
//! The paper evaluates a single Category 2 scenario. This module
//! sweeps the storm category (all other ensemble parameters fixed) to
//! show how the architecture ranking and the siting advantage evolve
//! with hazard intensity — the robustness check a reviewer would ask
//! for.

use crate::error::CoreError;
use crate::parallel::par_map_dynamic;
use crate::pipeline::{CaseStudy, CaseStudyConfig};
use crate::profile::OutcomeProfile;
use ct_hydro::{Category, EnsembleConfig};
use ct_scada::{oahu::SiteChoice, Architecture};
use ct_threat::ThreatScenario;
use serde::{Deserialize, Serialize};

/// Case-study outcomes for one storm category.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CategoryPoint {
    /// Storm intensity class.
    pub category: Category,
    /// Honolulu control-center flood probability at this intensity.
    pub p_honolulu_flood: f64,
    /// `(architecture, profile)` under the evaluated scenario.
    pub rows: Vec<(Architecture, OutcomeProfile)>,
}

impl CategoryPoint {
    /// Profile for one architecture.
    pub fn profile(&self, architecture: Architecture) -> Option<&OutcomeProfile> {
        self.rows
            .iter()
            .find(|(a, _)| *a == architecture)
            .map(|(_, p)| p)
    }
}

/// Sweeps storm categories, rebuilding the hazard ensemble for each
/// and evaluating every architecture under `scenario`.
///
/// # Errors
///
/// Propagates pipeline errors.
pub fn category_sweep(
    base: &CaseStudyConfig,
    categories: &[Category],
    scenario: ThreatScenario,
    choice: SiteChoice,
) -> Result<Vec<CategoryPoint>, CoreError> {
    let _span = ct_obs::span("category_sweep");
    categories
        .iter()
        .map(|&category| {
            let config = CaseStudyConfig {
                ensemble: EnsembleConfig {
                    category,
                    ..base.ensemble.clone()
                },
                ..base.clone()
            };
            let study = CaseStudy::build(&config)?;
            let p_honolulu_flood = study.flood_probability(ct_scada::oahu::HONOLULU_CC)?;
            let rows = Architecture::ALL
                .iter()
                .map(|&arch| study.profile(arch, scenario, choice).map(|p| (arch, p)))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(CategoryPoint {
                category,
                p_honolulu_flood,
                rows,
            })
        })
        .collect()
}

/// Case-study outcomes for one flood threshold.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThresholdPoint {
    /// Asset-failure flood depth (m).
    pub threshold_m: f64,
    /// Honolulu control-center flood probability at this threshold.
    pub p_honolulu_flood: f64,
    /// `(architecture, profile)` under the evaluated scenario.
    pub rows: Vec<(Architecture, OutcomeProfile)>,
}

/// Sweeps the asset-failure flood threshold (the paper's 0.5 m switch
/// height), reusing the already-evaluated ensemble — only the
/// exceedance test changes, so this is cheap.
///
/// # Errors
///
/// Propagates pipeline errors and invalid thresholds.
pub fn threshold_sweep(
    study: &CaseStudy,
    thresholds_m: &[f64],
    scenario: ThreatScenario,
    choice: SiteChoice,
) -> Result<Vec<ThresholdPoint>, CoreError> {
    let _span = ct_obs::span("threshold_sweep");
    // Each threshold re-tests exceedance over the whole ensemble;
    // points are independent, so evaluate them work-stealing in
    // parallel (the category sweep stays serial because each of its
    // points already parallelises its own ensemble build).
    par_map_dynamic(thresholds_m, study.threads(), |&threshold_m| {
        let variant = study.with_flood_threshold(threshold_m)?;
        let p_honolulu_flood = variant.flood_probability(ct_scada::oahu::HONOLULU_CC)?;
        let rows = Architecture::ALL
            .iter()
            .map(|&arch| variant.profile(arch, scenario, choice).map(|p| (arch, p)))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ThresholdPoint {
            threshold_m,
            p_honolulu_flood,
            rows,
        })
    })
    .into_iter()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep() -> &'static [CategoryPoint] {
        use std::sync::OnceLock;
        static SWEEP: OnceLock<Vec<CategoryPoint>> = OnceLock::new();
        SWEEP.get_or_init(|| {
            category_sweep(
                &CaseStudyConfig::builder()
                    .realizations(200)
                    .build()
                    .unwrap(),
                &[Category::Cat1, Category::Cat2, Category::Cat4],
                ThreatScenario::Hurricane,
                SiteChoice::Waiau,
            )
            .unwrap()
        })
    }

    #[test]
    fn flood_probability_grows_with_intensity() {
        let points = sweep();
        assert_eq!(points.len(), 3);
        assert!(
            points[0].p_honolulu_flood <= points[1].p_honolulu_flood,
            "Cat1 {} vs Cat2 {}",
            points[0].p_honolulu_flood,
            points[1].p_honolulu_flood
        );
        assert!(
            points[1].p_honolulu_flood < points[2].p_honolulu_flood,
            "Cat2 {} vs Cat4 {}",
            points[1].p_honolulu_flood,
            points[2].p_honolulu_flood
        );
    }

    #[test]
    fn green_probability_shrinks_with_intensity() {
        let points = sweep();
        let g = |p: &CategoryPoint| p.profile(Architecture::C2).unwrap().green();
        assert!(g(&points[0]) >= g(&points[1]));
        assert!(g(&points[1]) > g(&points[2]));
    }

    #[test]
    fn threshold_sweep_is_monotone() {
        let study = CaseStudy::build(
            &CaseStudyConfig::builder()
                .realizations(200)
                .build()
                .unwrap(),
        )
        .unwrap();
        let points = threshold_sweep(
            &study,
            &[0.2, 0.5, 1.5],
            ThreatScenario::Hurricane,
            SiteChoice::Waiau,
        )
        .unwrap();
        assert_eq!(points.len(), 3);
        // A more forgiving (higher) threshold floods less often.
        assert!(points[0].p_honolulu_flood >= points[1].p_honolulu_flood);
        assert!(points[1].p_honolulu_flood >= points[2].p_honolulu_flood);
        // And the paper's 0.5 m point matches the study's baseline.
        let base = study
            .flood_probability(ct_scada::oahu::HONOLULU_CC)
            .unwrap();
        assert!((points[1].p_honolulu_flood - base).abs() < 1e-12);
    }

    #[test]
    fn correlation_structure_survives_intensity() {
        // At every intensity, all architectures still share the
        // hurricane-only profile with the Waiau backup (the paper's
        // Fig. 6 effect is not a Cat-2 artifact).
        for point in sweep() {
            let base = point.profile(Architecture::C2).unwrap();
            for arch in Architecture::ALL {
                assert!(
                    point.profile(arch).unwrap().approx_eq(base, 1e-9),
                    "{arch} diverges at {}",
                    point.category
                );
            }
        }
    }
}
