//! Expected-downtime metrics: turning operational-state profiles into
//! time-based availability figures.
//!
//! The paper's states are qualitative ("orange ... on the order of
//! minutes" of downtime; red until "components are repaired, or an
//! attack ends"). This module attaches durations to the states and
//! computes the expected unavailability of each architecture per
//! threat event — the quantity a deployment planner would trade off
//! against cost. Duration assumptions are explicit and sweepable.

use crate::error::CoreError;
use crate::pipeline::CaseStudy;
use crate::profile::OutcomeProfile;
use ct_scada::{oahu::SiteChoice, Architecture};
use ct_threat::{OperationalState, ThreatScenario};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Downtime attributed to each operational state, in hours per event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DowntimeModel {
    /// Cold-backup activation time (orange), hours. The paper says
    /// "on the order of minutes"; the default is conservative.
    pub orange_hours: f64,
    /// Time to repair flooded control sites or outlast an isolation
    /// attack (red), hours.
    pub red_hours: f64,
    /// Effective loss duration when safety is compromised (gray):
    /// intrusion detection + restoration + state validation, hours.
    /// Gray is typically *worse* than red — the system was actively
    /// wrong, not just absent.
    pub gray_hours: f64,
}

impl Default for DowntimeModel {
    fn default() -> Self {
        Self {
            orange_hours: 0.5,
            red_hours: 72.0,
            gray_hours: 120.0,
        }
    }
}

impl DowntimeModel {
    /// Hours of downtime attributed to one realization ending in
    /// `state`.
    pub fn hours_for(&self, state: OperationalState) -> f64 {
        match state {
            OperationalState::Green => 0.0,
            OperationalState::Orange => self.orange_hours,
            OperationalState::Red => self.red_hours,
            OperationalState::Gray => self.gray_hours,
        }
    }

    /// Expected downtime (hours per threat event) for a profile.
    pub fn expected_hours(&self, profile: &OutcomeProfile) -> f64 {
        OperationalState::ALL
            .iter()
            .map(|&s| profile.fraction(s) * self.hours_for(s))
            .sum()
    }
}

/// Expected downtime per architecture for one scenario/siting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DowntimeReport {
    /// The scenario evaluated.
    pub scenario: ThreatScenario,
    /// The backup siting evaluated.
    pub choice: SiteChoice,
    /// `(architecture, expected hours per event)` rows.
    pub rows: Vec<(Architecture, f64)>,
}

impl DowntimeReport {
    /// Expected hours for one architecture.
    pub fn hours(&self, architecture: Architecture) -> Option<f64> {
        self.rows
            .iter()
            .find(|(a, _)| *a == architecture)
            .map(|(_, h)| *h)
    }
}

impl fmt::Display for DowntimeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Expected downtime per event — {}:", self.scenario)?;
        for (arch, hours) in &self.rows {
            writeln!(
                f,
                "  {:<8} {:8.2} h",
                format!("\"{}\"", arch.label()),
                hours
            )?;
        }
        Ok(())
    }
}

/// Computes the expected downtime of every architecture under a
/// scenario, given a duration model.
///
/// # Errors
///
/// Propagates pipeline errors.
pub fn downtime_report(
    study: &CaseStudy,
    scenario: ThreatScenario,
    choice: SiteChoice,
    model: &DowntimeModel,
) -> Result<DowntimeReport, CoreError> {
    let rows = Architecture::ALL
        .iter()
        .map(|&arch| {
            study
                .profile(arch, scenario, choice)
                .map(|p| (arch, model.expected_hours(&p)))
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(DowntimeReport {
        scenario,
        choice,
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::CaseStudyConfig;
    use std::sync::OnceLock;

    fn study() -> &'static CaseStudy {
        static STUDY: OnceLock<CaseStudy> = OnceLock::new();
        STUDY.get_or_init(|| {
            CaseStudy::build(
                &CaseStudyConfig::builder()
                    .realizations(150)
                    .build()
                    .unwrap(),
            )
            .unwrap()
        })
    }

    #[test]
    fn duration_mapping() {
        let m = DowntimeModel::default();
        assert_eq!(m.hours_for(OperationalState::Green), 0.0);
        assert!(m.hours_for(OperationalState::Gray) > m.hours_for(OperationalState::Red));
        assert!(m.hours_for(OperationalState::Red) > m.hours_for(OperationalState::Orange));
    }

    #[test]
    fn expected_hours_linear_in_profile() {
        use OperationalState::*;
        let m = DowntimeModel::default();
        let p = OutcomeProfile::from_outcomes([Green, Red]);
        assert!((m.expected_hours(&p) - m.red_hours / 2.0).abs() < 1e-9);
        assert_eq!(
            m.expected_hours(&OutcomeProfile::from_outcomes([Green])),
            0.0
        );
    }

    #[test]
    fn stronger_architectures_have_less_downtime() {
        let m = DowntimeModel::default();
        let report = downtime_report(
            study(),
            ThreatScenario::HurricaneIntrusionIsolation,
            SiteChoice::Waiau,
            &m,
        )
        .unwrap();
        let h = |a| report.hours(a).unwrap();
        // The paper's severity ordering under the full compound
        // threat: 6+6+6 < 6-6 < 6 and the gray-prone industry configs
        // are worst of all.
        assert!(h(Architecture::C6P6P6) < h(Architecture::C6_6));
        assert!(h(Architecture::C6_6) < h(Architecture::C6));
        assert!(h(Architecture::C2) > h(Architecture::C6P6P6));
        assert!(h(Architecture::C2) >= h(Architecture::C6));
    }

    #[test]
    fn kahe_siting_reduces_downtime() {
        let m = DowntimeModel::default();
        let waiau =
            downtime_report(study(), ThreatScenario::Hurricane, SiteChoice::Waiau, &m).unwrap();
        let kahe =
            downtime_report(study(), ThreatScenario::Hurricane, SiteChoice::Kahe, &m).unwrap();
        for arch in [Architecture::C2_2, Architecture::C6_6, Architecture::C6P6P6] {
            assert!(
                kahe.hours(arch).unwrap() < waiau.hours(arch).unwrap(),
                "{arch} should benefit from the Kahe backup"
            );
        }
        // Single-site configs are indifferent to the backup siting.
        assert_eq!(kahe.hours(Architecture::C2), waiau.hours(Architecture::C2));
    }

    #[test]
    fn report_display_renders_all_rows() {
        let m = DowntimeModel::default();
        let report =
            downtime_report(study(), ThreatScenario::Hurricane, SiteChoice::Waiau, &m).unwrap();
        let text = report.to_string();
        for arch in Architecture::ALL {
            assert!(text.contains(arch.label()));
        }
    }
}
