//! Framework-level errors.

use std::fmt;

/// Errors surfaced by the analysis framework.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Hazard-model failure.
    Hydro(ct_hydro::HydroError),
    /// Topology / architecture failure.
    Scada(ct_scada::ScadaError),
    /// Geospatial failure.
    Geo(ct_geo::GeoError),
    /// Power-grid model failure.
    Grid(ct_grid::GridError),
    /// A requested asset id is unknown to the case study.
    UnknownAsset {
        /// The missing id.
        id: String,
    },
    /// A configuration value failed validation.
    InvalidConfig {
        /// The offending field (builder setter name).
        field: &'static str,
        /// Why the value was rejected.
        reason: String,
    },
    /// A report/figure renderer failed to format output.
    Render(std::fmt::Error),
    /// Artifact-store failure (I/O under the store root). Corrupt
    /// records never surface here — the store heals them internally.
    Store(ct_store::StoreError),
    /// Writing an output artifact (e.g. a `--metrics` snapshot)
    /// failed. The I/O error is stringified to keep `CoreError`
    /// cloneable and comparable.
    Io {
        /// Path of the artifact being written.
        path: String,
        /// The underlying I/O error message.
        message: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Hydro(e) => write!(f, "hazard model: {e}"),
            CoreError::Scada(e) => write!(f, "scada model: {e}"),
            CoreError::Geo(e) => write!(f, "geospatial: {e}"),
            CoreError::Grid(e) => write!(f, "power grid: {e}"),
            CoreError::UnknownAsset { id } => write!(f, "unknown asset id '{id}'"),
            CoreError::InvalidConfig { field, reason } => {
                write!(f, "invalid configuration: {field}: {reason}")
            }
            CoreError::Render(e) => write!(f, "report rendering: {e}"),
            CoreError::Store(e) => write!(f, "{e}"),
            CoreError::Io { path, message } => write!(f, "writing '{path}': {message}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Hydro(e) => Some(e),
            CoreError::Scada(e) => Some(e),
            CoreError::Geo(e) => Some(e),
            CoreError::Grid(e) => Some(e),
            CoreError::UnknownAsset { .. } => None,
            CoreError::InvalidConfig { .. } => None,
            CoreError::Render(e) => Some(e),
            CoreError::Store(e) => Some(e),
            CoreError::Io { .. } => None,
        }
    }
}

impl From<std::fmt::Error> for CoreError {
    fn from(e: std::fmt::Error) -> Self {
        CoreError::Render(e)
    }
}

impl From<ct_hydro::HydroError> for CoreError {
    fn from(e: ct_hydro::HydroError) -> Self {
        CoreError::Hydro(e)
    }
}

impl From<ct_scada::ScadaError> for CoreError {
    fn from(e: ct_scada::ScadaError) -> Self {
        CoreError::Scada(e)
    }
}

impl From<ct_geo::GeoError> for CoreError {
    fn from(e: ct_geo::GeoError) -> Self {
        CoreError::Geo(e)
    }
}

impl From<ct_grid::GridError> for CoreError {
    fn from(e: ct_grid::GridError) -> Self {
        CoreError::Grid(e)
    }
}

impl From<ct_store::StoreError> for CoreError {
    fn from(e: ct_store::StoreError) -> Self {
        CoreError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_and_sources() {
        let e = CoreError::from(ct_hydro::HydroError::EmptyEnsemble);
        assert!(!e.to_string().is_empty());
        assert!(e.source().is_some());
        let e = CoreError::UnknownAsset { id: "x".into() };
        assert!(e.source().is_none());
    }

    #[test]
    fn new_variants_display_their_context() {
        let e = CoreError::InvalidConfig {
            field: "realizations",
            reason: "must be at least 1".into(),
        };
        assert!(e.to_string().contains("realizations"));
        assert!(e.source().is_none());
        let e = CoreError::from(std::fmt::Error);
        assert!(e.to_string().contains("rendering"));
        assert!(e.source().is_some());
        let e = CoreError::Io {
            path: "/tmp/m.csv".into(),
            message: "denied".into(),
        };
        assert!(e.to_string().contains("/tmp/m.csv"));
    }
}
