//! Framework-level errors.

use std::fmt;

/// Errors surfaced by the analysis framework.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Hazard-model failure.
    Hydro(ct_hydro::HydroError),
    /// Topology / architecture failure.
    Scada(ct_scada::ScadaError),
    /// Geospatial failure.
    Geo(ct_geo::GeoError),
    /// Power-grid model failure.
    Grid(ct_grid::GridError),
    /// A requested asset id is unknown to the case study.
    UnknownAsset {
        /// The missing id.
        id: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Hydro(e) => write!(f, "hazard model: {e}"),
            CoreError::Scada(e) => write!(f, "scada model: {e}"),
            CoreError::Geo(e) => write!(f, "geospatial: {e}"),
            CoreError::Grid(e) => write!(f, "power grid: {e}"),
            CoreError::UnknownAsset { id } => write!(f, "unknown asset id '{id}'"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Hydro(e) => Some(e),
            CoreError::Scada(e) => Some(e),
            CoreError::Geo(e) => Some(e),
            CoreError::Grid(e) => Some(e),
            CoreError::UnknownAsset { .. } => None,
        }
    }
}

impl From<ct_hydro::HydroError> for CoreError {
    fn from(e: ct_hydro::HydroError) -> Self {
        CoreError::Hydro(e)
    }
}

impl From<ct_scada::ScadaError> for CoreError {
    fn from(e: ct_scada::ScadaError) -> Self {
        CoreError::Scada(e)
    }
}

impl From<ct_geo::GeoError> for CoreError {
    fn from(e: ct_geo::GeoError) -> Self {
        CoreError::Geo(e)
    }
}

impl From<ct_grid::GridError> for CoreError {
    fn from(e: ct_grid::GridError) -> Self {
        CoreError::Grid(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_and_sources() {
        let e = CoreError::from(ct_hydro::HydroError::EmptyEnsemble);
        assert!(!e.to_string().is_empty());
        assert!(e.source().is_some());
        let e = CoreError::UnknownAsset { id: "x".into() };
        assert!(e.source().is_none());
    }
}
