//! The analysis pipeline (Fig. 5), region-generic: the Oahu case
//! study is region 0 of a one-region portfolio, and seeded synthetic
//! multi-region portfolios (`--region synth:<seed>:<regions>:<assets>`)
//! run the exact same code paths — per-region terrain synthesis,
//! topology, hazard ensemble, and profiling.

use crate::artifact;
use crate::error::CoreError;
use crate::parallel::{default_threads, par_map, par_map_dynamic};
use crate::profile::OutcomeProfile;
use ct_geo::terrain::{synthesize_oahu, OahuTerrainConfig};
use ct_geo::{synthesize_region, Dem, RegionTerrainSpec};
use ct_hazard::{HazardModel, HazardSpec};
use ct_hydro::{
    EnsembleConfig, ParametricSurge, Poi, Realization, RealizationSet, Stations, SurgeCalibration,
    TrackEnsemble,
};
use ct_scada::{
    oahu, site_plan_for, Architecture, RegionDef, RegionSpec, SitePlan, SiteRoles, Topology,
};
use ct_store::{Digest, StoreBackend};
use ct_threat::{
    classify, post_disaster_histogram, post_disaster_states, Attacker, PostDisasterState,
    ThreatScenario, WorstCaseAttacker,
};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Cache key for a site plan: its architecture and ordered site ids.
type PlanKey = (Architecture, Vec<String>);
/// A shared flood-pattern histogram (distinct pattern, multiplicity).
type PlanHistogram = Arc<Vec<(PostDisasterState, usize)>>;

/// Configuration of a full case-study run.
///
/// Construct via [`CaseStudyConfig::builder`], which validates values
/// before they reach the pipeline; `Default` gives the paper's
/// canonical setup (Oahu, 1000 realizations, auto threads, 0.5 m flood
/// threshold).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CaseStudyConfig {
    /// Which portfolio the run analyses: the Oahu preset (default) or
    /// a seeded synthetic multi-region portfolio.
    #[serde(default)]
    pub region: RegionSpec,
    /// Terrain synthesis parameters (the Oahu preset's; synthetic
    /// regions derive their own specs from the region seed).
    pub terrain: OahuTerrainConfig,
    /// Hurricane ensemble parameters (1000 realizations by default,
    /// as in the paper). Synthetic regions re-anchor and re-seed a
    /// copy of this per region.
    pub ensemble: EnsembleConfig,
    /// Surge-model calibration.
    pub calibration: SurgeCalibration,
    /// Which hazard engine evaluates the ensemble (surge by default;
    /// `wind` and `compound` reuse the same storm tracks through
    /// other [`HazardModel`] implementations).
    #[serde(default)]
    pub hazard: HazardSpec,
    /// Worker threads for ensemble evaluation (0 = auto).
    pub threads: usize,
    /// Asset-failure flood threshold in metres; `None` keeps the
    /// paper's 0.5 m default ([`ct_hydro::FloodThreshold`]).
    pub flood_threshold_m: Option<f64>,
}

impl CaseStudyConfig {
    /// A fluent, validating builder for the configuration.
    ///
    /// ```
    /// use compound_threats::CaseStudyConfig;
    ///
    /// let config = CaseStudyConfig::builder()
    ///     .realizations(200)
    ///     .threads(4)
    ///     .flood_threshold_m(0.75)
    ///     .build()
    ///     .expect("valid config");
    /// assert_eq!(config.ensemble.realizations, 200);
    /// assert!(CaseStudyConfig::builder().realizations(0).build().is_err());
    /// ```
    pub fn builder() -> CaseStudyConfigBuilder {
        CaseStudyConfigBuilder::default()
    }
}

/// Builder for [`CaseStudyConfig`]; see [`CaseStudyConfig::builder`].
///
/// Setters are infallible; [`CaseStudyConfigBuilder::build`] performs
/// validation so errors carry the offending field and value.
#[derive(Debug, Clone, Default)]
pub struct CaseStudyConfigBuilder {
    config: CaseStudyConfig,
}

impl CaseStudyConfigBuilder {
    /// The portfolio to analyse (`oahu` or
    /// `synth:<seed>:<regions>:<assets>`; the grammar is validated by
    /// [`RegionSpec`]'s `FromStr`).
    #[must_use]
    pub fn region(mut self, region: RegionSpec) -> Self {
        self.config.region = region;
        self
    }

    /// Terrain synthesis parameters.
    #[must_use]
    pub fn terrain(mut self, terrain: OahuTerrainConfig) -> Self {
        self.config.terrain = terrain;
        self
    }

    /// Full hurricane-ensemble parameters (see also
    /// [`CaseStudyConfigBuilder::realizations`] for the common case).
    #[must_use]
    pub fn ensemble(mut self, ensemble: EnsembleConfig) -> Self {
        self.config.ensemble = ensemble;
        self
    }

    /// Number of hurricane realizations per region (must be ≥ 1).
    #[must_use]
    pub fn realizations(mut self, n: usize) -> Self {
        self.config.ensemble.realizations = n;
        self
    }

    /// Ensemble RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.ensemble.seed = seed;
        self
    }

    /// Surge-model calibration.
    #[must_use]
    pub fn calibration(mut self, calibration: SurgeCalibration) -> Self {
        self.config.calibration = calibration;
        self
    }

    /// Hazard engine for the ensemble (`surge` | `wind` | `compound`).
    #[must_use]
    pub fn hazard(mut self, hazard: HazardSpec) -> Self {
        self.config.hazard = hazard;
        self
    }

    /// Worker threads for ensemble evaluation (0 = auto).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Asset-failure flood threshold in metres (must be finite and
    /// non-negative; the paper assumes 0.5 m switch height).
    #[must_use]
    pub fn flood_threshold_m(mut self, depth_m: f64) -> Self {
        self.config.flood_threshold_m = Some(depth_m);
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] when the ensemble is empty or the
    /// flood threshold is negative or non-finite.
    pub fn build(self) -> Result<CaseStudyConfig, CoreError> {
        if self.config.ensemble.realizations == 0 {
            return Err(CoreError::InvalidConfig {
                field: "realizations",
                reason: "ensemble must contain at least 1 realization".into(),
            });
        }
        if let Some(depth_m) = self.config.flood_threshold_m {
            if !depth_m.is_finite() || depth_m < 0.0 {
                return Err(CoreError::InvalidConfig {
                    field: "flood_threshold_m",
                    reason: format!("must be finite and non-negative, got {depth_m}"),
                });
            }
        }
        Ok(self.config)
    }
}

/// One slice of a sharded ensemble run: this process owns global work
/// item `g` iff `g % count == index`, where
/// `g = region × realizations + realization` flattens the portfolio's
/// per-region ensembles into a single sequence. Interleaving (rather
/// than contiguous ranges) keeps
/// shard workloads balanced when storm cost drifts with the sampled
/// track distribution, and for a one-region portfolio `g` *is* the
/// realization index, so single-region shard layouts are unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    index: usize,
    count: usize,
}

impl ShardSpec {
    /// A shard `index` out of `count`.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] when `count` is zero or `index`
    /// is out of range.
    pub fn new(index: usize, count: usize) -> Result<Self, CoreError> {
        if count == 0 {
            return Err(CoreError::InvalidConfig {
                field: "shards",
                reason: "shard count must be at least 1".into(),
            });
        }
        if index >= count {
            return Err(CoreError::InvalidConfig {
                field: "shard",
                reason: format!("shard index {index} out of range for {count} shard(s)"),
            });
        }
        Ok(Self { index, count })
    }

    /// This shard's index.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Total number of shards.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Whether global work item `i` belongs to this shard.
    pub fn owns(&self, i: usize) -> bool {
        i % self.count == self.index
    }
}

/// What a shard run did: how many of its records were computed fresh
/// versus reused from the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardReport {
    /// Realizations evaluated in this process.
    pub computed: usize,
    /// Realizations loaded from the artifact store.
    pub reused: usize,
    /// Realizations owned by the shard (`computed + reused`).
    pub total: usize,
}

/// Store handle plus the run's per-region base content addresses;
/// carried by a store-backed [`CaseStudy`] so plan histograms can be
/// cached on disk too. The handle is whatever [`StoreBackend`] the
/// study was built through — local or remote — retained via
/// [`StoreBackend::clone_handle`].
#[derive(Debug, Clone)]
struct StoreContext {
    store: Arc<dyn StoreBackend>,
    bases: Vec<Digest>,
}

/// One fully-evaluated region of a portfolio: its terrain, topology,
/// control-siting roles, the (possibly re-anchored) ensemble it was
/// evaluated under, and the realization set.
#[derive(Debug, Clone)]
pub struct RegionStudy {
    index: usize,
    name: String,
    roles: SiteRoles,
    ensemble: EnsembleConfig,
    dem: Dem,
    topology: Topology,
    set: RealizationSet,
}

impl RegionStudy {
    /// Region index within the portfolio.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Region name (`oahu`, or `synth<seed>-r<i>`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Control-siting roles within the region's topology.
    pub fn roles(&self) -> &SiteRoles {
        &self.roles
    }

    /// The ensemble this region was evaluated under (the config's for
    /// Oahu; re-anchored and re-seeded for synthetic regions).
    pub fn ensemble(&self) -> &EnsembleConfig {
        &self.ensemble
    }

    /// The region's synthetic terrain.
    pub fn dem(&self) -> &Dem {
        &self.dem
    }

    /// The region's power-asset topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The region's evaluated hazard ensemble.
    pub fn realizations(&self) -> &RealizationSet {
        &self.set
    }
}

/// A fully-prepared case study: per-region terrain, topology, and
/// hazard ensembles, ready to evaluate architectures under threat
/// scenarios. Region 0 is the *primary* region; the legacy
/// single-region accessors ([`CaseStudy::dem`], [`CaseStudy::topology`],
/// [`CaseStudy::realizations`], [`CaseStudy::profile`]) delegate to it,
/// so Oahu-era callers are untouched.
#[derive(Debug)]
pub struct CaseStudy {
    config: CaseStudyConfig,
    regions: Vec<RegionStudy>,
    /// Memoized flood-pattern histograms per (region, site plan). A
    /// plan's histogram is scenario-independent, so one entry serves
    /// every threat scenario and repeated figure/sweep evaluations.
    histograms: Mutex<HashMap<(usize, PlanKey), PlanHistogram>>,
    /// Present when the study was built through an artifact store.
    store: Option<StoreContext>,
}

impl Clone for CaseStudy {
    fn clone(&self) -> Self {
        // Cached histograms depend on the sets' flood threshold, and a
        // clone is exactly the mutation point for
        // `with_flood_threshold` — so a clone starts with an empty
        // cache rather than inheriting entries that may go stale. The
        // store context survives: histogram keys pin the threshold, so
        // disk entries cannot be confused across thresholds.
        Self {
            config: self.config.clone(),
            regions: self.regions.clone(),
            histograms: Mutex::new(HashMap::new()),
            store: self.store.clone(),
        }
    }
}

/// The prepared (pre-evaluation) inputs of one region: everything that
/// is cheap and deterministic, shared by full builds and shard runs.
struct PreparedRegion {
    def: RegionDef,
    dem: Dem,
    pois: Vec<Poi>,
    hazard: Box<dyn HazardModel>,
    /// The hazard's stable id, computed once (it tags every store
    /// record and the region base key).
    hazard_id: String,
    /// The effective ensemble for this region (see
    /// [`region_ensemble`]).
    ensemble: EnsembleConfig,
    storms: Vec<ct_hydro::StormParams>,
}

/// All regions of the portfolio, prepared.
struct Prepared {
    regions: Vec<PreparedRegion>,
    threads: usize,
}

/// The effective ensemble for region `r`: the Oahu preset keeps the
/// config's ensemble untouched (bit-identity with the single-region
/// pipeline), while synthetic regions re-anchor the planner track to
/// their own origin — the same 0.10° west/south offsets Oahu's
/// defaults encode relative to its origin — and decorrelate the storm
/// draws by offsetting the seed with the region index.
fn region_ensemble(config: &CaseStudyConfig, spec: &RegionTerrainSpec, r: usize) -> EnsembleConfig {
    if !config.region.is_synthetic() {
        return config.ensemble.clone();
    }
    let mut e = config.ensemble.clone();
    e.seed = e.seed.wrapping_add(r as u64);
    e.base_passing_lon = spec.origin.lon - 0.10;
    e.anchor_lat = spec.origin.lat - 0.10;
    e
}

impl Prepared {
    /// Synthesizes every region's terrain (in parallel — synthesis
    /// dominates preparation), derives topologies and POIs,
    /// instantiates the configured hazard engine per region, and
    /// samples each region's storm ensemble. Opens `terrain`,
    /// `topology`, and `ensemble_generate` spans under the caller's
    /// current span; worker threads open none (see the `ct-obs`
    /// determinism contract).
    fn new(config: &CaseStudyConfig) -> Result<Self, CoreError> {
        let spec = &config.region;
        let terrain_specs = spec.terrain_specs(&config.terrain);
        ct_obs::add(ct_obs::names::PORTFOLIO_REGIONS, terrain_specs.len() as u64);
        let threads = if config.threads == 0 {
            default_threads()
        } else {
            config.threads
        };
        ct_obs::gauge(ct_obs::names::BUILD_THREADS, threads as f64);
        let dems: Vec<Dem> = {
            let _s = ct_obs::span("terrain");
            if spec.is_synthetic() {
                par_map(&terrain_specs, threads, synthesize_region)
                    .into_iter()
                    .collect::<Result<Vec<_>, _>>()?
            } else {
                vec![synthesize_oahu(&config.terrain)]
            }
        };
        let mut regions = Vec::with_capacity(dems.len());
        {
            let _s = ct_obs::span("topology");
            for (r, dem) in dems.into_iter().enumerate() {
                let def = spec.region_def(r, &dem)?;
                // Oahu keeps its bespoke POI derivation (station
                // overrides for harbor-side assets); synthetic regions
                // derive POIs directly from their topology, and their
                // surge stations from their own coastline extremes.
                let (pois, hazard) = if spec.is_synthetic() {
                    let pois = def.topology.to_pois(&dem)?;
                    let hazard = config.hazard.build_model_with_stations(
                        &dem,
                        Stations::cardinal_from_dem(&dem),
                        config.calibration,
                    );
                    (pois, hazard)
                } else {
                    let pois = oahu::case_study_pois(&dem)?;
                    let hazard = config.hazard.build_model(&dem, config.calibration);
                    (pois, hazard)
                };
                let hazard_id = hazard.hazard_id();
                let ensemble = region_ensemble(config, &terrain_specs[r], r);
                regions.push(PreparedRegion {
                    def,
                    dem,
                    pois,
                    hazard,
                    hazard_id,
                    ensemble,
                    storms: Vec::new(),
                });
            }
        }
        {
            let _s = ct_obs::span("ensemble_generate");
            for pr in &mut regions {
                pr.storms = TrackEnsemble::new(pr.ensemble.clone())?.generate();
            }
        }
        Ok(Self { regions, threads })
    }

    /// Per-region base content addresses, in region order.
    fn region_bases(&self, config: &CaseStudyConfig) -> Vec<Digest> {
        self.regions
            .iter()
            .map(|pr| {
                artifact::region_base_key(
                    config,
                    &pr.ensemble,
                    &pr.dem,
                    &pr.pois,
                    pr.hazard.as_ref(),
                    pr.def.index,
                )
            })
            .collect()
    }
}

/// Evaluates (or loads) one realization. With a store, the record is
/// looked up first; a hit that decodes cleanly is returned bit-exactly
/// as written. A record that passed the frame checksum but fails the
/// payload codec is invalidated and recomputed, so the cache can only
/// ever *degrade to recompute*, never corrupt a result.
///
/// Store *I/O* failure degrades the same way: a failed read computes
/// fresh, a failed write-back is dropped, each counted as
/// `store.degraded` — the realization itself is always produced, so a
/// flaky disk can cost time but never a run. Runs on worker threads —
/// no spans here (see `ct-obs` determinism contract).
fn evaluate_one(
    index: usize,
    storm: &ct_hydro::StormParams,
    hazard: &dyn HazardModel,
    hazard_id: &str,
    pois: &[Poi],
    store: Option<(&dyn StoreBackend, &Digest)>,
    reused: &AtomicUsize,
) -> Result<Realization, CoreError> {
    let key = store.map(|(_, base)| artifact::realization_key(base, index));
    if let (Some((store, _)), Some(key)) = (store, &key) {
        match store.get(key) {
            Ok(Some(bytes)) => match artifact::decode_realization(&bytes, pois.len(), hazard_id) {
                Some(r) => {
                    reused.fetch_add(1, Ordering::Relaxed);
                    return Ok(r);
                }
                None => {
                    if store.invalidate(key).is_err() {
                        store.note_degraded();
                    }
                }
            },
            Ok(None) => {}
            Err(_) => store.note_degraded(),
        }
    }
    let r = hazard.evaluate(index, storm, pois)?;
    ct_obs::add(ct_obs::names::HAZARD_REALIZATIONS_EVALUATED, 1);
    ct_obs::add(ct_obs::names::HAZARD_ASSET_EXPOSURES, pois.len() as u64);
    if let (Some((store, _)), Some(key)) = (store, &key) {
        if store
            .put(key, &artifact::encode_realization(&r, hazard_id))
            .is_err()
        {
            store.note_degraded();
        }
    }
    Ok(r)
}

/// Evaluates the given `(region, realization)` tasks in parallel under
/// a `hazard_evaluate` span, returning realizations in input order.
/// One work-stealing pool serves the whole portfolio — regions are
/// *not* barriers, so a region with cheap storms cannot strand workers
/// while another region is still busy.
fn evaluate_tasks(
    prepared: &Prepared,
    tasks: &[(usize, usize)],
    store: Option<&dyn StoreBackend>,
    bases: Option<&[Digest]>,
    reused: &AtomicUsize,
) -> Result<Vec<Realization>, CoreError> {
    // Dynamic scheduling: storm cost varies with track/intensity,
    // so work-stealing keeps all workers busy to the end. Workers
    // attribute their per-item busy time to the evaluation span as
    // its CPU proxy; spans themselves stay on this thread so the
    // span tree is identical for every thread count.
    let eval_span = ct_obs::span("hazard_evaluate");
    let busy_ns = AtomicU64::new(0);
    let realizations = par_map_dynamic(tasks, prepared.threads, |&(r, i)| {
        let started = std::time::Instant::now();
        let pr = &prepared.regions[r];
        let store_ctx = match (store, bases) {
            (Some(s), Some(b)) => Some((s, &b[r])),
            _ => None,
        };
        let out = evaluate_one(
            i,
            &pr.storms[i],
            pr.hazard.as_ref(),
            &pr.hazard_id,
            &pr.pois,
            store_ctx,
            reused,
        );
        busy_ns.fetch_add(
            u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
            Ordering::Relaxed,
        );
        out
    })
    .into_iter()
    .collect::<Result<Vec<_>, _>>()?;
    eval_span.add_cpu_ns(busy_ns.into_inner());
    Ok(realizations)
}

/// All `(region, realization)` tasks of a portfolio run, in global
/// order: `g = region × realizations + realization`.
fn portfolio_tasks(regions: usize, realizations: usize) -> Vec<(usize, usize)> {
    (0..regions)
        .flat_map(|r| (0..realizations).map(move |i| (r, i)))
        .collect()
}

/// Evaluates only this shard's slice of the portfolio ensemble,
/// writing each record to `store`. Records already present (from an
/// earlier run or an interrupted one) are skipped, which is what makes
/// a shard run resumable after `kill -9`: re-running the same shard
/// recomputes only the records the crash lost.
///
/// # Errors
///
/// Propagates terrain/hazard errors. Store I/O failures degrade to
/// compute-without-cache (`store.degraded`) and never fail the shard;
/// a record whose write-back was dropped is simply recomputed by the
/// merge.
pub fn run_shard(
    config: &CaseStudyConfig,
    store: &dyn StoreBackend,
    shard: ShardSpec,
) -> Result<ShardReport, CoreError> {
    let shard_span = ct_obs::span("shard_run");
    let prepared = Prepared::new(config)?;
    let bases = prepared.region_bases(config);
    let n = config.ensemble.realizations;
    let owned: Vec<(usize, usize)> = portfolio_tasks(prepared.regions.len(), n)
        .into_iter()
        .filter(|&(r, i)| shard.owns(r * n + i))
        .collect();
    let total = owned.len();
    let reused = AtomicUsize::new(0);
    evaluate_tasks(&prepared, &owned, Some(store), Some(&bases), &reused)?;
    drop(shard_span);
    let reused = reused.into_inner();
    Ok(ShardReport {
        computed: total - reused,
        reused,
        total,
    })
}

impl CaseStudy {
    /// Synthesizes every region's terrain, builds its topology, and
    /// evaluates its hurricane ensemble at every asset (in parallel
    /// across the whole portfolio).
    ///
    /// # Errors
    ///
    /// Propagates terrain/hazard errors (e.g. an asset outside the
    /// DEM).
    pub fn build(config: &CaseStudyConfig) -> Result<Self, CoreError> {
        Self::build_with_store(config, None)
    }

    /// [`CaseStudy::build`] through an artifact store: each
    /// realization already present in the store is loaded bit-exactly
    /// instead of recomputed, and anything computed fresh is written
    /// back. The resulting study is identical to a storeless build
    /// (asserted by tests); only the work performed differs — and that
    /// guarantee survives a failing store, because every store error
    /// degrades to compute-without-cache (`store.degraded`) instead of
    /// surfacing.
    ///
    /// # Errors
    ///
    /// Propagates terrain/hazard errors; store I/O failures never
    /// abort a build.
    pub fn build_with_store(
        config: &CaseStudyConfig,
        store: Option<&dyn StoreBackend>,
    ) -> Result<Self, CoreError> {
        let build_span = ct_obs::span("build");
        let prepared = Prepared::new(config)?;
        let bases = store.map(|_| prepared.region_bases(config));
        let n = config.ensemble.realizations;
        let tasks = portfolio_tasks(prepared.regions.len(), n);
        let reused = AtomicUsize::new(0);
        let realizations = evaluate_tasks(&prepared, &tasks, store, bases.as_deref(), &reused)?;
        let mut stream = realizations.into_iter();
        let mut regions = Vec::with_capacity(prepared.regions.len());
        for pr in prepared.regions {
            // The evaluation stream is region-major, so each region's
            // slice is the next `n` items in order.
            let rs: Vec<Realization> = stream.by_ref().take(n).collect();
            let mut set = RealizationSet::from_parts(pr.pois, rs);
            if let Some(depth_m) = config.flood_threshold_m {
                set.set_threshold(ct_hydro::FloodThreshold::new(depth_m)?);
            }
            regions.push(RegionStudy {
                index: pr.def.index,
                name: pr.def.name,
                roles: pr.def.roles,
                ensemble: pr.ensemble,
                dem: pr.dem,
                topology: pr.def.topology,
                set,
            });
        }
        drop(build_span);
        Ok(Self {
            config: config.clone(),
            regions,
            histograms: Mutex::new(HashMap::new()),
            store: match (store, bases) {
                (Some(s), Some(b)) => Some(StoreContext {
                    store: s.clone_handle(),
                    bases: b,
                }),
                _ => None,
            },
        })
    }

    /// The pre-refactor, hard-wired surge pipeline, retained verbatim
    /// as ground truth: Oahu terrain → POIs → [`ParametricSurge`] →
    /// [`RealizationSet::evaluate_storm`] per sampled storm, with no
    /// [`HazardModel`] indirection, no portfolio abstraction, and no
    /// store. The `hazard_engine` equivalence tests pin
    /// [`CaseStudy::build`] (with the default surge spec and Oahu
    /// region) bit-identical to this path; `config.hazard` and
    /// `config.region` are ignored here by construction.
    ///
    /// # Errors
    ///
    /// Propagates terrain/hazard errors.
    pub fn build_reference_surge(config: &CaseStudyConfig) -> Result<Self, CoreError> {
        let topology = oahu::topology();
        let dem = synthesize_oahu(&config.terrain);
        let pois = oahu::case_study_pois(&dem)?;
        let model = ParametricSurge::new(Stations::from_dem(&dem), config.calibration);
        let storms = TrackEnsemble::new(config.ensemble.clone())?.generate();
        let threads = if config.threads == 0 {
            default_threads()
        } else {
            config.threads
        };
        let indexed: Vec<(usize, ct_hydro::StormParams)> = storms.into_iter().enumerate().collect();
        let realizations = par_map_dynamic(&indexed, threads, |(i, storm)| {
            RealizationSet::evaluate_storm(*i, storm, &model, &pois)
        })
        .into_iter()
        .collect::<Result<Vec<_>, _>>()?;
        let mut set = RealizationSet::from_parts(pois, realizations);
        if let Some(depth_m) = config.flood_threshold_m {
            set.set_threshold(ct_hydro::FloodThreshold::new(depth_m)?);
        }
        Ok(Self {
            config: config.clone(),
            regions: vec![RegionStudy {
                index: 0,
                name: "oahu".to_string(),
                roles: ct_scada::oahu_roles(),
                ensemble: config.ensemble.clone(),
                dem,
                topology,
                set,
            }],
            histograms: Mutex::new(HashMap::new()),
            store: None,
        })
    }

    /// Merges a sharded run: builds the full study through `store`,
    /// loading every record the shards produced and computing any that
    /// are missing (e.g. a shard that never ran or was interrupted).
    /// The result is bit-identical to a clean single-process
    /// [`CaseStudy::build`] — even when the store misbehaves, since
    /// store failures degrade to recompute rather than abort.
    ///
    /// # Errors
    ///
    /// Propagates terrain/hazard errors; store I/O failures never
    /// abort a merge.
    pub fn merge_from_store(
        config: &CaseStudyConfig,
        store: &dyn StoreBackend,
    ) -> Result<Self, CoreError> {
        let _s = ct_obs::span("merge");
        Self::build_with_store(config, Some(store))
    }

    /// The configuration the study was built from.
    pub fn config(&self) -> &CaseStudyConfig {
        &self.config
    }

    /// The hazard engine the ensembles were evaluated with.
    pub fn hazard(&self) -> HazardSpec {
        self.config.hazard
    }

    /// Effective worker-thread count for parallel sweeps over this
    /// study (resolves the config's `0 = auto`).
    pub fn threads(&self) -> usize {
        if self.config.threads == 0 {
            default_threads()
        } else {
            self.config.threads
        }
    }

    /// Number of regions in the portfolio (≥ 1).
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// All regions, in portfolio order.
    pub fn regions(&self) -> &[RegionStudy] {
        &self.regions
    }

    /// One region of the portfolio.
    ///
    /// # Panics
    ///
    /// Panics when `index ≥ region_count()`; use
    /// [`CaseStudy::regions`] for fallible iteration.
    pub fn region(&self, index: usize) -> &RegionStudy {
        &self.regions[index]
    }

    /// The primary (region 0) terrain.
    pub fn dem(&self) -> &Dem {
        &self.regions[0].dem
    }

    /// The primary (region 0) topology.
    pub fn topology(&self) -> &Topology {
        &self.regions[0].topology
    }

    /// The primary (region 0) evaluated hazard ensemble.
    pub fn realizations(&self) -> &RealizationSet {
        &self.regions[0].set
    }

    /// Outcome profile of an architecture under a scenario with the
    /// primary region's control-site plan for `choice` (on Oahu this
    /// is exactly the paper's siting).
    ///
    /// # Errors
    ///
    /// Propagates site-plan errors.
    pub fn profile(
        &self,
        architecture: Architecture,
        scenario: ThreatScenario,
        choice: oahu::SiteChoice,
    ) -> Result<OutcomeProfile, CoreError> {
        self.profile_region(0, architecture, scenario, choice)
    }

    /// [`CaseStudy::profile`] for one region of the portfolio: the
    /// site plan is built from the region's own control roles
    /// (`choice` selects its central vs remote backup, mirroring the
    /// paper's Waiau/Kahe distinction).
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] for an out-of-range region;
    /// propagates site-plan errors.
    pub fn profile_region(
        &self,
        region: usize,
        architecture: Architecture,
        scenario: ThreatScenario,
        choice: oahu::SiteChoice,
    ) -> Result<OutcomeProfile, CoreError> {
        let r = self
            .regions
            .get(region)
            .ok_or_else(|| CoreError::InvalidConfig {
                field: "region",
                reason: format!(
                    "region index {region} out of range for {} region(s)",
                    self.regions.len()
                ),
            })?;
        let plan = site_plan_for(&r.topology, &r.roles, architecture, choice)?;
        self.profile_with_plan_in(region, &plan, scenario)
    }

    /// Outcome profile for an arbitrary site plan over the primary
    /// region: applies each hurricane realization, then the worst-case
    /// attacker, then Table I.
    ///
    /// The attacker and classification are deterministic functions of
    /// the post-disaster flood pattern, so they are evaluated once per
    /// *distinct* pattern (at most eight for three sites) and weighted
    /// by the pattern's multiplicity; the histogram itself is memoized
    /// per plan. Produces exactly the same profile as
    /// [`CaseStudy::profile_with_plan_naive`] (asserted by tests).
    ///
    /// # Errors
    ///
    /// Returns an error when the plan references assets missing from
    /// the ensemble's POI set.
    pub fn profile_with_plan(
        &self,
        plan: &SitePlan,
        scenario: ThreatScenario,
    ) -> Result<OutcomeProfile, CoreError> {
        self.profile_with_plan_in(0, plan, scenario)
    }

    /// [`CaseStudy::profile_with_plan`] against one region's ensemble.
    ///
    /// # Errors
    ///
    /// Returns an error when the plan references assets missing from
    /// the region's POI set.
    pub fn profile_with_plan_in(
        &self,
        region: usize,
        plan: &SitePlan,
        scenario: ThreatScenario,
    ) -> Result<OutcomeProfile, CoreError> {
        ct_obs::add(ct_obs::names::PROFILE_PLANS_EVALUATED, 1);
        let hist = self.plan_histogram(region, plan)?;
        let budget = scenario.budget();
        let arch = plan.architecture();
        let attacker = WorstCaseAttacker;
        let mut profile = OutcomeProfile::new();
        for (post, n) in hist.iter() {
            profile.record_n(classify(&attacker.attack(arch, post, budget)), *n);
        }
        Ok(profile)
    }

    /// The pre-memoization profiling path: attacker and classification
    /// run once per realization instead of once per distinct flood
    /// pattern (primary region). Kept as ground truth for the
    /// equivalence tests and the profiling benchmark.
    ///
    /// # Errors
    ///
    /// Returns an error when the plan references assets missing from
    /// the ensemble's POI set.
    pub fn profile_with_plan_naive(
        &self,
        plan: &SitePlan,
        scenario: ThreatScenario,
    ) -> Result<OutcomeProfile, CoreError> {
        let posts = post_disaster_states(plan, &self.regions[0].set)?;
        let budget = scenario.budget();
        let arch = plan.architecture();
        let attacker = WorstCaseAttacker;
        Ok(OutcomeProfile::from_outcomes(posts.iter().map(|post| {
            classify(&attacker.attack(arch, post, budget))
        })))
    }

    /// Per-region outcome summary of the whole portfolio as CSV
    /// (`region,name,assets,architecture,scenario,green,orange,red,gray`):
    /// every architecture under the compound hurricane-plus-intrusion
    /// scenario with each region's central-backup siting.
    ///
    /// # Errors
    ///
    /// Propagates site-plan/profiling errors.
    pub fn portfolio_summary(&self) -> Result<String, CoreError> {
        let scenario = ThreatScenario::HurricaneIntrusion;
        let mut out =
            String::from("region,name,assets,architecture,scenario,green,orange,red,gray\n");
        for (r, region) in self.regions.iter().enumerate() {
            for arch in Architecture::ALL {
                let p = self.profile_region(r, arch, scenario, oahu::SiteChoice::Waiau)?;
                out.push_str(&format!(
                    "{r},{name},{assets},{arch},{scenario},{:.6},{:.6},{:.6},{:.6}\n",
                    p.green(),
                    p.orange(),
                    p.red(),
                    p.gray(),
                    name = region.name,
                    assets = region.topology.assets().len(),
                ));
            }
        }
        Ok(out)
    }

    /// The plan's flood-pattern histogram for one region, computed on
    /// first use and cached. Concurrent first calls may compute it
    /// redundantly; the first insert wins and the result is identical
    /// either way.
    ///
    /// Store-backed studies check the artifact store between the
    /// in-memory cache and a fresh computation; the disk key pins the
    /// region's base address, the ensemble size, and the flood
    /// threshold, so a histogram can never leak across thresholds or
    /// regions.
    fn plan_histogram(&self, region: usize, plan: &SitePlan) -> Result<PlanHistogram, CoreError> {
        let key = (
            region,
            (plan.architecture(), plan.site_asset_ids().to_vec()),
        );
        if let Some(hist) = self
            .histograms
            .lock()
            .expect("histogram cache lock")
            .get(&key)
        {
            ct_obs::add(ct_obs::names::PROFILE_PATTERN_CACHE_HITS, 1);
            return Ok(Arc::clone(hist));
        }
        let hist = Arc::new(self.load_or_compute_histogram(region, plan)?);
        let mut cache = self.histograms.lock().expect("histogram cache lock");
        // A miss is counted only for the winning insert, so hit+miss
        // totals stay deterministic even when concurrent first calls
        // compute the same histogram redundantly.
        match cache.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                ct_obs::add(ct_obs::names::PROFILE_PATTERN_CACHE_HITS, 1);
                Ok(Arc::clone(e.get()))
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                ct_obs::add(ct_obs::names::PROFILE_PATTERN_CACHE_MISSES, 1);
                ct_obs::histogram(
                    ct_obs::names::PROFILE_PATTERNS_PER_PLAN,
                    &ct_obs::names::PROFILE_PATTERNS_PER_PLAN_BOUNDS,
                )
                .observe(hist.len() as f64);
                Ok(Arc::clone(e.insert(hist)))
            }
        }
    }

    /// The disk-or-compute half of [`CaseStudy::plan_histogram`]: a
    /// store-backed study tries its artifact store first; a valid
    /// record is returned as written, an undecodable one is
    /// invalidated and recomputed, and fresh computations are written
    /// back for the next process. Store I/O failure degrades to the
    /// fresh computation (counted as `store.degraded`), never aborts.
    fn load_or_compute_histogram(
        &self,
        region: usize,
        plan: &SitePlan,
    ) -> Result<Vec<(PostDisasterState, usize)>, CoreError> {
        let set = &self.regions[region].set;
        let disk_key = self.store.as_ref().map(|ctx| {
            artifact::plan_histogram_key(
                &ctx.bases[region],
                set.len(),
                set.threshold().depth_m(),
                plan,
            )
        });
        if let (Some(ctx), Some(key)) = (&self.store, &disk_key) {
            match ctx.store.get(key) {
                Ok(Some(bytes)) => match artifact::decode_histogram(&bytes, plan.architecture()) {
                    Some(hist) => return Ok(hist),
                    None => {
                        if ctx.store.invalidate(key).is_err() {
                            ctx.store.note_degraded();
                        }
                    }
                },
                Ok(None) => {}
                Err(_) => ctx.store.note_degraded(),
            }
        }
        let hist = post_disaster_histogram(plan, set)?;
        if let (Some(ctx), Some(key)) = (&self.store, &disk_key) {
            if ctx
                .store
                .put(key, &artifact::encode_histogram(&hist))
                .is_err()
            {
                ctx.store.note_degraded();
            }
        }
        Ok(hist)
    }

    /// A copy of this study with a different asset-failure flood
    /// threshold applied to every region (the paper assumes 0.5 m
    /// switch height; this enables sensitivity analysis of that
    /// assumption).
    ///
    /// # Errors
    ///
    /// Returns an error for negative or non-finite thresholds.
    pub fn with_flood_threshold(&self, depth_m: f64) -> Result<CaseStudy, CoreError> {
        let threshold = ct_hydro::FloodThreshold::new(depth_m)?;
        let mut copy = self.clone();
        for region in &mut copy.regions {
            region.set.set_threshold(threshold);
        }
        Ok(copy)
    }

    /// Probability that the asset's site floods across the primary
    /// region's ensemble.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownAsset`] for ids missing from the
    /// topology.
    pub fn flood_probability(&self, asset_id: &str) -> Result<f64, CoreError> {
        let set = &self.regions[0].set;
        let idx = set
            .poi_index(asset_id)
            .ok_or_else(|| CoreError::UnknownAsset {
                id: asset_id.to_string(),
            })?;
        Ok(set.flood_fraction(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_hydro::Realization;
    use ct_scada::topology_digest;
    use ct_threat::OperationalState;
    use proptest::prelude::*;

    fn small_study() -> CaseStudy {
        CaseStudy::build(
            &CaseStudyConfig::builder()
                .realizations(120)
                .build()
                .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn builder_rejects_invalid_configs() {
        let e = CaseStudyConfig::builder()
            .realizations(0)
            .build()
            .unwrap_err();
        assert!(matches!(
            e,
            CoreError::InvalidConfig {
                field: "realizations",
                ..
            }
        ));
        for bad in [-0.5, f64::NAN, f64::INFINITY] {
            let e = CaseStudyConfig::builder()
                .flood_threshold_m(bad)
                .build()
                .unwrap_err();
            assert!(
                matches!(
                    e,
                    CoreError::InvalidConfig {
                        field: "flood_threshold_m",
                        ..
                    }
                ),
                "threshold {bad} should be rejected"
            );
        }
    }

    /// A study over a hand-built, RNG-free ensemble: realization `i`
    /// floods the POIs selected by bit `j % 8` of `masks[i]`. Gives
    /// the profiling paths correlated, repeating flood patterns
    /// without going through ensemble sampling.
    fn synthetic_study(masks: &[u8]) -> CaseStudy {
        let config = CaseStudyConfig::default();
        let dem = synthesize_oahu(&config.terrain);
        let topology = oahu::topology();
        let pois = oahu::case_study_pois(&dem).unwrap();
        let realizations = masks
            .iter()
            .enumerate()
            .map(|(index, &m)| {
                let inundation_m = (0..pois.len())
                    .map(|j| if m & (1 << (j % 8)) != 0 { 2.0 } else { 0.0 })
                    .collect();
                Realization {
                    index,
                    tide_m: 0.0,
                    max_station_surge_m: 0.0,
                    inundation_m,
                }
            })
            .collect();
        let set = RealizationSet::from_parts(pois, realizations);
        CaseStudy {
            regions: vec![RegionStudy {
                index: 0,
                name: "oahu".to_string(),
                roles: ct_scada::oahu_roles(),
                ensemble: config.ensemble.clone(),
                dem,
                topology,
                set,
            }],
            config,
            histograms: Mutex::new(HashMap::new()),
            store: None,
        }
    }

    #[test]
    fn memoized_profile_matches_naive_everywhere() {
        let masks: Vec<u8> = (0..200u32).map(|i| (i * 37 % 251) as u8).collect();
        let study = synthetic_study(&masks);
        for arch in Architecture::ALL {
            for scenario in ThreatScenario::ALL {
                for choice in [oahu::SiteChoice::Waiau, oahu::SiteChoice::Kahe] {
                    let plan = oahu::site_plan(arch, choice).unwrap();
                    let memo = study.profile_with_plan(&plan, scenario).unwrap();
                    let naive = study.profile_with_plan_naive(&plan, scenario).unwrap();
                    assert_eq!(memo, naive, "{arch} / {scenario} / {choice:?}");
                    // Second (cached) call must be stable too.
                    let again = study.profile_with_plan(&plan, scenario).unwrap();
                    assert_eq!(again, memo, "cache changed the answer");
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn memoized_profile_matches_naive_prop(
            masks in prop::collection::vec(any::<u8>(), 1..120),
        ) {
            let study = synthetic_study(&masks);
            for arch in Architecture::ALL {
                for scenario in ThreatScenario::ALL {
                    let plan = oahu::site_plan(arch, oahu::SiteChoice::Waiau).unwrap();
                    let memo = study.profile_with_plan(&plan, scenario).unwrap();
                    let naive = study.profile_with_plan_naive(&plan, scenario).unwrap();
                    prop_assert_eq!(memo, naive, "{} / {}", arch, scenario);
                }
            }
        }
    }

    #[test]
    fn shard_spec_validates_and_partitions() {
        assert!(ShardSpec::new(0, 0).is_err());
        assert!(ShardSpec::new(2, 2).is_err());
        let shards: Vec<ShardSpec> = (0..3).map(|i| ShardSpec::new(i, 3).unwrap()).collect();
        for i in 0..100 {
            let owners = shards.iter().filter(|s| s.owns(i)).count();
            assert_eq!(owners, 1, "realization {i} must have exactly one owner");
        }
        assert!(ShardSpec::new(0, 1).unwrap().owns(7));
    }

    /// Scratch store rooted in a unique temp directory; removed on
    /// drop so test runs do not accumulate state.
    struct ScratchStore {
        root: std::path::PathBuf,
        store: ct_store::Store,
    }

    impl ScratchStore {
        fn new(tag: &str) -> Self {
            let root = std::env::temp_dir().join(format!(
                "ct-pipeline-{tag}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            std::fs::remove_dir_all(&root).ok();
            let store = ct_store::Store::open(&root).unwrap();
            Self { root, store }
        }
    }

    impl Drop for ScratchStore {
        fn drop(&mut self) {
            std::fs::remove_dir_all(&self.root).ok();
        }
    }

    #[test]
    fn store_backed_build_is_bit_identical_cold_and_warm() {
        let config = CaseStudyConfig::builder().realizations(30).build().unwrap();
        let plain = CaseStudy::build(&config).unwrap();
        let scratch = ScratchStore::new("coldwarm");
        let cold = CaseStudy::build_with_store(&config, Some(&scratch.store)).unwrap();
        let warm = CaseStudy::build_with_store(&config, Some(&scratch.store)).unwrap();
        // RealizationSet's PartialEq compares every f64, so equality
        // here is bit equality of the whole ensemble.
        assert_eq!(plain.realizations(), cold.realizations());
        assert_eq!(plain.realizations(), warm.realizations());
        // The warm study answers profiles identically too.
        let p = plain
            .profile(
                Architecture::C2,
                ThreatScenario::HurricaneIntrusion,
                oahu::SiteChoice::Waiau,
            )
            .unwrap();
        let w = warm
            .profile(
                Architecture::C2,
                ThreatScenario::HurricaneIntrusion,
                oahu::SiteChoice::Waiau,
            )
            .unwrap();
        assert_eq!(p, w);
    }

    #[test]
    fn sharded_run_merges_to_clean_build() {
        let config = CaseStudyConfig::builder().realizations(31).build().unwrap();
        let scratch = ScratchStore::new("shards");
        let a = run_shard(&config, &scratch.store, ShardSpec::new(0, 2).unwrap()).unwrap();
        let b = run_shard(&config, &scratch.store, ShardSpec::new(1, 2).unwrap()).unwrap();
        assert_eq!(a.total, 16, "shard 0 owns the even indices of 0..31");
        assert_eq!(b.total, 15);
        assert_eq!(a.computed, a.total);
        assert_eq!(b.computed, b.total);
        let merged = CaseStudy::merge_from_store(&config, &scratch.store).unwrap();
        let clean = CaseStudy::build(&config).unwrap();
        assert_eq!(merged.realizations(), clean.realizations());
        // Re-running a shard is a no-op: everything is reused.
        let again = run_shard(&config, &scratch.store, ShardSpec::new(0, 2).unwrap()).unwrap();
        assert_eq!(again.reused, again.total);
        assert_eq!(again.computed, 0);
    }

    #[test]
    fn merge_computes_records_missing_from_partial_shards() {
        // Only one of three shards ran (an interrupted sweep); merge
        // must fill the gaps and still match a clean build.
        let config = CaseStudyConfig::builder().realizations(20).build().unwrap();
        let scratch = ScratchStore::new("partial");
        run_shard(&config, &scratch.store, ShardSpec::new(1, 3).unwrap()).unwrap();
        let merged = CaseStudy::merge_from_store(&config, &scratch.store).unwrap();
        let clean = CaseStudy::build(&config).unwrap();
        assert_eq!(merged.realizations(), clean.realizations());
    }

    #[test]
    fn smaller_run_reuses_records_of_a_larger_one() {
        // Realization i is a function of (seed, i) alone, so a 12-run
        // sweep finds all its records in the store a 24-run sweep
        // filled.
        let scratch = ScratchStore::new("sizes");
        let large = CaseStudyConfig::builder().realizations(24).build().unwrap();
        CaseStudy::build_with_store(&large, Some(&scratch.store)).unwrap();
        let small = CaseStudyConfig::builder().realizations(12).build().unwrap();
        let via_store = CaseStudy::build_with_store(&small, Some(&scratch.store)).unwrap();
        let plain = CaseStudy::build(&small).unwrap();
        assert_eq!(via_store.realizations(), plain.realizations());
    }

    #[test]
    fn build_and_shapes() {
        let s = small_study();
        assert_eq!(s.realizations().len(), 120);
        assert_eq!(s.realizations().pois().len(), s.topology().assets().len());
        assert_eq!(s.region_count(), 1);
        assert_eq!(s.region(0).name(), "oahu");
    }

    #[test]
    fn parallel_matches_serial_generation() {
        let mut cfg = CaseStudyConfig::builder().realizations(40).build().unwrap();
        cfg.threads = 1;
        let serial = CaseStudy::build(&cfg).unwrap();
        cfg.threads = 8;
        let parallel = CaseStudy::build(&cfg).unwrap();
        assert_eq!(
            serial.realizations().realizations(),
            parallel.realizations().realizations()
        );
    }

    fn synth_config(spec: &str, realizations: usize) -> CaseStudyConfig {
        CaseStudyConfig::builder()
            .region(spec.parse().unwrap())
            .realizations(realizations)
            .build()
            .unwrap()
    }

    #[test]
    fn synthetic_portfolio_builds_and_profiles_every_region() {
        let study = CaseStudy::build(&synth_config("synth:5:3:24", 12)).unwrap();
        assert_eq!(study.region_count(), 3);
        let mut total_assets = 0;
        for r in 0..3 {
            let region = study.region(r);
            assert_eq!(region.index(), r);
            assert_eq!(region.realizations().len(), 12);
            assert_eq!(
                region.realizations().pois().len(),
                region.topology().assets().len()
            );
            total_assets += region.topology().assets().len();
            let p = study
                .profile_region(
                    r,
                    Architecture::C6P6P6,
                    ThreatScenario::HurricaneIntrusion,
                    oahu::SiteChoice::Waiau,
                )
                .unwrap();
            let sum = p.green() + p.orange() + p.red() + p.gray();
            assert!((sum - 1.0).abs() < 1e-9, "region {r} profile sums to {sum}");
        }
        assert!(
            total_assets >= 24,
            "requested 24 assets, got {total_assets}"
        );
        // Regions are distinct places with distinct storm draws.
        assert_ne!(
            study.region(0).ensemble().seed,
            study.region(1).ensemble().seed
        );
        assert_ne!(
            study.region(0).dem().projection().origin().lat,
            study.region(1).dem().projection().origin().lat
        );
        let csv = study.portfolio_summary().unwrap();
        assert_eq!(
            csv.lines().count(),
            1 + 3 * Architecture::ALL.len(),
            "header plus one row per region × architecture:\n{csv}"
        );
        assert!(csv.starts_with("region,name,assets,architecture,scenario,"));
        // Out-of-range regions are loud, not panicky.
        assert!(study
            .profile_region(
                9,
                Architecture::C2,
                ThreatScenario::Hurricane,
                oahu::SiteChoice::Waiau
            )
            .is_err());
    }

    #[test]
    fn portfolio_build_is_thread_count_invariant() {
        // The whole portfolio — terrain, topology, storm draws, and
        // evaluated ensembles — must be identical whether built
        // serially or with a full work-stealing pool.
        let digests = |threads: usize| {
            let mut cfg = synth_config("synth:11:4:32", 6);
            cfg.threads = threads;
            let study = CaseStudy::build(&cfg).unwrap();
            study
                .regions()
                .iter()
                .map(|r| {
                    (
                        topology_digest(r.topology()),
                        r.realizations().realizations().to_vec(),
                    )
                })
                .collect::<Vec<_>>()
        };
        let serial = digests(1);
        for threads in [4, 8] {
            assert_eq!(digests(threads), serial, "diverged at {threads} threads");
        }
    }

    #[test]
    fn sharded_portfolio_run_merges_to_clean_build() {
        // 2 regions × 7 realizations = 14 global work items split
        // across 2 shards; the merge must be bit-identical to a clean
        // build in *every* region.
        let config = synth_config("synth:9:2:16", 7);
        let scratch = ScratchStore::new("portfolio-shards");
        let a = run_shard(&config, &scratch.store, ShardSpec::new(0, 2).unwrap()).unwrap();
        let b = run_shard(&config, &scratch.store, ShardSpec::new(1, 2).unwrap()).unwrap();
        assert_eq!(
            a.total + b.total,
            14,
            "all (region, realization) items owned"
        );
        assert_eq!(a.computed + b.computed, 14);
        let merged = CaseStudy::merge_from_store(&config, &scratch.store).unwrap();
        let clean = CaseStudy::build(&config).unwrap();
        assert_eq!(merged.region_count(), clean.region_count());
        for r in 0..merged.region_count() {
            assert_eq!(
                merged.region(r).realizations(),
                clean.region(r).realizations(),
                "region {r} diverged through the store"
            );
        }
        // Re-running a shard is a no-op: everything is reused.
        let again = run_shard(&config, &scratch.store, ShardSpec::new(0, 2).unwrap()).unwrap();
        assert_eq!(again.reused, again.total);
        assert_eq!(again.computed, 0);
    }

    #[test]
    fn hurricane_only_profiles_match_across_architectures() {
        // Fig. 6's headline: with Honolulu+Waiau siting, every
        // architecture has the same hurricane-only profile.
        let s = small_study();
        let base = s
            .profile(
                Architecture::C2,
                ThreatScenario::Hurricane,
                oahu::SiteChoice::Waiau,
            )
            .unwrap();
        for arch in Architecture::ALL {
            let p = s
                .profile(arch, ThreatScenario::Hurricane, oahu::SiteChoice::Waiau)
                .unwrap();
            assert!(p.approx_eq(&base, 1e-9), "{arch}: {p} differs from {base}");
        }
        assert_eq!(base.orange(), 0.0);
        assert_eq!(base.gray(), 0.0);
    }

    #[test]
    fn flood_probability_known_sites() {
        let s = small_study();
        let kahe = s.flood_probability(ct_scada::oahu::KAHE).unwrap();
        assert_eq!(kahe, 0.0, "Kahe never floods");
        assert!(s.flood_probability("nope").is_err());
    }

    #[test]
    fn compound_threat_degrades_industry_configs() {
        let s = small_study();
        let p = s
            .profile(
                Architecture::C2,
                ThreatScenario::HurricaneIntrusion,
                oahu::SiteChoice::Waiau,
            )
            .unwrap();
        assert_eq!(p.green(), 0.0);
        assert!(p.gray() > 0.5);
        assert!(
            (p.gray() + p.red() - 1.0).abs() < 1e-9,
            "only gray/red possible: {p}"
        );
        let _ = OperationalState::Gray;
    }
}
