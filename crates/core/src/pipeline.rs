//! The analysis pipeline (Fig. 5) specialised to the Oahu case study.

use crate::error::CoreError;
use crate::parallel::{default_threads, par_map_dynamic};
use crate::profile::OutcomeProfile;
use ct_geo::terrain::{synthesize_oahu, OahuTerrainConfig};
use ct_geo::Dem;
use ct_hydro::{
    EnsembleConfig, ParametricSurge, RealizationSet, Stations, SurgeCalibration, TrackEnsemble,
};
use ct_scada::{oahu, Architecture, SitePlan, Topology};
use ct_threat::{
    classify, post_disaster_histogram, post_disaster_states, Attacker, PostDisasterState,
    ThreatScenario, WorstCaseAttacker,
};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Cache key for a site plan: its architecture and ordered site ids.
type PlanKey = (Architecture, Vec<String>);
/// A shared flood-pattern histogram (distinct pattern, multiplicity).
type PlanHistogram = Arc<Vec<(PostDisasterState, usize)>>;

/// Configuration of a full case-study run.
///
/// Construct via [`CaseStudyConfig::builder`], which validates values
/// before they reach the pipeline; `Default` gives the paper's
/// canonical setup (1000 realizations, auto threads, 0.5 m flood
/// threshold).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CaseStudyConfig {
    /// Terrain synthesis parameters.
    pub terrain: OahuTerrainConfig,
    /// Hurricane ensemble parameters (1000 realizations by default,
    /// as in the paper).
    pub ensemble: EnsembleConfig,
    /// Surge-model calibration.
    pub calibration: SurgeCalibration,
    /// Worker threads for ensemble evaluation (0 = auto).
    pub threads: usize,
    /// Asset-failure flood threshold in metres; `None` keeps the
    /// paper's 0.5 m default ([`ct_hydro::FloodThreshold`]).
    pub flood_threshold_m: Option<f64>,
}

impl CaseStudyConfig {
    /// A fluent, validating builder for the configuration.
    ///
    /// ```
    /// use compound_threats::CaseStudyConfig;
    ///
    /// let config = CaseStudyConfig::builder()
    ///     .realizations(200)
    ///     .threads(4)
    ///     .flood_threshold_m(0.75)
    ///     .build()
    ///     .expect("valid config");
    /// assert_eq!(config.ensemble.realizations, 200);
    /// assert!(CaseStudyConfig::builder().realizations(0).build().is_err());
    /// ```
    pub fn builder() -> CaseStudyConfigBuilder {
        CaseStudyConfigBuilder::default()
    }

    /// A reduced configuration for fast tests: `n` realizations.
    #[deprecated(
        since = "0.1.0",
        note = "use `CaseStudyConfig::builder().realizations(n).build()`, which validates"
    )]
    pub fn with_realizations(n: usize) -> Self {
        Self {
            ensemble: EnsembleConfig {
                realizations: n,
                ..EnsembleConfig::default()
            },
            ..Self::default()
        }
    }
}

/// Builder for [`CaseStudyConfig`]; see [`CaseStudyConfig::builder`].
///
/// Setters are infallible; [`CaseStudyConfigBuilder::build`] performs
/// validation so errors carry the offending field and value.
#[derive(Debug, Clone, Default)]
pub struct CaseStudyConfigBuilder {
    config: CaseStudyConfig,
}

impl CaseStudyConfigBuilder {
    /// Terrain synthesis parameters.
    #[must_use]
    pub fn terrain(mut self, terrain: OahuTerrainConfig) -> Self {
        self.config.terrain = terrain;
        self
    }

    /// Full hurricane-ensemble parameters (see also
    /// [`CaseStudyConfigBuilder::realizations`] for the common case).
    #[must_use]
    pub fn ensemble(mut self, ensemble: EnsembleConfig) -> Self {
        self.config.ensemble = ensemble;
        self
    }

    /// Number of hurricane realizations (must be ≥ 1).
    #[must_use]
    pub fn realizations(mut self, n: usize) -> Self {
        self.config.ensemble.realizations = n;
        self
    }

    /// Ensemble RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.ensemble.seed = seed;
        self
    }

    /// Surge-model calibration.
    #[must_use]
    pub fn calibration(mut self, calibration: SurgeCalibration) -> Self {
        self.config.calibration = calibration;
        self
    }

    /// Worker threads for ensemble evaluation (0 = auto).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Asset-failure flood threshold in metres (must be finite and
    /// non-negative; the paper assumes 0.5 m switch height).
    #[must_use]
    pub fn flood_threshold_m(mut self, depth_m: f64) -> Self {
        self.config.flood_threshold_m = Some(depth_m);
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] when the ensemble is empty or the
    /// flood threshold is negative or non-finite.
    pub fn build(self) -> Result<CaseStudyConfig, CoreError> {
        if self.config.ensemble.realizations == 0 {
            return Err(CoreError::InvalidConfig {
                field: "realizations",
                reason: "ensemble must contain at least 1 realization".into(),
            });
        }
        if let Some(depth_m) = self.config.flood_threshold_m {
            if !depth_m.is_finite() || depth_m < 0.0 {
                return Err(CoreError::InvalidConfig {
                    field: "flood_threshold_m",
                    reason: format!("must be finite and non-negative, got {depth_m}"),
                });
            }
        }
        Ok(self.config)
    }
}

/// A fully-prepared case study: terrain, topology, and the hazard
/// ensemble, ready to evaluate architectures under threat scenarios.
#[derive(Debug)]
pub struct CaseStudy {
    config: CaseStudyConfig,
    dem: Dem,
    topology: Topology,
    set: RealizationSet,
    /// Memoized flood-pattern histograms per site plan. A plan's
    /// histogram is scenario-independent, so one entry serves every
    /// threat scenario and repeated figure/sweep evaluations.
    histograms: Mutex<HashMap<PlanKey, PlanHistogram>>,
}

impl Clone for CaseStudy {
    fn clone(&self) -> Self {
        // Cached histograms depend on the set's flood threshold, and a
        // clone is exactly the mutation point for
        // `with_flood_threshold` — so a clone starts with an empty
        // cache rather than inheriting entries that may go stale.
        Self {
            config: self.config.clone(),
            dem: self.dem.clone(),
            topology: self.topology.clone(),
            set: self.set.clone(),
            histograms: Mutex::new(HashMap::new()),
        }
    }
}

impl CaseStudy {
    /// Synthesizes the terrain, builds the Oahu topology, and
    /// evaluates the hurricane ensemble at every asset (in parallel).
    ///
    /// # Errors
    ///
    /// Propagates terrain/hazard errors (e.g. an asset outside the
    /// DEM).
    pub fn build(config: &CaseStudyConfig) -> Result<Self, CoreError> {
        let build_span = ct_obs::span("build");
        let dem = {
            let _s = ct_obs::span("terrain");
            synthesize_oahu(&config.terrain)
        };
        let (topology, pois) = {
            let _s = ct_obs::span("topology");
            (oahu::topology(), oahu::case_study_pois(&dem)?)
        };
        let model = ParametricSurge::new(Stations::from_dem(&dem), config.calibration);
        let storms = {
            let _s = ct_obs::span("ensemble_generate");
            TrackEnsemble::new(config.ensemble.clone())?.generate()
        };
        let threads = if config.threads == 0 {
            default_threads()
        } else {
            config.threads
        };
        ct_obs::gauge(ct_obs::names::BUILD_THREADS, threads as f64);
        let indexed: Vec<(usize, ct_hydro::StormParams)> = storms.into_iter().enumerate().collect();
        // Dynamic scheduling: storm cost varies with track/intensity,
        // so work-stealing keeps all workers busy to the end. Workers
        // attribute their per-item busy time to the evaluation span as
        // its CPU proxy; spans themselves stay on this thread so the
        // span tree is identical for every thread count.
        let eval_span = ct_obs::span("ensemble_evaluate");
        let busy_ns = std::sync::atomic::AtomicU64::new(0);
        let realizations = par_map_dynamic(&indexed, threads, |(i, storm)| {
            let started = std::time::Instant::now();
            let r = RealizationSet::evaluate_storm(*i, storm, &model, &pois);
            busy_ns.fetch_add(
                u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
                std::sync::atomic::Ordering::Relaxed,
            );
            r
        })
        .into_iter()
        .collect::<Result<Vec<_>, _>>()?;
        eval_span.add_cpu_ns(busy_ns.into_inner());
        drop(eval_span);
        let mut set = RealizationSet::from_parts(pois, realizations);
        if let Some(depth_m) = config.flood_threshold_m {
            set.set_threshold(ct_hydro::FloodThreshold::new(depth_m)?);
        }
        drop(build_span);
        Ok(Self {
            config: config.clone(),
            dem,
            topology,
            set,
            histograms: Mutex::new(HashMap::new()),
        })
    }

    /// The configuration the study was built from.
    pub fn config(&self) -> &CaseStudyConfig {
        &self.config
    }

    /// Effective worker-thread count for parallel sweeps over this
    /// study (resolves the config's `0 = auto`).
    pub fn threads(&self) -> usize {
        if self.config.threads == 0 {
            default_threads()
        } else {
            self.config.threads
        }
    }

    /// The synthetic terrain.
    pub fn dem(&self) -> &Dem {
        &self.dem
    }

    /// The Oahu topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The evaluated hazard ensemble.
    pub fn realizations(&self) -> &RealizationSet {
        &self.set
    }

    /// Outcome profile of an architecture under a scenario with the
    /// paper's control-site plan for `choice`.
    ///
    /// # Errors
    ///
    /// Propagates site-plan errors.
    pub fn profile(
        &self,
        architecture: Architecture,
        scenario: ThreatScenario,
        choice: oahu::SiteChoice,
    ) -> Result<OutcomeProfile, CoreError> {
        let plan = oahu::site_plan(architecture, choice)?;
        self.profile_with_plan(&plan, scenario)
    }

    /// Outcome profile for an arbitrary site plan: applies each
    /// hurricane realization, then the worst-case attacker, then
    /// Table I.
    ///
    /// The attacker and classification are deterministic functions of
    /// the post-disaster flood pattern, so they are evaluated once per
    /// *distinct* pattern (at most eight for three sites) and weighted
    /// by the pattern's multiplicity; the histogram itself is memoized
    /// per plan. Produces exactly the same profile as
    /// [`CaseStudy::profile_with_plan_naive`] (asserted by tests).
    ///
    /// # Errors
    ///
    /// Returns an error when the plan references assets missing from
    /// the ensemble's POI set.
    pub fn profile_with_plan(
        &self,
        plan: &SitePlan,
        scenario: ThreatScenario,
    ) -> Result<OutcomeProfile, CoreError> {
        ct_obs::add(ct_obs::names::PROFILE_PLANS_EVALUATED, 1);
        let hist = self.plan_histogram(plan)?;
        let budget = scenario.budget();
        let arch = plan.architecture();
        let attacker = WorstCaseAttacker;
        let mut profile = OutcomeProfile::new();
        for (post, n) in hist.iter() {
            profile.record_n(classify(&attacker.attack(arch, post, budget)), *n);
        }
        Ok(profile)
    }

    /// The pre-memoization profiling path: attacker and classification
    /// run once per realization instead of once per distinct flood
    /// pattern. Kept as ground truth for the equivalence tests and the
    /// profiling benchmark.
    ///
    /// # Errors
    ///
    /// Returns an error when the plan references assets missing from
    /// the ensemble's POI set.
    pub fn profile_with_plan_naive(
        &self,
        plan: &SitePlan,
        scenario: ThreatScenario,
    ) -> Result<OutcomeProfile, CoreError> {
        let posts = post_disaster_states(plan, &self.set)?;
        let budget = scenario.budget();
        let arch = plan.architecture();
        let attacker = WorstCaseAttacker;
        Ok(OutcomeProfile::from_outcomes(posts.iter().map(|post| {
            classify(&attacker.attack(arch, post, budget))
        })))
    }

    /// The plan's flood-pattern histogram, computed on first use and
    /// cached. Concurrent first calls may compute it redundantly; the
    /// first insert wins and the result is identical either way.
    fn plan_histogram(&self, plan: &SitePlan) -> Result<PlanHistogram, CoreError> {
        let key: PlanKey = (plan.architecture(), plan.site_asset_ids().to_vec());
        if let Some(hist) = self
            .histograms
            .lock()
            .expect("histogram cache lock")
            .get(&key)
        {
            ct_obs::add(ct_obs::names::PROFILE_PATTERN_CACHE_HITS, 1);
            return Ok(Arc::clone(hist));
        }
        let hist = Arc::new(post_disaster_histogram(plan, &self.set)?);
        let mut cache = self.histograms.lock().expect("histogram cache lock");
        // A miss is counted only for the winning insert, so hit+miss
        // totals stay deterministic even when concurrent first calls
        // compute the same histogram redundantly.
        match cache.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                ct_obs::add(ct_obs::names::PROFILE_PATTERN_CACHE_HITS, 1);
                Ok(Arc::clone(e.get()))
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                ct_obs::add(ct_obs::names::PROFILE_PATTERN_CACHE_MISSES, 1);
                ct_obs::histogram(
                    ct_obs::names::PROFILE_PATTERNS_PER_PLAN,
                    &ct_obs::names::PROFILE_PATTERNS_PER_PLAN_BOUNDS,
                )
                .observe(hist.len() as f64);
                Ok(Arc::clone(e.insert(hist)))
            }
        }
    }

    /// A copy of this study with a different asset-failure flood
    /// threshold (the paper assumes 0.5 m switch height; this enables
    /// sensitivity analysis of that assumption).
    ///
    /// # Errors
    ///
    /// Returns an error for negative or non-finite thresholds.
    pub fn with_flood_threshold(&self, depth_m: f64) -> Result<CaseStudy, CoreError> {
        let threshold = ct_hydro::FloodThreshold::new(depth_m)?;
        let mut copy = self.clone();
        copy.set.set_threshold(threshold);
        Ok(copy)
    }

    /// Probability that the asset's site floods across the ensemble.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownAsset`] for ids missing from the
    /// topology.
    pub fn flood_probability(&self, asset_id: &str) -> Result<f64, CoreError> {
        let idx = self
            .set
            .poi_index(asset_id)
            .ok_or_else(|| CoreError::UnknownAsset {
                id: asset_id.to_string(),
            })?;
        Ok(self.set.flood_fraction(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_hydro::Realization;
    use ct_threat::OperationalState;
    use proptest::prelude::*;

    fn small_study() -> CaseStudy {
        CaseStudy::build(
            &CaseStudyConfig::builder()
                .realizations(120)
                .build()
                .unwrap(),
        )
        .unwrap()
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shim_matches_builder() {
        let via_shim = CaseStudyConfig::with_realizations(42);
        let via_builder = CaseStudyConfig::builder().realizations(42).build().unwrap();
        assert_eq!(via_shim, via_builder);
    }

    #[test]
    fn builder_rejects_invalid_configs() {
        let e = CaseStudyConfig::builder()
            .realizations(0)
            .build()
            .unwrap_err();
        assert!(matches!(
            e,
            CoreError::InvalidConfig {
                field: "realizations",
                ..
            }
        ));
        for bad in [-0.5, f64::NAN, f64::INFINITY] {
            let e = CaseStudyConfig::builder()
                .flood_threshold_m(bad)
                .build()
                .unwrap_err();
            assert!(
                matches!(
                    e,
                    CoreError::InvalidConfig {
                        field: "flood_threshold_m",
                        ..
                    }
                ),
                "threshold {bad} should be rejected"
            );
        }
    }

    /// A study over a hand-built, RNG-free ensemble: realization `i`
    /// floods the POIs selected by bit `j % 8` of `masks[i]`. Gives
    /// the profiling paths correlated, repeating flood patterns
    /// without going through ensemble sampling.
    fn synthetic_study(masks: &[u8]) -> CaseStudy {
        let config = CaseStudyConfig::default();
        let dem = synthesize_oahu(&config.terrain);
        let topology = oahu::topology();
        let pois = oahu::case_study_pois(&dem).unwrap();
        let realizations = masks
            .iter()
            .enumerate()
            .map(|(index, &m)| {
                let inundation_m = (0..pois.len())
                    .map(|j| if m & (1 << (j % 8)) != 0 { 2.0 } else { 0.0 })
                    .collect();
                Realization {
                    index,
                    tide_m: 0.0,
                    max_station_surge_m: 0.0,
                    inundation_m,
                }
            })
            .collect();
        let set = RealizationSet::from_parts(pois, realizations);
        CaseStudy {
            config,
            dem,
            topology,
            set,
            histograms: Mutex::new(HashMap::new()),
        }
    }

    #[test]
    fn memoized_profile_matches_naive_everywhere() {
        let masks: Vec<u8> = (0..200u32).map(|i| (i * 37 % 251) as u8).collect();
        let study = synthetic_study(&masks);
        for arch in Architecture::ALL {
            for scenario in ThreatScenario::ALL {
                for choice in [oahu::SiteChoice::Waiau, oahu::SiteChoice::Kahe] {
                    let plan = oahu::site_plan(arch, choice).unwrap();
                    let memo = study.profile_with_plan(&plan, scenario).unwrap();
                    let naive = study.profile_with_plan_naive(&plan, scenario).unwrap();
                    assert_eq!(memo, naive, "{arch} / {scenario} / {choice:?}");
                    // Second (cached) call must be stable too.
                    let again = study.profile_with_plan(&plan, scenario).unwrap();
                    assert_eq!(again, memo, "cache changed the answer");
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn memoized_profile_matches_naive_prop(
            masks in prop::collection::vec(any::<u8>(), 1..120),
        ) {
            let study = synthetic_study(&masks);
            for arch in Architecture::ALL {
                for scenario in ThreatScenario::ALL {
                    let plan = oahu::site_plan(arch, oahu::SiteChoice::Waiau).unwrap();
                    let memo = study.profile_with_plan(&plan, scenario).unwrap();
                    let naive = study.profile_with_plan_naive(&plan, scenario).unwrap();
                    prop_assert_eq!(memo, naive, "{} / {}", arch, scenario);
                }
            }
        }
    }

    #[test]
    fn build_and_shapes() {
        let s = small_study();
        assert_eq!(s.realizations().len(), 120);
        assert_eq!(s.realizations().pois().len(), s.topology().assets().len());
    }

    #[test]
    fn parallel_matches_serial_generation() {
        let mut cfg = CaseStudyConfig::builder().realizations(40).build().unwrap();
        cfg.threads = 1;
        let serial = CaseStudy::build(&cfg).unwrap();
        cfg.threads = 8;
        let parallel = CaseStudy::build(&cfg).unwrap();
        assert_eq!(
            serial.realizations().realizations(),
            parallel.realizations().realizations()
        );
    }

    #[test]
    fn hurricane_only_profiles_match_across_architectures() {
        // Fig. 6's headline: with Honolulu+Waiau siting, every
        // architecture has the same hurricane-only profile.
        let s = small_study();
        let base = s
            .profile(
                Architecture::C2,
                ThreatScenario::Hurricane,
                oahu::SiteChoice::Waiau,
            )
            .unwrap();
        for arch in Architecture::ALL {
            let p = s
                .profile(arch, ThreatScenario::Hurricane, oahu::SiteChoice::Waiau)
                .unwrap();
            assert!(p.approx_eq(&base, 1e-9), "{arch}: {p} differs from {base}");
        }
        assert_eq!(base.orange(), 0.0);
        assert_eq!(base.gray(), 0.0);
    }

    #[test]
    fn flood_probability_known_sites() {
        let s = small_study();
        let kahe = s.flood_probability(ct_scada::oahu::KAHE).unwrap();
        assert_eq!(kahe, 0.0, "Kahe never floods");
        assert!(s.flood_probability("nope").is_err());
    }

    #[test]
    fn compound_threat_degrades_industry_configs() {
        let s = small_study();
        let p = s
            .profile(
                Architecture::C2,
                ThreatScenario::HurricaneIntrusion,
                oahu::SiteChoice::Waiau,
            )
            .unwrap();
        assert_eq!(p.green(), 0.0);
        assert!(p.gray() > 0.5);
        assert!(
            (p.gray() + p.red() - 1.0).abs() < 1e-9,
            "only gray/red possible: {p}"
        );
        let _ = OperationalState::Gray;
    }
}
