//! Readiness notification for the serving tier, with zero
//! dependencies.
//!
//! The keep-alive server multiplexes hundreds of kept-alive sockets
//! per worker thread, which needs the OS to say *which* sockets have
//! bytes waiting. On Linux that is epoll — but the workspace links no
//! `libc`, so [`Poller`] wraps the four syscalls it needs
//! (`epoll_create1`, `epoll_ctl`, `epoll_pwait`, `close`) in inline
//! assembly directly against the kernel ABI (x86_64 and aarch64).
//! Everything above the syscall boundary is ordinary safe Rust.
//!
//! On any other platform the same [`Poller`] API is served by a
//! *spurious-readiness* fallback: `wait` sleeps briefly and reports
//! every registered source as ready. That is semantically a
//! level-triggered poller with false positives — correct (the
//! connection state machines treat `WouldBlock` as "not actually
//! ready") but busier, which is an acceptable tax on platforms the
//! serving tier does not target.
//!
//! Interest is level-triggered on both implementations: a readable
//! socket keeps reporting readable until drained, so a state machine
//! that processes one request per wakeup still drains its backlog.

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the source was registered with.
    pub token: u64,
    /// Bytes (or an accepted connection, or EOF) are waiting.
    pub readable: bool,
    /// The socket can accept more outgoing bytes.
    pub writable: bool,
    /// The peer hung up or the socket errored; read to find out.
    pub hangup: bool,
}

/// The raw file descriptor of a socket-like source, for registration
/// with a [`Poller`].
#[cfg(unix)]
pub fn source_fd(source: &impl std::os::fd::AsRawFd) -> i32 {
    source.as_raw_fd()
}

/// Non-unix platforms have no raw fds; the fallback poller never
/// looks at the value.
#[cfg(not(unix))]
pub fn source_fd<T>(_source: &T) -> i32 {
    -1
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod imp {
    //! epoll over raw syscalls: no libc, no crates.

    use super::Event;
    use std::io;
    use std::time::Duration;

    #[cfg(target_arch = "x86_64")]
    mod nr {
        pub const EPOLL_CREATE1: usize = 291;
        pub const EPOLL_CTL: usize = 233;
        pub const EPOLL_PWAIT: usize = 281;
        pub const CLOSE: usize = 3;
    }

    #[cfg(target_arch = "aarch64")]
    mod nr {
        pub const EPOLL_CREATE1: usize = 20;
        pub const EPOLL_CTL: usize = 21;
        pub const EPOLL_PWAIT: usize = 22;
        pub const CLOSE: usize = 57;
    }

    const EPOLL_CLOEXEC: usize = 0x80000;
    const EPOLL_CTL_ADD: usize = 1;
    const EPOLL_CTL_DEL: usize = 2;
    const EPOLL_CTL_MOD: usize = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    /// The kernel's `struct epoll_event`. x86_64 packs it to 12
    /// bytes (a pre-epoll-v2 ABI quirk unique to that arch); every
    /// other architecture uses natural alignment.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    /// `syscall(n, a, b, c, d, e, f)` against the raw kernel ABI;
    /// returns the kernel's result, negative values meaning
    /// `-errno`.
    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall6(
        n: usize,
        a: usize,
        b: usize,
        c: usize,
        d: usize,
        e: usize,
        f: usize,
    ) -> isize {
        let ret: isize;
        unsafe {
            core::arch::asm!(
                "syscall",
                inlateout("rax") n as isize => ret,
                in("rdi") a,
                in("rsi") b,
                in("rdx") c,
                in("r10") d,
                in("r8") e,
                in("r9") f,
                out("rcx") _,
                out("r11") _,
                options(nostack)
            );
        }
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall6(
        n: usize,
        a: usize,
        b: usize,
        c: usize,
        d: usize,
        e: usize,
        f: usize,
    ) -> isize {
        let ret: isize;
        unsafe {
            core::arch::asm!(
                "svc 0",
                in("x8") n,
                inlateout("x0") a as isize => ret,
                in("x1") b,
                in("x2") c,
                in("x3") d,
                in("x4") e,
                in("x5") f,
                options(nostack)
            );
        }
        ret
    }

    /// Converts a raw syscall return into `io::Result`.
    fn check(ret: isize) -> io::Result<usize> {
        if ret < 0 {
            Err(io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret as usize)
        }
    }

    fn interest_mask(readable: bool, writable: bool) -> u32 {
        let mut events = EPOLLRDHUP;
        if readable {
            events |= EPOLLIN;
        }
        if writable {
            events |= EPOLLOUT;
        }
        events
    }

    /// A level-triggered epoll instance.
    #[derive(Debug)]
    pub struct Poller {
        epfd: i32,
    }

    impl Poller {
        pub fn new() -> io::Result<Self> {
            let epfd = check(unsafe { syscall6(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0) })?;
            Ok(Self { epfd: epfd as i32 })
        }

        fn ctl(&self, op: usize, fd: i32, event: Option<EpollEvent>) -> io::Result<()> {
            let ptr = event
                .as_ref()
                .map(|e| e as *const EpollEvent as usize)
                .unwrap_or(0);
            check(unsafe {
                syscall6(
                    nr::EPOLL_CTL,
                    self.epfd as usize,
                    op,
                    fd as usize,
                    ptr,
                    0,
                    0,
                )
            })
            .map(|_| ())
        }

        pub fn add(&self, fd: i32, token: u64, readable: bool, writable: bool) -> io::Result<()> {
            self.ctl(
                EPOLL_CTL_ADD,
                fd,
                Some(EpollEvent {
                    events: interest_mask(readable, writable),
                    data: token,
                }),
            )
        }

        pub fn modify(
            &self,
            fd: i32,
            token: u64,
            readable: bool,
            writable: bool,
        ) -> io::Result<()> {
            self.ctl(
                EPOLL_CTL_MOD,
                fd,
                Some(EpollEvent {
                    events: interest_mask(readable, writable),
                    data: token,
                }),
            )
        }

        pub fn remove(&self, fd: i32) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, None)
        }

        pub fn wait(&self, events: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
            events.clear();
            let mut raw = [EpollEvent { events: 0, data: 0 }; 256];
            let timeout_ms = timeout.as_millis().min(i32::MAX as u128) as usize;
            let n = loop {
                // NULL sigmask: plain epoll_wait semantics (the
                // epoll_wait number does not exist on aarch64, so
                // both arches use epoll_pwait).
                match check(unsafe {
                    syscall6(
                        nr::EPOLL_PWAIT,
                        self.epfd as usize,
                        raw.as_mut_ptr() as usize,
                        raw.len(),
                        timeout_ms,
                        0,
                        8,
                    )
                }) {
                    Ok(n) => break n,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            for slot in &raw[..n] {
                let mask = slot.events;
                events.push(Event {
                    token: slot.data,
                    readable: mask & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0,
                    writable: mask & EPOLLOUT != 0,
                    hangup: mask & (EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                syscall6(nr::CLOSE, self.epfd as usize, 0, 0, 0, 0, 0);
            }
        }
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod imp {
    //! Spurious-readiness fallback: report everything ready after a
    //! short sleep. Correct against `WouldBlock`-tolerant state
    //! machines, at the cost of idle wakeups.

    use super::Event;
    use std::collections::HashMap;
    use std::io;
    use std::sync::Mutex;
    use std::time::Duration;

    #[derive(Debug)]
    pub struct Poller {
        registered: Mutex<HashMap<i32, u64>>,
    }

    impl Poller {
        pub fn new() -> io::Result<Self> {
            Ok(Self {
                registered: Mutex::new(HashMap::new()),
            })
        }

        pub fn add(&self, fd: i32, token: u64, _readable: bool, _writable: bool) -> io::Result<()> {
            self.registered
                .lock()
                .expect("poller lock")
                .insert(fd, token);
            Ok(())
        }

        pub fn modify(
            &self,
            fd: i32,
            token: u64,
            _readable: bool,
            _writable: bool,
        ) -> io::Result<()> {
            self.registered
                .lock()
                .expect("poller lock")
                .insert(fd, token);
            Ok(())
        }

        pub fn remove(&self, fd: i32) -> io::Result<()> {
            self.registered.lock().expect("poller lock").remove(&fd);
            Ok(())
        }

        pub fn wait(&self, events: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
            events.clear();
            std::thread::sleep(timeout.min(Duration::from_millis(2)));
            for token in self.registered.lock().expect("poller lock").values() {
                events.push(Event {
                    token: *token,
                    readable: true,
                    writable: true,
                    hangup: false,
                });
            }
            Ok(())
        }
    }
}

pub use imp::Poller;

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::Duration;

    #[test]
    fn listener_readiness_follows_connections() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        poller.add(source_fd(&listener), 7, true, false).unwrap();

        // Nothing pending: a short wait reports no *actionable*
        // readiness (the fallback may report spuriously; accept then
        // says WouldBlock, which is also a pass).
        let mut events = Vec::new();
        poller.wait(&mut events, Duration::from_millis(10)).unwrap();
        for event in &events {
            assert_eq!(event.token, 7);
        }

        // A pending connection makes the listener readable.
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            poller.wait(&mut events, Duration::from_millis(50)).unwrap();
            if events.iter().any(|e| e.token == 7 && e.readable) {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "listener never became readable"
            );
        }
        let (accepted, _) = listener.accept().unwrap();
        drop(client);
        drop(accepted);
    }

    #[test]
    fn stream_readiness_and_token_routing() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_end, _) = listener.accept().unwrap();
        server_end.set_nonblocking(true).unwrap();
        poller.add(source_fd(&server_end), 42, true, false).unwrap();

        client.write_all(b"ping").unwrap();
        let mut events = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            poller.wait(&mut events, Duration::from_millis(50)).unwrap();
            if events.iter().any(|e| e.token == 42 && e.readable) {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "stream never became readable"
            );
        }
        let mut buf = [0u8; 16];
        let mut reader = &server_end;
        let n = reader.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping");

        // Re-registration with write interest reports writable.
        poller
            .modify(source_fd(&server_end), 42, true, true)
            .unwrap();
        loop {
            poller.wait(&mut events, Duration::from_millis(50)).unwrap();
            if events.iter().any(|e| e.token == 42 && e.writable) {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "stream never became writable"
            );
        }
        poller.remove(source_fd(&server_end)).unwrap();
        drop(client);
    }
}
