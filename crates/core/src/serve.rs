//! `ct serve`: hosting an artifact store over keep-alive HTTP/1.1.
//!
//! A serving store lets shard runs on disjoint machines share one
//! cache: each shard points `--store http://host:port` at the daemon
//! and the pipeline's [`ct_store::StoreBackend`] calls travel the wire
//! instead of the local filesystem. The daemon is std-only: a
//! nonblocking [`std::net::TcpListener`] plus a small pool of worker
//! threads, each running a readiness loop (epoll via
//! [`crate::event::Poller`], with a portable fallback) over its own
//! set of per-connection state machines ([`crate::conn::Conn`]).
//! Connections are kept alive and pipelined per HTTP/1.1 semantics,
//! bounded by an idle timeout (`CT_SERVE_IDLE_MS`) and a
//! max-requests-per-connection cap, so a client pays the TCP dial
//! once per *session*, not once per artifact — see DESIGN.md for the
//! fairness argument versus the old accept-queue model.
//!
//! Beyond raw object traffic, the server answers *analysis* questions
//! directly: `GET /probe?scenario=…&site=…` (parsed by
//! [`crate::probe::ProbeQuery`]) returns the outcome probabilities
//! (green/orange/red/gray per architecture) computed from the
//! ensemble artifacts it hosts — building and caching the case study
//! on first use, so a fleet of dashboards can poll state
//! probabilities without shipping realizations around.
//!
//! Operational guardrails:
//!
//! - a [`ServeLock`] sentinel in the store root keeps destructive
//!   `fsck --repair`/`--prune` off the store while it is served (and
//!   keeps a second server off the same root);
//! - hot object reads are answered from a byte-budgeted
//!   [`ByteLru`] of *framed* records, so a warm `GET` costs no disk
//!   I/O and no re-checksumming;
//! - malformed requests are answered with 4xx and counted
//!   (`serve.bad_requests`); they never kill a worker *or* the
//!   readiness loop, and a routed 4xx never kills the connection.

use crate::conn::{Conn, Reply, Router, Verdict};
use crate::error::CoreError;
use crate::event::{source_fd, Event, Poller};
use crate::pipeline::{CaseStudy, CaseStudyConfig};
use crate::probe::ProbeQuery;
use ct_scada::Architecture;
use ct_store::format::{decode_record, encode_record};
use ct_store::remote::{query_param, Request};
use ct_store::{ByteLru, Digest, ServeLock, Store};
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Default in-memory cache budget: 256 MiB of framed records.
pub const DEFAULT_CACHE_BYTES: u64 = 256 * 1024 * 1024;
/// Default bind address (loopback; front with a tunnel to go wider).
pub const DEFAULT_ADDR: &str = "127.0.0.1:7171";
/// Default worker-thread count. Each worker is a readiness loop
/// multiplexing many kept-alive connections, so a handful saturate a
/// NIC long before they saturate a core.
pub const DEFAULT_THREADS: usize = 4;
/// Default idle timeout for kept-alive connections, in milliseconds
/// (`CT_SERVE_IDLE_MS` overrides).
pub const DEFAULT_IDLE_MS: u64 = 5_000;
/// Requests served on one connection before the server closes it
/// (the final response says `Connection: close`). Bounds per-socket
/// server state; clients just redial.
pub const DEFAULT_MAX_REQUESTS: u64 = 4_096;

/// Ensemble size a `/probe` uses when the query does not say
/// (deliberately smaller than the paper's 1000: a probe is a live
/// question, not a reproduction run).
pub const DEFAULT_PROBE_REALIZATIONS: usize = 60;

/// The readiness-loop tick: the longest a worker sleeps between
/// stop-flag checks and idle sweeps.
const WAIT_TICK: Duration = Duration::from_millis(100);

/// The poller token reserved for the shared listener.
const LISTENER_TOKEN: u64 = 0;

/// Configuration for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// `host:port` to listen on; port 0 picks a free port
    /// (query [`Server::addr`] for the result).
    pub addr: String,
    /// Open the store in the packed segment layout. This is the
    /// *server's* choice — remote clients never see the layout.
    pub packed: bool,
    /// Byte budget for the in-memory record cache.
    pub cache_bytes: u64,
    /// Worker-thread count (minimum 1); each runs a readiness loop.
    pub threads: usize,
    /// Close kept-alive connections idle longer than this
    /// (default `CT_SERVE_IDLE_MS`, else [`DEFAULT_IDLE_MS`]).
    pub idle_ms: u64,
    /// Close a connection after this many requests
    /// ([`DEFAULT_MAX_REQUESTS`]).
    pub max_requests: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            addr: DEFAULT_ADDR.to_string(),
            packed: false,
            cache_bytes: DEFAULT_CACHE_BYTES,
            threads: DEFAULT_THREADS,
            idle_ms: std::env::var("CT_SERVE_IDLE_MS")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(DEFAULT_IDLE_MS),
            max_requests: DEFAULT_MAX_REQUESTS,
        }
    }
}

/// Cache key for a built probe study: region portfolio + hazard
/// keyword + ensemble size.
type StudyKey = (ct_scada::RegionSpec, &'static str, usize);

/// State shared by every worker thread.
#[derive(Debug)]
struct Shared {
    store: Store,
    cache: ByteLru,
    /// Case studies built for `/probe`, keyed by what changes the
    /// ensemble. Held across requests so a probe is cheap after the
    /// first; the lock is held *during* a build so concurrent
    /// identical probes dedup into one build instead of racing.
    studies: Mutex<HashMap<StudyKey, Arc<CaseStudy>>>,
    stop: AtomicBool,
    idle: Duration,
    max_requests: u64,
}

impl Router for Shared {
    fn route(&self, request: &Request) -> Reply {
        route(self, request)
    }
}

/// A running `ct serve` daemon. Binding acquires the store's
/// [`ServeLock`]; dropping the server shuts the workers down and
/// releases it.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    /// Held for the server's lifetime; its `Drop` removes the
    /// sentinel after the workers are down.
    _lock: ServeLock,
}

impl Server {
    /// Opens the store at `root`, takes its serve lock, binds the
    /// listener, and starts the worker pool.
    ///
    /// # Errors
    ///
    /// Store-open and lock failures (including "already being
    /// served"), and listener bind failures.
    pub fn bind(root: &Path, options: &ServeOptions) -> Result<Self, CoreError> {
        // The lock file lives inside the root, so serving a store that
        // does not exist yet must create it first (as `Store::open`
        // would a moment later).
        std::fs::create_dir_all(root).map_err(|e| CoreError::Io {
            path: root.display().to_string(),
            message: e.to_string(),
        })?;
        let lock = ServeLock::acquire(root)?;
        let store = if options.packed {
            Store::open_packed(root)?
        } else {
            Store::open(root)?
        };
        let io_error = |e: std::io::Error| CoreError::Io {
            path: options.addr.clone(),
            message: e.to_string(),
        };
        let listener = TcpListener::bind(&options.addr).map_err(io_error)?;
        let addr = listener.local_addr().map_err(io_error)?;
        // Every worker's poller watches the same listener; accepts
        // must never block a readiness loop.
        listener.set_nonblocking(true).map_err(io_error)?;
        let shared = Arc::new(Shared {
            store,
            cache: ByteLru::new(options.cache_bytes),
            studies: Mutex::new(HashMap::new()),
            stop: AtomicBool::new(false),
            idle: Duration::from_millis(options.idle_ms.max(1)),
            max_requests: options.max_requests.max(1),
        });
        let workers = (0..options.threads.max(1))
            .map(|i| {
                let listener = listener.try_clone().map_err(io_error)?;
                let shared = Arc::clone(&shared);
                Ok(std::thread::Builder::new()
                    .name(format!("ct-serve-{i}"))
                    .spawn(move || worker_loop(&listener, &shared))
                    .expect("spawning a worker thread"))
            })
            .collect::<Result<Vec<_>, CoreError>>()?;
        Ok(Self {
            addr,
            shared,
            workers,
            _lock: lock,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The `http://host:port` URL clients pass as `--store`.
    pub fn url(&self) -> String {
        format!("http://{}", self.addr)
    }

    /// Stops accepting, wakes every worker, and joins the pool.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // A worker parked in `wait` is woken by its tick within
        // [`WAIT_TICK`]; a connect poke makes the listener readable
        // and wakes everyone sooner.
        let wake: SocketAddr = if self.addr.ip().is_unspecified() {
            SocketAddr::new(
                "127.0.0.1".parse().expect("loopback parses"),
                self.addr.port(),
            )
        } else {
            self.addr
        };
        TcpStream::connect_timeout(&wake, Duration::from_millis(100)).ok();
        for worker in self.workers.drain(..) {
            worker.join().ok();
        }
    }

    /// Blocks this thread until the process dies — the `ct serve`
    /// foreground mode. The workers do all the accepting; this just
    /// parks the main thread.
    pub fn join_forever(self) -> ! {
        loop {
            std::thread::park();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One worker: a readiness loop over the shared listener and this
/// worker's own connections. Every worker registers the listener
/// (level-triggered), so an accept burst wakes them all and they
/// split the backlog.
fn worker_loop(listener: &TcpListener, shared: &Shared) {
    let Ok(poller) = Poller::new() else { return };
    if poller
        .add(source_fd(listener), LISTENER_TOKEN, true, false)
        .is_err()
    {
        return;
    }
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token: u64 = LISTENER_TOKEN + 1;
    let mut events: Vec<Event> = Vec::new();
    loop {
        poller.wait(&mut events, WAIT_TICK).ok();
        if shared.stop.load(Ordering::SeqCst) {
            for (_, conn) in conns.drain() {
                close_conn(&poller, &conn, false);
            }
            return;
        }
        for event in &events {
            if event.token == LISTENER_TOKEN {
                accept_burst(listener, &poller, &mut conns, &mut next_token);
                continue;
            }
            let verdict = match conns.get_mut(&event.token) {
                Some(conn) => conn.on_ready(shared, shared.max_requests),
                // A token can fire twice in one batch (read + hangup)
                // after its first firing closed the connection.
                None => continue,
            };
            match verdict {
                Verdict::KeepGoing { want_write } => {
                    let conn = &conns[&event.token];
                    poller.modify(conn.fd(), event.token, true, want_write).ok();
                }
                Verdict::Close => {
                    if let Some(conn) = conns.remove(&event.token) {
                        close_conn(&poller, &conn, false);
                    }
                }
            }
        }
        sweep_idle(&poller, &mut conns, shared.idle);
    }
}

/// Accepts every pending connection (until `WouldBlock`) and
/// registers each with this worker's poller.
fn accept_burst(
    listener: &TcpListener,
    poller: &Poller,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                stream.set_nodelay(true).ok();
                let conn = Conn::new(stream);
                let token = *next_token;
                *next_token += 1;
                if poller.add(conn.fd(), token, true, false).is_ok() {
                    conns.insert(token, conn);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            // Transient accept errors (EMFILE) must not spin a core.
            Err(_) => {
                std::thread::sleep(Duration::from_millis(5));
                return;
            }
        }
    }
}

/// Closes connections whose peer has gone quiet for the idle
/// timeout, counting `serve.idle_closes`.
fn sweep_idle(poller: &Poller, conns: &mut HashMap<u64, Conn>, idle: Duration) {
    let now = Instant::now();
    let expired: Vec<u64> = conns
        .iter()
        .filter(|(_, conn)| conn.idle_for(now) >= idle)
        .map(|(token, _)| *token)
        .collect();
    for token in expired {
        if let Some(conn) = conns.remove(&token) {
            close_conn(poller, &conn, true);
        }
    }
}

/// Deregisters and accounts one closing connection.
fn close_conn(poller: &Poller, conn: &Conn, idle: bool) {
    poller.remove(conn.fd()).ok();
    if idle {
        ct_obs::add(ct_obs::names::SERVE_IDLE_CLOSES, 1);
    }
    ct_obs::histogram(
        ct_obs::names::SERVE_CONN_LIFETIME_MS,
        &ct_obs::names::SERVE_CONN_LIFETIME_MS_BOUNDS,
    )
    .observe(conn.lifetime_ms());
}

fn route(shared: &Shared, request: &Request) -> Reply {
    let (path, query) = request.split_target();
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => Reply::text(200, "OK", "ok\n"),
        ("GET", "/metricsz") => Reply::text(200, "OK", ct_obs::snapshot().to_csv()),
        ("GET", "/probe") => probe(shared, query),
        (_, p) if p.starts_with("/objects/") => {
            objects(shared, request, &p["/objects/".len()..], query)
        }
        _ => Reply::text(404, "Not Found", "unknown path\n"),
    }
}

/// `/objects/<hex32>`: the [`ct_store::StoreBackend`] verbs over the
/// wire. Bodies are CTSTORE1 frames end to end, so the record
/// checksum rides along and wire damage is caught by whoever decodes.
fn objects(shared: &Shared, request: &Request, hex: &str, query: &str) -> Reply {
    let Some(key) = Digest::from_hex(hex) else {
        return Reply::bad_request("malformed object key (want 32 lower-case hex chars)");
    };
    match request.method.as_str() {
        "GET" => {
            if let Some(frame) = shared.cache.get(&key) {
                return Reply::record(frame.to_vec());
            }
            match shared.store.get(&key) {
                Ok(Some(payload)) => {
                    let frame = encode_record(&payload);
                    shared.cache.put(&key, frame.clone());
                    Reply::record(frame)
                }
                Ok(None) => Reply::text(404, "Not Found", "no such object\n"),
                Err(e) => Reply::server_error(&e.into()),
            }
        }
        "PUT" => {
            // Validate the frame *before* storing: a client whose
            // record was damaged in flight gets a 400 now instead of
            // a corrupt-record eviction later.
            let Ok(payload) = decode_record(&request.body) else {
                return Reply::bad_request("record frame failed validation");
            };
            match shared.store.put(&key, payload) {
                Ok(()) => {
                    shared.cache.put(&key, request.body.clone());
                    Reply::no_content()
                }
                Err(e) => Reply::server_error(&e.into()),
            }
        }
        "DELETE" => {
            shared.cache.remove(&key);
            if query_param(query, "corrupt") == Some("1") {
                match shared.store.invalidate(&key) {
                    Ok(()) => Reply::no_content(),
                    Err(e) => Reply::server_error(&e.into()),
                }
            } else {
                match shared.store.evict(&key) {
                    Ok(existed) => Reply::text(200, "OK", if existed { "1" } else { "0" }),
                    Err(e) => Reply::server_error(&e.into()),
                }
            }
        }
        _ => Reply::text(
            405,
            "Method Not Allowed",
            "objects support GET/PUT/DELETE\n",
        ),
    }
}

/// `GET /probe?scenario=…&site=…[&hazard=…][&realizations=N]`:
/// outcome probabilities per architecture, answered from the hosted
/// ensemble artifacts (built and cached on first use). The query
/// grammar is [`ProbeQuery`]'s — shared verbatim with `ct probe`.
fn probe(shared: &Shared, query: &str) -> Reply {
    ct_obs::add(ct_obs::names::SERVE_PROBES, 1);
    let parsed: ProbeQuery = match query.parse() {
        Ok(q) => q,
        Err(e) => return Reply::bad_request(&e),
    };
    let study = match cached_study(shared, &parsed) {
        Ok(s) => s,
        Err(CoreError::InvalidConfig { field, reason }) => {
            return Reply::bad_request(&format!("{field}: {reason}"))
        }
        Err(e) => return Reply::server_error(&e),
    };
    let mut body = String::from("architecture,green,orange,red,gray\n");
    for architecture in Architecture::ALL {
        match study.profile(architecture, parsed.scenario, parsed.site) {
            Ok(p) => {
                use std::fmt::Write;
                writeln!(
                    body,
                    "{},{},{},{},{}",
                    architecture.label(),
                    p.green(),
                    p.orange(),
                    p.red(),
                    p.gray()
                )
                .expect("writing to a String cannot fail");
            }
            Err(e) => return Reply::server_error(&e),
        }
    }
    Reply::text(200, "OK", body)
}

/// The cached study for `(region, hazard, realizations)`, building
/// through the hosted store on a miss (counted as
/// `serve.probe_builds`).
fn cached_study(shared: &Shared, query: &ProbeQuery) -> Result<Arc<CaseStudy>, CoreError> {
    let key: StudyKey = (query.region, query.hazard.keyword(), query.realizations);
    let mut studies = shared.studies.lock().expect("probe study lock");
    if let Some(study) = studies.get(&key) {
        return Ok(Arc::clone(study));
    }
    ct_obs::add(ct_obs::names::SERVE_PROBE_BUILDS, 1);
    let config = CaseStudyConfig::builder()
        .region(query.region)
        .realizations(query.realizations)
        .hazard(query.hazard)
        .build()?;
    let study = Arc::new(CaseStudy::build_with_store(&config, Some(&shared.store))?);
    studies.insert(key, Arc::clone(&study));
    Ok(study)
}
