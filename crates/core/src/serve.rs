//! `ct serve`: hosting an artifact store over HTTP/1.1.
//!
//! A serving store lets shard runs on disjoint machines share one
//! cache: each shard points `--store http://host:port` at the daemon
//! and the pipeline's [`ct_store::StoreBackend`] calls travel the wire
//! instead of the local filesystem. The daemon itself is std-only — a
//! [`std::net::TcpListener`] drained by a small fixed pool of worker
//! threads, one request per connection (see [`ct_store::remote`] for
//! the wire protocol and why keep-alive is deliberately absent).
//!
//! Beyond raw object traffic, the server answers *analysis* questions
//! directly: `GET /probe?scenario=…&site=…` returns the outcome
//! probabilities (green/orange/red/gray per architecture) computed
//! from the ensemble artifacts it hosts — building and caching the
//! case study on first use, so a fleet of dashboards can poll
//! state probabilities without shipping realizations around.
//!
//! Operational guardrails:
//!
//! - a [`ServeLock`] sentinel in the store root keeps destructive
//!   `fsck --repair`/`--prune` off the store while it is served (and
//!   keeps a second server off the same root);
//! - hot object reads are answered from a byte-budgeted
//!   [`ByteLru`] of *framed* records, so a warm `GET` costs no disk
//!   I/O and no re-checksumming;
//! - malformed requests are answered with 4xx and counted
//!   (`serve.bad_requests`); they never kill a worker.

use crate::error::CoreError;
use crate::pipeline::{CaseStudy, CaseStudyConfig};
use ct_hazard::HazardSpec;
use ct_scada::Architecture;
use ct_store::format::{decode_record, encode_record};
use ct_store::remote::{query_param, read_request, write_response, Request, RequestError};
use ct_store::{ByteLru, Digest, ServeLock, Store};
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Default in-memory cache budget: 256 MiB of framed records.
pub const DEFAULT_CACHE_BYTES: u64 = 256 * 1024 * 1024;
/// Default bind address (loopback; front with a tunnel to go wider).
pub const DEFAULT_ADDR: &str = "127.0.0.1:7171";
/// Default worker-thread count. Small on purpose: requests are short
/// (one object or one cached probe), so a handful of workers saturate
/// a NIC long before they saturate a core; the kernel accept queue
/// absorbs bursts.
pub const DEFAULT_THREADS: usize = 4;

/// Ensemble size a `/probe` uses when the query does not say
/// (deliberately smaller than the paper's 1000: a probe is a live
/// question, not a reproduction run).
pub const DEFAULT_PROBE_REALIZATIONS: usize = 60;

/// How long a worker waits on a request before giving up on the
/// client (a stalled sender must not pin a worker forever).
const REQUEST_TIMEOUT: Duration = Duration::from_secs(30);

/// Configuration for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// `host:port` to listen on; port 0 picks a free port
    /// (query [`Server::addr`] for the result).
    pub addr: String,
    /// Open the store in the packed segment layout. This is the
    /// *server's* choice — remote clients never see the layout.
    pub packed: bool,
    /// Byte budget for the in-memory record cache.
    pub cache_bytes: u64,
    /// Worker-thread count (minimum 1).
    pub threads: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            addr: DEFAULT_ADDR.to_string(),
            packed: false,
            cache_bytes: DEFAULT_CACHE_BYTES,
            threads: DEFAULT_THREADS,
        }
    }
}

/// Cache key for a built probe study: hazard keyword + ensemble size.
type StudyKey = (&'static str, usize);

/// State shared by every worker thread.
#[derive(Debug)]
struct Shared {
    store: Store,
    cache: ByteLru,
    /// Case studies built for `/probe`, keyed by what changes the
    /// ensemble. Held across requests so a probe is cheap after the
    /// first; the lock is held *during* a build so concurrent
    /// identical probes dedup into one build instead of racing.
    studies: Mutex<HashMap<StudyKey, Arc<CaseStudy>>>,
    stop: AtomicBool,
}

/// A running `ct serve` daemon. Binding acquires the store's
/// [`ServeLock`]; dropping the server shuts the workers down and
/// releases it.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    listener: TcpListener,
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    /// Held for the server's lifetime; its `Drop` removes the
    /// sentinel after the workers are down.
    _lock: ServeLock,
}

impl Server {
    /// Opens the store at `root`, takes its serve lock, binds the
    /// listener, and starts the worker pool.
    ///
    /// # Errors
    ///
    /// Store-open and lock failures (including "already being
    /// served"), and listener bind failures.
    pub fn bind(root: &Path, options: &ServeOptions) -> Result<Self, CoreError> {
        // The lock file lives inside the root, so serving a store that
        // does not exist yet must create it first (as `Store::open`
        // would a moment later).
        std::fs::create_dir_all(root).map_err(|e| CoreError::Io {
            path: root.display().to_string(),
            message: e.to_string(),
        })?;
        let lock = ServeLock::acquire(root)?;
        let store = if options.packed {
            Store::open_packed(root)?
        } else {
            Store::open(root)?
        };
        let listener = TcpListener::bind(&options.addr).map_err(|e| CoreError::Io {
            path: options.addr.clone(),
            message: e.to_string(),
        })?;
        let addr = listener.local_addr().map_err(|e| CoreError::Io {
            path: options.addr.clone(),
            message: e.to_string(),
        })?;
        let shared = Arc::new(Shared {
            store,
            cache: ByteLru::new(options.cache_bytes),
            studies: Mutex::new(HashMap::new()),
            stop: AtomicBool::new(false),
        });
        let workers = (0..options.threads.max(1))
            .map(|i| {
                let listener = listener.try_clone().map_err(|e| CoreError::Io {
                    path: options.addr.clone(),
                    message: e.to_string(),
                })?;
                let shared = Arc::clone(&shared);
                Ok(std::thread::Builder::new()
                    .name(format!("ct-serve-{i}"))
                    .spawn(move || worker_loop(&listener, &shared))
                    .expect("spawning a worker thread"))
            })
            .collect::<Result<Vec<_>, CoreError>>()?;
        Ok(Self {
            addr,
            listener,
            shared,
            workers,
            _lock: lock,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The `http://host:port` URL clients pass as `--store`.
    pub fn url(&self) -> String {
        format!("http://{}", self.addr)
    }

    /// Stops accepting, wakes every worker, and joins the pool.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // A blocked `accept` is only woken by a connection, so poke
        // the listener until each worker has actually exited (a
        // single poke can be consumed by the "wrong" worker). The
        // nonblocking flip keeps woken workers from blocking again.
        self.listener.set_nonblocking(true).ok();
        let wake: SocketAddr = if self.addr.ip().is_unspecified() {
            SocketAddr::new(
                "127.0.0.1".parse().expect("loopback parses"),
                self.addr.port(),
            )
        } else {
            self.addr
        };
        for worker in self.workers.drain(..) {
            while !worker.is_finished() {
                TcpStream::connect_timeout(&wake, Duration::from_millis(100)).ok();
                std::thread::sleep(Duration::from_millis(1));
            }
            worker.join().ok();
        }
    }

    /// Blocks this thread until the process dies — the `ct serve`
    /// foreground mode. The workers do all the accepting; this just
    /// parks the main thread.
    pub fn join_forever(self) -> ! {
        loop {
            std::thread::park();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        let accepted = listener.accept();
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        match accepted {
            Ok((stream, _)) => handle(shared, stream),
            // Transient accept errors (EMFILE, WouldBlock after a
            // nonblocking flip lost a race) must not spin a core.
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// One response, however the request went.
struct Reply {
    status: u16,
    reason: &'static str,
    content_type: &'static str,
    body: Vec<u8>,
}

impl Reply {
    fn text(status: u16, reason: &'static str, body: impl Into<String>) -> Self {
        Reply {
            status,
            reason,
            content_type: "text/plain",
            body: body.into().into_bytes(),
        }
    }

    fn record(frame: Vec<u8>) -> Self {
        Reply {
            status: 200,
            reason: "OK",
            content_type: "application/octet-stream",
            body: frame,
        }
    }

    fn no_content() -> Self {
        Reply::text(204, "No Content", "")
    }

    fn bad_request(message: &str) -> Self {
        Reply::text(400, "Bad Request", format!("{message}\n"))
    }

    fn server_error(e: &CoreError) -> Self {
        Reply::text(500, "Internal Server Error", format!("{e}\n"))
    }
}

/// Serves one connection: read, route, respond, close. Every path —
/// including garbage and oversized requests — ends in a response (or
/// a dead transport) and a returning worker.
fn handle(shared: &Shared, mut stream: TcpStream) {
    let started = Instant::now();
    ct_obs::add(ct_obs::names::SERVE_REQUESTS, 1);
    stream.set_read_timeout(Some(REQUEST_TIMEOUT)).ok();
    stream.set_write_timeout(Some(REQUEST_TIMEOUT)).ok();
    let reply = match read_request(&mut stream) {
        Ok(request) => route(shared, &request),
        Err(e) => {
            let Some((status, reason)) = e.status() else {
                // The transport died mid-request; nobody to answer.
                return;
            };
            ct_obs::add(ct_obs::names::SERVE_BAD_REQUESTS, 1);
            let detail = match e {
                RequestError::BadRequest(why) => why,
                _ => "request exceeds protocol limits",
            };
            Reply::text(status, reason, format!("{detail}\n"))
        }
    };
    if reply.status == 400 || reply.status == 404 {
        ct_obs::add(ct_obs::names::SERVE_BAD_REQUESTS, 1);
    }
    write_response(
        &mut stream,
        reply.status,
        reply.reason,
        reply.content_type,
        &reply.body,
    )
    .ok();
    ct_obs::histogram(
        ct_obs::names::SERVE_REQUEST_MS,
        &ct_obs::names::SERVE_REQUEST_MS_BOUNDS,
    )
    .observe(started.elapsed().as_secs_f64() * 1000.0);
}

fn route(shared: &Shared, request: &Request) -> Reply {
    let (path, query) = request.split_target();
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => Reply::text(200, "OK", "ok\n"),
        ("GET", "/metricsz") => Reply::text(200, "OK", ct_obs::snapshot().to_csv()),
        ("GET", "/probe") => probe(shared, query),
        (_, p) if p.starts_with("/objects/") => {
            objects(shared, request, &p["/objects/".len()..], query)
        }
        _ => Reply::text(404, "Not Found", "unknown path\n"),
    }
}

/// `/objects/<hex32>`: the [`ct_store::StoreBackend`] verbs over the
/// wire. Bodies are CTSTORE1 frames end to end, so the record
/// checksum rides along and wire damage is caught by whoever decodes.
fn objects(shared: &Shared, request: &Request, hex: &str, query: &str) -> Reply {
    let Some(key) = Digest::from_hex(hex) else {
        return Reply::bad_request("malformed object key (want 32 lower-case hex chars)");
    };
    match request.method.as_str() {
        "GET" => {
            if let Some(frame) = shared.cache.get(&key) {
                return Reply::record(frame.to_vec());
            }
            match shared.store.get(&key) {
                Ok(Some(payload)) => {
                    let frame = encode_record(&payload);
                    shared.cache.put(&key, frame.clone());
                    Reply::record(frame)
                }
                Ok(None) => Reply::text(404, "Not Found", "no such object\n"),
                Err(e) => Reply::server_error(&e.into()),
            }
        }
        "PUT" => {
            // Validate the frame *before* storing: a client whose
            // record was damaged in flight gets a 400 now instead of
            // a corrupt-record eviction later.
            let Ok(payload) = decode_record(&request.body) else {
                return Reply::bad_request("record frame failed validation");
            };
            match shared.store.put(&key, payload) {
                Ok(()) => {
                    shared.cache.put(&key, request.body.clone());
                    Reply::no_content()
                }
                Err(e) => Reply::server_error(&e.into()),
            }
        }
        "DELETE" => {
            shared.cache.remove(&key);
            if query_param(query, "corrupt") == Some("1") {
                match shared.store.invalidate(&key) {
                    Ok(()) => Reply::no_content(),
                    Err(e) => Reply::server_error(&e.into()),
                }
            } else {
                match shared.store.evict(&key) {
                    Ok(existed) => Reply::text(200, "OK", if existed { "1" } else { "0" }),
                    Err(e) => Reply::server_error(&e.into()),
                }
            }
        }
        _ => Reply::text(
            405,
            "Method Not Allowed",
            "objects support GET/PUT/DELETE\n",
        ),
    }
}

/// `GET /probe?scenario=…&site=…[&hazard=…][&realizations=N]`:
/// outcome probabilities per architecture, answered from the hosted
/// ensemble artifacts (built and cached on first use).
fn probe(shared: &Shared, query: &str) -> Reply {
    ct_obs::add(ct_obs::names::SERVE_PROBES, 1);
    let Some(scenario) = query_param(query, "scenario") else {
        return Reply::bad_request("probe needs scenario= (e.g. hurricane-intrusion-isolation)");
    };
    let scenario: ct_threat::ThreatScenario = match scenario.parse() {
        Ok(s) => s,
        Err(e) => return Reply::bad_request(&e.to_string()),
    };
    let Some(site) = query_param(query, "site") else {
        return Reply::bad_request("probe needs site= (waiau | kahe)");
    };
    let site: ct_scada::oahu::SiteChoice = match site.parse() {
        Ok(s) => s,
        Err(e) => return Reply::bad_request(&e.to_string()),
    };
    let hazard = match query_param(query, "hazard") {
        None => HazardSpec::default(),
        Some(h) => match h.parse::<HazardSpec>() {
            Ok(h) => h,
            Err(e) => return Reply::bad_request(&e.to_string()),
        },
    };
    let realizations = match query_param(query, "realizations") {
        None => DEFAULT_PROBE_REALIZATIONS,
        Some(n) => match n.parse::<usize>() {
            Ok(n) => n,
            Err(_) => return Reply::bad_request("realizations= must be a positive integer"),
        },
    };
    let study = match cached_study(shared, hazard, realizations) {
        Ok(s) => s,
        Err(CoreError::InvalidConfig { field, reason }) => {
            return Reply::bad_request(&format!("{field}: {reason}"))
        }
        Err(e) => return Reply::server_error(&e),
    };
    let mut body = String::from("architecture,green,orange,red,gray\n");
    for architecture in Architecture::ALL {
        match study.profile(architecture, scenario, site) {
            Ok(p) => {
                use std::fmt::Write;
                writeln!(
                    body,
                    "{},{},{},{},{}",
                    architecture.label(),
                    p.green(),
                    p.orange(),
                    p.red(),
                    p.gray()
                )
                .expect("writing to a String cannot fail");
            }
            Err(e) => return Reply::server_error(&e),
        }
    }
    Reply::text(200, "OK", body)
}

/// The cached study for `(hazard, realizations)`, building through
/// the hosted store on a miss (counted as `serve.probe_builds`).
fn cached_study(
    shared: &Shared,
    hazard: HazardSpec,
    realizations: usize,
) -> Result<Arc<CaseStudy>, CoreError> {
    let key: StudyKey = (hazard.keyword(), realizations);
    let mut studies = shared.studies.lock().expect("probe study lock");
    if let Some(study) = studies.get(&key) {
        return Ok(Arc::clone(study));
    }
    ct_obs::add(ct_obs::names::SERVE_PROBE_BUILDS, 1);
    let config = CaseStudyConfig::builder()
        .realizations(realizations)
        .hazard(hazard)
        .build()?;
    let study = Arc::new(CaseStudy::build_with_store(&config, Some(&shared.store))?);
    studies.insert(key, Arc::clone(&study));
    Ok(study)
}
