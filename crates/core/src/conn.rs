//! The per-connection state machine behind `ct serve`'s readiness
//! loop.
//!
//! A [`Conn`] owns one nonblocking accepted socket and three pieces
//! of state: an input buffer the readiness loop fills, an output
//! buffer it drains, and the keep-alive accounting (requests served,
//! last activity, close-after-flush). Each time the
//! [`Poller`](crate::event::Poller) reports the socket ready, the
//! worker calls
//! [`Conn::on_ready`], which
//!
//! 1. reads until `WouldBlock` (or EOF),
//! 2. parses **every complete pipelined request** in the buffer with
//!    [`ct_store::remote::parse_request`], routing each through the
//!    [`Router`] and queueing its response — so pipelining costs no
//!    extra wakeups,
//! 3. writes queued bytes until `WouldBlock` or empty.
//!
//! Connection-mode rules, shared with the wire codec:
//!
//! - a routed response echoes the request's negotiated mode, so a
//!   routed 4xx (bad object key, unknown path) **keeps the
//!   connection alive** — the framing is intact, only the request
//!   was wrong;
//! - a *parse-level* 4xx (malformed head, oversized head or body)
//!   answers and then closes: after garbage, the request boundary is
//!   unknowable, so keeping the socket would misparse everything
//!   after it;
//! - the response to request number `max_requests` on one socket is
//!   marked `Connection: close` and the socket drains and closes —
//!   the bound that keeps one immortal client from pinning server
//!   state forever.
//!
//! The worker loop owns policy outside the socket: accept, idle
//! sweeps (`CT_SERVE_IDLE_MS`), lifetime histograms, and teardown.

use crate::error::CoreError;
use ct_store::remote::{encode_response, parse_request, Request};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// One response, however the request went.
pub struct Reply {
    /// HTTP status code.
    pub status: u16,
    /// Status-line reason phrase.
    pub reason: &'static str,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
}

impl Reply {
    /// A plain-text reply.
    pub fn text(status: u16, reason: &'static str, body: impl Into<String>) -> Self {
        Reply {
            status,
            reason,
            content_type: "text/plain",
            body: body.into().into_bytes(),
        }
    }

    /// A framed store record.
    pub fn record(frame: Vec<u8>) -> Self {
        Reply {
            status: 200,
            reason: "OK",
            content_type: "application/octet-stream",
            body: frame,
        }
    }

    /// An empty 204.
    pub fn no_content() -> Self {
        Reply::text(204, "No Content", "")
    }

    /// A 400 with a one-line explanation.
    pub fn bad_request(message: &str) -> Self {
        Reply::text(400, "Bad Request", format!("{message}\n"))
    }

    /// A 500 carrying the error's display form.
    pub fn server_error(e: &CoreError) -> Self {
        Reply::text(500, "Internal Server Error", format!("{e}\n"))
    }
}

/// What the serving tier does with one parsed request. Implemented
/// by the server's shared state; the connection state machine stays
/// ignorant of routes.
pub trait Router {
    /// Routes one request to a reply. Must not panic on hostile
    /// input — malformed *content* is a 4xx reply, not an error.
    fn route(&self, request: &Request) -> Reply;
}

/// What the worker loop should do with the connection after an
/// [`Conn::on_ready`] pass.
#[derive(Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Keep the registration; re-arm with write interest iff
    /// `want_write` (queued bytes the socket would not take yet).
    KeepGoing {
        /// Output is pending; poll for writability.
        want_write: bool,
    },
    /// Drained, errored, or told to close: deregister and drop.
    Close,
}

/// One kept-alive server connection.
#[derive(Debug)]
pub struct Conn {
    stream: TcpStream,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    /// Bytes of `outbuf` already written to the socket.
    written: usize,
    /// Requests answered on this socket (including parse-level 4xx).
    requests: u64,
    opened: Instant,
    last_activity: Instant,
    /// Answer what is queued, then close instead of reading more.
    close_after_flush: bool,
    /// The peer is gone; queued bytes are undeliverable.
    peer_gone: bool,
}

impl Conn {
    /// Adopts an accepted socket; the caller has already set it
    /// nonblocking and registered it readable.
    pub fn new(stream: TcpStream) -> Self {
        let now = Instant::now();
        Self {
            stream,
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            written: 0,
            requests: 0,
            opened: now,
            last_activity: now,
            close_after_flush: false,
            peer_gone: false,
        }
    }

    /// The raw fd for poller registration.
    pub fn fd(&self) -> i32 {
        crate::event::source_fd(&self.stream)
    }

    /// How long this connection has been open, in milliseconds —
    /// the `serve.conn_lifetime_ms` observation at close.
    pub fn lifetime_ms(&self) -> f64 {
        self.opened.elapsed().as_secs_f64() * 1000.0
    }

    /// How long since the peer last made progress (bytes read from
    /// or written to it), as of `now`.
    pub fn idle_for(&self, now: Instant) -> Duration {
        now.saturating_duration_since(self.last_activity)
    }

    /// Runs the read → parse/route → write cycle for one readiness
    /// report. Never panics on wire input; a hostile byte stream
    /// ends, at worst, in a 4xx and [`Verdict::Close`].
    pub fn on_ready(&mut self, router: &impl Router, max_requests: u64) -> Verdict {
        if self.fill() {
            self.drain_requests(router, max_requests);
        }
        self.flush()
    }

    /// Reads until `WouldBlock`/EOF. Returns whether routing should
    /// run (false once the connection is beyond reading).
    fn fill(&mut self) -> bool {
        if self.close_after_flush || self.peer_gone {
            return false;
        }
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    // EOF. Anything already queued still flushes (a
                    // half-closed client may be reading); a partial
                    // request in the buffer is dealt with by the
                    // parse loop's truncation answer below.
                    self.peer_gone = self.inbuf.is_empty() && self.outbuf.len() == self.written;
                    self.close_after_flush = true;
                    return !self.inbuf.is_empty();
                }
                Ok(n) => {
                    self.inbuf.extend_from_slice(&chunk[..n]);
                    self.last_activity = Instant::now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.peer_gone = true;
                    self.close_after_flush = true;
                    return false;
                }
            }
        }
    }

    /// Parses and routes every complete request in `inbuf`,
    /// queueing responses. Stops at a partial request (need more
    /// bytes), a parse error (answer, then close), or the
    /// max-requests bound.
    fn drain_requests(&mut self, router: &impl Router, max_requests: u64) {
        loop {
            if self.close_after_flush && self.inbuf.is_empty() {
                return;
            }
            match parse_request(&self.inbuf) {
                Ok(None) => {
                    if self.close_after_flush && !self.inbuf.is_empty() {
                        // EOF behind a partial request: answer the
                        // truncation like the one-shot server did,
                        // for clients that still read after shutdown.
                        self.queue_bad(400, "Bad Request", "truncated request\n");
                        self.inbuf.clear();
                    }
                    return;
                }
                Ok(Some((request, consumed))) => {
                    self.inbuf.drain(..consumed);
                    self.requests += 1;
                    ct_obs::add(ct_obs::names::SERVE_REQUESTS, 1);
                    if self.requests > 1 {
                        ct_obs::add(ct_obs::names::SERVE_KEEPALIVE_REUSES, 1);
                    }
                    let started = Instant::now();
                    let reply = router.route(&request);
                    if reply.status == 400 || reply.status == 404 {
                        ct_obs::add(ct_obs::names::SERVE_BAD_REQUESTS, 1);
                    }
                    let keep = request.keep_alive && self.requests < max_requests;
                    self.outbuf.extend_from_slice(&encode_response(
                        reply.status,
                        reply.reason,
                        reply.content_type,
                        &reply.body,
                        keep,
                    ));
                    ct_obs::histogram(
                        ct_obs::names::SERVE_REQUEST_MS,
                        &ct_obs::names::SERVE_REQUEST_MS_BOUNDS,
                    )
                    .observe(started.elapsed().as_secs_f64() * 1000.0);
                    if !keep {
                        self.close_after_flush = true;
                        self.inbuf.clear();
                        return;
                    }
                }
                Err(e) => {
                    // Parse-level failure: the request boundary is
                    // lost, so answer (when answerable) and close.
                    if let Some((status, reason)) = e.status() {
                        let detail = e.detail();
                        self.queue_bad(status, reason, &format!("{detail}\n"));
                    } else {
                        self.close_after_flush = true;
                    }
                    self.inbuf.clear();
                    return;
                }
            }
        }
    }

    /// Queues a parse-level 4xx (counted as a bad request) and marks
    /// the connection for closing: after unframeable input, nothing
    /// later on the socket can be trusted.
    fn queue_bad(&mut self, status: u16, reason: &'static str, body: &str) {
        self.requests += 1;
        ct_obs::add(ct_obs::names::SERVE_REQUESTS, 1);
        ct_obs::add(ct_obs::names::SERVE_BAD_REQUESTS, 1);
        self.outbuf.extend_from_slice(&encode_response(
            status,
            reason,
            "text/plain",
            body.as_bytes(),
            false,
        ));
        self.close_after_flush = true;
    }

    /// Writes queued bytes until `WouldBlock` or empty, then decides
    /// the verdict.
    fn flush(&mut self) -> Verdict {
        if self.peer_gone {
            return Verdict::Close;
        }
        while self.written < self.outbuf.len() {
            match self.stream.write(&self.outbuf[self.written..]) {
                Ok(0) => return Verdict::Close,
                Ok(n) => {
                    self.written += n;
                    self.last_activity = Instant::now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return Verdict::Close,
            }
        }
        if self.written == self.outbuf.len() {
            self.outbuf.clear();
            self.written = 0;
            if self.close_after_flush {
                return Verdict::Close;
            }
        }
        Verdict::KeepGoing {
            want_write: self.written < self.outbuf.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_store::remote::{parse_response, read_response, write_request, Response};
    use std::net::TcpListener;

    /// Reads `n` pipelined responses off one socket — [`read_response`]
    /// deliberately rejects trailing bytes, so batched answers need
    /// the incremental parser.
    fn read_responses(client: &mut TcpStream, n: usize) -> Vec<Response> {
        client
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        let mut buf = Vec::new();
        let mut out = Vec::new();
        let mut chunk = [0u8; 4096];
        while out.len() < n {
            if let Some((response, used)) = parse_response(&buf).unwrap() {
                buf.drain(..used);
                out.push(response);
                continue;
            }
            let got = client.read(&mut chunk).unwrap();
            assert!(
                got > 0,
                "socket closed after {} of {n} responses",
                out.len()
            );
            buf.extend_from_slice(&chunk[..got]);
        }
        out
    }

    /// Echoes the method and target; 404s a magic path.
    struct EchoRouter;

    impl Router for EchoRouter {
        fn route(&self, request: &Request) -> Reply {
            if request.target == "/missing" {
                return Reply::text(404, "Not Found", "nope\n");
            }
            Reply::text(
                200,
                "OK",
                format!("{} {}\n", request.method, request.target),
            )
        }
    }

    fn pair() -> (TcpStream, Conn) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_end, _) = listener.accept().unwrap();
        server_end.set_nonblocking(true).unwrap();
        (client, Conn::new(server_end))
    }

    #[test]
    fn pipelined_requests_are_answered_in_order_on_one_socket() {
        let (mut client, mut conn) = pair();
        write_request(&mut client, "GET", "/a", &[], true).unwrap();
        write_request(&mut client, "GET", "/missing", &[], true).unwrap();
        write_request(&mut client, "GET", "/b", &[], true).unwrap();
        // Allow loopback delivery before the readiness pass.
        std::thread::sleep(Duration::from_millis(30));
        let verdict = conn.on_ready(&EchoRouter, 1000);
        assert_eq!(verdict, Verdict::KeepGoing { want_write: false });

        let responses = read_responses(&mut client, 3);
        assert_eq!((responses[0].status, responses[0].keep_alive), (200, true));
        assert_eq!(responses[0].body, b"GET /a\n");
        // The routed 404 keeps the connection alive: framing intact.
        assert_eq!((responses[1].status, responses[1].keep_alive), (404, true));
        assert_eq!(responses[2].body, b"GET /b\n");
    }

    #[test]
    fn parse_garbage_answers_400_and_closes() {
        let (mut client, mut conn) = pair();
        client.write_all(b"florble grumble\r\n\r\n").unwrap();
        std::thread::sleep(Duration::from_millis(30));
        let verdict = conn.on_ready(&EchoRouter, 1000);
        assert_eq!(verdict, Verdict::Close);
        let response = read_response(&mut client).unwrap();
        assert_eq!((response.status, response.keep_alive), (400, false));
    }

    #[test]
    fn max_requests_bound_marks_the_last_response_close() {
        let (mut client, mut conn) = pair();
        write_request(&mut client, "GET", "/1", &[], true).unwrap();
        write_request(&mut client, "GET", "/2", &[], true).unwrap();
        write_request(&mut client, "GET", "/3", &[], true).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        let verdict = conn.on_ready(&EchoRouter, 2);
        // Request #2 hits the bound; #3 is never answered.
        assert_eq!(verdict, Verdict::Close);
        let responses = read_responses(&mut client, 2);
        assert!(responses[0].keep_alive);
        assert!(!responses[1].keep_alive);
        drop(conn);
        let mut rest = Vec::new();
        client.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty(), "socket must be closed with nothing queued");
    }

    #[test]
    fn client_close_request_is_honored() {
        let (mut client, mut conn) = pair();
        write_request(&mut client, "GET", "/only", &[], false).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        let verdict = conn.on_ready(&EchoRouter, 1000);
        assert_eq!(verdict, Verdict::Close);
        let response = read_response(&mut client).unwrap();
        assert_eq!((response.status, response.keep_alive), (200, false));
    }
}
