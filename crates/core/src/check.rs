//! `ct check`: model-checking one Table I cell.
//!
//! A cell of Table I is an (architecture, threat scenario) pair with
//! a claimed color. [`check_cell`] turns the claim into a verified
//! statement: it enumerates every worst-case-attacker system state
//! the cell can reach ([`crate::crossval::reachable_states_for`]) and
//! checks each one three ways —
//!
//! 1. the rule-based classifier's answer (Table I itself),
//! 2. a single sampled protocol execution
//!    ([`ct_replication::run_scenario`]),
//! 3. one of the two schedule tiers: bounded *exhaustive* exploration
//!    of delivery orderings ([`ct_replication::explore_scenario`]) or
//!    a seeded *randomized* fault campaign
//!    ([`ct_replication::randomized_campaign`]) —
//!
//! and fails when the worst state observed across any tier is not the
//! color the rule predicts. Violations carry a replayable
//! counterexample: a choice-point trace (exhaustive) or a schedule
//! seed (randomized; rerun with `--schedules 1 --seed <s>`).
//!
//! Everything is deterministic: same options, same report,
//! independent of `CT_THREADS`.

use crate::crossval::{deployment_for, fault_scenario_for, reachable_states_for, states_agree};
use ct_replication::{
    default_campaign_dist, explore_scenario, randomized_campaign, run_scenario, worse,
    ObservedState, VerdictConfig,
};
use ct_scada::Architecture;
use ct_simnet::{ExploreConfig, SimTime};
use ct_threat::{classify, OperationalState, SystemState, ThreatScenario};
use std::fmt::Write as _;

/// Which schedule tier verifies the cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckMode {
    /// Bounded exhaustive exploration of delivery orderings up to
    /// `depth` choice points per path.
    Exhaustive {
        /// Maximum choice points along one path.
        depth: usize,
    },
    /// `schedules` randomized schedules seeded from `seed`.
    Randomized {
        /// Number of schedules to run per state.
        schedules: u64,
        /// Base seed; run `i` uses `seed + i`.
        seed: u64,
    },
}

/// What to check: one Table I cell and the tier to verify it with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckOptions {
    /// The architecture column.
    pub architecture: Architecture,
    /// The threat-scenario row.
    pub scenario: ThreatScenario,
    /// Schedule tier.
    pub mode: CheckMode,
}

/// Virtual-time horizon of every checked execution. Long enough for
/// the slowest recovery path (cold-backup activation at ~32 s virtual
/// with the default attack time) plus the resume margin.
pub fn check_horizon() -> SimTime {
    SimTime::from_secs(40.0)
}

/// The verdict configuration all check executions share: defaults
/// with the run cut to [`check_horizon`] and the resume margin
/// widened to the orange gap.
///
/// The quorum deployments cycle through short planned outages
/// (proactive recovery forcing view changes) of up to ~4 s when a
/// site is flooded. With the default 3 s margin, a horizon that ends
/// *inside* one of those transient windows reads as "never resumed"
/// — a measurement artifact of where the run was cut, not a liveness
/// failure (the 60 s cross-validation run of the same schedule
/// resumes). Trailing silence is already charged to `max_gap`, so the
/// consistent tolerance for it is the same gap the verdict accepts
/// mid-run: anything beyond `orange_gap` of silence at the end is
/// still red.
pub fn check_config() -> VerdictConfig {
    let defaults = VerdictConfig::default();
    VerdictConfig {
        run_duration: check_horizon(),
        resume_margin: defaults.orange_gap,
        ..defaults
    }
}

/// One reachable system state, checked.
#[derive(Debug, Clone)]
pub struct StateCheck {
    /// The post-compound-threat system state.
    pub state: SystemState,
    /// Table I's answer.
    pub rule: OperationalState,
    /// One sampled protocol execution's answer.
    pub sampled: ObservedState,
    /// Worst state observed across the tier's schedules.
    pub worst: ObservedState,
    /// Property violations found by the tier.
    pub violations: u64,
    /// Replay handle for the first violation: `trace=i.j.k`
    /// (exhaustive choice-point indices) or `seed=s` (randomized).
    pub counterexample: Option<String>,
    /// Tier-specific counters, emitted verbatim into the CSV.
    pub detail: Vec<(&'static str, String)>,
}

impl StateCheck {
    /// Whether the rule, the sampled run, and the tier's worst case
    /// all name the same color.
    pub fn agrees(&self) -> bool {
        states_agree(self.rule, self.sampled) && states_agree(self.rule, self.worst)
    }
}

/// The result of checking one Table I cell.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// The architecture column.
    pub architecture: Architecture,
    /// The threat-scenario row.
    pub scenario: ThreatScenario,
    /// Schedule tier used.
    pub mode: CheckMode,
    /// Every reachable state, checked.
    pub states: Vec<StateCheck>,
}

impl CheckReport {
    /// Whether every reachable state's colors agree across the rule,
    /// the sampled run, and the tier's worst case.
    pub fn ok(&self) -> bool {
        self.states.iter().all(StateCheck::agrees)
    }

    /// Total property violations across all states. Nonzero is not
    /// failure by itself: a gray cell's violations *confirm* the rule.
    pub fn violations(&self) -> u64 {
        self.states.iter().map(|s| s.violations).sum()
    }

    /// The first counterexample across all states, tagged with its
    /// state index (e.g. `state0:seed=3`).
    pub fn counterexample(&self) -> Option<String> {
        self.states
            .iter()
            .enumerate()
            .find_map(|(i, s)| s.counterexample.as_ref().map(|c| format!("state{i}:{c}")))
    }

    /// Greppable CSV: one `check,<field>,<value>` line per fact.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let mut line = |field: &str, value: &str| {
            let _ = writeln!(out, "check,{field},{value}");
        };
        line("arch", self.architecture.label());
        line("scenario", self.scenario.keyword());
        match self.mode {
            CheckMode::Exhaustive { depth } => {
                line("mode", "exhaustive");
                line("depth", &depth.to_string());
            }
            CheckMode::Randomized { schedules, seed } => {
                line("mode", "randomized");
                line("schedules", &schedules.to_string());
                line("seed", &seed.to_string());
            }
        }
        line("horizon_s", &format!("{:.0}", check_horizon().as_secs()));
        line("states", &self.states.len().to_string());
        for (i, s) in self.states.iter().enumerate() {
            let f = |name: &str| format!("state{i}.{name}");
            // SystemState's Display uses ", " between sites; keep the
            // CSV three-field.
            line(&f("system"), &s.state.to_string().replace(", ", " "));
            line(&f("rule"), &s.rule.to_string());
            line(&f("sampled"), &s.sampled.to_string());
            line(&f("worst"), &s.worst.to_string());
            line(&f("violations"), &s.violations.to_string());
            if let Some(c) = &s.counterexample {
                line(&f("counterexample"), c);
            }
            for (name, value) in &s.detail {
                line(&f(name), value);
            }
            line(&f("agrees"), if s.agrees() { "yes" } else { "NO" });
        }
        line("violations", &self.violations().to_string());
        match self.counterexample() {
            Some(c) => line("counterexample", &c),
            None => line("counterexample", "none"),
        }
        line("agreement", if self.ok() { "ok" } else { "FAIL" });
        out
    }
}

/// Checks one Table I cell: every reachable worst-case state, under
/// the sampled run plus the requested schedule tier.
///
/// Deployments are checked with a single RTU — the service signal is
/// the same, and exhaustive exploration cost scales with the event
/// rate.
pub fn check_cell(options: &CheckOptions) -> CheckReport {
    let _span = ct_obs::span("check_cell");
    let config = check_config();
    let mut spec = deployment_for(options.architecture);
    spec.rtu_count = 1;
    let mut states = Vec::new();
    for state in reachable_states_for(options.architecture, options.scenario) {
        ct_obs::add(ct_obs::names::CHECK_STATES_CHECKED, 1);
        let rule = classify(&state);
        let faults = fault_scenario_for(&state);
        let sampled = run_scenario(&spec, &faults, &config).state;
        let checked = match options.mode {
            CheckMode::Exhaustive { depth } => {
                let explore = ExploreConfig {
                    horizon: check_horizon(),
                    max_depth: depth,
                    ..ExploreConfig::default()
                };
                let out = explore_scenario(&spec, &faults, &config, &explore);
                StateCheck {
                    state,
                    rule,
                    sampled,
                    worst: worse(out.worst, sampled),
                    violations: out.violations.len() as u64,
                    counterexample: out.violations.first().map(|v| {
                        let trace: Vec<String> = v.trace.iter().map(|b| b.to_string()).collect();
                        format!(
                            "trace={}",
                            if trace.is_empty() {
                                "root".to_string()
                            } else {
                                trace.join(".")
                            }
                        )
                    }),
                    detail: vec![
                        ("visited", out.stats.visited.to_string()),
                        ("choice_points", out.stats.choice_points.to_string()),
                        ("terminals", out.stats.terminals.to_string()),
                        ("pruned", out.stats.pruned.to_string()),
                        ("depth_truncated", out.stats.depth_truncated.to_string()),
                        ("truncated", out.stats.truncated.to_string()),
                    ],
                }
            }
            CheckMode::Randomized { schedules, seed } => {
                let dist = default_campaign_dist(seed);
                let out = randomized_campaign(&spec, &faults, &config, &dist, schedules);
                ct_obs::add(ct_obs::names::CHECK_SCHEDULES_RUN, schedules);
                StateCheck {
                    state,
                    rule,
                    sampled,
                    worst: worse(out.worst, sampled),
                    violations: out.violations.len() as u64,
                    counterexample: out.violations.first().map(|v| format!("seed={}", v.seed)),
                    detail: vec![
                        ("green", out.green.to_string()),
                        ("orange", out.orange.to_string()),
                        ("red", out.red.to_string()),
                        ("gray", out.gray.to_string()),
                        ("perturbations", out.perturbations.to_string()),
                    ],
                }
            }
        };
        ct_obs::add(ct_obs::names::CHECK_VIOLATIONS, checked.violations);
        states.push(checked);
    }
    CheckReport {
        architecture: options.architecture,
        scenario: options.scenario,
        mode: options.mode,
        states,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(arch: Architecture, scenario: ThreatScenario, mode: CheckMode) -> CheckReport {
        check_cell(&CheckOptions {
            architecture: arch,
            scenario,
            mode,
        })
    }

    #[test]
    fn exhaustive_check_confirms_a_green_cell() {
        // Config 2, hurricane only: green when the site survives, red
        // when it floods — the rule and the explorer must agree on
        // every reachable state.
        let report = check(
            Architecture::C2,
            ThreatScenario::Hurricane,
            CheckMode::Exhaustive { depth: 2 },
        );
        assert!(report.ok(), "{}", report.to_csv());
        assert_eq!(report.violations(), 0);
        assert!(report.counterexample().is_none());
        assert!(report.states.len() >= 2, "flooded and spared states");
    }

    #[test]
    fn exhaustive_check_finds_the_gray_cell_counterexample() {
        let report = check(
            Architecture::C2,
            ThreatScenario::HurricaneIntrusion,
            CheckMode::Exhaustive { depth: 2 },
        );
        assert!(report.ok(), "{}", report.to_csv());
        assert!(report.violations() > 0, "gray cell must violate agreement");
        let c = report.counterexample().expect("replayable counterexample");
        assert!(c.contains("trace="), "{c}");
    }

    #[test]
    fn randomized_check_agrees_and_reports_seeds() {
        let report = check(
            Architecture::C2_2,
            ThreatScenario::HurricaneIntrusion,
            CheckMode::Randomized {
                schedules: 5,
                seed: 1,
            },
        );
        assert!(report.ok(), "{}", report.to_csv());
        assert!(report.violations() > 0);
        let c = report.counterexample().expect("counterexample seed");
        assert!(c.contains("seed="), "{c}");
    }

    #[test]
    fn check_reports_are_deterministic() {
        let run = || {
            check(
                Architecture::C2_2,
                ThreatScenario::HurricaneIsolation,
                CheckMode::Randomized {
                    schedules: 3,
                    seed: 9,
                },
            )
            .to_csv()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn csv_has_the_greppable_summary_lines() {
        let report = check(
            Architecture::C2,
            ThreatScenario::Hurricane,
            CheckMode::Exhaustive { depth: 1 },
        );
        let csv = report.to_csv();
        assert!(csv.contains("check,arch,2\n"));
        assert!(csv.contains("check,scenario,hurricane\n"));
        assert!(csv.contains("check,mode,exhaustive\n"));
        assert!(csv.contains("check,violations,0\n"));
        assert!(csv.contains("check,agreement,ok\n"));
        assert!(csv.lines().all(|l| l.starts_with("check,")));
    }
}
