//! Grid-impact extension: the physical power-grid consequences of the
//! same compound threats.
//!
//! The paper explicitly scopes grid damage out ("we do not currently
//! consider these in our model, as we focus on the SCADA control
//! system"). This module adds it back: the same hurricane realizations
//! that flood control sites also damage transmission lines (wind
//! fragility) and substations (flooding); an overload cascade settles
//! the grid; and the result is joined with the SCADA operational state
//! to quantify *compound blindness* — realizations where the grid is
//! badly damaged exactly when its control system cannot operate.

use crate::error::CoreError;
use crate::parallel::{default_threads, par_map};
use crate::pipeline::CaseStudy;
use ct_grid::{oahu as grid_oahu, simulate_cascade, DamageModel, GridNetwork};
use ct_hydro::TrackEnsemble;
use ct_scada::{oahu, Architecture};
use ct_threat::{
    classify, post_disaster_states, Attacker, OperationalState, ThreatScenario, WorstCaseAttacker,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Configuration of the grid-impact analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridImpactConfig {
    /// Fragility model for hurricane damage.
    pub damage: DamageModel,
    /// Whether overloaded lines trip iteratively after the damage.
    pub cascade: bool,
    /// Served fraction below which a realization counts as a *major*
    /// loss of load.
    pub major_loss_threshold: f64,
}

impl Default for GridImpactConfig {
    fn default() -> Self {
        Self {
            damage: DamageModel::default(),
            cascade: true,
            major_loss_threshold: 0.9,
        }
    }
}

/// Per-ensemble summary of grid damage, under both operator models.
///
/// *Supervised*: the control room is operational and arrests thermal
/// overloads by emergency load shedding. *Blind*: SCADA is down, so
/// overloads trip lines in an unchecked cascade. The gap between the
/// two columns is the physical value of a functioning SCADA system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridImpactSummary {
    /// Served fraction per realization with SCADA-directed shedding.
    pub served_supervised: Vec<f64>,
    /// Served fraction per realization with the unchecked cascade.
    pub served_blind: Vec<f64>,
    /// Lines tripped by cascading overloads, per realization (blind
    /// model).
    pub cascade_trips: Vec<usize>,
}

impl GridImpactSummary {
    /// Served fraction per realization under the blind model
    /// (compatibility accessor).
    pub fn served_fraction(&self) -> &[f64] {
        &self.served_blind
    }

    fn mean(v: &[f64]) -> f64 {
        if v.is_empty() {
            1.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    }

    /// Mean served fraction with an operational control room.
    pub fn mean_served_supervised(&self) -> f64 {
        Self::mean(&self.served_supervised)
    }

    /// Mean served fraction with SCADA down (unchecked cascades).
    pub fn mean_served_blind(&self) -> f64 {
        Self::mean(&self.served_blind)
    }

    /// Probability that the *blind* served fraction falls below
    /// `threshold`.
    pub fn p_loss_below(&self, threshold: f64) -> f64 {
        if self.served_blind.is_empty() {
            return 0.0;
        }
        self.served_blind.iter().filter(|&&f| f < threshold).count() as f64
            / self.served_blind.len() as f64
    }
}

/// Joint statistics of grid damage and SCADA operational state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlindGridStats {
    /// P(major load loss).
    pub p_grid_damaged: f64,
    /// P(SCADA not fully operational: orange, red or gray).
    pub p_scada_degraded: f64,
    /// P(both at once) — the compound-blindness probability.
    pub p_joint: f64,
    /// `p_joint / (p_grid_damaged * p_scada_degraded)`; above 1 means
    /// the hurricane correlates grid damage with SCADA outage (it
    /// does: the same storms cause both).
    pub correlation_lift: f64,
}

/// Evaluates grid damage for every realization in the study's
/// ensemble (in parallel).
///
/// # Errors
///
/// Propagates ensemble regeneration and power-flow errors.
pub fn grid_impact(
    study: &CaseStudy,
    config: &GridImpactConfig,
) -> Result<GridImpactSummary, CoreError> {
    let grid = grid_oahu::grid();
    // Regenerate the storms the primary region was actually evaluated
    // under — for synthetic portfolios that is the region's derived
    // (re-anchored, re-seeded) ensemble, not the config's.
    let storms = TrackEnsemble::new(study.region(0).ensemble().clone())?.generate();
    let set = study.realizations();
    assert_eq!(
        storms.len(),
        set.len(),
        "ensemble must match the study's realizations"
    );
    let threads = if study.config().threads == 0 {
        default_threads()
    } else {
        study.config().threads
    };
    // Line midpoints are storm-invariant; hoisting them out of the
    // per-realization loop lets each worker run the batched wind
    // kernel directly (bit-identical to `DamageModel::sample` — see
    // the ct-grid equivalence tests).
    let midpoints = DamageModel::line_midpoints(&grid);
    let indexed: Vec<usize> = (0..storms.len()).collect();
    let per: Vec<Result<(f64, f64, usize), CoreError>> = par_map(&indexed, threads, |&r| {
        evaluate_one(&grid, config, study, &storms[r], r, &midpoints)
    });
    let mut served_supervised = Vec::with_capacity(per.len());
    let mut served_blind = Vec::with_capacity(per.len());
    let mut cascade_trips = Vec::with_capacity(per.len());
    for item in per {
        let (supervised, blind, trips) = item?;
        served_supervised.push(supervised);
        served_blind.push(blind);
        cascade_trips.push(trips);
    }
    Ok(GridImpactSummary {
        served_supervised,
        served_blind,
        cascade_trips,
    })
}

fn evaluate_one(
    grid: &GridNetwork,
    config: &GridImpactConfig,
    study: &CaseStudy,
    storm: &ct_hydro::StormParams,
    realization: usize,
    midpoints: &[ct_geo::LatLon],
) -> Result<(f64, f64, usize), CoreError> {
    // Flooded buses: any grid bus whose namesake asset flooded.
    let set = study.realizations();
    let mask = set.flooded_mask(realization);
    let flooded: BTreeSet<String> = set
        .pois()
        .iter()
        .zip(&mask)
        .filter(|(_, &f)| f)
        .map(|(p, _)| p.id.clone())
        .collect();
    let peaks = config.damage.peak_winds_at(storm, midpoints);
    let damage = config
        .damage
        .sample_with_peaks(grid, &flooded, realization, &peaks);
    let state = ct_grid::dc_power_flow(grid, &damage.outages)?;
    let total = state.total_demand_mw.max(1e-9);
    let shed = state.served_after_emergency_shedding(grid) / total;
    // Blind: the cascade runs unchecked.
    let (blind, trips) = if config.cascade {
        let outcome = simulate_cascade(grid, &damage.outages)?;
        (outcome.served_fraction(), outcome.tripped.len())
    } else {
        (state.served_fraction(), 0)
    };
    // Supervised: operators can shed load to hold the network
    // together *or* deliberately open the congested line when the
    // rerouted network serves more — whichever keeps more load.
    let supervised = shed.max(blind);
    Ok((supervised, blind, trips))
}

/// Expected served fraction when the grid's operator response depends
/// on the SCADA operational state: realizations where the SCADA
/// system is fully operational (green) get the supervised outcome,
/// all others the blind cascade — the physical cost of losing the
/// control system, per architecture.
///
/// # Errors
///
/// Propagates pipeline errors.
pub fn expected_served_with_scada(
    study: &CaseStudy,
    summary: &GridImpactSummary,
    architecture: Architecture,
    scenario: ThreatScenario,
    choice: oahu::SiteChoice,
) -> Result<f64, CoreError> {
    let plan = oahu::site_plan(architecture, choice)?;
    let posts = post_disaster_states(&plan, study.realizations())?;
    assert_eq!(posts.len(), summary.served_blind.len());
    let budget = scenario.budget();
    let mut acc = 0.0;
    for (r, post) in posts.iter().enumerate() {
        let state = classify(&WorstCaseAttacker.attack(architecture, post, budget));
        acc += if state == OperationalState::Green {
            summary.served_supervised[r]
        } else {
            summary.served_blind[r]
        };
    }
    Ok(acc / posts.len() as f64)
}

/// Joins grid damage with the SCADA operational state for an
/// architecture/scenario/siting, per realization.
///
/// # Errors
///
/// Propagates pipeline errors.
pub fn blind_grid_stats(
    study: &CaseStudy,
    summary: &GridImpactSummary,
    architecture: Architecture,
    scenario: ThreatScenario,
    choice: oahu::SiteChoice,
    config: &GridImpactConfig,
) -> Result<BlindGridStats, CoreError> {
    let plan = oahu::site_plan(architecture, choice)?;
    let posts = post_disaster_states(&plan, study.realizations())?;
    assert_eq!(posts.len(), summary.served_blind.len());
    let budget = scenario.budget();
    let n = posts.len() as f64;
    let mut damaged = 0usize;
    let mut degraded = 0usize;
    let mut joint = 0usize;
    for (post, &served) in posts.iter().zip(&summary.served_blind) {
        let state = classify(&WorstCaseAttacker.attack(architecture, post, budget));
        let is_damaged = served < config.major_loss_threshold;
        let is_degraded = state != OperationalState::Green;
        damaged += usize::from(is_damaged);
        degraded += usize::from(is_degraded);
        joint += usize::from(is_damaged && is_degraded);
    }
    let p_grid_damaged = damaged as f64 / n;
    let p_scada_degraded = degraded as f64 / n;
    let p_joint = joint as f64 / n;
    let denom = p_grid_damaged * p_scada_degraded;
    Ok(BlindGridStats {
        p_grid_damaged,
        p_scada_degraded,
        p_joint,
        correlation_lift: if denom > 0.0 { p_joint / denom } else { 0.0 },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::CaseStudyConfig;
    use std::sync::OnceLock;

    fn study() -> &'static CaseStudy {
        static STUDY: OnceLock<CaseStudy> = OnceLock::new();
        STUDY.get_or_init(|| {
            CaseStudy::build(&CaseStudyConfig::builder().realizations(60).build().unwrap()).unwrap()
        })
    }

    fn summary() -> &'static GridImpactSummary {
        static SUMMARY: OnceLock<GridImpactSummary> = OnceLock::new();
        SUMMARY.get_or_init(|| grid_impact(study(), &GridImpactConfig::default()).unwrap())
    }

    #[test]
    fn shapes_and_ranges() {
        let s = summary();
        assert_eq!(s.served_blind.len(), 60);
        assert_eq!(s.served_supervised.len(), 60);
        for &f in s.served_blind.iter().chain(&s.served_supervised) {
            assert!((0.0..=1.0 + 1e-9).contains(&f), "served {f}");
        }
        assert!((0.0..=1.0).contains(&s.mean_served_blind()));
    }

    #[test]
    fn supervision_never_hurts() {
        // Emergency shedding keeps at least as much load as an
        // unchecked cascade, realization by realization.
        let s = summary();
        for (sup, blind) in s.served_supervised.iter().zip(&s.served_blind) {
            assert!(sup + 1e-9 >= *blind, "supervised {sup} below blind {blind}");
        }
        assert!(s.mean_served_supervised() >= s.mean_served_blind());
    }

    #[test]
    fn expected_served_rewards_resilient_architectures() {
        let s = summary();
        let served_2 = expected_served_with_scada(
            study(),
            s,
            Architecture::C2,
            ThreatScenario::HurricaneIsolation,
            oahu::SiteChoice::Waiau,
        )
        .unwrap();
        let served_666 = expected_served_with_scada(
            study(),
            s,
            Architecture::C6P6P6,
            ThreatScenario::HurricaneIsolation,
            oahu::SiteChoice::Waiau,
        )
        .unwrap();
        // "2" is always red under isolation (blind); "6+6+6" keeps the
        // control room up in ~90% of realizations.
        assert!(served_666 >= served_2, "6+6+6 {served_666} vs 2 {served_2}");
    }

    #[test]
    fn some_realizations_damage_the_grid() {
        // A Category 2 ensemble over the island must hurt sometimes.
        let s = summary();
        assert!(
            s.p_loss_below(0.999) > 0.02,
            "grid never damaged: mean {}",
            s.mean_served_blind()
        );
        // ...but most realizations pass far away.
        assert!(
            s.p_loss_below(0.5) < 0.7,
            "grid nearly always halved: too fragile"
        );
    }

    #[test]
    fn cascades_occur_but_do_not_dominate() {
        let s = summary();
        let with_trips = s.cascade_trips.iter().filter(|&&t| t > 0).count();
        assert!(with_trips < 60, "every realization cascades");
    }

    #[test]
    fn blind_grid_joint_probability_is_consistent() {
        let stats = blind_grid_stats(
            study(),
            summary(),
            Architecture::C2,
            ThreatScenario::Hurricane,
            oahu::SiteChoice::Waiau,
            &GridImpactConfig::default(),
        )
        .unwrap();
        assert!(stats.p_joint <= stats.p_grid_damaged + 1e-12);
        assert!(stats.p_joint <= stats.p_scada_degraded + 1e-12);
        assert!((0.0..=1.0).contains(&stats.p_joint));
    }

    #[test]
    fn grid_damage_correlates_with_scada_outage() {
        // The same storms flood the control center and break the
        // grid: the joint probability should exceed the independent
        // product whenever both events occur at all.
        let stats = blind_grid_stats(
            study(),
            summary(),
            Architecture::C2,
            ThreatScenario::Hurricane,
            oahu::SiteChoice::Waiau,
            &GridImpactConfig::default(),
        )
        .unwrap();
        if stats.p_joint > 0.0 {
            assert!(
                stats.correlation_lift >= 1.0,
                "expected positive correlation, lift {}",
                stats.correlation_lift
            );
        }
    }
}
