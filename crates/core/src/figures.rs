//! The paper's evaluation figures as reproducible artifacts.

use crate::error::CoreError;
use crate::pipeline::CaseStudy;
use crate::profile::OutcomeProfile;
use ct_scada::{oahu::SiteChoice, Architecture};
use ct_threat::ThreatScenario;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The six evaluation figures of the paper (Figs. 6-11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Figure {
    /// Fig. 6: hurricane only; Honolulu + Waiau + DRFortress.
    Fig6,
    /// Fig. 7: hurricane + server intrusion; Waiau siting.
    Fig7,
    /// Fig. 8: hurricane + site isolation; Waiau siting.
    Fig8,
    /// Fig. 9: hurricane + intrusion + isolation; Waiau siting.
    Fig9,
    /// Fig. 10: hurricane only; Honolulu + Kahe + DRFortress.
    Fig10,
    /// Fig. 11: hurricane + server intrusion; Kahe siting.
    Fig11,
}

impl Figure {
    /// All six figures in paper order.
    pub const ALL: [Figure; 6] = [
        Figure::Fig6,
        Figure::Fig7,
        Figure::Fig8,
        Figure::Fig9,
        Figure::Fig10,
        Figure::Fig11,
    ];

    /// The threat scenario the figure evaluates.
    pub fn scenario(self) -> ThreatScenario {
        match self {
            Figure::Fig6 | Figure::Fig10 => ThreatScenario::Hurricane,
            Figure::Fig7 | Figure::Fig11 => ThreatScenario::HurricaneIntrusion,
            Figure::Fig8 => ThreatScenario::HurricaneIsolation,
            Figure::Fig9 => ThreatScenario::HurricaneIntrusionIsolation,
        }
    }

    /// The backup-site choice the figure uses.
    pub fn site_choice(self) -> SiteChoice {
        match self {
            Figure::Fig10 | Figure::Fig11 => SiteChoice::Kahe,
            _ => SiteChoice::Waiau,
        }
    }

    /// The paper's figure number.
    pub fn number(self) -> u32 {
        match self {
            Figure::Fig6 => 6,
            Figure::Fig7 => 7,
            Figure::Fig8 => 8,
            Figure::Fig9 => 9,
            Figure::Fig10 => 10,
            Figure::Fig11 => 11,
        }
    }

    /// The paper's caption for the figure.
    pub fn caption(self) -> String {
        let sites = match self.site_choice() {
            SiteChoice::Waiau => "Honolulu + Waiau + DRFortress",
            SiteChoice::Kahe => "Honolulu + Kahe + DRFortress",
        };
        format!(
            "Operational Profiles in {} Scenario ({})",
            self.scenario(),
            sites
        )
    }
}

impl fmt::Display for Figure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fig. {}", self.number())
    }
}

/// One reproduced figure: a profile per architecture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureData {
    /// Which figure this is.
    pub figure: Figure,
    /// The hazard engine the profiles were computed under. The paper's
    /// figures are surge figures; renderers label any other engine so
    /// a wind or compound table can never pass for the original.
    #[serde(default)]
    pub hazard: ct_hazard::HazardSpec,
    /// `(architecture, profile)` rows in the paper's order.
    pub rows: Vec<(Architecture, OutcomeProfile)>,
}

impl FigureData {
    /// The profile for one architecture.
    pub fn profile(&self, architecture: Architecture) -> Option<&OutcomeProfile> {
        self.rows
            .iter()
            .find(|(a, _)| *a == architecture)
            .map(|(_, p)| p)
    }
}

/// Reproduces one figure from a prepared case study.
///
/// # Errors
///
/// Propagates pipeline errors.
pub fn reproduce(study: &CaseStudy, figure: Figure) -> Result<FigureData, CoreError> {
    let _span = ct_obs::span("figure_reproduce");
    let rows = Architecture::ALL
        .iter()
        .map(|&arch| {
            study
                .profile(arch, figure.scenario(), figure.site_choice())
                .map(|p| (arch, p))
        })
        .collect::<Result<Vec<_>, _>>()?;
    ct_obs::add(ct_obs::names::FIGURES_REPRODUCED, 1);
    Ok(FigureData {
        figure,
        hazard: study.hazard(),
        rows,
    })
}

/// Reproduces all six figures.
///
/// # Errors
///
/// Propagates pipeline errors.
pub fn reproduce_all(study: &CaseStudy) -> Result<Vec<FigureData>, CoreError> {
    let _span = ct_obs::span("figures");
    Figure::ALL.iter().map(|&f| reproduce(study, f)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::CaseStudyConfig;

    #[test]
    fn metadata_matches_the_paper() {
        assert_eq!(Figure::Fig6.scenario(), ThreatScenario::Hurricane);
        assert_eq!(
            Figure::Fig9.scenario(),
            ThreatScenario::HurricaneIntrusionIsolation
        );
        assert_eq!(Figure::Fig10.site_choice(), SiteChoice::Kahe);
        assert_eq!(Figure::Fig7.site_choice(), SiteChoice::Waiau);
        assert_eq!(Figure::Fig11.number(), 11);
        assert!(Figure::Fig8.caption().contains("Site Isolation"));
        assert_eq!(Figure::Fig6.to_string(), "Fig. 6");
    }

    #[test]
    fn reproduce_produces_five_rows_per_figure() {
        let study = CaseStudy::build(&CaseStudyConfig::builder().realizations(50).build().unwrap())
            .unwrap();
        let data = reproduce(&study, Figure::Fig8).unwrap();
        assert_eq!(data.rows.len(), 5);
        assert!(data.profile(Architecture::C6P6P6).is_some());
        // Fig. 8 shape: single-site configs are never green.
        assert_eq!(data.profile(Architecture::C2).unwrap().green(), 0.0);
        assert_eq!(data.profile(Architecture::C6).unwrap().green(), 0.0);
    }
}
