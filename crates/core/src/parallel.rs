//! Crossbeam-based parallel evaluation helpers.

use crossbeam::thread;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Maps `f` over `items` using up to `threads` worker threads
/// (scoped; no `'static` bound needed), preserving order.
///
/// Work is split into contiguous chunks up front, so this is the
/// right choice when per-item cost is uniform. For skewed workloads
/// (e.g. profiling sweeps where some plans are much more expensive)
/// use [`par_map_dynamic`], which steals work item by item.
///
/// `threads == 0` or `1` falls back to a serial map.
///
/// # Panics
///
/// Propagates panics from worker closures.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let workers = threads.min(items.len());
    let chunk = items.len().div_ceil(workers);
    let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);

    thread::scope(|scope| {
        let mut rest = out.as_mut_slice();
        for chunk_items in items.chunks(chunk) {
            let (head, tail) = rest.split_at_mut(chunk_items.len());
            rest = tail;
            let f = &f;
            scope.spawn(move |_| {
                for (slot, item) in head.iter_mut().zip(chunk_items) {
                    *slot = Some(f(item));
                }
            });
        }
    })
    .expect("worker thread panicked");

    out.into_iter()
        .map(|v| v.expect("all slots filled"))
        .collect()
}

/// Maps `f` over `items` with dynamic (work-stealing) scheduling:
/// workers claim the next unprocessed index from a shared atomic
/// cursor, so a handful of expensive items cannot strand the rest of
/// the batch behind one static chunk. Output order matches input
/// order, and the result is identical to a serial map regardless of
/// how items are interleaved across workers.
///
/// `threads == 0` or `1` falls back to a serial map.
///
/// # Panics
///
/// Propagates panics from worker closures.
pub fn par_map_dynamic<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let workers = threads.min(items.len());
    let cursor = AtomicUsize::new(0);
    let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);

    thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let f = &f;
                let cursor = &cursor;
                scope.spawn(move |_| {
                    let mut produced: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else {
                            break;
                        };
                        produced.push((i, f(item)));
                    }
                    produced
                })
            })
            .collect();
        for handle in handles {
            for (i, r) in handle.join().expect("worker thread panicked") {
                out[i] = Some(r);
            }
        }
    })
    .expect("worker scope panicked");

    out.into_iter()
        .map(|v| v.expect("all slots filled"))
        .collect()
}

/// A reasonable default worker count: the machine's available
/// parallelism, capped at 16. The cap exists because ensemble
/// evaluation is partly memory-bandwidth-bound; beyond ~16 workers the
/// extra threads mostly contend for cache on large hosts. Set the
/// `CT_THREADS` environment variable (any value ≥ 1) to override both
/// the detection and the cap.
pub fn default_threads() -> usize {
    if let Some(n) = std::env::var("CT_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get().min(16))
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_values() {
        let items: Vec<u64> = (0..1000).collect();
        let serial = par_map(&items, 1, |x| x * x);
        let parallel = par_map(&items, 8, |x| x * x);
        assert_eq!(serial, parallel);
        assert_eq!(parallel[999], 999 * 999);
    }

    #[test]
    fn handles_empty_and_tiny_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, 8, |x| *x).is_empty());
        assert_eq!(par_map(&[42], 8, |x| *x + 1), vec![43]);
    }

    #[test]
    fn more_threads_than_items() {
        let items = [1, 2, 3];
        assert_eq!(par_map(&items, 64, |x| x * 10), vec![10, 20, 30]);
    }

    #[test]
    fn dynamic_preserves_order_and_values() {
        let items: Vec<u64> = (0..1000).collect();
        let serial = par_map_dynamic(&items, 1, |x| x * 3 + 1);
        let parallel = par_map_dynamic(&items, 8, |x| x * 3 + 1);
        assert_eq!(serial, parallel);
        assert_eq!(parallel[0], 1);
        assert_eq!(parallel[999], 999 * 3 + 1);
    }

    #[test]
    fn dynamic_handles_empty_tiny_and_oversubscribed() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_dynamic(&empty, 8, |x| *x).is_empty());
        assert_eq!(par_map_dynamic(&[7], 8, |x| *x * 2), vec![14]);
        assert_eq!(
            par_map_dynamic(&[1, 2, 3], 64, |x| x * 10),
            vec![10, 20, 30]
        );
    }

    #[test]
    fn dynamic_matches_static_on_skewed_costs() {
        // Item 0 is far more expensive than the rest; both schedulers
        // must still produce identical, ordered output.
        let items: Vec<u64> = (0..64).collect();
        let work = |x: &u64| {
            let spins = if *x == 0 { 20_000 } else { 10 };
            let mut acc = *x;
            for i in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            acc
        };
        assert_eq!(par_map(&items, 4, work), par_map_dynamic(&items, 4, work));
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn ct_threads_env_overrides_cap() {
        // Serialised within this one test to avoid races with other
        // tests reading the variable.
        std::env::set_var("CT_THREADS", "32");
        assert_eq!(default_threads(), 32);
        std::env::set_var("CT_THREADS", "not-a-number");
        assert!(default_threads() >= 1);
        std::env::remove_var("CT_THREADS");
        assert!(default_threads() <= 16);
    }
}
