//! Crossbeam-based parallel evaluation helpers.

use crossbeam::thread;

/// Maps `f` over `items` using up to `threads` worker threads
/// (scoped; no `'static` bound needed), preserving order.
///
/// `threads == 0` or `1` falls back to a serial map.
///
/// # Panics
///
/// Propagates panics from worker closures.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let workers = threads.min(items.len());
    let chunk = items.len().div_ceil(workers);
    let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);

    thread::scope(|scope| {
        let mut rest = out.as_mut_slice();
        for (w, chunk_items) in items.chunks(chunk).enumerate() {
            let (head, tail) = rest.split_at_mut(chunk_items.len());
            rest = tail;
            let f = &f;
            let base = w * chunk;
            let _ = base;
            scope.spawn(move |_| {
                for (slot, item) in head.iter_mut().zip(chunk_items) {
                    *slot = Some(f(item));
                }
            });
        }
    })
    .expect("worker thread panicked");

    out.into_iter()
        .map(|v| v.expect("all slots filled"))
        .collect()
}

/// A reasonable default worker count: the machine's parallelism,
/// capped at 16.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().min(16))
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_values() {
        let items: Vec<u64> = (0..1000).collect();
        let serial = par_map(&items, 1, |x| x * x);
        let parallel = par_map(&items, 8, |x| x * x);
        assert_eq!(serial, parallel);
        assert_eq!(parallel[999], 999 * 999);
    }

    #[test]
    fn handles_empty_and_tiny_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, 8, |x| *x).is_empty());
        assert_eq!(par_map(&[42], 8, |x| *x + 1), vec![43]);
    }

    #[test]
    fn more_threads_than_items() {
        let items = [1, 2, 3];
        assert_eq!(par_map(&items, 64, |x| x * 10), vec![10, 20, 30]);
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }
}
