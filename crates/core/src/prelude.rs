//! The framework's public surface in one `use`.
//!
//! Downstream code (the `ct` CLI, integration tests, notebook-style
//! experiments) kept accumulating five-line import blocks spread over
//! four crates; this module re-exports the types that appear in
//! essentially every driver so they arrive together:
//!
//! ```
//! use compound_threats::prelude::*;
//!
//! # fn main() -> Result<(), CoreError> {
//! let config = CaseStudyConfig::builder().realizations(50).build()?;
//! let scenario = ThreatScenario::HurricaneIntrusionIsolation;
//! let _ = (scenario, Architecture::C6P6P6, SiteChoice::Kahe);
//! # let _ = config;
//! # Ok(())
//! # }
//! ```

pub use crate::error::CoreError;
pub use crate::figures::{Figure, FigureData};
pub use crate::pipeline::{
    run_shard, CaseStudy, CaseStudyConfig, CaseStudyConfigBuilder, ShardReport, ShardSpec,
};
pub use crate::probe::ProbeQuery;
pub use crate::profile::OutcomeProfile;
pub use crate::serve::{ServeOptions, Server};
pub use crate::traffic::{bench_serve, BenchMode, BenchOp, BenchServeOptions};
pub use ct_hazard::{CompoundHazard, HazardModel, HazardSpec, SurgeHazard, WindFragilityHazard};
pub use ct_scada::{oahu::SiteChoice, Architecture};
pub use ct_store::{RemoteStore, Store, StoreBackend, StoreUrl};
pub use ct_threat::ThreatScenario;
