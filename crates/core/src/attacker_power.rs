//! Probabilistic attacker power — the paper's Sec. VII discussion
//! ("the worst-case model may give the attacker more power than they
//! are likely to have in practice").
//!
//! Instead of assuming every attack succeeds, each attack type gets a
//! success probability. The expected outcome distribution is the
//! mixture of the four deterministic scenarios weighted by the
//! success probabilities — an analytic combination, so no extra
//! Monte-Carlo error is introduced.

use crate::error::CoreError;
use crate::pipeline::CaseStudy;
use ct_scada::{oahu::SiteChoice, Architecture};
use ct_threat::{OperationalState, ThreatScenario};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Success probabilities of the attacker's two capabilities.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttackerPower {
    /// Probability the server intrusion succeeds.
    pub intrusion_success: f64,
    /// Probability the site isolation succeeds.
    pub isolation_success: f64,
}

impl AttackerPower {
    /// Creates a power model, validating probabilities.
    ///
    /// # Errors
    ///
    /// Returns an error when either probability is outside `[0, 1]`.
    pub fn new(intrusion_success: f64, isolation_success: f64) -> Result<Self, CoreError> {
        for (name, p) in [
            ("intrusion_success", intrusion_success),
            ("isolation_success", isolation_success),
        ] {
            if !(0.0..=1.0).contains(&p) || p.is_nan() {
                return Err(CoreError::Hydro(ct_hydro::HydroError::InvalidParameter {
                    name: match name {
                        "intrusion_success" => "intrusion_success",
                        _ => "isolation_success",
                    },
                    value: p,
                }));
            }
        }
        Ok(Self {
            intrusion_success,
            isolation_success,
        })
    }

    /// The paper's implicit worst-case attacker: everything succeeds.
    pub fn worst_case() -> Self {
        Self {
            intrusion_success: 1.0,
            isolation_success: 1.0,
        }
    }
}

/// An expected outcome distribution (fractions, not counts).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ExpectedProfile {
    /// Expected probability of green.
    pub green: f64,
    /// Expected probability of orange.
    pub orange: f64,
    /// Expected probability of red.
    pub red: f64,
    /// Expected probability of gray.
    pub gray: f64,
}

impl ExpectedProfile {
    /// The probability of a given state.
    pub fn fraction(&self, state: OperationalState) -> f64 {
        match state {
            OperationalState::Green => self.green,
            OperationalState::Orange => self.orange,
            OperationalState::Red => self.red,
            OperationalState::Gray => self.gray,
        }
    }

    /// Whether the four fractions sum to ~1.
    pub fn is_normalized(&self) -> bool {
        (self.green + self.orange + self.red + self.gray - 1.0).abs() < 1e-9
    }
}

impl fmt::Display for ExpectedProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "green {:.1}% / orange {:.1}% / red {:.1}% / gray {:.1}%",
            100.0 * self.green,
            100.0 * self.orange,
            100.0 * self.red,
            100.0 * self.gray
        )
    }
}

/// Expected profile of an architecture under a probabilistic attacker
/// attempting *both* attacks after the hurricane.
///
/// # Errors
///
/// Propagates pipeline errors.
pub fn expected_profile(
    study: &CaseStudy,
    architecture: Architecture,
    choice: SiteChoice,
    power: AttackerPower,
) -> Result<ExpectedProfile, CoreError> {
    let pi = power.intrusion_success;
    let ps = power.isolation_success;
    let weighted = [
        (ThreatScenario::Hurricane, (1.0 - pi) * (1.0 - ps)),
        (ThreatScenario::HurricaneIntrusion, pi * (1.0 - ps)),
        (ThreatScenario::HurricaneIsolation, (1.0 - pi) * ps),
        (ThreatScenario::HurricaneIntrusionIsolation, pi * ps),
    ];
    let mut out = ExpectedProfile::default();
    for (scenario, weight) in weighted {
        if weight == 0.0 {
            continue;
        }
        let p = study.profile(architecture, scenario, choice)?;
        out.green += weight * p.green();
        out.orange += weight * p.orange();
        out.red += weight * p.red();
        out.gray += weight * p.gray();
    }
    Ok(out)
}

/// Sweeps a symmetric attacker power `p` from 0 to 1 in `steps`
/// increments, returning `(p, expected profile)` pairs — the
/// sensitivity analysis the paper calls for.
///
/// # Errors
///
/// Propagates pipeline errors.
pub fn power_sweep(
    study: &CaseStudy,
    architecture: Architecture,
    choice: SiteChoice,
    steps: usize,
) -> Result<Vec<(f64, ExpectedProfile)>, CoreError> {
    let steps = steps.max(1);
    (0..=steps)
        .map(|i| {
            let p = i as f64 / steps as f64;
            let power = AttackerPower::new(p, p).expect("p in range");
            expected_profile(study, architecture, choice, power).map(|e| (p, e))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::CaseStudyConfig;

    fn study() -> CaseStudy {
        CaseStudy::build(
            &CaseStudyConfig::builder()
                .realizations(100)
                .build()
                .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn validation() {
        assert!(AttackerPower::new(1.1, 0.0).is_err());
        assert!(AttackerPower::new(0.5, -0.1).is_err());
        assert!(AttackerPower::new(0.5, 0.5).is_ok());
    }

    #[test]
    fn zero_power_equals_hurricane_only() {
        let s = study();
        let zero = AttackerPower::new(0.0, 0.0).unwrap();
        let e = expected_profile(&s, Architecture::C2, SiteChoice::Waiau, zero).unwrap();
        let base = s
            .profile(
                Architecture::C2,
                ThreatScenario::Hurricane,
                SiteChoice::Waiau,
            )
            .unwrap();
        assert!((e.green - base.green()).abs() < 1e-12);
        assert!((e.red - base.red()).abs() < 1e-12);
        assert!(e.is_normalized());
    }

    #[test]
    fn full_power_equals_worst_case_scenario() {
        let s = study();
        let e = expected_profile(
            &s,
            Architecture::C6_6,
            SiteChoice::Waiau,
            AttackerPower::worst_case(),
        )
        .unwrap();
        let worst = s
            .profile(
                Architecture::C6_6,
                ThreatScenario::HurricaneIntrusionIsolation,
                SiteChoice::Waiau,
            )
            .unwrap();
        assert!((e.orange - worst.orange()).abs() < 1e-12);
        assert!(e.is_normalized());
    }

    #[test]
    fn green_probability_decreases_with_power() {
        let s = study();
        let sweep = power_sweep(&s, Architecture::C2_2, SiteChoice::Waiau, 4).unwrap();
        assert_eq!(sweep.len(), 5);
        for w in sweep.windows(2) {
            assert!(
                w[1].1.green <= w[0].1.green + 1e-12,
                "green should not increase with attacker power"
            );
        }
    }
}
