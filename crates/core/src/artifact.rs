//! Content addresses and binary codecs for cached pipeline artifacts.
//!
//! The artifact store ([`ct_store`]) holds per-realization inundation
//! outcomes and per-plan flood-pattern histograms. Everything here is
//! about *addressing* those records correctly: a record's key is a
//! stable hash of every input that can change its value — the full
//! case-study configuration, the synthesized DEM, the storm-ensemble
//! parameters, the tracked POI set, and the kernel versions of the
//! numerics — so a stale artifact can never be mistaken for a current
//! one. Anything that does *not* change a record's value (worker
//! thread count, flood threshold applied after evaluation, and the
//! ensemble *size*, since realization `i` depends only on the seed and
//! `i`) is deliberately excluded, which is what lets a 1000-realization
//! sweep reuse the records of an earlier 100-realization run.
//!
//! Payload codecs are hand-rolled little-endian (the workspace's
//! zero-serializer policy); decoders return `None` on any shape
//! mismatch so callers degrade to recompute-and-rewrite.

use crate::pipeline::CaseStudyConfig;
use ct_geo::Dem;
use ct_hazard::HazardModel;
use ct_hydro::{Poi, Realization};
use ct_scada::SitePlan;
use ct_store::{Digest, StableHasher};
use ct_threat::PostDisasterState;

/// Version of the evaluation pipeline semantics baked into every
/// content address. Bump whenever the meaning of a cached record
/// changes (e.g. a different inundation formula) without a config
/// change; every existing record is then invisible, not wrong.
///
/// v2: records are per-hazard — the base key carries the hazard id,
/// its parameter digest, and [`ct_hazard::HAZARD_KERNEL_VERSION`], and
/// realization payloads are tagged with the hazard id. Pre-hazard (v1)
/// stores therefore read as cold, never as aliased surge hits.
///
/// v3: the pipeline is region-generic — the base key carries the
/// region spec, the region index within the portfolio, and the
/// ensemble's `anchor_lat` (newly region-dependent). Single-region (v2)
/// stores read as cold misses, never as aliased region-0 hits.
pub const PIPELINE_KERNEL_VERSION: u32 = 3;

/// The run-level base address: a stable hash of the case-study
/// configuration, the DEM it synthesized, the storm-ensemble
/// parameters, the tracked POI set, the hazard engine (id + its full
/// parameter digest), and the kernel versions.
///
/// Excluded on purpose: `threads` (does not affect values),
/// `flood_threshold_m` (applied after evaluation), and
/// `ensemble.realizations` (realization `i` is a function of the seed
/// and `i` alone, so runs of different sizes share records). The surge
/// calibration is *not* hashed here: it is an input of the surge
/// hazard, so it enters through [`HazardModel::digest_params`] exactly
/// when the selected hazard actually uses it.
pub fn ensemble_base_key(
    config: &CaseStudyConfig,
    dem: &Dem,
    pois: &[Poi],
    hazard: &dyn HazardModel,
) -> Digest {
    region_base_key(config, &config.ensemble, dem, pois, hazard, 0)
}

/// [`ensemble_base_key`] for one region of a portfolio run. Synthetic
/// regions derive per-region ensembles (re-anchored, re-seeded) from
/// the config's, so the key hashes the *effective* ensemble passed
/// here plus the region spec and the region's index within the
/// portfolio. Region 0 of the Oahu spec with the config's own ensemble
/// is exactly [`ensemble_base_key`].
pub fn region_base_key(
    config: &CaseStudyConfig,
    ensemble: &ct_hydro::EnsembleConfig,
    dem: &Dem,
    pois: &[Poi],
    hazard: &dyn HazardModel,
    region_index: usize,
) -> Digest {
    let mut h = StableHasher::new();
    h.write_str("compound-threats/ensemble");
    h.write_u32(PIPELINE_KERNEL_VERSION);
    h.write_u32(ct_hydro::HYDRO_KERNEL_VERSION);
    h.write_u32(ct_hazard::HAZARD_KERNEL_VERSION);

    h.write_str(&config.region.to_string());
    h.write_usize(region_index);

    let t = &config.terrain;
    h.write_u64(t.seed);
    h.write_f64(t.cell_km);
    h.write_f64(t.noise_amp_m);

    hash_dem(&mut h, dem);

    let e = ensemble;
    h.write_u64(e.seed);
    h.write_str(&format!("{:?}", e.category));
    h.write_f64(e.ambient_pressure_hpa);
    h.write_f64(e.base_passing_lon);
    h.write_f64(e.anchor_lat);
    h.write_f64(e.cross_track_mean_km);
    h.write_f64(e.cross_track_sd_km);
    h.write_f64(e.heading_mean_deg);
    h.write_f64(e.heading_sd_deg);

    h.write_str(&hazard.hazard_id());
    hazard.digest_params(&mut h);

    h.write_usize(pois.len());
    for poi in pois {
        h.write_str(&poi.id);
        h.write_f64(poi.pos.lat);
        h.write_f64(poi.pos.lon);
        h.write_f64(poi.ground_elevation_m);
        h.write_f64(poi.shore_distance_km);
        match poi.station_override {
            None => h.write_str("nearest"),
            Some(id) => h.write_str(&format!("{id:?}")),
        }
    }
    h.finish()
}

/// The digest of a DEM alone, under the exact recipe the base key
/// uses. The Oahu preset's digest is pinned in tests and CI so any
/// drift in the named terrain (which would silently re-key every
/// cached artifact) fails loudly.
pub fn dem_digest(dem: &Dem) -> Digest {
    let mut h = StableHasher::new();
    hash_dem(&mut h, dem);
    h.finish()
}

fn hash_dem(h: &mut StableHasher, dem: &Dem) {
    let grid = dem.elevation_grid();
    h.write_usize(grid.cols());
    h.write_usize(grid.rows());
    h.write_f64(grid.origin().east);
    h.write_f64(grid.origin().north);
    h.write_f64(grid.cell_km());
    h.write_f64_slice(grid.as_slice());
    let origin = dem.projection().origin();
    h.write_f64(origin.lat);
    h.write_f64(origin.lon);
}

/// The address of one realization's inundation record.
pub fn realization_key(base: &Digest, index: usize) -> Digest {
    base.derive(&format!("realization/{index}"))
}

/// The address of a site plan's flood-pattern histogram. Unlike the
/// realization records, a histogram aggregates over the whole
/// ensemble, so its address also pins the ensemble size and the flood
/// threshold it was folded with.
pub fn plan_histogram_key(
    base: &Digest,
    realizations: usize,
    threshold_m: f64,
    plan: &SitePlan,
) -> Digest {
    let mut h = StableHasher::new();
    h.update(&base.0);
    h.write_str("plan-histogram");
    h.write_usize(realizations);
    h.write_f64(threshold_m);
    h.write_str(plan.architecture().label());
    h.write_usize(plan.site_asset_ids().len());
    for id in plan.site_asset_ids() {
        h.write_str(id);
    }
    h.finish()
}

/// Encodes a realization record payload:
/// `id_len u64 | hazard_id bytes | index u64 | tide f64 | max_surge f64
/// | n u64 | inundation f64×n`
/// (all little-endian, `f64` by bit pattern — bit-exact round trip).
/// The hazard-id tag is defense in depth on top of the hazard-keyed
/// address: even a key-derivation bug cannot surface a surge record in
/// a wind run, because the decoder rejects the mismatched tag.
pub fn encode_realization(r: &Realization, hazard_id: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(40 + hazard_id.len() + 8 * r.inundation_m.len());
    out.extend_from_slice(&(hazard_id.len() as u64).to_le_bytes());
    out.extend_from_slice(hazard_id.as_bytes());
    out.extend_from_slice(&(r.index as u64).to_le_bytes());
    out.extend_from_slice(&r.tide_m.to_bits().to_le_bytes());
    out.extend_from_slice(&r.max_station_surge_m.to_bits().to_le_bytes());
    out.extend_from_slice(&(r.inundation_m.len() as u64).to_le_bytes());
    for &d in &r.inundation_m {
        out.extend_from_slice(&d.to_bits().to_le_bytes());
    }
    out
}

/// Decodes a realization record. `expected_pois` guards against a
/// record addressed correctly but written against a different POI
/// arity, and `expected_hazard_id` against a record produced by a
/// different hazard engine (either only possible via a key-derivation
/// bug — still, never let it reach the analysis). Returns `None` on
/// any mismatch.
pub fn decode_realization(
    bytes: &[u8],
    expected_pois: usize,
    expected_hazard_id: &str,
) -> Option<Realization> {
    let mut r = Reader::new(bytes);
    let id_len = usize::try_from(r.u64()?).ok()?;
    if r.take(id_len)? != expected_hazard_id.as_bytes() {
        return None;
    }
    let index = usize::try_from(r.u64()?).ok()?;
    let tide_m = r.f64()?;
    let max_station_surge_m = r.f64()?;
    let n = usize::try_from(r.u64()?).ok()?;
    if n != expected_pois {
        return None;
    }
    let mut inundation_m = Vec::with_capacity(n);
    for _ in 0..n {
        inundation_m.push(r.f64()?);
    }
    r.finish()?;
    Some(Realization {
        index,
        tide_m,
        max_station_surge_m,
        inundation_m,
    })
}

/// Encodes a flood-pattern histogram payload:
/// `n_entries u64 | (sites u64 | flag u8×sites | count u64)×n`.
pub fn encode_histogram(hist: &[(PostDisasterState, usize)]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(hist.len() as u64).to_le_bytes());
    for (state, count) in hist {
        let flags = state.flooded();
        out.extend_from_slice(&(flags.len() as u64).to_le_bytes());
        out.extend(flags.iter().map(|&f| u8::from(f)));
        out.extend_from_slice(&(*count as u64).to_le_bytes());
    }
    out
}

/// Decodes a flood-pattern histogram for an architecture with
/// `site_count` control sites. Returns `None` on any shape mismatch.
pub fn decode_histogram(
    bytes: &[u8],
    architecture: ct_scada::Architecture,
) -> Option<Vec<(PostDisasterState, usize)>> {
    let site_count = architecture.site_count();
    let mut r = Reader::new(bytes);
    let n = usize::try_from(r.u64()?).ok()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let sites = usize::try_from(r.u64()?).ok()?;
        if sites != site_count {
            return None;
        }
        let mut flags = Vec::with_capacity(sites);
        for _ in 0..sites {
            flags.push(match r.u8()? {
                0 => false,
                1 => true,
                _ => return None,
            });
        }
        let count = usize::try_from(r.u64()?).ok()?;
        out.push((PostDisasterState::new(architecture, flags), count));
    }
    r.finish()?;
    Some(out)
}

/// A bounds-checked little-endian cursor; every read is `Option` so
/// malformed payloads fall out as `None` instead of panicking.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }

    /// Succeeds only when the payload was consumed exactly.
    fn finish(&self) -> Option<()> {
        (self.pos == self.bytes.len()).then_some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_geo::terrain::synthesize_oahu;
    use ct_hazard::HazardSpec;
    use ct_scada::{oahu, Architecture};

    fn study_inputs() -> (CaseStudyConfig, Dem, Vec<Poi>) {
        let config = CaseStudyConfig::default();
        let dem = synthesize_oahu(&config.terrain);
        let pois = oahu::case_study_pois(&dem).unwrap();
        (config, dem, pois)
    }

    fn base_key(config: &CaseStudyConfig, dem: &Dem, pois: &[Poi]) -> Digest {
        let hazard = config.hazard.build_model(dem, config.calibration);
        ensemble_base_key(config, dem, pois, hazard.as_ref())
    }

    #[test]
    fn base_key_is_deterministic_and_input_sensitive() {
        let (config, dem, pois) = study_inputs();
        let a = base_key(&config, &dem, &pois);
        let b = base_key(&config, &dem, &pois);
        assert_eq!(a, b);

        let mut seeded = config.clone();
        seeded.ensemble.seed += 1;
        assert_ne!(base_key(&seeded, &dem, &pois), a);

        // Surge calibration enters via the surge hazard's param digest.
        let mut calibrated = config.clone();
        calibrated.calibration.ib_m_per_hpa *= 2.0;
        assert_ne!(base_key(&calibrated, &dem, &pois), a);
    }

    #[test]
    fn base_key_ignores_size_threads_and_threshold() {
        let (config, dem, pois) = study_inputs();
        let a = base_key(&config, &dem, &pois);
        let mut other = config.clone();
        other.ensemble.realizations = 7;
        other.threads = 3;
        other.flood_threshold_m = Some(1.25);
        assert_eq!(
            base_key(&other, &dem, &pois),
            a,
            "size/threads/threshold must not invalidate records"
        );
    }

    #[test]
    fn base_key_separates_hazards() {
        let (config, dem, pois) = study_inputs();
        let mut keys = Vec::new();
        for hazard in HazardSpec::ALL {
            let mut c = config.clone();
            c.hazard = hazard;
            keys.push(base_key(&c, &dem, &pois));
        }
        for i in 0..keys.len() {
            for j in (i + 1)..keys.len() {
                assert_ne!(
                    keys[i],
                    keys[j],
                    "{} and {} must not share records",
                    HazardSpec::ALL[i],
                    HazardSpec::ALL[j]
                );
            }
        }
        // Wind runs ignore the surge calibration, so calibration must
        // not churn their keys.
        let mut wind = config.clone();
        wind.hazard = HazardSpec::Wind;
        let wind_key = base_key(&wind, &dem, &pois);
        let mut recalibrated = wind.clone();
        recalibrated.calibration.ib_m_per_hpa *= 2.0;
        assert_eq!(base_key(&recalibrated, &dem, &pois), wind_key);
    }

    /// Regression for the PR-3 → PR-4 store migration: the pre-hazard
    /// key recipe (kernel v1, calibration hashed inline, no hazard
    /// id/digest) reconstructed verbatim must not collide with any v2
    /// key, so records written by older binaries read as cold misses —
    /// never as aliased surge hits.
    #[test]
    fn pre_hazard_store_keys_are_invisible_not_aliased() {
        let (config, dem, pois) = study_inputs();
        let mut h = StableHasher::new();
        h.write_str("compound-threats/ensemble");
        h.write_u32(1); // PIPELINE_KERNEL_VERSION before the hazard engine
        h.write_u32(ct_hydro::HYDRO_KERNEL_VERSION);
        let t = &config.terrain;
        h.write_u64(t.seed);
        h.write_f64(t.cell_km);
        h.write_f64(t.noise_amp_m);
        hash_dem(&mut h, &dem);
        let e = &config.ensemble;
        h.write_u64(e.seed);
        h.write_str(&format!("{:?}", e.category));
        h.write_f64(e.ambient_pressure_hpa);
        h.write_f64(e.base_passing_lon);
        h.write_f64(e.cross_track_mean_km);
        h.write_f64(e.cross_track_sd_km);
        h.write_f64(e.heading_mean_deg);
        h.write_f64(e.heading_sd_deg);
        let c = &config.calibration;
        h.write_f64(c.setup_coefficient);
        h.write_f64(c.ib_m_per_hpa);
        h.write_f64(c.ib_decay_km);
        h.write_f64(c.wave_setup_fraction);
        h.write_f64(c.attenuation_m_per_km);
        h.write_f64(c.scan_step_hours);
        h.write_usize(pois.len());
        for poi in &pois {
            h.write_str(&poi.id);
            h.write_f64(poi.pos.lat);
            h.write_f64(poi.pos.lon);
            h.write_f64(poi.ground_elevation_m);
            h.write_f64(poi.shore_distance_km);
            match poi.station_override {
                None => h.write_str("nearest"),
                Some(id) => h.write_str(&format!("{id:?}")),
            }
        }
        let pre_hazard = h.finish();
        for hazard in HazardSpec::ALL {
            let mut c = config.clone();
            c.hazard = hazard;
            assert_ne!(
                base_key(&c, &dem, &pois),
                pre_hazard,
                "a PR-3-era store must read as a miss under {hazard}"
            );
        }
    }

    /// Regression for the PR-8 → PR-9 region-generic migration: the
    /// single-region key recipe (kernel v2, no region spec/index, no
    /// anchor latitude) reconstructed verbatim must not collide with
    /// any v3 key, so records written by older binaries read as cold
    /// misses — never as aliased region-0 hits.
    #[test]
    fn pre_region_store_keys_are_invisible_not_aliased() {
        let (config, dem, pois) = study_inputs();
        for hazard_spec in HazardSpec::ALL {
            let mut c = config.clone();
            c.hazard = hazard_spec;
            let hazard = c.hazard.build_model(&dem, c.calibration);

            let mut h = StableHasher::new();
            h.write_str("compound-threats/ensemble");
            h.write_u32(2); // PIPELINE_KERNEL_VERSION before the portfolio
            h.write_u32(ct_hydro::HYDRO_KERNEL_VERSION);
            h.write_u32(ct_hazard::HAZARD_KERNEL_VERSION);
            let t = &c.terrain;
            h.write_u64(t.seed);
            h.write_f64(t.cell_km);
            h.write_f64(t.noise_amp_m);
            hash_dem(&mut h, &dem);
            let e = &c.ensemble;
            h.write_u64(e.seed);
            h.write_str(&format!("{:?}", e.category));
            h.write_f64(e.ambient_pressure_hpa);
            h.write_f64(e.base_passing_lon);
            h.write_f64(e.cross_track_mean_km);
            h.write_f64(e.cross_track_sd_km);
            h.write_f64(e.heading_mean_deg);
            h.write_f64(e.heading_sd_deg);
            h.write_str(&hazard.hazard_id());
            hazard.digest_params(&mut h);
            h.write_usize(pois.len());
            for poi in &pois {
                h.write_str(&poi.id);
                h.write_f64(poi.pos.lat);
                h.write_f64(poi.pos.lon);
                h.write_f64(poi.ground_elevation_m);
                h.write_f64(poi.shore_distance_km);
                match poi.station_override {
                    None => h.write_str("nearest"),
                    Some(id) => h.write_str(&format!("{id:?}")),
                }
            }
            let pre_region = h.finish();
            assert_ne!(
                base_key(&c, &dem, &pois),
                pre_region,
                "a PR-8-era store must read as a miss under {hazard_spec}"
            );
        }
    }

    /// The Oahu preset's DEM digest, pinned. A change here means the
    /// named terrain drifted — every cached artifact silently re-keys —
    /// so it must be an explicit, reviewed decision.
    #[test]
    fn oahu_dem_digest_is_pinned() {
        let (_, dem, _) = study_inputs();
        assert_eq!(
            dem_digest(&dem).to_hex(),
            "bdb63530bd71b6d1aa8bdc3951c7b858",
            "Oahu preset DEM drifted — this invalidates every cached artifact"
        );
        let grid = dem.elevation_grid();
        assert_eq!((grid.cols(), grid.rows()), (184, 156));
    }

    #[test]
    fn region_keys_separate_spec_index_and_anchor() {
        let (config, dem, pois) = study_inputs();
        let hazard = config.hazard.build_model(&dem, config.calibration);
        let key = |c: &CaseStudyConfig, e: &ct_hydro::EnsembleConfig, r: usize| {
            region_base_key(c, e, &dem, &pois, hazard.as_ref(), r)
        };
        let base = key(&config, &config.ensemble, 0);
        // Region 0 with the config's own ensemble IS the classic key.
        assert_eq!(
            base,
            ensemble_base_key(&config, &dem, &pois, hazard.as_ref())
        );
        // A different region index must not share records.
        assert_ne!(key(&config, &config.ensemble, 1), base);
        // A different portfolio spec must not share records.
        let mut synth = config.clone();
        synth.region = "synth:7:3:24".parse().unwrap();
        assert_ne!(key(&synth, &config.ensemble, 0), base);
        // A re-anchored ensemble must not share records.
        let mut moved = config.ensemble.clone();
        moved.anchor_lat += 1.0;
        assert_ne!(key(&config, &moved, 0), base);
    }

    #[test]
    fn realization_keys_are_distinct_per_index() {
        let (config, dem, pois) = study_inputs();
        let base = base_key(&config, &dem, &pois);
        assert_ne!(realization_key(&base, 0), realization_key(&base, 1));
    }

    #[test]
    fn realization_codec_round_trips_bit_exactly() {
        let r = Realization {
            index: 17,
            tide_m: -0.0,
            max_station_surge_m: 2.5000000000000004,
            inundation_m: vec![0.0, 1.5, f64::MIN_POSITIVE, 3.75],
        };
        let decoded = decode_realization(&encode_realization(&r, "surge"), 4, "surge").unwrap();
        assert_eq!(decoded.index, r.index);
        assert_eq!(decoded.tide_m.to_bits(), r.tide_m.to_bits());
        assert_eq!(
            decoded.max_station_surge_m.to_bits(),
            r.max_station_surge_m.to_bits()
        );
        for (a, b) in decoded.inundation_m.iter().zip(&r.inundation_m) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn realization_codec_rejects_malformed_payloads() {
        let r = Realization {
            index: 0,
            tide_m: 0.1,
            max_station_surge_m: 1.0,
            inundation_m: vec![0.5; 3],
        };
        let bytes = encode_realization(&r, "surge");
        assert!(
            decode_realization(&bytes, 4, "surge").is_none(),
            "wrong POI arity"
        );
        assert!(
            decode_realization(&bytes, 3, "wind").is_none(),
            "hazard-id tag mismatch"
        );
        assert!(decode_realization(&bytes[..bytes.len() - 1], 3, "surge").is_none());
        let mut long = bytes.clone();
        long.push(0);
        assert!(
            decode_realization(&long, 3, "surge").is_none(),
            "trailing junk"
        );
        assert!(decode_realization(&[], 3, "surge").is_none());
    }

    #[test]
    fn histogram_codec_round_trips() {
        let arch = Architecture::C6P6P6;
        let hist = vec![
            (PostDisasterState::new(arch, vec![false, false, false]), 900),
            (PostDisasterState::new(arch, vec![true, true, false]), 100),
        ];
        let decoded = decode_histogram(&encode_histogram(&hist), arch).unwrap();
        assert_eq!(decoded, hist);
        // Decoding against a different site count must fail cleanly.
        assert!(decode_histogram(&encode_histogram(&hist), Architecture::C2).is_none());
        assert!(decode_histogram(b"junk", arch).is_none());
    }

    #[test]
    fn histogram_keys_separate_threshold_size_and_plan() {
        let (config, dem, pois) = study_inputs();
        let base = base_key(&config, &dem, &pois);
        let plan = oahu::site_plan(Architecture::C2_2, oahu::SiteChoice::Waiau).unwrap();
        let k = plan_histogram_key(&base, 1000, 0.5, &plan);
        assert_ne!(plan_histogram_key(&base, 999, 0.5, &plan), k);
        assert_ne!(plan_histogram_key(&base, 1000, 0.75, &plan), k);
        let other = oahu::site_plan(Architecture::C2_2, oahu::SiteChoice::Kahe).unwrap();
        assert_ne!(plan_histogram_key(&base, 1000, 0.5, &other), k);
    }
}
