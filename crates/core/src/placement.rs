//! Control-site placement search — the paper's stated future-work
//! question ("How should we choose additional control site locations
//! to maximize availability?"), implemented as an exhaustive ranking
//! of candidate backup sites.

use crate::error::CoreError;
use crate::parallel::par_map_dynamic;
use crate::pipeline::CaseStudy;
use crate::profile::OutcomeProfile;
use ct_scada::{Architecture, SitePlan};
use ct_threat::ThreatScenario;
use serde::{Deserialize, Serialize};

/// One candidate backup siting and its outcome profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementResult {
    /// The asset hosting the backup control center.
    pub backup_asset_id: String,
    /// The resulting outcome profile.
    pub profile: OutcomeProfile,
}

/// Ranks every control-capable asset (other than the primary) as the
/// backup control center for `architecture` under `scenario`,
/// best first.
///
/// "Best" orders by green probability, then orange (a disrupted
/// system beats a dead one), then inverse gray.
///
/// # Errors
///
/// Propagates pipeline errors. Architectures with a single site have
/// no backup to place and return an empty ranking.
pub fn rank_backup_sites(
    study: &CaseStudy,
    architecture: Architecture,
    scenario: ThreatScenario,
) -> Result<Vec<PlacementResult>, CoreError> {
    if architecture.site_count() < 2 {
        return Ok(Vec::new());
    }
    let span = ct_obs::span("placement_rank");
    let topology = study.topology();
    // The primary control center and data center come from the
    // region's roles, not hard-wired Oahu ids, so placement search
    // works identically for synthetic regions.
    let roles = study.region(0).roles();
    let mut candidates = Vec::new();
    for asset in topology.control_candidates() {
        if asset.id == roles.primary {
            continue;
        }
        let mut ids = vec![roles.primary.clone(), asset.id.clone()];
        if architecture.site_count() == 3 {
            if asset.id == roles.data_center {
                // The data center is the third site; it cannot also be
                // the backup.
                continue;
            }
            ids.push(roles.data_center.clone());
        }
        candidates.push((
            asset.id.clone(),
            SitePlan::new(architecture, topology, ids)?,
        ));
    }
    ct_obs::add(
        ct_obs::names::PLACEMENT_CANDIDATES_RANKED,
        candidates.len() as u64,
    );
    // Candidate cost is skewed (coastal plans flood in many more
    // realizations than inland ones), so steal work dynamically.
    let busy_ns = std::sync::atomic::AtomicU64::new(0);
    let mut results = par_map_dynamic(&candidates, study.threads(), |(id, plan)| {
        let t0 = std::time::Instant::now();
        let result = study
            .profile_with_plan(plan, scenario)
            .map(|profile| PlacementResult {
                backup_asset_id: id.clone(),
                profile,
            });
        busy_ns.fetch_add(
            t0.elapsed().as_nanos() as u64,
            std::sync::atomic::Ordering::Relaxed,
        );
        result
    })
    .into_iter()
    .collect::<Result<Vec<_>, _>>()?;
    span.add_cpu_ns(busy_ns.into_inner());
    results.sort_by(|a, b| {
        b.profile
            .green()
            .total_cmp(&a.profile.green())
            .then(b.profile.orange().total_cmp(&a.profile.orange()))
            .then(a.profile.gray().total_cmp(&b.profile.gray()))
            .then(a.backup_asset_id.cmp(&b.backup_asset_id))
    });
    Ok(results)
}

/// The best backup site per [`rank_backup_sites`], if any.
///
/// # Errors
///
/// Propagates pipeline errors.
pub fn best_backup_site(
    study: &CaseStudy,
    architecture: Architecture,
    scenario: ThreatScenario,
) -> Result<Option<PlacementResult>, CoreError> {
    Ok(rank_backup_sites(study, architecture, scenario)?
        .into_iter()
        .next())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::CaseStudyConfig;
    use ct_scada::oahu;

    fn study() -> CaseStudy {
        CaseStudy::build(
            &CaseStudyConfig::builder()
                .realizations(150)
                .build()
                .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn single_site_architectures_have_no_ranking() {
        let s = study();
        assert!(
            rank_backup_sites(&s, Architecture::C6, ThreatScenario::Hurricane)
                .unwrap()
                .is_empty()
        );
    }

    #[test]
    fn kahe_beats_waiau_as_backup() {
        // The paper's Sec. VII finding, now as a search result: for
        // "6-6" under hurricane + isolation, Kahe dominates Waiau.
        let s = study();
        let ranking =
            rank_backup_sites(&s, Architecture::C6_6, ThreatScenario::HurricaneIsolation).unwrap();
        let pos = |id: &str| {
            ranking
                .iter()
                .position(|r| r.backup_asset_id == id)
                .unwrap_or(usize::MAX)
        };
        assert!(
            pos(oahu::KAHE) < pos(oahu::WAIAU),
            "expected Kahe above Waiau: {:?}",
            ranking
                .iter()
                .map(|r| (&r.backup_asset_id, r.profile.orange()))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn best_site_is_first_in_ranking() {
        let s = study();
        let ranking = rank_backup_sites(&s, Architecture::C2_2, ThreatScenario::Hurricane).unwrap();
        let best = best_backup_site(&s, Architecture::C2_2, ThreatScenario::Hurricane)
            .unwrap()
            .unwrap();
        assert_eq!(ranking[0], best);
        assert!(!ranking.is_empty());
    }

    #[test]
    fn synthetic_region_ranks_through_its_own_roles() {
        // The search must key off the region's roles, not Oahu ids: a
        // synthetic region has neither Honolulu nor DRFortress.
        let s = CaseStudy::build(
            &CaseStudyConfig::builder()
                .region("synth:3:1:12".parse().unwrap())
                .realizations(40)
                .build()
                .unwrap(),
        )
        .unwrap();
        let roles = s.region(0).roles().clone();
        let ranking = rank_backup_sites(&s, Architecture::C2_2, ThreatScenario::Hurricane).unwrap();
        assert!(!ranking.is_empty());
        assert!(ranking.iter().all(|r| r.backup_asset_id != roles.primary));
        let three = rank_backup_sites(&s, Architecture::C6P6P6, ThreatScenario::Hurricane).unwrap();
        assert!(three.iter().all(|r| r.backup_asset_id != roles.data_center));
    }

    #[test]
    fn third_site_excluded_from_backup_candidates() {
        let s = study();
        let ranking =
            rank_backup_sites(&s, Architecture::C6P6P6, ThreatScenario::Hurricane).unwrap();
        assert!(ranking
            .iter()
            .all(|r| r.backup_asset_id != oahu::DRFORTRESS));
    }
}
