//! Cross-validation of the rule-based classifier against protocol
//! executions.
//!
//! The paper *assumes* Table I's conditions (they come from prior
//! work). We additionally check them: every post-compound-threat
//! system state is mapped to a concrete deployment + fault scenario
//! on the discrete-event simulator, executed, and the observed
//! operational state compared with the classifier's answer.

use ct_replication::{
    run_scenario, DeploymentSpec, FaultScenario, ObservedState, SimVerdict, VerdictConfig,
};
use ct_scada::Architecture;
use ct_threat::{classify, OperationalState, SiteStatus, SystemState};
use serde::{Deserialize, Serialize};

/// Maps an architecture to its executable deployment.
pub fn deployment_for(architecture: Architecture) -> DeploymentSpec {
    match architecture {
        Architecture::C2 => DeploymentSpec::config_2(),
        Architecture::C2_2 => DeploymentSpec::config_2_2(),
        Architecture::C6 => DeploymentSpec::config_6(),
        Architecture::C6_6 => DeploymentSpec::config_6_6(),
        Architecture::C6P6P6 => DeploymentSpec::config_6p6p6(),
    }
}

/// Maps a post-compound-threat system state to the faults injected
/// into the simulation. Intrusions are placed at the lowest server
/// indices of their site, which makes the initial leader compromised
/// first — the worst case the classifier assumes.
pub fn fault_scenario_for(state: &SystemState) -> FaultScenario {
    let mut scenario = FaultScenario::default();
    for (site, s) in state.sites.iter().enumerate() {
        match s.status {
            SiteStatus::Flooded => scenario.flooded_sites.push(site),
            SiteStatus::Isolated => scenario.isolated_sites.push(site),
            SiteStatus::Up => {}
        }
        for idx in 0..s.intrusions {
            scenario.intrusions.push((site, idx));
        }
    }
    scenario
}

/// Whether the rule-based and observed states denote the same color.
pub fn states_agree(rule: OperationalState, observed: ObservedState) -> bool {
    matches!(
        (rule, observed),
        (OperationalState::Green, ObservedState::Green)
            | (OperationalState::Orange, ObservedState::Orange)
            | (OperationalState::Red, ObservedState::Red)
            | (OperationalState::Gray, ObservedState::Gray)
    )
}

/// The outcome of cross-validating one system state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossValidation {
    /// The state that was validated.
    pub state: SystemState,
    /// Table I's answer.
    pub rule: OperationalState,
    /// The protocol execution's answer.
    pub observed: ObservedState,
    /// Raw simulation verdict (diagnostics).
    pub verdict: SimVerdict,
}

impl CrossValidation {
    /// Whether classifier and execution agree.
    pub fn agrees(&self) -> bool {
        states_agree(self.rule, self.observed)
    }
}

/// Executes the deployment under the faults implied by `state` and
/// compares with the classifier.
pub fn cross_validate(state: &SystemState, config: &VerdictConfig) -> CrossValidation {
    let _span = ct_obs::span("crossval_state");
    ct_obs::add(ct_obs::names::CROSSVAL_STATES_VALIDATED, 1);
    let rule = classify(state);
    let spec = deployment_for(state.architecture);
    let scenario = fault_scenario_for(state);
    let verdict = run_scenario(&spec, &scenario, config);
    CrossValidation {
        state: state.clone(),
        rule,
        observed: verdict.state,
        verdict,
    }
}

/// The distinct system states the worst-case attacker can reach for an
/// architecture across all flood patterns and the paper's four threat
/// scenarios — the set worth cross-validating.
pub fn reachable_states(architecture: Architecture) -> Vec<SystemState> {
    use ct_threat::{Attacker, PostDisasterState, ThreatScenario, WorstCaseAttacker};
    let n = architecture.site_count();
    let mut out: Vec<SystemState> = Vec::new();
    for mask in 0u32..(1 << n) {
        let flooded: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
        let post = PostDisasterState::new(architecture, flooded);
        for scenario in ThreatScenario::ALL {
            let state = WorstCaseAttacker.attack(architecture, &post, scenario.budget());
            if !out.contains(&state) {
                out.push(state);
            }
        }
    }
    out
}

/// The distinct worst-case-attacker states for one threat scenario
/// (one Table I cell): every flood pattern, the scenario's attack
/// budget. This is the state set `ct check` explores per cell.
pub fn reachable_states_for(
    architecture: Architecture,
    scenario: ct_threat::ThreatScenario,
) -> Vec<SystemState> {
    use ct_threat::{Attacker, PostDisasterState, WorstCaseAttacker};
    let n = architecture.site_count();
    let mut out: Vec<SystemState> = Vec::new();
    for mask in 0u32..(1 << n) {
        let flooded: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
        let post = PostDisasterState::new(architecture, flooded);
        let state = WorstCaseAttacker.attack(architecture, &post, scenario.budget());
        if !out.contains(&state) {
            out.push(state);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_threat::SiteState;

    fn state(arch: Architecture, sites: Vec<(SiteStatus, usize)>) -> SystemState {
        SystemState {
            architecture: arch,
            sites: sites
                .into_iter()
                .map(|(status, intrusions)| SiteState { status, intrusions })
                .collect(),
        }
    }

    fn quick_cfg() -> VerdictConfig {
        VerdictConfig {
            run_duration: ct_simnet::SimTime::from_secs(60.0),
            ..VerdictConfig::default()
        }
    }

    #[test]
    fn deployment_mapping_matches_labels() {
        for arch in Architecture::ALL {
            assert_eq!(deployment_for(arch).name, arch.label());
        }
    }

    #[test]
    fn fault_mapping_covers_all_site_states() {
        let s = state(
            Architecture::C6P6P6,
            vec![
                (SiteStatus::Flooded, 0),
                (SiteStatus::Isolated, 0),
                (SiteStatus::Up, 2),
            ],
        );
        let f = fault_scenario_for(&s);
        assert_eq!(f.flooded_sites, vec![0]);
        assert_eq!(f.isolated_sites, vec![1]);
        assert_eq!(f.intrusions, vec![(2, 0), (2, 1)]);
    }

    #[test]
    fn reachable_states_are_modest_and_distinct() {
        for arch in Architecture::ALL {
            let states = reachable_states(arch);
            assert!(!states.is_empty());
            assert!(states.len() <= 32, "{arch}: {}", states.len());
            for (i, a) in states.iter().enumerate() {
                assert!(!states[..i].contains(a), "duplicate state");
            }
        }
    }

    #[test]
    fn crossval_agreement_green_case() {
        let s = state(Architecture::C6, vec![(SiteStatus::Up, 1)]);
        let cv = cross_validate(&s, &quick_cfg());
        assert_eq!(cv.rule, OperationalState::Green);
        assert!(cv.agrees(), "{cv:?}");
    }

    #[test]
    fn crossval_agreement_gray_case() {
        let s = state(Architecture::C2, vec![(SiteStatus::Up, 1)]);
        let cv = cross_validate(&s, &quick_cfg());
        assert_eq!(cv.rule, OperationalState::Gray);
        assert!(cv.agrees(), "{cv:?}");
    }

    #[test]
    fn crossval_agreement_orange_case() {
        let s = state(
            Architecture::C6_6,
            vec![(SiteStatus::Isolated, 0), (SiteStatus::Up, 1)],
        );
        let cv = cross_validate(&s, &quick_cfg());
        assert_eq!(cv.rule, OperationalState::Orange);
        assert!(cv.agrees(), "{cv:?}");
    }
}
