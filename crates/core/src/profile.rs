//! Outcome probability profiles — the bars of Figures 6-11.

use ct_threat::OperationalState;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The distribution of operational states over an ensemble of
/// realizations: the paper's per-configuration probability profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct OutcomeProfile {
    counts: [usize; 4],
}

impl OutcomeProfile {
    /// An empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a profile from per-realization outcomes.
    pub fn from_outcomes(outcomes: impl IntoIterator<Item = OperationalState>) -> Self {
        let mut p = Self::default();
        for o in outcomes {
            p.record(o);
        }
        p
    }

    /// Records one realization outcome.
    pub fn record(&mut self, outcome: OperationalState) {
        self.record_n(outcome, 1);
    }

    /// Records `n` realizations with the same outcome — the weighted
    /// form used when outcomes are evaluated per distinct flood
    /// pattern rather than per realization.
    pub fn record_n(&mut self, outcome: OperationalState, n: usize) {
        self.counts[Self::slot(outcome)] += n;
    }

    fn slot(state: OperationalState) -> usize {
        match state {
            OperationalState::Green => 0,
            OperationalState::Orange => 1,
            OperationalState::Red => 2,
            OperationalState::Gray => 3,
        }
    }

    /// Total realizations recorded.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Count of a specific outcome.
    pub fn count(&self, state: OperationalState) -> usize {
        self.counts[Self::slot(state)]
    }

    /// Probability of a specific outcome (0 for an empty profile).
    pub fn fraction(&self, state: OperationalState) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.count(state) as f64 / total as f64
        }
    }

    /// Probability of the green state.
    pub fn green(&self) -> f64 {
        self.fraction(OperationalState::Green)
    }

    /// Probability of the orange state.
    pub fn orange(&self) -> f64 {
        self.fraction(OperationalState::Orange)
    }

    /// Probability of the red state.
    pub fn red(&self) -> f64 {
        self.fraction(OperationalState::Red)
    }

    /// Probability of the gray state.
    pub fn gray(&self) -> f64 {
        self.fraction(OperationalState::Gray)
    }

    /// Whether two profiles agree within `tol` on every state.
    pub fn approx_eq(&self, other: &OutcomeProfile, tol: f64) -> bool {
        OperationalState::ALL
            .iter()
            .all(|&s| (self.fraction(s) - other.fraction(s)).abs() <= tol)
    }

    /// Merges another profile into this one.
    pub fn merge(&mut self, other: &OutcomeProfile) {
        for i in 0..4 {
            self.counts[i] += other.counts[i];
        }
    }

    /// Builds a profile from fractions of a nominal total (used by
    /// the probabilistic-attacker mixture model). Fractions are
    /// rounded to counts out of `total`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if fractions are negative.
    pub fn from_fractions(green: f64, orange: f64, red: f64, gray: f64, total: usize) -> Self {
        debug_assert!(green >= 0.0 && orange >= 0.0 && red >= 0.0 && gray >= 0.0);
        let t = total as f64;
        Self {
            counts: [
                (green * t).round() as usize,
                (orange * t).round() as usize,
                (red * t).round() as usize,
                (gray * t).round() as usize,
            ],
        }
    }
}

impl fmt::Display for OutcomeProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "green {:.1}% / orange {:.1}% / red {:.1}% / gray {:.1}%",
            100.0 * self.green(),
            100.0 * self.orange(),
            100.0 * self.red(),
            100.0 * self.gray()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use OperationalState::*;

    #[test]
    fn counting_and_fractions() {
        let p = OutcomeProfile::from_outcomes([Green, Green, Red, Gray]);
        assert_eq!(p.total(), 4);
        assert_eq!(p.count(Green), 2);
        assert!((p.green() - 0.5).abs() < 1e-12);
        assert!((p.orange() - 0.0).abs() < 1e-12);
        assert!((p.red() - 0.25).abs() < 1e-12);
        assert!((p.gray() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_profile_is_all_zero() {
        let p = OutcomeProfile::new();
        assert_eq!(p.total(), 0);
        assert_eq!(p.green(), 0.0);
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut weighted = OutcomeProfile::new();
        weighted.record_n(Green, 3);
        weighted.record_n(Gray, 2);
        let repeated = OutcomeProfile::from_outcomes([Green, Green, Green, Gray, Gray]);
        assert_eq!(weighted, repeated);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = OutcomeProfile::from_outcomes([Green]);
        let b = OutcomeProfile::from_outcomes([Red, Red]);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.count(Red), 2);
    }

    #[test]
    fn approx_eq_tolerance() {
        let a = OutcomeProfile::from_outcomes(vec![Green; 95].into_iter().chain(vec![Red; 5]));
        let b = OutcomeProfile::from_outcomes(vec![Green; 94].into_iter().chain(vec![Red; 6]));
        assert!(a.approx_eq(&b, 0.02));
        assert!(!a.approx_eq(&b, 0.001));
    }

    #[test]
    fn display_percentages() {
        let p = OutcomeProfile::from_outcomes([Green, Red]);
        assert_eq!(
            p.to_string(),
            "green 50.0% / orange 0.0% / red 50.0% / gray 0.0%"
        );
    }

    #[test]
    fn from_fractions_round_trips() {
        let p = OutcomeProfile::from_fractions(0.905, 0.0, 0.095, 0.0, 1000);
        assert_eq!(p.count(Green), 905);
        assert_eq!(p.count(Red), 95);
    }
}
