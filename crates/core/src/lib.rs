//! The compound-threats analysis framework (the paper's primary
//! contribution).
//!
//! The framework implements the workflow of the paper's Fig. 5:
//!
//! ```text
//! geospatial SCADA topology ──┐
//!                             ├─► apply natural-disaster impact
//! hurricane realizations ─────┘          │
//!                                        ▼
//!                        post-disaster system states
//!                                        │
//!                     apply worst-case cyberattack model
//!                                        ▼
//!                        final system states ──► Table I ──► outcome
//!                                                            probabilities
//! ```
//!
//! [`CaseStudy`] wires the substrates together for the Oahu case
//! study: synthetic terrain ([`ct_geo`]), the hurricane ensemble and
//! surge model ([`ct_hydro`]), the topology and architectures
//! ([`ct_scada`]), and the attacker/classifier ([`ct_threat`]). The
//! [`figures`] module regenerates every figure in the paper's
//! evaluation; [`crossval`] checks the rule-based classification
//! against actual protocol executions ([`ct_replication`]);
//! [`placement`] and [`attacker_power`] implement the paper's
//! discussion-section extensions.
//!
//! # Example
//!
//! ```no_run
//! use compound_threats::{CaseStudy, CaseStudyConfig};
//! use ct_scada::{oahu::SiteChoice, Architecture};
//! use ct_threat::ThreatScenario;
//!
//! # fn main() -> Result<(), compound_threats::CoreError> {
//! let study = CaseStudy::build(&CaseStudyConfig::default())?;
//! let profile = study.profile(
//!     Architecture::C6P6P6,
//!     ThreatScenario::HurricaneIsolation,
//!     SiteChoice::Waiau,
//! )?;
//! println!("green with probability {:.3}", profile.green());
//! # Ok(())
//! # }
//! ```

pub mod artifact;
pub mod attacker_power;
pub mod availability;
pub mod check;
pub mod conn;
pub mod crossval;
pub mod error;
pub mod event;
pub mod figures;
pub mod grid_impact;
pub mod parallel;
pub mod pipeline;
pub mod placement;
pub mod prelude;
pub mod probe;
pub mod profile;
pub mod report;
pub mod sensitivity;
pub mod serve;
pub mod summary;
pub mod traffic;

pub use error::CoreError;
pub use figures::{Figure, FigureData};
pub use pipeline::{
    CaseStudy, CaseStudyConfig, CaseStudyConfigBuilder, RegionStudy, ShardReport, ShardSpec,
};
pub use profile::OutcomeProfile;
