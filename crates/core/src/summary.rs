//! One-shot markdown report: the whole case study as a single
//! document (hazard statistics, all six figures, downtime, placement),
//! for dropping into a lab notebook or CI artifact.

use crate::availability::{downtime_report, DowntimeModel};
use crate::error::CoreError;
use crate::figures::{reproduce_all, Figure};
use crate::pipeline::CaseStudy;
use crate::placement::rank_backup_sites;
use crate::report::figure_markdown;
use ct_scada::{oahu, Architecture};
use ct_threat::ThreatScenario;
use std::fmt::Write as _;

/// Options for [`write_report`].
#[derive(Debug, Clone, PartialEq)]
pub struct ReportOptions {
    /// Downtime durations used in the availability section.
    pub downtime: DowntimeModel,
    /// Include the placement-search section (adds a full ranking per
    /// architecture).
    pub include_placement: bool,
}

impl Default for ReportOptions {
    fn default() -> Self {
        Self {
            downtime: DowntimeModel::default(),
            include_placement: true,
        }
    }
}

/// Renders the complete case study as a markdown document.
///
/// # Errors
///
/// Propagates pipeline errors.
pub fn write_report(study: &CaseStudy, options: &ReportOptions) -> Result<String, CoreError> {
    let _span = ct_obs::span("report");
    let mut out = String::new();
    writeln!(out, "# Compound-threat case study — Oahu, Hawaii\n")?;
    writeln!(
        out,
        "Ensemble: {} hurricane realizations, seed {}, hazard engine `{}`.\n",
        study.realizations().len(),
        study.config().ensemble.seed,
        study.hazard()
    )?;

    // Hazard section.
    writeln!(out, "## Hazard\n")?;
    writeln!(out, "| control site | flood probability |")?;
    writeln!(out, "|---|---|")?;
    for id in [
        oahu::HONOLULU_CC,
        oahu::WAIAU,
        oahu::KAHE,
        oahu::DRFORTRESS,
        oahu::ALOHANAP,
    ] {
        writeln!(
            out,
            "| {} | {:.1} % |",
            id,
            100.0 * study.flood_probability(id)?
        )?;
    }
    writeln!(out)?;

    // Figures.
    writeln!(out, "## Operational profiles (paper Figs. 6-11)\n")?;
    for data in reproduce_all(study)? {
        writeln!(out, "{}", figure_markdown(&data))?;
    }

    // Downtime.
    writeln!(out, "## Expected downtime per threat event\n")?;
    writeln!(
        out,
        "Durations: orange {:.1} h, red {:.0} h, gray {:.0} h.\n",
        options.downtime.orange_hours, options.downtime.red_hours, options.downtime.gray_hours
    )?;
    for choice in [oahu::SiteChoice::Waiau, oahu::SiteChoice::Kahe] {
        writeln!(out, "### Backup at {choice:?}\n")?;
        writeln!(
            out,
            "| scenario | {} |",
            Architecture::ALL
                .iter()
                .map(|a| format!("\"{}\"", a.label()))
                .collect::<Vec<_>>()
                .join(" | ")
        )?;
        writeln!(out, "|---|---|---|---|---|---|")?;
        for scenario in ThreatScenario::ALL {
            let report = downtime_report(study, scenario, choice, &options.downtime)?;
            let cells: Vec<String> = Architecture::ALL
                .iter()
                .map(|&a| format!("{:.1} h", report.hours(a).unwrap_or(f64::NAN)))
                .collect();
            writeln!(out, "| {} | {} |", scenario, cells.join(" | "))?;
        }
        writeln!(out)?;
    }

    // Placement.
    if options.include_placement {
        writeln!(out, "## Backup-site ranking (future-work extension)\n")?;
        for arch in [Architecture::C6_6, Architecture::C6P6P6] {
            let ranking =
                rank_backup_sites(study, arch, ThreatScenario::HurricaneIntrusionIsolation)?;
            writeln!(out, "### {arch} under the full compound threat\n")?;
            writeln!(out, "| rank | backup site | green | orange | red | gray |")?;
            writeln!(out, "|---|---|---|---|---|---|")?;
            for (i, r) in ranking.iter().enumerate().take(8) {
                writeln!(
                    out,
                    "| {} | {} | {:.1} % | {:.1} % | {:.1} % | {:.1} % |",
                    i + 1,
                    r.backup_asset_id,
                    100.0 * r.profile.green(),
                    100.0 * r.profile.orange(),
                    100.0 * r.profile.red(),
                    100.0 * r.profile.gray()
                )?;
            }
            writeln!(out)?;
        }
    }

    writeln!(
        out,
        "_Generated from {} figures across {} architectures._",
        Figure::ALL.len(),
        Architecture::ALL.len()
    )?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::CaseStudyConfig;

    #[test]
    fn report_contains_all_sections() {
        let study = CaseStudy::build(&CaseStudyConfig::builder().realizations(80).build().unwrap())
            .unwrap();
        let report = write_report(&study, &ReportOptions::default()).unwrap();
        for needle in [
            "# Compound-threat case study",
            "hazard engine `surge`",
            "## Hazard",
            "Fig. 6",
            "Fig. 11",
            "## Expected downtime",
            "## Backup-site ranking",
            "honolulu-cc",
            "\"6+6+6\"",
        ] {
            assert!(report.contains(needle), "missing section: {needle}");
        }
        // Markdown tables are well-formed: every table row line starts
        // and ends with a pipe.
        for line in report.lines().filter(|l| l.starts_with('|')) {
            assert!(line.ends_with('|'), "ragged table row: {line}");
        }
    }

    #[test]
    fn placement_section_is_optional() {
        let study = CaseStudy::build(&CaseStudyConfig::builder().realizations(40).build().unwrap())
            .unwrap();
        let opts = ReportOptions {
            include_placement: false,
            ..ReportOptions::default()
        };
        let report = write_report(&study, &opts).unwrap();
        assert!(!report.contains("## Backup-site ranking"));
    }
}
