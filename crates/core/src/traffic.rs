//! `ct bench-serve`: a load generator for the serving tier.
//!
//! The keep-alive rework (see DESIGN.md) claims one thing: a client
//! that stops dialing per operation gets its latency back. This
//! module measures it. N connection threads each hold one kept-alive
//! socket to a `ct serve` daemon and drive object traffic over it in
//! one of two disciplines:
//!
//! - **closed loop** (default): each connection keeps M requests
//!   pipelined in flight; a response completing immediately releases
//!   the next request. Measures the server's capacity — throughput at
//!   full pressure — plus the latency under that pressure.
//! - **open loop**: requests are issued on a fixed global schedule
//!   (`--rate`, split evenly across connections) whether or not
//!   responses have come back. Measures latency at a fixed offered
//!   load without the coordinated-omission bias of closed loops.
//!
//! Either way, every response is matched FIFO to its send timestamp
//! (HTTP/1.1 answers in order), latencies feed a sorted vector for
//! exact percentiles, and a server-initiated close (idle timeout,
//! max-requests bound, restart) is handled the way a real client
//! handles it: drop what was in flight, redial, keep going — counted,
//! not fatal.
//!
//! PUT bodies are valid `CTSTORE1` frames over derived digests, so
//! the server exercises its real validation path and a follow-up GET
//! phase reads back real records. Results print as `key=value` CSV
//! lines (greppable in CI) and feed `BENCH_store.json`.

use crate::error::CoreError;
use ct_store::format::encode_record;
use ct_store::remote::{encode_request, parse_response};
use ct_store::StableHasher;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which discipline drives the connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchMode {
    /// Windowed pipelining: M in flight per connection, always.
    Closed,
    /// Fixed offered rate (ops/s across all connections).
    Open,
}

impl std::str::FromStr for BenchMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "closed" => Ok(BenchMode::Closed),
            "open" => Ok(BenchMode::Open),
            other => Err(format!("unknown bench mode '{other}' (closed | open)")),
        }
    }
}

/// Which store verb the measured phase issues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchOp {
    /// `PUT /objects/<key>` with framed bodies.
    Put,
    /// `GET /objects/<key>` over pre-seeded keys.
    Get,
}

impl BenchOp {
    fn label(self) -> &'static str {
        match self {
            BenchOp::Put => "put",
            BenchOp::Get => "get",
        }
    }
}

/// Configuration for [`bench_serve`].
#[derive(Debug, Clone)]
pub struct BenchServeOptions {
    /// `host:port` of the serving store under test.
    pub authority: String,
    /// Concurrent connections (threads) to hold open.
    pub connections: usize,
    /// Closed loop: requests kept in flight per connection.
    pub inflight: usize,
    /// Measured duration per phase, in seconds.
    pub seconds: f64,
    /// Record payload size in bytes.
    pub payload_bytes: usize,
    /// Distinct object keys cycled through.
    pub keys: usize,
    /// Loop discipline.
    pub mode: BenchMode,
    /// Open loop: total offered ops/s across all connections.
    pub rate: f64,
    /// Phases to run (`put`, `get`, or both in that order).
    pub ops: Vec<BenchOp>,
}

impl Default for BenchServeOptions {
    fn default() -> Self {
        Self {
            authority: String::new(),
            connections: 64,
            inflight: 4,
            seconds: 5.0,
            payload_bytes: 256,
            keys: 1024,
            mode: BenchMode::Closed,
            rate: 10_000.0,
            ops: vec![BenchOp::Put, BenchOp::Get],
        }
    }
}

/// One measured phase's results.
#[derive(Debug, Clone)]
pub struct BenchRow {
    /// The verb this phase issued.
    pub op: BenchOp,
    /// The discipline it ran under.
    pub mode: BenchMode,
    /// Connections held open.
    pub connections: usize,
    /// In-flight window (closed loop) or offered rate (open loop).
    pub inflight: usize,
    /// Responses completed inside the measurement window.
    pub ops: u64,
    /// Wall-clock seconds actually measured.
    pub elapsed_s: f64,
    /// Completed ops per second.
    pub ops_per_s: f64,
    /// Median request latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub p99_ms: f64,
    /// Non-2xx responses (server refusals, never silent).
    pub errors: u64,
    /// Fresh dials after a server-side close or transport error.
    pub redials: u64,
}

impl BenchRow {
    /// The greppable one-line form:
    /// `bench-serve,op=put,mode=closed,connections=64,…`.
    pub fn to_csv(&self) -> String {
        format!(
            "bench-serve,op={},mode={},connections={},inflight={},ops={},elapsed_s={:.3},\
             ops_per_s={:.0},p50_ms={:.3},p99_ms={:.3},errors={},redials={}",
            self.op.label(),
            match self.mode {
                BenchMode::Closed => "closed",
                BenchMode::Open => "open",
            },
            self.connections,
            self.inflight,
            self.ops,
            self.elapsed_s,
            self.ops_per_s,
            self.p50_ms,
            self.p99_ms,
            self.errors,
            self.redials
        )
    }
}

/// Pre-encoded request bytes shared (read-only) by every worker.
struct Workload {
    put: Vec<Vec<u8>>,
    get: Vec<Vec<u8>>,
}

/// The deterministic bench keyspace: digest `i` is derived from a
/// fixed label, payload `i` is a byte pattern seeded by `i` — so
/// repeated runs hit the same objects and a GET phase can trust a
/// prior PUT phase (or seed pass) to have stored them.
fn build_workload(keys: usize, payload_bytes: usize) -> Workload {
    let mut put = Vec::with_capacity(keys);
    let mut get = Vec::with_capacity(keys);
    for i in 0..keys {
        let mut hasher = StableHasher::new();
        hasher.write_str("bench-serve key");
        hasher.write_usize(i);
        let target = format!("/objects/{}", hasher.finish().to_hex());
        let payload: Vec<u8> = (0..payload_bytes)
            .map(|j| (i.wrapping_mul(31).wrapping_add(j.wrapping_mul(7)) & 0xff) as u8)
            .collect();
        put.push(encode_request(
            "PUT",
            &target,
            &encode_record(&payload),
            true,
        ));
        get.push(encode_request("GET", &target, &[], true));
    }
    Workload { put, get }
}

/// What one connection thread brings home.
#[derive(Default)]
struct WorkerTally {
    latencies_ms: Vec<f64>,
    ops: u64,
    errors: u64,
    redials: u64,
}

/// Runs every configured phase against the daemon and returns one
/// row per phase. A GET-only run seeds the keyspace first (unmeasured)
/// so it reads real records.
///
/// # Errors
///
/// Configuration errors and a totally unreachable server; transport
/// trouble *during* a phase is redial-and-continue, not an error.
pub fn bench_serve(options: &BenchServeOptions) -> Result<Vec<BenchRow>, CoreError> {
    if options.connections == 0 || options.inflight == 0 || options.keys == 0 {
        return Err(CoreError::InvalidConfig {
            field: "bench-serve",
            reason: "connections, inflight, and keys must all be positive".into(),
        });
    }
    let workload = Arc::new(build_workload(options.keys, options.payload_bytes));
    // Prove the server is there before spawning a thousand threads at
    // it, and seed the keyspace when no measured PUT phase will.
    let probe = dial(&options.authority).map_err(|e| CoreError::Io {
        path: format!("http://{}", options.authority),
        message: format!("bench target unreachable: {e}"),
    })?;
    drop(probe);
    if !options.ops.contains(&BenchOp::Put) {
        seed_keys(&options.authority, &workload)?;
    }
    options
        .ops
        .iter()
        .map(|&op| run_phase(options, &workload, op))
        .collect()
}

/// One measured phase: spawn the connection threads, let them run for
/// the window, merge their tallies into a row.
fn run_phase(
    options: &BenchServeOptions,
    workload: &Arc<Workload>,
    op: BenchOp,
) -> Result<BenchRow, CoreError> {
    let deadline = Instant::now() + Duration::from_secs_f64(options.seconds.max(0.1));
    let started = Instant::now();
    let per_conn_rate = options.rate.max(1.0) / options.connections as f64;
    let workers: Vec<_> = (0..options.connections)
        .map(|worker| {
            let workload = Arc::clone(workload);
            let authority = options.authority.clone();
            let mode = options.mode;
            let inflight = options.inflight;
            // Small stacks: at 1024 connections the default 2 MiB
            // per thread would reserve 2 GiB of address space.
            std::thread::Builder::new()
                .name(format!("bench-conn-{worker}"))
                .stack_size(256 * 1024)
                .spawn(move || match mode {
                    BenchMode::Closed => {
                        closed_loop(&authority, &workload, op, worker, inflight, deadline)
                    }
                    BenchMode::Open => {
                        open_loop(&authority, &workload, op, worker, per_conn_rate, deadline)
                    }
                })
                .map_err(|e| CoreError::Io {
                    path: "bench-serve worker".into(),
                    message: e.to_string(),
                })
        })
        .collect::<Result<_, _>>()?;
    let mut latencies: Vec<f64> = Vec::new();
    let mut ops = 0u64;
    let mut errors = 0u64;
    let mut redials = 0u64;
    for worker in workers {
        let tally = worker.join().unwrap_or_default();
        latencies.extend(tally.latencies_ms);
        ops += tally.ops;
        errors += tally.errors;
        redials += tally.redials;
    }
    let elapsed_s = started.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.total_cmp(b));
    Ok(BenchRow {
        op,
        mode: options.mode,
        connections: options.connections,
        inflight: options.inflight,
        ops,
        elapsed_s,
        ops_per_s: ops as f64 / elapsed_s.max(1e-9),
        p50_ms: percentile(&latencies, 50.0),
        p99_ms: percentile(&latencies, 99.0),
        errors,
        redials,
    })
}

/// Exact percentile over a sorted sample (zero when empty).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn dial(authority: &str) -> std::io::Result<TcpStream> {
    use std::net::ToSocketAddrs;
    let addr = authority
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::other("bench authority resolved to no address"))?;
    // The server's listen backlog is finite; under a 1024-connection
    // stampede some SYNs get dropped and must be retried.
    let mut last = std::io::Error::other("no dial attempted");
    for _ in 0..10 {
        match TcpStream::connect_timeout(&addr, Duration::from_secs(2)) {
            Ok(stream) => {
                stream.set_nodelay(true)?;
                stream.set_read_timeout(Some(Duration::from_millis(50)))?;
                stream.set_write_timeout(Some(Duration::from_secs(10)))?;
                return Ok(stream);
            }
            Err(e) => last = e,
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    Err(last)
}

/// Stores every bench key once over one connection — the unmeasured
/// pass before a GET-only phase.
fn seed_keys(authority: &str, workload: &Workload) -> Result<(), CoreError> {
    let fail = |message: String| CoreError::Io {
        path: format!("http://{authority}"),
        message,
    };
    let mut stream = dial(authority).map_err(|e| fail(format!("seed dial: {e}")))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| fail(e.to_string()))?;
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    let mut pending = 0usize;
    let mut drain = |buf: &mut Vec<u8>,
                     stream: &mut TcpStream,
                     pending: &mut usize,
                     until: usize|
     -> Result<(), CoreError> {
        while *pending > until {
            if let Some((response, used)) =
                parse_response(buf).map_err(|e| fail(format!("seed response: {e}")))?
            {
                buf.drain(..used);
                *pending -= 1;
                if response.status >= 300 {
                    return Err(fail(format!("seed PUT answered {}", response.status)));
                }
                continue;
            }
            let n = stream
                .read(&mut chunk)
                .map_err(|e| fail(format!("seed read: {e}")))?;
            if n == 0 {
                return Err(fail("server closed the seed connection".into()));
            }
            buf.extend_from_slice(&chunk[..n]);
        }
        Ok(())
    };
    for request in &workload.put {
        stream
            .write_all(request)
            .map_err(|e| fail(format!("seed write: {e}")))?;
        pending += 1;
        // A modest pipeline keeps seeding fast without letting the
        // server's max-requests bound strand a huge window.
        drain(&mut buf, &mut stream, &mut pending, 32)?;
    }
    drain(&mut buf, &mut stream, &mut pending, 0)
}

/// The closed-loop discipline: top the window up to `inflight`, then
/// peel responses; repeat until the deadline.
fn closed_loop(
    authority: &str,
    workload: &Workload,
    op: BenchOp,
    worker: usize,
    inflight: usize,
    deadline: Instant,
) -> WorkerTally {
    let requests = match op {
        BenchOp::Put => &workload.put,
        BenchOp::Get => &workload.get,
    };
    let mut tally = WorkerTally::default();
    let Ok(mut stream) = dial(authority) else {
        return tally;
    };
    let mut outstanding: VecDeque<Instant> = VecDeque::new();
    let mut rbuf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    let mut next_key = worker.wrapping_mul(7919);
    while Instant::now() < deadline {
        while outstanding.len() < inflight {
            let request = &requests[next_key % requests.len()];
            next_key = next_key.wrapping_add(1);
            if stream.write_all(request).is_err() {
                if !redial(
                    authority,
                    &mut stream,
                    &mut outstanding,
                    &mut rbuf,
                    &mut tally,
                ) {
                    return tally;
                }
                continue;
            }
            outstanding.push_back(Instant::now());
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                if !redial(
                    authority,
                    &mut stream,
                    &mut outstanding,
                    &mut rbuf,
                    &mut tally,
                ) {
                    return tally;
                }
            }
            Ok(n) => {
                rbuf.extend_from_slice(&chunk[..n]);
                if !settle(&mut rbuf, &mut outstanding, &mut tally)
                    && !redial(
                        authority,
                        &mut stream,
                        &mut outstanding,
                        &mut rbuf,
                        &mut tally,
                    )
                {
                    return tally;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                if !redial(
                    authority,
                    &mut stream,
                    &mut outstanding,
                    &mut rbuf,
                    &mut tally,
                ) {
                    return tally;
                }
            }
        }
    }
    tally
}

/// The open-loop discipline: send on the schedule, drain whatever has
/// landed, never let responses gate sends.
fn open_loop(
    authority: &str,
    workload: &Workload,
    op: BenchOp,
    worker: usize,
    rate_per_conn: f64,
    deadline: Instant,
) -> WorkerTally {
    let requests = match op {
        BenchOp::Put => &workload.put,
        BenchOp::Get => &workload.get,
    };
    let interval = Duration::from_secs_f64(1.0 / rate_per_conn.max(0.01));
    let mut tally = WorkerTally::default();
    let Ok(mut stream) = dial(authority) else {
        return tally;
    };
    let mut outstanding: VecDeque<Instant> = VecDeque::new();
    let mut rbuf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    let mut next_key = worker.wrapping_mul(7919);
    let mut next_send = Instant::now();
    while Instant::now() < deadline {
        if Instant::now() >= next_send {
            next_send += interval;
            let request = &requests[next_key % requests.len()];
            next_key = next_key.wrapping_add(1);
            if stream.write_all(request).is_ok() {
                outstanding.push_back(Instant::now());
            } else if !redial(
                authority,
                &mut stream,
                &mut outstanding,
                &mut rbuf,
                &mut tally,
            ) {
                return tally;
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                if !redial(
                    authority,
                    &mut stream,
                    &mut outstanding,
                    &mut rbuf,
                    &mut tally,
                ) {
                    return tally;
                }
            }
            Ok(n) => {
                rbuf.extend_from_slice(&chunk[..n]);
                if !settle(&mut rbuf, &mut outstanding, &mut tally)
                    && !redial(
                        authority,
                        &mut stream,
                        &mut outstanding,
                        &mut rbuf,
                        &mut tally,
                    )
                {
                    return tally;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                if !redial(
                    authority,
                    &mut stream,
                    &mut outstanding,
                    &mut rbuf,
                    &mut tally,
                ) {
                    return tally;
                }
            }
        }
    }
    tally
}

/// Matches every parsed response FIFO to its send time. Returns false
/// when the exchange is over on this socket (server said close, or
/// sent garbage) and the caller must redial.
fn settle(
    rbuf: &mut Vec<u8>,
    outstanding: &mut VecDeque<Instant>,
    tally: &mut WorkerTally,
) -> bool {
    loop {
        match parse_response(rbuf) {
            Ok(Some((response, used))) => {
                rbuf.drain(..used);
                if let Some(sent) = outstanding.pop_front() {
                    tally
                        .latencies_ms
                        .push(sent.elapsed().as_secs_f64() * 1000.0);
                    tally.ops += 1;
                }
                if response.status >= 300 {
                    tally.errors += 1;
                }
                if !response.keep_alive {
                    return false;
                }
            }
            Ok(None) => return true,
            Err(_) => {
                tally.errors += 1;
                return false;
            }
        }
    }
}

/// Replaces a spent connection, forgetting what was in flight on it
/// (those requests died with the socket — a real client would retry
/// them; the bench just counts the event). Returns false only when
/// the server cannot be reached at all anymore.
fn redial(
    authority: &str,
    stream: &mut TcpStream,
    outstanding: &mut VecDeque<Instant>,
    rbuf: &mut Vec<u8>,
    tally: &mut WorkerTally,
) -> bool {
    outstanding.clear();
    rbuf.clear();
    tally.redials += 1;
    match dial(authority) {
        Ok(fresh) => {
            *stream = fresh;
            true
        }
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conn::{Conn, Reply, Router, Verdict};
    use ct_store::remote::Request;
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A minimal keep-alive object server: 204 for PUT, 200 for GET.
    struct TinyRouter {
        served: AtomicU64,
    }

    impl Router for TinyRouter {
        fn route(&self, request: &Request) -> Reply {
            self.served.fetch_add(1, Ordering::Relaxed);
            match request.method.as_str() {
                "PUT" => Reply::no_content(),
                _ => Reply::text(200, "OK", "x"),
            }
        }
    }

    /// Serves keep-alive connections with blocking accept + per-conn
    /// thread — enough server to point the generator at.
    fn tiny_server(listener: TcpListener, router: Arc<TinyRouter>) {
        for accepted in listener.incoming() {
            let Ok(stream) = accepted else { return };
            let router = Arc::clone(&router);
            std::thread::spawn(move || {
                stream.set_nonblocking(true).ok();
                let mut conn = Conn::new(stream);
                loop {
                    match conn.on_ready(router.as_ref(), u64::MAX) {
                        Verdict::Close => return,
                        Verdict::KeepGoing { .. } => {
                            std::thread::sleep(Duration::from_millis(1));
                        }
                    }
                }
            });
        }
    }

    #[test]
    fn closed_loop_measures_real_exchanges() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let authority = listener.local_addr().unwrap().to_string();
        let router = Arc::new(TinyRouter {
            served: AtomicU64::new(0),
        });
        let server_router = Arc::clone(&router);
        std::thread::spawn(move || tiny_server(listener, server_router));

        let options = BenchServeOptions {
            authority,
            connections: 2,
            inflight: 3,
            seconds: 0.4,
            payload_bytes: 64,
            keys: 16,
            ops: vec![BenchOp::Put],
            ..BenchServeOptions::default()
        };
        let rows = bench_serve(&options).unwrap();
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert!(row.ops > 0, "no exchanges completed: {}", row.to_csv());
        assert_eq!(row.errors, 0, "unexpected errors: {}", row.to_csv());
        assert!(row.p99_ms >= row.p50_ms);
        assert!(router.served.load(Ordering::Relaxed) >= row.ops);
        assert!(row.to_csv().starts_with("bench-serve,op=put,mode=closed"));
    }

    #[test]
    fn get_only_runs_seed_the_keyspace_first() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let authority = listener.local_addr().unwrap().to_string();
        let router = Arc::new(TinyRouter {
            served: AtomicU64::new(0),
        });
        let server_router = Arc::clone(&router);
        std::thread::spawn(move || tiny_server(listener, server_router));

        let options = BenchServeOptions {
            authority,
            connections: 1,
            inflight: 2,
            seconds: 0.2,
            keys: 8,
            ops: vec![BenchOp::Get],
            ..BenchServeOptions::default()
        };
        let rows = bench_serve(&options).unwrap();
        // 8 seed PUTs happened before any measured GET.
        assert!(router.served.load(Ordering::Relaxed) >= 8 + rows[0].ops);
        assert!(rows[0].to_csv().contains("op=get"));
    }

    #[test]
    fn open_mode_row_carries_the_discipline() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let authority = listener.local_addr().unwrap().to_string();
        let router = Arc::new(TinyRouter {
            served: AtomicU64::new(0),
        });
        let server_router = Arc::clone(&router);
        std::thread::spawn(move || tiny_server(listener, server_router));

        let options = BenchServeOptions {
            authority,
            connections: 1,
            seconds: 0.3,
            keys: 8,
            mode: BenchMode::Open,
            rate: 200.0,
            ops: vec![BenchOp::Put],
            ..BenchServeOptions::default()
        };
        let rows = bench_serve(&options).unwrap();
        assert!(rows[0].to_csv().contains("mode=open"));
        assert!(rows[0].ops > 0);
    }
}
