//! SCADA system model: power-asset topologies, the five SCADA
//! architectures the paper evaluates, and the Oahu case-study dataset.
//!
//! The central types are:
//!
//! * [`Asset`] / [`Topology`] — geospatial power assets (control
//!   centers, data centers, power plants, substations);
//! * [`Architecture`] — the paper's configurations `2`, `2-2`, `6`,
//!   `6-6`, `6+6+6` with their structural properties (site count,
//!   replicas per site, intrusion threshold, cold backups);
//! * [`SitePlan`] — which topology assets host the control sites for a
//!   given architecture (primary first, then backup, then data
//!   center);
//! * [`oahu`] — the Oahu, Hawaii topology of Fig. 4 with the paper's
//!   two siting choices (Waiau vs Kahe backup).
//!
//! # Example
//!
//! ```
//! use ct_scada::{oahu, Architecture};
//!
//! let topo = oahu::topology();
//! let plan = oahu::site_plan(Architecture::C6P6P6, oahu::SiteChoice::Waiau).unwrap();
//! assert_eq!(plan.site_asset_ids().len(), 3);
//! assert!(topo.asset(plan.primary()).is_some());
//! ```

pub mod architecture;
pub mod asset;
pub mod error;
pub mod export;
pub mod oahu;
pub mod portfolio;
pub mod topology;

pub use architecture::{Architecture, SitePlan};
pub use asset::{Asset, AssetKind};
pub use error::ScadaError;
pub use portfolio::{
    oahu_roles, site_plan_for, topology_digest, ParseRegionSpecError, RegionDef, RegionSpec,
    SiteRoles,
};
pub use topology::{Topology, TopologyBuilder};
