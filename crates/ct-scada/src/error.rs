//! Error types for the SCADA system model.

use std::fmt;

/// Errors produced by topology and site-plan operations.
#[derive(Debug, Clone, PartialEq)]
pub enum ScadaError {
    /// Two assets with the same id were added.
    DuplicateAsset {
        /// The colliding id.
        id: String,
    },
    /// An asset id was referenced but not present.
    UnknownAsset {
        /// The missing id.
        id: String,
    },
    /// A site plan supplied the wrong number of control sites for an
    /// architecture.
    SiteCountMismatch {
        /// Architecture label.
        architecture: String,
        /// Sites required.
        required: usize,
        /// Sites supplied.
        supplied: usize,
    },
    /// An asset was used as a control site but has a non-hosting kind.
    NotAControlSite {
        /// The offending asset id.
        id: String,
    },
    /// The synthetic-portfolio generator could not satisfy a
    /// placement rule (e.g. no land position found for an asset).
    Placement {
        /// Region index that failed.
        region: usize,
        /// What could not be placed.
        what: String,
    },
    /// A hazard-model error while deriving site profiles.
    Hydro(ct_hydro::HydroError),
}

impl fmt::Display for ScadaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScadaError::DuplicateAsset { id } => write!(f, "duplicate asset id '{id}'"),
            ScadaError::UnknownAsset { id } => write!(f, "unknown asset id '{id}'"),
            ScadaError::SiteCountMismatch {
                architecture,
                required,
                supplied,
            } => write!(
                f,
                "architecture '{architecture}' needs {required} control sites, got {supplied}"
            ),
            ScadaError::NotAControlSite { id } => {
                write!(f, "asset '{id}' cannot host SCADA masters")
            }
            ScadaError::Placement { region, what } => {
                write!(f, "region {region} placement failed: {what}")
            }
            ScadaError::Hydro(e) => write!(f, "hazard model error: {e}"),
        }
    }
}

impl std::error::Error for ScadaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScadaError::Hydro(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ct_hydro::HydroError> for ScadaError {
    fn from(e: ct_hydro::HydroError) -> Self {
        ScadaError::Hydro(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errs = [
            ScadaError::DuplicateAsset { id: "x".into() },
            ScadaError::UnknownAsset { id: "y".into() },
            ScadaError::SiteCountMismatch {
                architecture: "6-6".into(),
                required: 2,
                supplied: 1,
            },
            ScadaError::NotAControlSite { id: "z".into() },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
