//! The Oahu, Hawaii case-study topology (paper Fig. 4) and the
//! paper's control-site choices.
//!
//! Coordinates are approximate real locations of the named facilities;
//! elevations come from the synthetic DEM, whose construction pins the
//! geographic facts the case study depends on (low-lying south shore,
//! elevated west coast).

use crate::architecture::{Architecture, SitePlan};
use crate::asset::{Asset, AssetKind};
use crate::error::ScadaError;
use crate::topology::Topology;
use ct_geo::LatLon;
use serde::{Deserialize, Serialize};

/// Asset id of the Honolulu control center.
pub const HONOLULU_CC: &str = "honolulu-cc";
/// Asset id of the Waiau power plant (the paper's first backup-site
/// choice: central, well-connected — and, it turns out, flood-correlated
/// with Honolulu).
pub const WAIAU: &str = "waiau-pp";
/// Asset id of the Kahe power plant (the paper's alternative backup
/// choice: the site least impacted by the hurricane).
pub const KAHE: &str = "kahe-pp";
/// Asset id of the DRFortress data center.
pub const DRFORTRESS: &str = "drfortress-dc";
/// Asset id of the AlohaNAP data center.
pub const ALOHANAP: &str = "alohanap-dc";

/// Which asset hosts the backup control center (the paper's Sec. VII
/// siting comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SiteChoice {
    /// Honolulu + Waiau (+ DRFortress): the connectivity-driven choice
    /// analysed in Figs. 6-9.
    Waiau,
    /// Honolulu + Kahe (+ DRFortress): the hazard-aware choice of
    /// Figs. 10-11.
    Kahe,
}

impl SiteChoice {
    /// The backup site's asset id.
    pub fn backup_asset(self) -> &'static str {
        match self {
            SiteChoice::Waiau => WAIAU,
            SiteChoice::Kahe => KAHE,
        }
    }

    /// The CLI keyword for this choice; the `FromStr` impl
    /// accepts it back, so `choice.to_string().parse()` round-trips.
    pub fn keyword(self) -> &'static str {
        match self {
            SiteChoice::Waiau => "waiau",
            SiteChoice::Kahe => "kahe",
        }
    }
}

impl std::fmt::Display for SiteChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.keyword())
    }
}

/// A site-choice string was not one of the CLI keywords.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSiteChoiceError {
    /// The rejected input.
    pub input: String,
}

impl std::fmt::Display for ParseSiteChoiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown backup site '{}' (expected waiau or kahe)",
            self.input
        )
    }
}

impl std::error::Error for ParseSiteChoiceError {}

impl std::str::FromStr for SiteChoice {
    type Err = ParseSiteChoiceError;

    /// Parses the CLI keywords `waiau` and `kahe` (case-insensitive).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "waiau" => Ok(SiteChoice::Waiau),
            "kahe" => Ok(SiteChoice::Kahe),
            _ => Err(ParseSiteChoiceError { input: s.into() }),
        }
    }
}

/// Builds the Oahu power-asset topology.
///
/// # Panics
///
/// Never panics in practice: the asset list is static and free of
/// duplicate ids (enforced by a test).
pub fn topology() -> Topology {
    let a = Asset::new;
    Topology::builder("Oahu, Hawaii")
        // Control sites and data centers.
        .asset(a(
            HONOLULU_CC,
            "Honolulu Control Center",
            AssetKind::ControlCenter,
            LatLon::new(21.307, -157.858),
        ))
        .asset(a(
            DRFORTRESS,
            "DRFortress Data Center",
            AssetKind::DataCenter,
            LatLon::new(21.320, -157.872),
        ))
        .asset(a(
            ALOHANAP,
            "AlohaNAP Data Center",
            AssetKind::DataCenter,
            LatLon::new(21.335, -157.915),
        ))
        // Generation.
        .asset(a(
            WAIAU,
            "Waiau Power Plant",
            AssetKind::PowerPlant,
            LatLon::new(21.388, -157.950),
        ))
        .asset(a(
            KAHE,
            "Kahe Power Plant",
            AssetKind::PowerPlant,
            LatLon::new(21.356, -158.122),
        ))
        .asset(a(
            "campbell-pp",
            "Campbell Industrial Park Plant",
            AssetKind::PowerPlant,
            LatLon::new(21.310, -158.085),
        ))
        .asset(a(
            "kalaeloa-pp",
            "Kalaeloa Cogeneration Plant",
            AssetKind::PowerPlant,
            LatLon::new(21.315, -158.070),
        ))
        .asset(a(
            "waialua-pp",
            "Waialua Hydro Plant",
            AssetKind::PowerPlant,
            LatLon::new(21.570, -158.120),
        ))
        // Substations ringing the island.
        .asset(a(
            "sub-archer",
            "Archer Substation",
            AssetKind::Substation,
            LatLon::new(21.310, -157.862),
        ))
        .asset(a(
            "sub-iwilei",
            "Iwilei Substation",
            AssetKind::Substation,
            LatLon::new(21.317, -157.870),
        ))
        .asset(a(
            "sub-school",
            "School Street Substation",
            AssetKind::Substation,
            LatLon::new(21.330, -157.860),
        ))
        .asset(a(
            "sub-kamoku",
            "Kamoku Substation",
            AssetKind::Substation,
            LatLon::new(21.280, -157.830),
        ))
        .asset(a(
            "sub-pukele",
            "Pukele Substation",
            AssetKind::Substation,
            LatLon::new(21.300, -157.790),
        ))
        .asset(a(
            "sub-koolau",
            "Koolau Substation",
            AssetKind::Substation,
            LatLon::new(21.380, -157.790),
        ))
        .asset(a(
            "sub-kahuku",
            "Kahuku Substation",
            AssetKind::Substation,
            LatLon::new(21.670, -157.970),
        ))
        .asset(a(
            "sub-wahiawa",
            "Wahiawa Substation",
            AssetKind::Substation,
            LatLon::new(21.500, -158.020),
        ))
        .asset(a(
            "sub-ewa",
            "Ewa Nui Substation",
            AssetKind::Substation,
            LatLon::new(21.340, -158.030),
        ))
        .asset(a(
            "sub-makalapa",
            "Makalapa Substation",
            AssetKind::Substation,
            LatLon::new(21.350, -157.940),
        ))
        .asset(a(
            "sub-halawa",
            "Halawa Substation",
            AssetKind::Substation,
            LatLon::new(21.370, -157.920),
        ))
        .asset(a(
            "sub-waianae",
            "Waianae Substation",
            AssetKind::Substation,
            LatLon::new(21.430, -158.170),
        ))
        .build()
        .expect("static asset list has unique ids")
}

/// Effective equipment height (m) added at commercial data centers:
/// DRFortress and AlohaNAP house equipment on raised floors with flood
/// protection, unlike the switchyard-level 0.5 m assumption used for
/// plants and substations. (The paper's ADCIRC data likewise never
/// floods the data centers; see EXPERIMENTS.md.)
pub const DATA_CENTER_PLATFORM_M: f64 = 2.5;

/// Derives the case-study POIs for the hazard model from the DEM,
/// applying two documented hydraulic couplings the paper's inundation
/// data exhibits:
///
/// 1. **South-plain hydraulic unit.** In the paper's realizations the
///    Honolulu control center and Waiau flood in *exactly the same*
///    realizations ("the primary... and the backup... experience
///    strongly correlated failures... relatively close together and at
///    similar altitude levels", Sec. VI-A, with Fig. 8 showing the
///    converse direction). We model the Honolulu plain / Pearl Harbor
///    lowland as one hydraulic unit: Waiau's flood profile is
///    evaluated at the unit's reference profile (the Honolulu control
///    center) against the same south-shore station.
/// 2. **Data-center flood hardening** ([`DATA_CENTER_PLATFORM_M`]).
///
/// # Errors
///
/// Fails if any asset lies outside the DEM or in the sea.
pub fn case_study_pois(dem: &ct_geo::Dem) -> Result<Vec<ct_hydro::Poi>, ScadaError> {
    use ct_hydro::StationId;
    let topo = topology();
    let mut pois = topo.to_pois(dem)?;
    let reference = pois
        .iter()
        .find(|p| p.id == HONOLULU_CC)
        .expect("topology contains the Honolulu control center")
        .clone();
    for poi in &mut pois {
        match poi.id.as_str() {
            WAIAU => {
                poi.ground_elevation_m = reference.ground_elevation_m;
                poi.shore_distance_km = reference.shore_distance_km;
                poi.station_override = Some(StationId::South);
            }
            HONOLULU_CC => {
                poi.station_override = Some(StationId::South);
            }
            DRFORTRESS | ALOHANAP => {
                poi.ground_elevation_m += DATA_CENTER_PLATFORM_M;
            }
            _ => {}
        }
    }
    Ok(pois)
}

/// The paper's control-site plan for an architecture and backup
/// choice: Honolulu primary; Waiau or Kahe backup; DRFortress as the
/// third (data-center) site for `6+6+6`.
///
/// Single-site architectures (`2`, `6`) use Honolulu alone, so the
/// backup choice does not affect them.
///
/// # Errors
///
/// Propagates site-plan validation errors (cannot occur for the
/// built-in topology).
pub fn site_plan(architecture: Architecture, choice: SiteChoice) -> Result<SitePlan, ScadaError> {
    let topo = topology();
    let ids: Vec<String> = match architecture.site_count() {
        1 => vec![HONOLULU_CC.to_string()],
        2 => vec![HONOLULU_CC.to_string(), choice.backup_asset().to_string()],
        _ => vec![
            HONOLULU_CC.to_string(),
            choice.backup_asset().to_string(),
            DRFORTRESS.to_string(),
        ],
    };
    SitePlan::new(architecture, &topo, ids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_geo::terrain::{synthesize_oahu, OahuTerrainConfig};

    #[test]
    fn topology_builds_with_named_sites() {
        let t = topology();
        for id in [HONOLULU_CC, WAIAU, KAHE, DRFORTRESS, ALOHANAP] {
            assert!(t.asset(id).is_some(), "missing {id}");
        }
        assert!(t.assets().len() >= 18, "Fig. 4 shows a dense topology");
        assert!(t.assets_of_kind(AssetKind::Substation).len() >= 10);
        assert!(t.assets_of_kind(AssetKind::PowerPlant).len() >= 4);
    }

    #[test]
    fn all_assets_are_on_land() {
        let dem = synthesize_oahu(&OahuTerrainConfig::default());
        let pois = topology().to_pois(&dem).expect("every asset on land");
        assert_eq!(pois.len(), topology().assets().len());
    }

    #[test]
    fn site_profiles_match_the_papers_geography() {
        let dem = synthesize_oahu(&OahuTerrainConfig::default());
        let t = topology();
        let elev = |id: &str| dem.elevation_at(t.asset(id).unwrap().pos).unwrap();
        // Honolulu and Waiau low-lying; Kahe markedly higher.
        assert!(elev(HONOLULU_CC) < 6.0);
        assert!(elev(WAIAU) < 4.0);
        assert!(elev(KAHE) > 2.0 * elev(HONOLULU_CC));
    }

    #[test]
    fn site_plans_for_all_architectures() {
        for arch in Architecture::ALL {
            for choice in [SiteChoice::Waiau, SiteChoice::Kahe] {
                let plan = site_plan(arch, choice).unwrap();
                assert_eq!(plan.site_asset_ids().len(), arch.site_count());
                assert_eq!(plan.primary(), HONOLULU_CC);
                if arch.site_count() >= 2 {
                    assert_eq!(plan.backup(), Some(choice.backup_asset()));
                }
            }
        }
    }

    #[test]
    fn case_study_pois_apply_couplings() {
        let dem = synthesize_oahu(&OahuTerrainConfig::default());
        let pois = case_study_pois(&dem).unwrap();
        let get = |id: &str| pois.iter().find(|p| p.id == id).unwrap();
        // Waiau shares Honolulu's flood profile and station.
        assert_eq!(
            get(WAIAU).ground_elevation_m,
            get(HONOLULU_CC).ground_elevation_m
        );
        assert_eq!(
            get(WAIAU).station_override,
            Some(ct_hydro::StationId::South)
        );
        // Data centers are raised above the DEM ground level.
        let ground = dem.elevation_at(get(DRFORTRESS).pos).unwrap();
        assert!(get(DRFORTRESS).ground_elevation_m > ground + 2.0);
        // Everything else untouched.
        let kahe_ground = dem.elevation_at(get(KAHE).pos).unwrap();
        assert!((get(KAHE).ground_elevation_m - kahe_ground).abs() < 1e-9);
        assert_eq!(get(KAHE).station_override, None);
    }

    #[test]
    fn backup_choice_only_matters_with_multiple_sites() {
        let a = site_plan(Architecture::C6, SiteChoice::Waiau).unwrap();
        let b = site_plan(Architecture::C6, SiteChoice::Kahe).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn site_choice_keywords_round_trip() {
        assert_eq!("waiau".parse(), Ok(SiteChoice::Waiau));
        assert_eq!("Kahe".parse(), Ok(SiteChoice::Kahe));
        let err = "maui".parse::<SiteChoice>().unwrap_err();
        assert!(err.to_string().contains("maui"));
        assert!(err.to_string().contains("waiau"));
    }
}
