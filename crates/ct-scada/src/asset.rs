//! Power-grid assets.

use ct_geo::LatLon;
use serde::{Deserialize, Serialize};
use std::fmt;

/// What a power asset is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AssetKind {
    /// A SCADA control center.
    ControlCenter,
    /// A commercial data center (can host additional replicas, as in
    /// config `6+6+6`).
    DataCenter,
    /// A generation site.
    PowerPlant,
    /// A transmission/distribution substation.
    Substation,
}

impl AssetKind {
    /// Whether SCADA masters/replicas can be hosted here.
    pub fn can_host_control(self) -> bool {
        matches!(
            self,
            AssetKind::ControlCenter | AssetKind::DataCenter | AssetKind::PowerPlant
        )
    }
}

impl fmt::Display for AssetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AssetKind::ControlCenter => "control center",
            AssetKind::DataCenter => "data center",
            AssetKind::PowerPlant => "power plant",
            AssetKind::Substation => "substation",
        };
        f.write_str(s)
    }
}

/// A geolocated power asset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Asset {
    /// Stable identifier, unique within a topology.
    pub id: String,
    /// Human-readable name.
    pub name: String,
    /// Asset class.
    pub kind: AssetKind,
    /// Geographic position.
    pub pos: LatLon,
}

impl Asset {
    /// Creates an asset.
    pub fn new(
        id: impl Into<String>,
        name: impl Into<String>,
        kind: AssetKind,
        pos: LatLon,
    ) -> Self {
        Self {
            id: id.into(),
            name: name.into(),
            kind,
            pos,
        }
    }
}

impl fmt::Display for Asset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}, {})", self.name, self.kind, self.pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hosting_rules() {
        assert!(AssetKind::ControlCenter.can_host_control());
        assert!(AssetKind::DataCenter.can_host_control());
        assert!(AssetKind::PowerPlant.can_host_control());
        assert!(!AssetKind::Substation.can_host_control());
    }

    #[test]
    fn display() {
        let a = Asset::new(
            "cc",
            "Honolulu CC",
            AssetKind::ControlCenter,
            LatLon::new(21.307, -157.858),
        );
        let s = a.to_string();
        assert!(s.contains("Honolulu CC") && s.contains("control center"));
    }
}
