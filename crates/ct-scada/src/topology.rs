//! Geospatial SCADA topologies.

use crate::asset::{Asset, AssetKind};
use crate::error::ScadaError;
use ct_geo::Dem;
use ct_hydro::Poi;
use serde::{Deserialize, Serialize};

/// A named collection of power assets — the geospatial SCADA topology
/// that feeds the analysis pipeline (Fig. 5, first input).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    name: String,
    assets: Vec<Asset>,
}

impl Topology {
    /// Starts building a topology.
    pub fn builder(name: impl Into<String>) -> TopologyBuilder {
        TopologyBuilder {
            name: name.into(),
            assets: Vec::new(),
        }
    }

    /// The topology's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All assets, in insertion order.
    pub fn assets(&self) -> &[Asset] {
        &self.assets
    }

    /// Looks up an asset by id.
    pub fn asset(&self, id: &str) -> Option<&Asset> {
        self.assets.iter().find(|a| a.id == id)
    }

    /// Assets of a given kind.
    pub fn assets_of_kind(&self, kind: AssetKind) -> Vec<&Asset> {
        self.assets.iter().filter(|a| a.kind == kind).collect()
    }

    /// Assets that can host SCADA control sites.
    pub fn control_candidates(&self) -> Vec<&Asset> {
        self.assets
            .iter()
            .filter(|a| a.kind.can_host_control())
            .collect()
    }

    /// Converts every asset into a hazard-model point of interest,
    /// sampling ground elevation and shore distance from the DEM.
    ///
    /// # Errors
    ///
    /// Fails if any asset lies outside the DEM or in the sea — a
    /// topology/terrain mismatch that should be caught loudly.
    pub fn to_pois(&self, dem: &Dem) -> Result<Vec<Poi>, ScadaError> {
        self.assets
            .iter()
            .map(|a| Poi::from_dem(a.id.clone(), a.pos, dem).map_err(ScadaError::from))
            .collect()
    }

    /// Index of an asset id within [`Topology::assets`] order (the
    /// column order of [`Topology::to_pois`]).
    pub fn asset_index(&self, id: &str) -> Option<usize> {
        self.assets.iter().position(|a| a.id == id)
    }
}

/// Builder for [`Topology`].
#[derive(Debug, Clone)]
pub struct TopologyBuilder {
    name: String,
    assets: Vec<Asset>,
}

impl TopologyBuilder {
    /// Adds an asset.
    pub fn asset(mut self, asset: Asset) -> Self {
        self.assets.push(asset);
        self
    }

    /// Finishes the topology.
    ///
    /// # Errors
    ///
    /// Returns [`ScadaError::DuplicateAsset`] when two assets share an
    /// id.
    pub fn build(self) -> Result<Topology, ScadaError> {
        for (i, a) in self.assets.iter().enumerate() {
            if self.assets[..i].iter().any(|b| b.id == a.id) {
                return Err(ScadaError::DuplicateAsset { id: a.id.clone() });
            }
        }
        Ok(Topology {
            name: self.name,
            assets: self.assets,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_geo::LatLon;

    fn tiny() -> Topology {
        Topology::builder("tiny")
            .asset(Asset::new(
                "cc",
                "CC",
                AssetKind::ControlCenter,
                LatLon::new(21.307, -157.858),
            ))
            .asset(Asset::new(
                "sub",
                "Sub",
                AssetKind::Substation,
                LatLon::new(21.33, -157.86),
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn lookup_and_kinds() {
        let t = tiny();
        assert_eq!(t.name(), "tiny");
        assert!(t.asset("cc").is_some());
        assert!(t.asset("nope").is_none());
        assert_eq!(t.assets_of_kind(AssetKind::Substation).len(), 1);
        assert_eq!(t.control_candidates().len(), 1);
        assert_eq!(t.asset_index("sub"), Some(1));
    }

    #[test]
    fn duplicate_ids_rejected() {
        let r = Topology::builder("dup")
            .asset(Asset::new(
                "x",
                "A",
                AssetKind::Substation,
                LatLon::new(21.3, -157.9),
            ))
            .asset(Asset::new(
                "x",
                "B",
                AssetKind::Substation,
                LatLon::new(21.4, -157.9),
            ))
            .build();
        assert!(matches!(r, Err(ScadaError::DuplicateAsset { .. })));
    }

    #[test]
    fn to_pois_samples_dem() {
        use ct_geo::terrain::{synthesize_oahu, OahuTerrainConfig};
        let dem = synthesize_oahu(&OahuTerrainConfig::default());
        let pois = tiny().to_pois(&dem).unwrap();
        assert_eq!(pois.len(), 2);
        assert_eq!(pois[0].id, "cc");
        assert!(pois[0].ground_elevation_m > 0.0);
    }
}
