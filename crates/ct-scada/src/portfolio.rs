//! Multi-region asset portfolios.
//!
//! The pipeline's region abstraction: a [`RegionSpec`] names either
//! the paper's Oahu case study or a seeded synthetic portfolio of N
//! island regions, each with its own terrain, topology, and control
//! [`SiteRoles`]. The synthetic generator is fully deterministic —
//! every coordinate derives from counter-based hashes of the seed, so
//! the same spec always produces the same portfolio regardless of
//! thread count or platform.
//!
//! The CLI grammar follows the `HazardSpec` pattern:
//! `--region oahu` or `--region synth:<seed>:<regions>:<assets>`
//! (`assets` is the portfolio total, split evenly across regions).

use crate::architecture::{Architecture, SitePlan};
use crate::asset::{Asset, AssetKind};
use crate::error::ScadaError;
use crate::oahu::{self, SiteChoice};
use crate::topology::Topology;
use ct_geo::region::{CoastSector, RegionTerrainSpec, RidgeSpec, SectorRule};
use ct_geo::terrain::{oahu_region_spec, OahuTerrainConfig};
use ct_geo::{Dem, EnuKm, LatLon};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Maximum regions a synthetic portfolio may request.
pub const MAX_REGIONS: usize = 64;
/// Minimum assets per region (1 control center, 1 data center, 2
/// plants — the control-role floor).
pub const MIN_ASSETS_PER_REGION: usize = 4;
/// Maximum total assets a synthetic portfolio may request.
pub const MAX_ASSETS: usize = 100_000;

/// Which regions and assets the pipeline studies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RegionSpec {
    /// The paper's Oahu case study: real topology, named sites.
    #[default]
    Oahu,
    /// A seeded synthetic portfolio: `regions` islands holding
    /// `assets` power assets in total.
    Synth {
        /// Generator seed; the whole portfolio derives from it.
        seed: u64,
        /// Number of regions.
        regions: usize,
        /// Total asset count across all regions.
        assets: usize,
    },
}

impl RegionSpec {
    /// Number of regions in the portfolio.
    pub fn region_count(&self) -> usize {
        match self {
            RegionSpec::Oahu => 1,
            RegionSpec::Synth { regions, .. } => *regions,
        }
    }

    /// Total asset count (the Oahu topology's fixed size, or the
    /// requested synthetic total).
    pub fn total_assets(&self) -> usize {
        match self {
            RegionSpec::Oahu => oahu::topology().assets().len(),
            RegionSpec::Synth { assets, .. } => *assets,
        }
    }

    /// Whether this is a generated portfolio (vs the Oahu preset).
    pub fn is_synthetic(&self) -> bool {
        matches!(self, RegionSpec::Synth { .. })
    }

    /// Asset count assigned to one region (totals are split evenly,
    /// earlier regions absorbing the remainder).
    pub fn region_assets(&self, index: usize) -> usize {
        match self {
            RegionSpec::Oahu => oahu::topology().assets().len(),
            RegionSpec::Synth {
                regions, assets, ..
            } => assets / regions + usize::from(index < assets % regions),
        }
    }

    /// Terrain specs for every region, in region order. The Oahu
    /// preset uses `oahu_config`; synthetic regions ignore it.
    pub fn terrain_specs(&self, oahu_config: &OahuTerrainConfig) -> Vec<RegionTerrainSpec> {
        match self {
            RegionSpec::Oahu => vec![oahu_region_spec(oahu_config)],
            RegionSpec::Synth { seed, regions, .. } => (0..*regions)
                .map(|r| synth_terrain_spec(*seed, r))
                .collect(),
        }
    }

    /// Builds region `index`'s topology and control roles against its
    /// synthesized DEM.
    ///
    /// # Errors
    ///
    /// [`ScadaError::Placement`] when a synthetic region cannot place
    /// an asset on land (does not occur for the generator's own
    /// terrain); duplicate-id errors cannot occur by construction.
    pub fn region_def(&self, index: usize, dem: &Dem) -> Result<RegionDef, ScadaError> {
        match self {
            RegionSpec::Oahu => Ok(RegionDef {
                index: 0,
                name: "oahu".to_string(),
                topology: oahu::topology(),
                roles: oahu_roles(),
            }),
            RegionSpec::Synth {
                seed,
                regions,
                assets,
            } => synth_region_def(*seed, *regions, *assets, index, dem),
        }
    }
}

impl fmt::Display for RegionSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegionSpec::Oahu => f.write_str("oahu"),
            RegionSpec::Synth {
                seed,
                regions,
                assets,
            } => write!(f, "synth:{seed}:{regions}:{assets}"),
        }
    }
}

/// A region string did not match the `--region` grammar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRegionSpecError {
    /// The rejected input.
    pub input: String,
    /// Why it was rejected.
    pub reason: String,
}

impl fmt::Display for ParseRegionSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid region '{}': {} (expected oahu or synth:<seed>:<regions>:<assets>)",
            self.input, self.reason
        )
    }
}

impl std::error::Error for ParseRegionSpecError {}

impl FromStr for RegionSpec {
    type Err = ParseRegionSpecError;

    /// Parses `oahu` or `synth:<seed>:<regions>:<assets>`
    /// (case-insensitive keyword, decimal numbers).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = |reason: &str| ParseRegionSpecError {
            input: s.to_string(),
            reason: reason.to_string(),
        };
        let lower = s.to_ascii_lowercase();
        if lower == "oahu" {
            return Ok(RegionSpec::Oahu);
        }
        let Some(rest) = lower.strip_prefix("synth:") else {
            return Err(err("unknown region keyword"));
        };
        let parts: Vec<&str> = rest.split(':').collect();
        if parts.len() != 3 {
            return Err(err("need exactly seed, regions, and assets"));
        }
        let seed: u64 = parts[0].parse().map_err(|_| err("seed must be a u64"))?;
        let regions: usize = parts[1]
            .parse()
            .map_err(|_| err("regions must be a positive integer"))?;
        let assets: usize = parts[2]
            .parse()
            .map_err(|_| err("assets must be a positive integer"))?;
        if regions == 0 || regions > MAX_REGIONS {
            return Err(err(&format!("regions must be 1..={MAX_REGIONS}")));
        }
        if assets < MIN_ASSETS_PER_REGION * regions {
            return Err(err(&format!(
                "need at least {MIN_ASSETS_PER_REGION} assets per region"
            )));
        }
        if assets > MAX_ASSETS {
            return Err(err(&format!("assets must be <= {MAX_ASSETS}")));
        }
        Ok(RegionSpec::Synth {
            seed,
            regions,
            assets,
        })
    }
}

/// The control-siting roles of a region's topology: which asset is the
/// primary control center, which plants serve as the central
/// (connectivity-driven) and remote (hazard-aware) backup choices, and
/// which data center hosts third-site replicas.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteRoles {
    /// Primary control-center asset id.
    pub primary: String,
    /// Central backup (the paper's Waiau-style choice).
    pub central_backup: String,
    /// Remote backup (the paper's Kahe-style choice).
    pub remote_backup: String,
    /// Data-center asset id for three-site architectures.
    pub data_center: String,
}

impl SiteRoles {
    /// The backup asset id a site choice maps to in this region.
    pub fn backup_for(&self, choice: SiteChoice) -> &str {
        match choice {
            SiteChoice::Waiau => &self.central_backup,
            SiteChoice::Kahe => &self.remote_backup,
        }
    }
}

/// The Oahu topology's roles: exactly the paper's named sites, so
/// [`site_plan_for`] reproduces [`oahu::site_plan`] for the preset.
pub fn oahu_roles() -> SiteRoles {
    SiteRoles {
        primary: oahu::HONOLULU_CC.to_string(),
        central_backup: oahu::WAIAU.to_string(),
        remote_backup: oahu::KAHE.to_string(),
        data_center: oahu::DRFORTRESS.to_string(),
    }
}

/// Region-generic analogue of [`oahu::site_plan`]: primary control
/// center; the chosen backup for two-site architectures; plus the data
/// center for three-site architectures.
///
/// # Errors
///
/// Propagates site-plan validation errors (unknown ids, non-hosting
/// kinds) — cannot occur for generated or built-in topologies.
pub fn site_plan_for(
    topology: &Topology,
    roles: &SiteRoles,
    architecture: Architecture,
    choice: SiteChoice,
) -> Result<SitePlan, ScadaError> {
    let ids: Vec<String> = match architecture.site_count() {
        1 => vec![roles.primary.clone()],
        2 => vec![roles.primary.clone(), roles.backup_for(choice).to_string()],
        _ => vec![
            roles.primary.clone(),
            roles.backup_for(choice).to_string(),
            roles.data_center.clone(),
        ],
    };
    SitePlan::new(architecture, topology, ids)
}

/// One fully-built region: its topology and control roles. (The DEM
/// lives with the caller, which synthesized it from the terrain spec.)
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionDef {
    /// Region index within the portfolio.
    pub index: usize,
    /// Region name (matches its terrain spec).
    pub name: String,
    /// The region's power-asset topology.
    pub topology: Topology,
    /// Control-siting roles within the topology.
    pub roles: SiteRoles,
}

/// A stable 64-bit digest of a topology: name, asset order, ids,
/// kinds, and exact coordinates. Used by determinism tests and the
/// artifact-key region digest.
pub fn topology_digest(topology: &Topology) -> u64 {
    let mut h = Fnv::new();
    h.write_str(topology.name());
    for a in topology.assets() {
        h.write_str(&a.id);
        h.write_u64(match a.kind {
            AssetKind::ControlCenter => 0,
            AssetKind::DataCenter => 1,
            AssetKind::PowerPlant => 2,
            AssetKind::Substation => 3,
        });
        h.write_u64(a.pos.lat.to_bits());
        h.write_u64(a.pos.lon.to_bits());
    }
    h.finish()
}

/// FNV-1a, 64-bit: tiny, dependency-free, stable across platforms.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_str(&mut self, s: &str) {
        self.write(s.as_bytes());
        self.write(&[0xff]);
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// splitmix64 finalizer: the counter-based hash all synthetic
/// coordinates derive from.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hash of (seed, region, stream) — one independent value per use
/// site, no sequential RNG state.
fn h3(seed: u64, region: u64, stream: u64) -> u64 {
    mix(seed ^ mix(region ^ mix(stream)))
}

/// Uniform draw in [0, 1) from a hash.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
}

/// Deterministic island terrain for synthetic region `r`.
fn synth_terrain_spec(seed: u64, r: usize) -> RegionTerrainSpec {
    let hr = |stream: u64| h3(seed, r as u64, stream);
    // Regions sit on a lat/lon grid in the north-east Pacific band,
    // well away from the antimeridian (spatial-index contract).
    let lat = 14.0 + ((r / 8) % 5) as f64 * 8.0 + 2.0 * unit(hr(1));
    let lon = -172.0 + (r % 8) as f64 * 16.0 + 3.0 * unit(hr(2));
    let origin = LatLon::new(lat, lon);

    let n_verts = 10 + (hr(3) % 3) as usize;
    let base_radius = 14.0 + 6.0 * unit(hr(4));
    let outline = (0..n_verts)
        .map(|i| {
            let bearing = i as f64 / n_verts as f64 * 360.0;
            let radius = base_radius * (0.70 + 0.45 * unit(hr(100 + i as u64)));
            origin.destination(bearing, radius)
        })
        .collect();

    let ridge_angle = 360.0 * unit(hr(5));
    let ridge = RidgeSpec {
        a: origin.destination(ridge_angle, 0.45 * base_radius),
        b: origin.destination(ridge_angle + 180.0, 0.45 * base_radius),
        height_m: 350.0 + 600.0 * unit(hr(6)),
        width_km: 2.5 + 2.0 * unit(hr(7)),
    };

    let sectors = (0..4)
        .map(|k| CoastSector {
            terrain_slope_m_per_km: 1.0 + 7.0 * unit(hr(10 + k)),
            shelf_slope_m_per_km: 10.0 + 50.0 * unit(hr(20 + k)),
        })
        .collect();
    // Quadrants of the nearest shoreline point: SW, NW, SE, NE.
    let sector_rules = vec![
        SectorRule {
            max_east: Some(0.0),
            max_north: Some(0.0),
            min_north: None,
            sector: 0,
        },
        SectorRule {
            max_east: Some(0.0),
            max_north: None,
            min_north: None,
            sector: 1,
        },
        SectorRule {
            max_east: None,
            max_north: Some(0.0),
            min_north: None,
            sector: 2,
        },
    ];

    RegionTerrainSpec {
        name: format!("synth{seed:x}-r{r}"),
        origin,
        outline,
        inland_waters: Vec::new(),
        ridges: vec![ridge],
        sectors,
        sector_rules,
        fallback_sector: 3,
        domain_origin: EnuKm::new(-35.0, -35.0),
        extent_km: (70.0, 70.0),
        seed: hr(8),
        cell_km: 1.0,
        noise_amp_m: 0.6,
    }
}

/// Placement rule for one asset kind: preferred siting, relaxed to
/// "any land" when the preference cannot be met.
fn placement_ok(kind: AssetKind, dem: &Dem, pos: LatLon) -> bool {
    match kind {
        // Control centers sit in coastal population centres.
        AssetKind::ControlCenter => dem.distance_to_shore_km(pos).is_ok_and(|d| d <= 8.0),
        // Data centers prefer elevated ground (flood hardening).
        AssetKind::DataCenter => dem.elevation_at(pos).is_ok_and(|e| e >= 3.0),
        // Plants need cooling water: close to shore.
        AssetKind::PowerPlant => dem.distance_to_shore_km(pos).is_ok_and(|d| d <= 3.0),
        AssetKind::Substation => true,
    }
}

/// Rejection-samples a land position for asset `slot` of region `r`.
/// Counter-based: attempt `k` of slot `s` always draws the same
/// candidate, so placement is order- and thread-independent.
fn sample_position(
    seed: u64,
    r: usize,
    slot: usize,
    kind: AssetKind,
    dem: &Dem,
) -> Result<LatLon, ScadaError> {
    const STRICT_ATTEMPTS: u64 = 120;
    const MAX_ATTEMPTS: u64 = 240;
    for attempt in 0..MAX_ATTEMPTS {
        let ha = h3(seed, r as u64, 0x5107 ^ ((slot as u64) << 16) ^ attempt);
        let hb = mix(ha ^ 0x9E37_79B9_7F4A_7C15);
        let east = -33.0 + 66.0 * unit(ha);
        let north = -33.0 + 66.0 * unit(hb);
        let pos = dem.projection().to_latlon(EnuKm::new(east, north));
        if !dem.is_land(pos) {
            continue;
        }
        if attempt < STRICT_ATTEMPTS && !placement_ok(kind, dem, pos) {
            continue;
        }
        return Ok(pos);
    }
    Err(ScadaError::Placement {
        region: r,
        what: format!("no land position for {kind} slot {slot}"),
    })
}

/// Builds synthetic region `index`: 1 control center, then data
/// centers, plants, and substations, with roles derived from plant
/// distances to the control center.
fn synth_region_def(
    seed: u64,
    regions: usize,
    assets: usize,
    index: usize,
    dem: &Dem,
) -> Result<RegionDef, ScadaError> {
    let n = assets / regions + usize::from(index < assets % regions);
    let n = n.max(MIN_ASSETS_PER_REGION);
    let data_centers = (n / 20).max(1);
    let plants = (n / 10).max(2);
    let substations = n - 1 - data_centers - plants;
    let name = format!("synth{seed:x}-r{index}");

    let mut builder = Topology::builder(name.clone());
    let mut slot = 0usize;
    let mut place = |kind: AssetKind, id: String, label: String| {
        let pos = sample_position(seed, index, slot, kind, dem)?;
        slot += 1;
        Ok::<Asset, ScadaError>(Asset::new(id, label, kind, pos))
    };

    let cc_id = format!("r{index}-cc");
    let cc = place(
        AssetKind::ControlCenter,
        cc_id.clone(),
        format!("Region {index} Control Center"),
    )?;
    let cc_pos = cc.pos;
    builder = builder.asset(cc);
    let mut dc_ids = Vec::new();
    for j in 0..data_centers {
        let id = format!("r{index}-dc{j}");
        dc_ids.push(id.clone());
        builder = builder.asset(place(
            AssetKind::DataCenter,
            id,
            format!("Region {index} Data Center {j}"),
        )?);
    }
    let mut plant_assets = Vec::new();
    for j in 0..plants {
        let a = place(
            AssetKind::PowerPlant,
            format!("r{index}-pp{j}"),
            format!("Region {index} Plant {j}"),
        )?;
        plant_assets.push((a.id.clone(), a.pos));
        builder = builder.asset(a);
    }
    for j in 0..substations {
        builder = builder.asset(place(
            AssetKind::Substation,
            format!("r{index}-sub{j}"),
            format!("Region {index} Substation {j}"),
        )?);
    }
    let topology = builder.build()?;

    // Roles mirror the paper's siting logic: the central backup is the
    // plant nearest the control center (Waiau-style, flood-correlated);
    // the remote backup is the farthest plant (Kahe-style).
    let dist = |p: LatLon| p.distance_km(cc_pos);
    let central = plant_assets
        .iter()
        .enumerate()
        .min_by(|a, b| dist(a.1 .1).total_cmp(&dist(b.1 .1)))
        .map(|(i, _)| i)
        .unwrap_or(0);
    let remote = plant_assets
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != central)
        .max_by(|a, b| dist(a.1 .1).total_cmp(&dist(b.1 .1)))
        .map(|(i, _)| i)
        .unwrap_or(central);

    Ok(RegionDef {
        index,
        name,
        topology,
        roles: SiteRoles {
            primary: cc_id,
            central_backup: plant_assets[central].0.clone(),
            remote_backup: plant_assets[remote].0.clone(),
            data_center: dc_ids[0].clone(),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_geo::region::synthesize_region;

    fn synth_spec() -> RegionSpec {
        RegionSpec::Synth {
            seed: 7,
            regions: 3,
            assets: 30,
        }
    }

    fn build_region(spec: &RegionSpec, index: usize) -> (Dem, RegionDef) {
        let terrain = &spec.terrain_specs(&OahuTerrainConfig::default())[index];
        let dem = synthesize_region(terrain).expect("valid synthetic terrain");
        let def = spec.region_def(index, &dem).expect("placement succeeds");
        (dem, def)
    }

    #[test]
    fn grammar_round_trips() {
        for s in ["oahu", "synth:7:3:30", "synth:18446744073709551615:64:2000"] {
            let spec: RegionSpec = s.parse().unwrap();
            assert_eq!(spec.to_string(), s);
            let again: RegionSpec = spec.to_string().parse().unwrap();
            assert_eq!(again, spec);
        }
        assert_eq!("OAHU".parse::<RegionSpec>().unwrap(), RegionSpec::Oahu);
    }

    #[test]
    fn grammar_rejects_bad_inputs() {
        for s in [
            "maui",
            "synth",
            "synth:1:2",
            "synth:1:2:3:4",
            "synth:x:2:30",
            "synth:1:0:30",
            "synth:1:65:2000",
            "synth:1:3:5",
            "synth:1:1:200000",
        ] {
            let err = s.parse::<RegionSpec>().unwrap_err();
            assert!(err.to_string().contains(s), "error names input for {s}");
        }
    }

    #[test]
    fn oahu_site_plans_match_the_legacy_builder() {
        let topo = oahu::topology();
        let roles = oahu_roles();
        for arch in Architecture::ALL {
            for choice in [SiteChoice::Waiau, SiteChoice::Kahe] {
                let generic = site_plan_for(&topo, &roles, arch, choice).unwrap();
                let legacy = oahu::site_plan(arch, choice).unwrap();
                assert_eq!(generic, legacy, "{arch:?} {choice:?}");
            }
        }
    }

    #[test]
    fn asset_totals_split_across_regions() {
        let spec = RegionSpec::Synth {
            seed: 1,
            regions: 3,
            assets: 32,
        };
        let per: Vec<usize> = (0..3).map(|r| spec.region_assets(r)).collect();
        assert_eq!(per.iter().sum::<usize>(), 32);
        assert_eq!(per, vec![11, 11, 10]);
    }

    #[test]
    fn synthetic_regions_are_deterministic() {
        let spec = synth_spec();
        for index in 0..spec.region_count() {
            let (_, a) = build_region(&spec, index);
            let (_, b) = build_region(&spec, index);
            assert_eq!(a, b);
            assert_eq!(topology_digest(&a.topology), topology_digest(&b.topology));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = synth_spec();
        let b = RegionSpec::Synth {
            seed: 8,
            regions: 3,
            assets: 30,
        };
        let (_, ra) = build_region(&a, 0);
        let (_, rb) = build_region(&b, 0);
        assert_ne!(topology_digest(&ra.topology), topology_digest(&rb.topology));
    }

    #[test]
    fn regions_have_control_roles_on_land() {
        let spec = synth_spec();
        for index in 0..spec.region_count() {
            let (dem, def) = build_region(&spec, index);
            assert_eq!(def.topology.assets().len(), spec.region_assets(index));
            for role in [
                &def.roles.primary,
                &def.roles.central_backup,
                &def.roles.remote_backup,
                &def.roles.data_center,
            ] {
                let asset = def.topology.asset(role).expect("role asset exists");
                assert!(dem.is_land(asset.pos), "{role} must be on land");
            }
            assert_ne!(def.roles.central_backup, def.roles.remote_backup);
            // Every asset converts to a POI (on land, inside domain).
            let pois = def.topology.to_pois(&dem).expect("all assets valid POIs");
            assert_eq!(pois.len(), def.topology.assets().len());
        }
    }

    #[test]
    fn site_plans_build_for_synthetic_regions() {
        let spec = synth_spec();
        let (_, def) = build_region(&spec, 0);
        for arch in Architecture::ALL {
            for choice in [SiteChoice::Waiau, SiteChoice::Kahe] {
                let plan = site_plan_for(&def.topology, &def.roles, arch, choice).unwrap();
                assert_eq!(plan.site_asset_ids().len(), arch.site_count());
            }
        }
    }

    #[test]
    fn remote_backup_is_farther_than_central() {
        let spec = RegionSpec::Synth {
            seed: 3,
            regions: 1,
            assets: 40,
        };
        let (_, def) = build_region(&spec, 0);
        let pos = |id: &str| def.topology.asset(id).unwrap().pos;
        let cc = pos(&def.roles.primary);
        let central = pos(&def.roles.central_backup).distance_km(cc);
        let remote = pos(&def.roles.remote_backup).distance_km(cc);
        assert!(remote >= central, "remote {remote} vs central {central}");
    }
}
