//! Plain-text export of topologies (CSV; no extra dependencies).

use crate::topology::Topology;
use std::fmt::Write as _;

/// Renders the topology as CSV with header
/// `id,name,kind,lat,lon`.
pub fn to_csv(topology: &Topology) -> String {
    let mut out = String::from("id,name,kind,lat,lon\n");
    for a in topology.assets() {
        let name = a.name.replace(',', ";");
        writeln!(
            out,
            "{},{},{},{:.6},{:.6}",
            a.id, name, a.kind, a.pos.lat, a.pos.lon
        )
        .expect("writing to String cannot fail");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asset::{Asset, AssetKind};
    use ct_geo::LatLon;

    #[test]
    fn csv_has_header_and_rows() {
        let t = Topology::builder("t")
            .asset(Asset::new(
                "cc",
                "Control, Center",
                AssetKind::ControlCenter,
                LatLon::new(21.3, -157.8),
            ))
            .build()
            .unwrap();
        let csv = to_csv(&t);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], "id,name,kind,lat,lon");
        // Embedded comma sanitized.
        assert!(lines[1].starts_with("cc,Control; Center,control center,"));
    }

    #[test]
    fn oahu_export_is_complete() {
        let t = crate::oahu::topology();
        let csv = to_csv(&t);
        assert_eq!(csv.lines().count(), t.assets().len() + 1);
    }
}
