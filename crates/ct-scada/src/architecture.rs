//! The five SCADA architectures the paper evaluates (Sec. IV-A).

use crate::error::ScadaError;
use crate::topology::Topology;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A SCADA configuration, labelled as in the paper: the digits give
/// replicas per site, `-` marks a cold-backup site, `+` an active
/// replication site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Architecture {
    /// `2`: one control center, primary + hot-standby SCADA master.
    C2,
    /// `2-2`: primary control center plus a cold-backup control
    /// center.
    C2_2,
    /// `6`: one control center, 6-replica intrusion-tolerant
    /// replication (f = 1, k = 1).
    C6,
    /// `6-6`: intrusion-tolerant primary plus a cold-backup control
    /// center with 6 more replicas.
    C6_6,
    /// `6+6+6`: network-attack-resilient intrusion-tolerant
    /// replication: 18 active replicas across two control centers and
    /// a data center.
    C6P6P6,
}

impl Architecture {
    /// All five configurations, in the paper's order.
    pub const ALL: [Architecture; 5] = [
        Architecture::C2,
        Architecture::C2_2,
        Architecture::C6,
        Architecture::C6_6,
        Architecture::C6P6P6,
    ];

    /// The paper's label.
    pub fn label(self) -> &'static str {
        match self {
            Architecture::C2 => "2",
            Architecture::C2_2 => "2-2",
            Architecture::C6 => "6",
            Architecture::C6_6 => "6-6",
            Architecture::C6P6P6 => "6+6+6",
        }
    }

    /// Control sites the architecture occupies (primary, then backup,
    /// then data center).
    pub fn site_count(self) -> usize {
        match self {
            Architecture::C2 | Architecture::C6 => 1,
            Architecture::C2_2 | Architecture::C6_6 => 2,
            Architecture::C6P6P6 => 3,
        }
    }

    /// SCADA masters/replicas per site.
    pub fn replicas_per_site(self) -> usize {
        match self {
            Architecture::C2 | Architecture::C2_2 => 2,
            _ => 6,
        }
    }

    /// Server intrusions each active replica group tolerates while
    /// remaining correct (`f`).
    pub fn intrusion_tolerance(self) -> usize {
        match self {
            Architecture::C2 | Architecture::C2_2 => 0,
            _ => 1,
        }
    }

    /// Intrusions needed to compromise safety (Table I's gray
    /// threshold): `f + 1`.
    pub fn gray_threshold(self) -> usize {
        self.intrusion_tolerance() + 1
    }

    /// Whether the last-listed backup site is a cold backup that needs
    /// activation (orange downtime) rather than an active site.
    pub fn has_cold_backup(self) -> bool {
        matches!(self, Architecture::C2_2 | Architecture::C6_6)
    }

    /// Whether all sites actively replicate (config `6+6+6`).
    pub fn is_active_active(self) -> bool {
        matches!(self, Architecture::C6P6P6)
    }

    /// Sites that must be simultaneously functional for uninterrupted
    /// operation.
    pub fn min_sites_for_green(self) -> usize {
        if self.is_active_active() {
            2
        } else {
            1
        }
    }

    /// Parses a paper label.
    pub fn from_label(label: &str) -> Option<Architecture> {
        Architecture::ALL.into_iter().find(|a| a.label() == label)
    }
}

impl fmt::Display for Architecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "\"{}\"", self.label())
    }
}

/// A concrete siting of an architecture on a topology: which asset
/// hosts each control site, primary first.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SitePlan {
    architecture: Architecture,
    site_asset_ids: Vec<String>,
}

impl SitePlan {
    /// Creates a plan, validating the site count and that each asset
    /// exists in `topology` and can host control equipment.
    ///
    /// # Errors
    ///
    /// Returns [`ScadaError::SiteCountMismatch`],
    /// [`ScadaError::UnknownAsset`] or [`ScadaError::NotAControlSite`].
    pub fn new(
        architecture: Architecture,
        topology: &Topology,
        site_asset_ids: Vec<String>,
    ) -> Result<Self, ScadaError> {
        if site_asset_ids.len() != architecture.site_count() {
            return Err(ScadaError::SiteCountMismatch {
                architecture: architecture.label().to_string(),
                required: architecture.site_count(),
                supplied: site_asset_ids.len(),
            });
        }
        for id in &site_asset_ids {
            let asset = topology
                .asset(id)
                .ok_or_else(|| ScadaError::UnknownAsset { id: id.clone() })?;
            if !asset.kind.can_host_control() {
                return Err(ScadaError::NotAControlSite { id: id.clone() });
            }
        }
        Ok(Self {
            architecture,
            site_asset_ids,
        })
    }

    /// The architecture being sited.
    pub fn architecture(&self) -> Architecture {
        self.architecture
    }

    /// Asset ids per control site, primary first.
    pub fn site_asset_ids(&self) -> &[String] {
        &self.site_asset_ids
    }

    /// The primary control center's asset id.
    pub fn primary(&self) -> &str {
        &self.site_asset_ids[0]
    }

    /// The backup control center's asset id, if the architecture has
    /// a second site.
    pub fn backup(&self) -> Option<&str> {
        self.site_asset_ids.get(1).map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asset::{Asset, AssetKind};
    use ct_geo::LatLon;

    fn topo() -> Topology {
        Topology::builder("t")
            .asset(Asset::new(
                "cc",
                "CC",
                AssetKind::ControlCenter,
                LatLon::new(21.31, -157.86),
            ))
            .asset(Asset::new(
                "dc",
                "DC",
                AssetKind::DataCenter,
                LatLon::new(21.32, -157.87),
            ))
            .asset(Asset::new(
                "pp",
                "PP",
                AssetKind::PowerPlant,
                LatLon::new(21.39, -157.95),
            ))
            .asset(Asset::new(
                "sub",
                "Sub",
                AssetKind::Substation,
                LatLon::new(21.33, -157.86),
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn structural_properties_match_the_paper() {
        use Architecture::*;
        assert_eq!(C2.site_count(), 1);
        assert_eq!(C2_2.site_count(), 2);
        assert_eq!(C6P6P6.site_count(), 3);
        assert_eq!(C2.replicas_per_site(), 2);
        assert_eq!(C6_6.replicas_per_site(), 6);
        assert_eq!(C2.gray_threshold(), 1);
        assert_eq!(C6.gray_threshold(), 2);
        assert!(C2_2.has_cold_backup() && C6_6.has_cold_backup());
        assert!(!C6P6P6.has_cold_backup());
        assert_eq!(C6P6P6.min_sites_for_green(), 2);
        assert_eq!(C2.min_sites_for_green(), 1);
    }

    #[test]
    fn labels_round_trip() {
        for a in Architecture::ALL {
            assert_eq!(Architecture::from_label(a.label()), Some(a));
        }
        assert_eq!(Architecture::from_label("9"), None);
        assert_eq!(Architecture::C6P6P6.to_string(), "\"6+6+6\"");
    }

    #[test]
    fn site_plan_validation() {
        let t = topo();
        assert!(SitePlan::new(Architecture::C2, &t, vec!["cc".into()]).is_ok());
        // Wrong count.
        assert!(matches!(
            SitePlan::new(Architecture::C2_2, &t, vec!["cc".into()]),
            Err(ScadaError::SiteCountMismatch { .. })
        ));
        // Unknown asset.
        assert!(matches!(
            SitePlan::new(Architecture::C2, &t, vec!["zzz".into()]),
            Err(ScadaError::UnknownAsset { .. })
        ));
        // Substations can't host masters.
        assert!(matches!(
            SitePlan::new(Architecture::C2, &t, vec!["sub".into()]),
            Err(ScadaError::NotAControlSite { .. })
        ));
    }

    #[test]
    fn site_plan_accessors() {
        let t = topo();
        let p = SitePlan::new(
            Architecture::C6P6P6,
            &t,
            vec!["cc".into(), "pp".into(), "dc".into()],
        )
        .unwrap();
        assert_eq!(p.primary(), "cc");
        assert_eq!(p.backup(), Some("pp"));
        assert_eq!(p.architecture(), Architecture::C6P6P6);
    }
}
