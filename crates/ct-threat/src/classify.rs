//! Table I: classifying a post-compound-threat system state into an
//! operational state.

use crate::state::SystemState;
use ct_scada::Architecture;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The paper's color-coded operational states (Sec. V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OperationalState {
    /// Fully operational.
    Green,
    /// Down until the cold-backup control center activates
    /// (minutes-scale disruption).
    Orange,
    /// Not operational until repairs or the attack ends.
    Red,
    /// Safety compromised: the system can behave incorrectly.
    Gray,
}

impl OperationalState {
    /// All states in severity order (least severe first). The derived
    /// `Ord` follows this order, so `max()` picks the worst outcome —
    /// which is exactly what the worst-case attacker maximizes.
    pub const ALL: [OperationalState; 4] = [
        OperationalState::Green,
        OperationalState::Orange,
        OperationalState::Red,
        OperationalState::Gray,
    ];

    /// The paper's color name.
    pub fn color(self) -> &'static str {
        match self {
            OperationalState::Green => "green",
            OperationalState::Orange => "orange",
            OperationalState::Red => "red",
            OperationalState::Gray => "gray",
        }
    }
}

impl fmt::Display for OperationalState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.color())
    }
}

/// Server intrusions that currently influence system correctness.
///
/// Intrusions only matter in sites whose servers are running and
/// reachable, and — for primary/cold-backup architectures — only in
/// the site that is currently *acting*: a compromised server in a
/// still-cold backup site serves nothing. (The worst-case attacker
/// never wastes intrusions on non-acting sites, so this refinement
/// only matters when classifying arbitrary states.)
fn relevant_intrusions(state: &SystemState) -> usize {
    match state.architecture {
        Architecture::C6P6P6 => state.effective_intrusions(),
        _ => state
            .acting_site()
            .map(|s| state.sites[s].intrusions)
            .unwrap_or(0),
    }
}

/// Applies Table I to a system state.
///
/// # Panics
///
/// Panics if the state's site count does not match its architecture
/// (unreachable for states built through this crate's constructors).
pub fn classify(state: &SystemState) -> OperationalState {
    assert_eq!(
        state.sites.len(),
        state.architecture.site_count(),
        "malformed system state"
    );
    let arch = state.architecture;
    if relevant_intrusions(state) >= arch.gray_threshold() {
        return OperationalState::Gray;
    }
    match arch {
        Architecture::C2 | Architecture::C6 => {
            if state.sites[0].status.is_functional() {
                OperationalState::Green
            } else {
                OperationalState::Red
            }
        }
        Architecture::C2_2 | Architecture::C6_6 => {
            let primary = state.sites[0].status;
            let backup = state.sites[1].status;
            if primary.is_functional() {
                OperationalState::Green
            } else if backup.is_functional() {
                OperationalState::Orange
            } else {
                OperationalState::Red
            }
        }
        Architecture::C6P6P6 => {
            if state.functional_sites().len() >= arch.min_sites_for_green() {
                OperationalState::Green
            } else {
                OperationalState::Red
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{PostDisasterState, SiteState, SiteStatus};

    fn state(arch: Architecture, sites: Vec<(SiteStatus, usize)>) -> SystemState {
        SystemState {
            architecture: arch,
            sites: sites
                .into_iter()
                .map(|(status, intrusions)| SiteState { status, intrusions })
                .collect(),
        }
    }

    use SiteStatus::{Flooded, Isolated, Up};

    #[test]
    fn severity_order() {
        assert!(OperationalState::Green < OperationalState::Orange);
        assert!(OperationalState::Orange < OperationalState::Red);
        assert!(OperationalState::Red < OperationalState::Gray);
    }

    // ---- Table I row "2" ----

    #[test]
    fn table1_config_2() {
        use Architecture::C2;
        assert_eq!(classify(&state(C2, vec![(Up, 0)])), OperationalState::Green);
        assert_eq!(
            classify(&state(C2, vec![(Flooded, 0)])),
            OperationalState::Red
        );
        assert_eq!(
            classify(&state(C2, vec![(Isolated, 0)])),
            OperationalState::Red
        );
        assert_eq!(classify(&state(C2, vec![(Up, 1)])), OperationalState::Gray);
    }

    // ---- Table I row "2-2" ----

    #[test]
    fn table1_config_2_2() {
        use Architecture::C2_2;
        assert_eq!(
            classify(&state(C2_2, vec![(Up, 0), (Up, 0)])),
            OperationalState::Green
        );
        assert_eq!(
            classify(&state(C2_2, vec![(Flooded, 0), (Up, 0)])),
            OperationalState::Orange
        );
        assert_eq!(
            classify(&state(C2_2, vec![(Isolated, 0), (Up, 0)])),
            OperationalState::Orange
        );
        assert_eq!(
            classify(&state(C2_2, vec![(Flooded, 0), (Isolated, 0)])),
            OperationalState::Red
        );
        assert_eq!(
            classify(&state(C2_2, vec![(Up, 1), (Up, 0)])),
            OperationalState::Gray
        );
        // Intrusion in the acting backup after primary failure.
        assert_eq!(
            classify(&state(C2_2, vec![(Flooded, 0), (Up, 1)])),
            OperationalState::Gray
        );
        // Intrusion in a cold, non-acting backup does nothing yet.
        assert_eq!(
            classify(&state(C2_2, vec![(Up, 0), (Up, 1)])),
            OperationalState::Green
        );
    }

    // ---- Table I row "6" ----

    #[test]
    fn table1_config_6() {
        use Architecture::C6;
        assert_eq!(classify(&state(C6, vec![(Up, 0)])), OperationalState::Green);
        assert_eq!(classify(&state(C6, vec![(Up, 1)])), OperationalState::Green);
        assert_eq!(classify(&state(C6, vec![(Up, 2)])), OperationalState::Gray);
        assert_eq!(
            classify(&state(C6, vec![(Flooded, 0)])),
            OperationalState::Red
        );
        assert_eq!(
            classify(&state(C6, vec![(Isolated, 1)])),
            OperationalState::Red
        );
    }

    // ---- Table I row "6-6" ----

    #[test]
    fn table1_config_6_6() {
        use Architecture::C6_6;
        assert_eq!(
            classify(&state(C6_6, vec![(Up, 1), (Up, 0)])),
            OperationalState::Green
        );
        assert_eq!(
            classify(&state(C6_6, vec![(Isolated, 0), (Up, 1)])),
            OperationalState::Orange
        );
        assert_eq!(
            classify(&state(C6_6, vec![(Isolated, 0), (Up, 2)])),
            OperationalState::Gray
        );
        assert_eq!(
            classify(&state(C6_6, vec![(Flooded, 0), (Flooded, 0)])),
            OperationalState::Red
        );
        assert_eq!(
            classify(&state(C6_6, vec![(Up, 2), (Up, 0)])),
            OperationalState::Gray
        );
    }

    // ---- Table I row "6+6+6" ----

    #[test]
    fn table1_config_6p6p6() {
        use Architecture::C6P6P6;
        assert_eq!(
            classify(&state(C6P6P6, vec![(Up, 0), (Up, 0), (Up, 0)])),
            OperationalState::Green
        );
        // One site down (either way): still green.
        assert_eq!(
            classify(&state(C6P6P6, vec![(Flooded, 0), (Up, 0), (Up, 0)])),
            OperationalState::Green
        );
        assert_eq!(
            classify(&state(C6P6P6, vec![(Isolated, 0), (Up, 1), (Up, 0)])),
            OperationalState::Green
        );
        // Two sites down: red.
        assert_eq!(
            classify(&state(C6P6P6, vec![(Flooded, 0), (Flooded, 0), (Up, 1)])),
            OperationalState::Red
        );
        assert_eq!(
            classify(&state(C6P6P6, vec![(Flooded, 0), (Isolated, 0), (Up, 0)])),
            OperationalState::Red
        );
        // Two effective intrusions across sites: gray.
        assert_eq!(
            classify(&state(C6P6P6, vec![(Up, 1), (Up, 1), (Up, 0)])),
            OperationalState::Gray
        );
        // Intrusions inside an isolated site cannot vote: not gray.
        assert_eq!(
            classify(&state(C6P6P6, vec![(Isolated, 2), (Up, 0), (Up, 0)])),
            OperationalState::Green
        );
    }

    #[test]
    fn pristine_states_are_green_for_all() {
        for arch in Architecture::ALL {
            let post = PostDisasterState::all_up(arch);
            let s = SystemState::from_post_disaster(arch, &post);
            assert_eq!(classify(&s), OperationalState::Green, "{arch}");
        }
    }
}
