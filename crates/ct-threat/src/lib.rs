//! The compound threat model (paper Sec. III) and its evaluation
//! machinery:
//!
//! * [`ThreatScenario`] — the four scenarios: hurricane only, plus
//!   server intrusion, site isolation, or both;
//! * [`PostDisasterState`] / [`SystemState`] — the system after the
//!   natural disaster and after the cyberattack;
//! * [`WorstCaseAttacker`] — the paper's three-rule greedy attacker
//!   (Sec. V-B), with an [`ExhaustiveAttacker`] baseline that searches
//!   every attack combination (the "computationally inefficient"
//!   alternative the paper mentions); property tests assert they
//!   agree;
//! * [`classify()`](fn@classify) — Table I: maps a post-attack [`SystemState`] to an
//!   [`OperationalState`] (green / orange / red / gray).
//!
//! # Example
//!
//! ```
//! use ct_scada::Architecture;
//! use ct_threat::{classify, OperationalState, PostDisasterState, SystemState};
//!
//! // Hurricane floods nothing; no attack: every architecture is green.
//! let post = PostDisasterState::all_up(Architecture::C6_6);
//! let state = SystemState::from_post_disaster(Architecture::C6_6, &post);
//! assert_eq!(classify(&state), OperationalState::Green);
//! ```

pub mod apply;
pub mod attacker;
pub mod classify;
pub mod scenario;
pub mod state;

pub use apply::{post_disaster_histogram, post_disaster_states};
pub use attacker::{Attacker, ExhaustiveAttacker, WorstCaseAttacker};
pub use classify::{classify, OperationalState};
pub use scenario::{AttackBudget, ParseScenarioError, ThreatScenario};
pub use state::{PostDisasterState, SiteState, SiteStatus, SystemState};
