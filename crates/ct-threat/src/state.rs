//! System states before and after the cyberattack.

use ct_scada::Architecture;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Status of one control site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SiteStatus {
    /// Functional and reachable.
    Up,
    /// Destroyed/disabled by the natural disaster: its servers are
    /// not running at all.
    Flooded,
    /// Running but cut off from the network by the attacker.
    Isolated,
}

impl SiteStatus {
    /// Whether the site can currently serve the system (running *and*
    /// reachable).
    pub fn is_functional(self) -> bool {
        self == SiteStatus::Up
    }

    /// Whether the site's servers are running (flooding stops them;
    /// isolation does not).
    pub fn is_running(self) -> bool {
        self != SiteStatus::Flooded
    }
}

/// The system immediately after the natural disaster, before any
/// cyberattack: which control sites the hurricane knocked out.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PostDisasterState {
    flooded: Vec<bool>,
}

impl PostDisasterState {
    /// Builds the state from per-site flood flags (primary first).
    ///
    /// # Panics
    ///
    /// Panics if the flag count does not match the architecture's
    /// site count.
    pub fn new(architecture: Architecture, flooded: Vec<bool>) -> Self {
        assert_eq!(
            flooded.len(),
            architecture.site_count(),
            "one flood flag per control site"
        );
        Self { flooded }
    }

    /// All sites survived the disaster.
    pub fn all_up(architecture: Architecture) -> Self {
        Self {
            flooded: vec![false; architecture.site_count()],
        }
    }

    /// Per-site flood flags, primary first.
    pub fn flooded(&self) -> &[bool] {
        &self.flooded
    }

    /// Number of control sites.
    pub fn site_count(&self) -> usize {
        self.flooded.len()
    }

    /// Sites that survived (indices).
    pub fn surviving_sites(&self) -> Vec<usize> {
        (0..self.flooded.len())
            .filter(|&i| !self.flooded[i])
            .collect()
    }
}

/// Per-site state after the full compound threat.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SiteState {
    /// Availability status.
    pub status: SiteStatus,
    /// Compromised servers in this site.
    pub intrusions: usize,
}

/// The complete post-compound-threat system state that Table I
/// classifies.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SystemState {
    /// The architecture under evaluation.
    pub architecture: Architecture,
    /// Per control site, primary first.
    pub sites: Vec<SiteState>,
}

impl SystemState {
    /// A state with every site up and no intrusions.
    pub fn pristine(architecture: Architecture) -> Self {
        Self {
            architecture,
            sites: vec![
                SiteState {
                    status: SiteStatus::Up,
                    intrusions: 0,
                };
                architecture.site_count()
            ],
        }
    }

    /// Lifts a post-disaster state into a system state with no attack
    /// applied yet.
    pub fn from_post_disaster(architecture: Architecture, post: &PostDisasterState) -> Self {
        assert_eq!(post.site_count(), architecture.site_count());
        Self {
            architecture,
            sites: post
                .flooded()
                .iter()
                .map(|&f| SiteState {
                    status: if f {
                        SiteStatus::Flooded
                    } else {
                        SiteStatus::Up
                    },
                    intrusions: 0,
                })
                .collect(),
        }
    }

    /// Indices of functional (up) sites.
    pub fn functional_sites(&self) -> Vec<usize> {
        (0..self.sites.len())
            .filter(|&i| self.sites[i].status.is_functional())
            .collect()
    }

    /// The site currently *acting* for primary/cold-backup
    /// architectures: the first functional site in priority order, if
    /// any.
    pub fn acting_site(&self) -> Option<usize> {
        self.functional_sites().first().copied()
    }

    /// Marks a site isolated.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range or the site is flooded
    /// (there is nothing left to isolate).
    pub fn isolate(&mut self, site: usize) {
        let s = &mut self.sites[site];
        assert_ne!(
            s.status,
            SiteStatus::Flooded,
            "cannot isolate a flooded site"
        );
        s.status = SiteStatus::Isolated;
    }

    /// Adds a server intrusion in a site.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range or the site is flooded
    /// (a destroyed server cannot be compromised).
    pub fn intrude(&mut self, site: usize) {
        let s = &mut self.sites[site];
        assert_ne!(
            s.status,
            SiteStatus::Flooded,
            "cannot compromise a destroyed server"
        );
        s.intrusions += 1;
    }

    /// Total intrusions in functional sites — the intrusions that can
    /// actually influence system behaviour.
    pub fn effective_intrusions(&self) -> usize {
        self.sites
            .iter()
            .filter(|s| s.status.is_functional())
            .map(|s| s.intrusions)
            .sum()
    }
}

impl fmt::Display for SystemState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [", self.architecture)?;
        for (i, s) in self.sites.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            let tag = match s.status {
                SiteStatus::Up => "up",
                SiteStatus::Flooded => "flooded",
                SiteStatus::Isolated => "isolated",
            };
            write!(f, "s{i}:{tag}/{}", s.intrusions)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_semantics() {
        assert!(SiteStatus::Up.is_functional() && SiteStatus::Up.is_running());
        assert!(!SiteStatus::Flooded.is_functional() && !SiteStatus::Flooded.is_running());
        assert!(!SiteStatus::Isolated.is_functional() && SiteStatus::Isolated.is_running());
    }

    #[test]
    fn post_disaster_shape_checked() {
        let p = PostDisasterState::new(Architecture::C6_6, vec![true, false]);
        assert_eq!(p.surviving_sites(), vec![1]);
        assert_eq!(
            PostDisasterState::all_up(Architecture::C6P6P6).site_count(),
            3
        );
    }

    #[test]
    #[should_panic(expected = "one flood flag per control site")]
    fn post_disaster_wrong_arity_panics() {
        let _ = PostDisasterState::new(Architecture::C2, vec![false, true]);
    }

    #[test]
    fn lifting_and_mutation() {
        let post = PostDisasterState::new(Architecture::C6_6, vec![true, false]);
        let mut s = SystemState::from_post_disaster(Architecture::C6_6, &post);
        assert_eq!(s.functional_sites(), vec![1]);
        assert_eq!(s.acting_site(), Some(1));
        s.intrude(1);
        assert_eq!(s.effective_intrusions(), 1);
        s.isolate(1);
        assert_eq!(s.acting_site(), None);
        // Isolated-site intrusions are not effective.
        assert_eq!(s.effective_intrusions(), 0);
    }

    #[test]
    #[should_panic(expected = "cannot compromise a destroyed server")]
    fn cannot_intrude_flooded_site() {
        let post = PostDisasterState::new(Architecture::C2, vec![true]);
        let mut s = SystemState::from_post_disaster(Architecture::C2, &post);
        s.intrude(0);
    }

    #[test]
    fn display_is_informative() {
        let s = SystemState::pristine(Architecture::C2_2);
        let txt = s.to_string();
        assert!(txt.contains("2-2") && txt.contains("s0:up/0"));
    }
}
