//! The four compound-threat scenarios (paper Sec. III-B).

use serde::{Deserialize, Serialize};
use std::fmt;

/// How many of each attack the cyberattacker can execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct AttackBudget {
    /// Servers the attacker can compromise.
    pub intrusions: usize,
    /// Control sites the attacker can isolate from the network.
    pub isolations: usize,
}

impl AttackBudget {
    /// No attack at all.
    pub const NONE: AttackBudget = AttackBudget {
        intrusions: 0,
        isolations: 0,
    };

    /// Whether the attacker has nothing to do.
    pub fn is_empty(&self) -> bool {
        self.intrusions == 0 && self.isolations == 0
    }
}

impl fmt::Display for AttackBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} intrusion(s) + {} isolation(s)",
            self.intrusions, self.isolations
        )
    }
}

/// The paper's four threat scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ThreatScenario {
    /// Natural disaster only (the baseline of Fig. 6/10).
    Hurricane,
    /// Hurricane followed by one server intrusion (Fig. 7/11).
    HurricaneIntrusion,
    /// Hurricane followed by one site isolation (Fig. 8).
    HurricaneIsolation,
    /// Hurricane followed by a server intrusion *and* a site
    /// isolation (Fig. 9).
    HurricaneIntrusionIsolation,
}

impl ThreatScenario {
    /// All four scenarios, in the paper's order.
    pub const ALL: [ThreatScenario; 4] = [
        ThreatScenario::Hurricane,
        ThreatScenario::HurricaneIntrusion,
        ThreatScenario::HurricaneIsolation,
        ThreatScenario::HurricaneIntrusionIsolation,
    ];

    /// The attacker's budget in this scenario.
    pub fn budget(self) -> AttackBudget {
        match self {
            ThreatScenario::Hurricane => AttackBudget::NONE,
            ThreatScenario::HurricaneIntrusion => AttackBudget {
                intrusions: 1,
                isolations: 0,
            },
            ThreatScenario::HurricaneIsolation => AttackBudget {
                intrusions: 0,
                isolations: 1,
            },
            ThreatScenario::HurricaneIntrusionIsolation => AttackBudget {
                intrusions: 1,
                isolations: 1,
            },
        }
    }

    /// The CLI keyword for this scenario — the canonical short form
    /// accepted by the `FromStr` impl
    /// (`scenario.keyword().parse()` always round-trips).
    pub fn keyword(self) -> &'static str {
        match self {
            ThreatScenario::Hurricane => "hurricane",
            ThreatScenario::HurricaneIntrusion => "intrusion",
            ThreatScenario::HurricaneIsolation => "isolation",
            ThreatScenario::HurricaneIntrusionIsolation => "compound",
        }
    }

    /// Human-readable name matching the paper's figure captions.
    pub fn label(self) -> &'static str {
        match self {
            ThreatScenario::Hurricane => "Hurricane",
            ThreatScenario::HurricaneIntrusion => "Hurricane + Server Intrusion",
            ThreatScenario::HurricaneIsolation => "Hurricane + Site Isolation",
            ThreatScenario::HurricaneIntrusionIsolation => {
                "Hurricane + Server Intrusion + Site Isolation"
            }
        }
    }
}

impl fmt::Display for ThreatScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A scenario string was not one of the CLI keywords.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseScenarioError {
    /// The rejected input.
    pub input: String,
}

impl fmt::Display for ParseScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown scenario '{}' (expected hurricane, intrusion, isolation, or compound)",
            self.input
        )
    }
}

impl std::error::Error for ParseScenarioError {}

impl std::str::FromStr for ThreatScenario {
    type Err = ParseScenarioError;

    /// Parses the CLI keywords `hurricane`, `intrusion`, `isolation`,
    /// `compound` — or a full display label ("Hurricane + Server
    /// Intrusion") — case-insensitively, so
    /// `scenario.to_string().parse()` round-trips.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lowered = s.to_ascii_lowercase();
        if let Some(scenario) = ThreatScenario::ALL
            .into_iter()
            .find(|sc| sc.label().to_ascii_lowercase() == lowered)
        {
            return Ok(scenario);
        }
        match lowered.as_str() {
            "hurricane" => Ok(ThreatScenario::Hurricane),
            "intrusion" => Ok(ThreatScenario::HurricaneIntrusion),
            "isolation" => Ok(ThreatScenario::HurricaneIsolation),
            "compound" => Ok(ThreatScenario::HurricaneIntrusionIsolation),
            _ => Err(ParseScenarioError { input: s.into() }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_match_the_paper() {
        assert_eq!(ThreatScenario::Hurricane.budget(), AttackBudget::NONE);
        assert_eq!(
            ThreatScenario::HurricaneIntrusion.budget(),
            AttackBudget {
                intrusions: 1,
                isolations: 0
            }
        );
        assert_eq!(
            ThreatScenario::HurricaneIsolation.budget(),
            AttackBudget {
                intrusions: 0,
                isolations: 1
            }
        );
        assert_eq!(
            ThreatScenario::HurricaneIntrusionIsolation.budget(),
            AttackBudget {
                intrusions: 1,
                isolations: 1
            }
        );
    }

    #[test]
    fn scenario_keywords_round_trip() {
        assert_eq!("hurricane".parse(), Ok(ThreatScenario::Hurricane));
        assert_eq!("intrusion".parse(), Ok(ThreatScenario::HurricaneIntrusion));
        assert_eq!("isolation".parse(), Ok(ThreatScenario::HurricaneIsolation));
        assert_eq!(
            "COMPOUND".parse(),
            Ok(ThreatScenario::HurricaneIntrusionIsolation)
        );
        let err = "tsunami".parse::<ThreatScenario>().unwrap_err();
        assert!(err.to_string().contains("tsunami"));
        assert!(err.to_string().contains("compound"));
    }

    #[test]
    fn labels_and_empty() {
        assert!(ThreatScenario::Hurricane.budget().is_empty());
        assert!(!ThreatScenario::HurricaneIntrusion.budget().is_empty());
        for s in ThreatScenario::ALL {
            assert!(!s.label().is_empty());
        }
        assert_eq!(
            AttackBudget {
                intrusions: 1,
                isolations: 2
            }
            .to_string(),
            "1 intrusion(s) + 2 isolation(s)"
        );
    }
}
