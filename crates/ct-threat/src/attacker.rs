//! The cyberattacker models.
//!
//! The paper models a *worst-case* attacker that observes the
//! post-disaster system and targets its budget for maximum damage. A
//! naive way to guarantee worst-case damage is to try every possible
//! combination of targets ([`ExhaustiveAttacker`]); the paper instead
//! gives a three-rule greedy algorithm ([`WorstCaseAttacker`],
//! Sec. V-B) and argues it is equivalent for the architectures
//! considered. We implement both and verify the equivalence by
//! property test (and measure the cost difference in the
//! `ablation_attacker` bench).

use crate::classify::classify;
use crate::scenario::AttackBudget;
use crate::state::{PostDisasterState, SiteStatus, SystemState};
use ct_scada::Architecture;

/// An attacker strategy: applies a cyberattack budget to a
/// post-disaster system, producing the final system state.
pub trait Attacker {
    /// Chooses and applies attacks.
    fn attack(
        &self,
        architecture: Architecture,
        post: &PostDisasterState,
        budget: AttackBudget,
    ) -> SystemState;
}

/// The paper's three-rule greedy worst-case attacker:
///
/// 1. if enough intrusions are available to compromise safety, do so;
/// 2. otherwise isolate sites, primary control center first, then the
///    backup, then data centers;
/// 3. spend remaining intrusions on servers that would otherwise be
///    functional.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorstCaseAttacker;

impl Attacker for WorstCaseAttacker {
    fn attack(
        &self,
        architecture: Architecture,
        post: &PostDisasterState,
        budget: AttackBudget,
    ) -> SystemState {
        ct_obs::add(ct_obs::names::ATTACKER_ATTACKS, 1);
        // The greedy algorithm commits to a single candidate state.
        ct_obs::add(ct_obs::names::ATTACKER_CANDIDATES_EXAMINED, 1);
        let mut state = SystemState::from_post_disaster(architecture, post);
        let threshold = architecture.gray_threshold();

        // Rule 1: compromise safety outright if the budget allows.
        // Compromising servers in the currently-acting site (or, for
        // 6+6+6, any functional site) is always sufficient: intrusions
        // in one functional site count fully toward the gray
        // threshold.
        if budget.intrusions >= threshold {
            if let Some(target) = state.acting_site() {
                for _ in 0..threshold {
                    state.intrude(target);
                }
                return state;
            }
        }

        // Rule 2: isolate the most valuable functioning sites, in
        // priority order (primary, backup, data centers).
        let mut isolations = budget.isolations;
        for site in 0..state.sites.len() {
            if isolations == 0 {
                break;
            }
            if state.sites[site].status == SiteStatus::Up {
                state.isolate(site);
                isolations -= 1;
            }
        }

        // Rule 3: compromise servers that are still functional.
        let mut intrusions = budget.intrusions;
        while intrusions > 0 {
            let Some(target) = state.acting_site() else {
                break;
            };
            state.intrude(target);
            intrusions -= 1;
        }
        state
    }
}

/// The brute-force baseline: enumerate every combination of isolation
/// targets and intrusion placements, classify each, and return a state
/// achieving the most severe outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExhaustiveAttacker;

impl ExhaustiveAttacker {
    /// Enumerates all final states reachable within the budget.
    pub fn reachable_states(
        &self,
        architecture: Architecture,
        post: &PostDisasterState,
        budget: AttackBudget,
    ) -> Vec<SystemState> {
        let base = SystemState::from_post_disaster(architecture, post);
        let up_sites: Vec<usize> = (0..base.sites.len())
            .filter(|&i| base.sites[i].status == SiteStatus::Up)
            .collect();

        let mut out = Vec::new();
        // All isolation subsets of size <= budget.isolations.
        for mask in 0u32..(1 << up_sites.len()) {
            if (mask.count_ones() as usize) > budget.isolations {
                continue;
            }
            let mut isolated = base.clone();
            for (bit, &site) in up_sites.iter().enumerate() {
                if mask & (1 << bit) != 0 {
                    isolated.isolate(site);
                }
            }
            // All intrusion distributions over running sites.
            let running: Vec<usize> = (0..isolated.sites.len())
                .filter(|&i| isolated.sites[i].status.is_running())
                .collect();
            distribute(
                &isolated,
                &running,
                0,
                budget.intrusions,
                architecture.replicas_per_site(),
                &mut out,
            );
        }
        out
    }
}

/// Recursively enumerates every way to place up to `remaining`
/// intrusions across `sites[from..]` (capped per site).
fn distribute(
    state: &SystemState,
    sites: &[usize],
    from: usize,
    remaining: usize,
    per_site_cap: usize,
    out: &mut Vec<SystemState>,
) {
    if from == sites.len() {
        out.push(state.clone());
        return;
    }
    for count in 0..=remaining.min(per_site_cap) {
        let mut next = state.clone();
        for _ in 0..count {
            next.intrude(sites[from]);
        }
        distribute(&next, sites, from + 1, remaining - count, per_site_cap, out);
    }
}

impl Attacker for ExhaustiveAttacker {
    fn attack(
        &self,
        architecture: Architecture,
        post: &PostDisasterState,
        budget: AttackBudget,
    ) -> SystemState {
        let states = self.reachable_states(architecture, post, budget);
        ct_obs::add(ct_obs::names::ATTACKER_ATTACKS, 1);
        ct_obs::add(
            ct_obs::names::ATTACKER_CANDIDATES_EXAMINED,
            states.len() as u64,
        );
        states
            .into_iter()
            .max_by_key(classify)
            .expect("at least the no-attack state is reachable")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::OperationalState;
    use crate::scenario::ThreatScenario;
    use proptest::prelude::*;

    fn outcome(
        attacker: &dyn Attacker,
        arch: Architecture,
        flooded: Vec<bool>,
        budget: AttackBudget,
    ) -> OperationalState {
        let post = PostDisasterState::new(arch, flooded);
        classify(&attacker.attack(arch, &post, budget))
    }

    #[test]
    fn no_budget_means_no_attack() {
        for arch in Architecture::ALL {
            let post = PostDisasterState::all_up(arch);
            let s = WorstCaseAttacker.attack(arch, &post, AttackBudget::NONE);
            assert_eq!(s, SystemState::from_post_disaster(arch, &post));
        }
    }

    #[test]
    fn intrusion_scenario_grays_industry_configs() {
        let b = ThreatScenario::HurricaneIntrusion.budget();
        assert_eq!(
            outcome(&WorstCaseAttacker, Architecture::C2, vec![false], b),
            OperationalState::Gray
        );
        assert_eq!(
            outcome(
                &WorstCaseAttacker,
                Architecture::C2_2,
                vec![false, false],
                b
            ),
            OperationalState::Gray
        );
        // Intrusion-tolerant configs shrug it off.
        assert_eq!(
            outcome(&WorstCaseAttacker, Architecture::C6, vec![false], b),
            OperationalState::Green
        );
    }

    #[test]
    fn flooded_system_cannot_be_grayed() {
        // Paper Sec. VI-B: if the hurricane flooded the control
        // centers there are no servers left to compromise — red, not
        // gray.
        let b = ThreatScenario::HurricaneIntrusion.budget();
        assert_eq!(
            outcome(&WorstCaseAttacker, Architecture::C2, vec![true], b),
            OperationalState::Red
        );
        assert_eq!(
            outcome(&WorstCaseAttacker, Architecture::C2_2, vec![true, true], b),
            OperationalState::Red
        );
    }

    #[test]
    fn isolation_scenario_matches_fig8_logic() {
        let b = ThreatScenario::HurricaneIsolation.budget();
        // Single-site configs die.
        assert_eq!(
            outcome(&WorstCaseAttacker, Architecture::C2, vec![false], b),
            OperationalState::Red
        );
        assert_eq!(
            outcome(&WorstCaseAttacker, Architecture::C6, vec![false], b),
            OperationalState::Red
        );
        // Cold-backup configs degrade to orange.
        assert_eq!(
            outcome(
                &WorstCaseAttacker,
                Architecture::C2_2,
                vec![false, false],
                b
            ),
            OperationalState::Orange
        );
        assert_eq!(
            outcome(
                &WorstCaseAttacker,
                Architecture::C6_6,
                vec![false, false],
                b
            ),
            OperationalState::Orange
        );
        // 6+6+6 rides through.
        assert_eq!(
            outcome(
                &WorstCaseAttacker,
                Architecture::C6P6P6,
                vec![false, false, false],
                b
            ),
            OperationalState::Green
        );
    }

    #[test]
    fn full_compound_scenario_matches_fig9_logic() {
        let b = ThreatScenario::HurricaneIntrusionIsolation.budget();
        assert_eq!(
            outcome(&WorstCaseAttacker, Architecture::C2, vec![false], b),
            OperationalState::Gray
        );
        assert_eq!(
            outcome(
                &WorstCaseAttacker,
                Architecture::C2_2,
                vec![false, false],
                b
            ),
            OperationalState::Gray
        );
        assert_eq!(
            outcome(&WorstCaseAttacker, Architecture::C6, vec![false], b),
            OperationalState::Red
        );
        assert_eq!(
            outcome(
                &WorstCaseAttacker,
                Architecture::C6_6,
                vec![false, false],
                b
            ),
            OperationalState::Orange
        );
        assert_eq!(
            outcome(
                &WorstCaseAttacker,
                Architecture::C6P6P6,
                vec![false, false, false],
                b
            ),
            OperationalState::Green
        );
    }

    #[test]
    fn exhaustive_enumerates_the_no_attack_state() {
        let post = PostDisasterState::all_up(Architecture::C6P6P6);
        let states =
            ExhaustiveAttacker.reachable_states(Architecture::C6P6P6, &post, AttackBudget::NONE);
        assert_eq!(states.len(), 1);
    }

    fn arch_strategy() -> impl Strategy<Value = Architecture> {
        prop::sample::select(Architecture::ALL.to_vec())
    }

    proptest! {
        /// The paper's claim: the greedy attacker achieves the same
        /// worst-case damage as exhaustive search, for every
        /// architecture, flood pattern, and budget in the threat
        /// model's range.
        #[test]
        fn greedy_matches_exhaustive(
            arch in arch_strategy(),
            flood_bits in 0usize..8,
            intrusions in 0usize..=3,
            isolations in 0usize..=3,
        ) {
            let n = arch.site_count();
            let flooded: Vec<bool> = (0..n).map(|i| flood_bits & (1 << i) != 0).collect();
            let post = PostDisasterState::new(arch, flooded);
            let budget = AttackBudget { intrusions, isolations };
            let greedy = classify(&WorstCaseAttacker.attack(arch, &post, budget));
            let exhaustive = classify(&ExhaustiveAttacker.attack(arch, &post, budget));
            prop_assert_eq!(
                greedy, exhaustive,
                "arch {} post {:?} budget {}", arch, post, budget
            );
        }

        /// More attack budget never helps the defender.
        #[test]
        fn damage_is_monotone_in_budget(
            arch in arch_strategy(),
            flood_bits in 0usize..8,
            intrusions in 0usize..=2,
            isolations in 0usize..=2,
        ) {
            let n = arch.site_count();
            let flooded: Vec<bool> = (0..n).map(|i| flood_bits & (1 << i) != 0).collect();
            let post = PostDisasterState::new(arch, flooded);
            let small = AttackBudget { intrusions, isolations };
            let big = AttackBudget { intrusions: intrusions + 1, isolations: isolations + 1 };
            let s = classify(&ExhaustiveAttacker.attack(arch, &post, small));
            let b = classify(&ExhaustiveAttacker.attack(arch, &post, big));
            prop_assert!(b >= s, "bigger budget produced milder outcome: {} < {}", b, s);
        }
    }
}
