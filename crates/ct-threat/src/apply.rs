//! Applying hazard realizations to a sited architecture
//! (the "Apply Natural Disaster Impact" stage of Fig. 5).
//!
//! The realizations may come from any hazard engine — storm surge,
//! wind fragility, or a compound of both. Every engine reports
//! per-asset severity on the set's threshold-comparable axis, so this
//! stage (and the attacker that consumes its failure sets) is hazard
//! agnostic: a control site is lost when its severity exceeds the
//! set's threshold, whatever physical channel produced it.

use crate::state::PostDisasterState;
use ct_hydro::RealizationSet;
use ct_scada::{ScadaError, SitePlan};

/// Derives the post-disaster state for every realization in the set:
/// a control site is knocked out when its asset's peak severity
/// (surge inundation, wind-fragility exceedance, or their compound)
/// exceeds the failure threshold.
///
/// # Errors
///
/// Returns [`ScadaError::UnknownAsset`] if a control-site asset has no
/// matching POI column in the realization set.
pub fn post_disaster_states(
    plan: &SitePlan,
    set: &RealizationSet,
) -> Result<Vec<PostDisasterState>, ScadaError> {
    let columns = site_columns(plan, set)?;
    let threshold = set.threshold();
    Ok(set
        .realizations()
        .iter()
        .map(|r| {
            let flooded = columns.iter().map(|&c| r.flooded(c, threshold)).collect();
            PostDisasterState::new(plan.architecture(), flooded)
        })
        .collect())
}

/// Collapses the per-realization post-disaster states into a
/// histogram: each distinct flood pattern with its multiplicity,
/// ordered by ascending flood bitmask (site 0, the primary, in the
/// least-significant bit).
///
/// An architecture has at most three control sites, so at most eight
/// distinct states exist while ensembles run to thousands of
/// realizations. Downstream per-state work (attacker search,
/// classification) can therefore be evaluated once per distinct state
/// and weighted by count — the multiset of expanded entries is
/// exactly the output of [`post_disaster_states`].
///
/// # Errors
///
/// Returns [`ScadaError::UnknownAsset`] if a control-site asset has no
/// matching POI column in the realization set.
pub fn post_disaster_histogram(
    plan: &SitePlan,
    set: &RealizationSet,
) -> Result<Vec<(PostDisasterState, usize)>, ScadaError> {
    let columns = site_columns(plan, set)?;
    let threshold = set.threshold();
    let sites = columns.len();
    let mut counts = vec![0usize; 1 << sites];
    for r in set.realizations() {
        let mut mask = 0usize;
        for (s, &c) in columns.iter().enumerate() {
            if r.flooded(c, threshold) {
                mask |= 1 << s;
            }
        }
        counts[mask] += 1;
    }
    Ok(counts
        .into_iter()
        .enumerate()
        .filter(|&(_, n)| n > 0)
        .map(|(mask, n)| {
            let flooded = (0..sites).map(|s| mask & (1 << s) != 0).collect();
            (PostDisasterState::new(plan.architecture(), flooded), n)
        })
        .collect())
}

/// Resolves each control-site asset to its POI column in the set.
fn site_columns(plan: &SitePlan, set: &RealizationSet) -> Result<Vec<usize>, ScadaError> {
    plan.site_asset_ids()
        .iter()
        .map(|id| {
            set.poi_index(id)
                .ok_or_else(|| ScadaError::UnknownAsset { id: id.clone() })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_geo::terrain::{synthesize_oahu, OahuTerrainConfig};
    use ct_hydro::EnsembleConfig;
    use ct_scada::{oahu, Architecture};

    #[test]
    fn states_follow_flood_columns() {
        let dem = synthesize_oahu(&OahuTerrainConfig::default());
        let topo = oahu::topology();
        let pois = topo.to_pois(&dem).unwrap();
        let cfg = EnsembleConfig {
            realizations: 80,
            ..EnsembleConfig::default()
        };
        let set = RealizationSet::generate(&cfg, &dem, &pois).unwrap();
        let plan = oahu::site_plan(Architecture::C2_2, oahu::SiteChoice::Waiau).unwrap();
        let states = post_disaster_states(&plan, &set).unwrap();
        assert_eq!(states.len(), 80);
        // Cross-check one column against the set's own flood mask.
        let h = set.poi_index(oahu::HONOLULU_CC).unwrap();
        for (r, s) in states.iter().enumerate() {
            assert_eq!(s.flooded()[0], set.flooded_mask(r)[h]);
        }
    }

    #[test]
    fn histogram_matches_states_multiset() {
        use ct_hydro::Realization;

        let dem = synthesize_oahu(&OahuTerrainConfig::default());
        let topo = oahu::topology();
        let pois = topo.to_pois(&dem).unwrap();
        let plan = oahu::site_plan(Architecture::C2_2, oahu::SiteChoice::Waiau).unwrap();
        let h = pois.iter().position(|p| p.id == oahu::HONOLULU_CC).unwrap();
        let w = pois.iter().position(|p| p.id == oahu::WAIAU).unwrap();
        // Hand-crafted rows with skewed multiplicities: neither site
        // (10), primary only (35), both (5).
        let mut realizations = Vec::new();
        for i in 0..50 {
            let mut inundation_m = vec![0.0; pois.len()];
            if i % 5 != 0 {
                inundation_m[h] = 2.0;
            }
            if i % 10 == 3 {
                inundation_m[w] = 1.5;
            }
            realizations.push(Realization {
                index: i,
                tide_m: 0.0,
                max_station_surge_m: 0.0,
                inundation_m,
            });
        }
        let set = RealizationSet::from_parts(pois, realizations);

        let states = post_disaster_states(&plan, &set).unwrap();
        let hist = post_disaster_histogram(&plan, &set).unwrap();
        assert_eq!(hist.iter().map(|(_, n)| n).sum::<usize>(), states.len());
        for (state, n) in &hist {
            assert_eq!(
                states.iter().filter(|s| *s == state).count(),
                *n,
                "multiplicity mismatch for {state:?}"
            );
        }
        assert!(hist.len() >= 3, "several distinct patterns expected");
        // Deterministic ascending-bitmask order, no duplicates.
        let masks: Vec<usize> = hist
            .iter()
            .map(|(s, _)| {
                s.flooded()
                    .iter()
                    .enumerate()
                    .map(|(i, &f)| usize::from(f) << i)
                    .sum()
            })
            .collect();
        assert!(masks.windows(2).all(|m| m[0] < m[1]), "order: {masks:?}");
    }

    #[test]
    fn unknown_asset_errors() {
        let dem = synthesize_oahu(&OahuTerrainConfig::default());
        let topo = oahu::topology();
        // POIs missing the control sites entirely.
        let pois = vec![];
        let cfg = EnsembleConfig {
            realizations: 3,
            ..EnsembleConfig::default()
        };
        let set = RealizationSet::generate(&cfg, &dem, &pois).unwrap();
        let plan = oahu::site_plan(Architecture::C2, oahu::SiteChoice::Waiau).unwrap();
        let err = post_disaster_states(&plan, &set).unwrap_err();
        assert!(matches!(err, ScadaError::UnknownAsset { .. }));
        let _ = topo;
    }
}
