//! Applying hurricane realizations to a sited architecture
//! (the "Apply Natural Disaster Impact" stage of Fig. 5).

use crate::state::PostDisasterState;
use ct_hydro::RealizationSet;
use ct_scada::{ScadaError, SitePlan};

/// Derives the post-disaster state for every realization in the set:
/// a control site is knocked out when its asset's peak inundation
/// exceeds the flood threshold.
///
/// # Errors
///
/// Returns [`ScadaError::UnknownAsset`] if a control-site asset has no
/// matching POI column in the realization set.
pub fn post_disaster_states(
    plan: &SitePlan,
    set: &RealizationSet,
) -> Result<Vec<PostDisasterState>, ScadaError> {
    let columns: Vec<usize> = plan
        .site_asset_ids()
        .iter()
        .map(|id| {
            set.poi_index(id)
                .ok_or_else(|| ScadaError::UnknownAsset { id: id.clone() })
        })
        .collect::<Result<_, _>>()?;
    let threshold = set.threshold();
    Ok(set
        .realizations()
        .iter()
        .map(|r| {
            let flooded = columns.iter().map(|&c| r.flooded(c, threshold)).collect();
            PostDisasterState::new(plan.architecture(), flooded)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_geo::terrain::{synthesize_oahu, OahuTerrainConfig};
    use ct_hydro::EnsembleConfig;
    use ct_scada::{oahu, Architecture};

    #[test]
    fn states_follow_flood_columns() {
        let dem = synthesize_oahu(&OahuTerrainConfig::default());
        let topo = oahu::topology();
        let pois = topo.to_pois(&dem).unwrap();
        let cfg = EnsembleConfig {
            realizations: 80,
            ..EnsembleConfig::default()
        };
        let set = RealizationSet::generate(&cfg, &dem, &pois).unwrap();
        let plan = oahu::site_plan(Architecture::C2_2, oahu::SiteChoice::Waiau).unwrap();
        let states = post_disaster_states(&plan, &set).unwrap();
        assert_eq!(states.len(), 80);
        // Cross-check one column against the set's own flood mask.
        let h = set.poi_index(oahu::HONOLULU_CC).unwrap();
        for (r, s) in states.iter().enumerate() {
            assert_eq!(s.flooded()[0], set.flooded_mask(r)[h]);
        }
    }

    #[test]
    fn unknown_asset_errors() {
        let dem = synthesize_oahu(&OahuTerrainConfig::default());
        let topo = oahu::topology();
        // POIs missing the control sites entirely.
        let pois = vec![];
        let cfg = EnsembleConfig {
            realizations: 3,
            ..EnsembleConfig::default()
        };
        let set = RealizationSet::generate(&cfg, &dem, &pois).unwrap();
        let plan = oahu::site_plan(Architecture::C2, oahu::SiteChoice::Waiau).unwrap();
        let err = post_disaster_states(&plan, &set).unwrap_err();
        assert!(matches!(err, ScadaError::UnknownAsset { .. }));
        let _ = topo;
    }
}
