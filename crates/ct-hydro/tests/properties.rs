//! Property-based tests for the hurricane hazard substrate.

use ct_geo::LatLon;
use ct_hydro::{
    Category, EnsembleConfig, FloodThreshold, HollandWindField, Poi, StormTrack, SurgeCalibration,
    TrackEnsemble,
};
use proptest::prelude::*;

fn field_strategy() -> impl Strategy<Value = HollandWindField> {
    (20.0f64..90.0, 18.0f64..55.0, 1.0f64..2.2).prop_map(|(deficit, rmax, b)| {
        HollandWindField::new(1010.0 - deficit, 1010.0, rmax, b, 21.4).expect("parameters in range")
    })
}

proptest! {
    /// Wind speed is non-negative everywhere and the radial profile
    /// peaks at the radius of maximum winds — up to the small inward
    /// shift the Coriolis correction introduces (the cyclostrophic
    /// term is stationary at R_max while the Coriolis penalty keeps
    /// growing with r, so the true maximum sits slightly inside).
    #[test]
    fn holland_profile_shape(field in field_strategy(), r in 0.1f64..600.0) {
        let v = field.gradient_wind_ms(r);
        prop_assert!(v >= 0.0, "negative wind {v}");
        let at_rmax = field.gradient_wind_ms(field.rmax_km);
        prop_assert!(v <= at_rmax + 0.35, "profile exceeds peak at r={r}: {v} vs {at_rmax}");
        // Far field decays well below the peak.
        if r > 4.0 * field.rmax_km {
            prop_assert!(v < 0.8 * at_rmax, "no far-field decay at r={r}");
        }
    }

    /// Surface pressure lies between central and ambient pressure.
    #[test]
    fn holland_pressure_bounded(field in field_strategy(), r in 0.0f64..2000.0) {
        let p = field.pressure_hpa(r);
        prop_assert!(p >= field.central_pressure_hpa - 1e-9);
        prop_assert!(p <= field.ambient_pressure_hpa + 1e-9);
    }

    /// Wind speed at a geographic point never exceeds the gradient
    /// peak plus the full translation contribution.
    #[test]
    fn wind_at_bounded(field in field_strategy(), bearing in 0.0f64..360.0, d in 1.0f64..300.0) {
        let moving = field.with_motion(15.0, 7.0);
        let center = LatLon::new(21.0, -158.0);
        let sample = moving.wind_at(center, center.destination(bearing, d));
        let cap = moving.max_gradient_wind_ms() + 0.6 * 7.0 + 1e-6;
        prop_assert!(sample.speed_ms <= cap, "{} > {}", sample.speed_ms, cap);
    }

    /// Track interpolation stays within the segment's bounding box.
    #[test]
    fn track_position_bounded(
        heading in 0.0f64..360.0,
        speed in 3.5f64..9.0,
        hours in 6.0f64..48.0,
        t in 0.0f64..48.0,
    ) {
        let start = LatLon::new(19.0, -158.0);
        let track = StormTrack::straight(start, heading, speed, hours).expect("valid");
        let end = track.position(hours);
        let p = track.position(t.min(hours));
        let (lo_lat, hi_lat) = (start.lat.min(end.lat), start.lat.max(end.lat));
        prop_assert!(p.lat >= lo_lat - 1e-9 && p.lat <= hi_lat + 1e-9);
    }

    /// Inundation is monotone in surge and antitone in elevation.
    #[test]
    fn inundation_monotonicity(
        surge_a in 0.0f64..8.0,
        delta in 0.0f64..3.0,
        elev in 0.2f64..12.0,
        dist in 0.0f64..6.0,
    ) {
        let cal = SurgeCalibration::default();
        let low = Poi::with_site_profile("p", LatLon::new(21.3, -157.9), elev, dist);
        let a = low.inundation_m(surge_a, &cal);
        let b = low.inundation_m(surge_a + delta, &cal);
        prop_assert!(b >= a, "more surge produced less water");
        let higher = Poi::with_site_profile("q", LatLon::new(21.3, -157.9), elev + 1.0, dist);
        prop_assert!(higher.inundation_m(surge_a, &cal) <= a);
    }

    /// Flood threshold classification is a threshold function.
    #[test]
    fn flood_threshold_is_monotone(t in 0.0f64..3.0, d1 in 0.0f64..5.0, d2 in 0.0f64..5.0) {
        let thr = FloodThreshold::new(t).expect("valid");
        if d1 <= d2 && thr.is_flooded(d1) {
            prop_assert!(thr.is_flooded(d2));
        }
    }

    /// Ensembles are deterministic per seed and differ across seeds.
    #[test]
    fn ensemble_seed_determinism(seed in any::<u64>()) {
        let cfg = EnsembleConfig {
            realizations: 5,
            seed,
            ..EnsembleConfig::default()
        };
        let a = TrackEnsemble::new(cfg.clone()).expect("cfg").generate();
        let b = TrackEnsemble::new(cfg).expect("cfg").generate();
        prop_assert_eq!(a, b);
    }

    /// Sampled pressure deficits always match the requested category.
    #[test]
    fn ensemble_respects_category(cat_idx in 0usize..5, seed in any::<u64>()) {
        let category = Category::ALL[cat_idx];
        let cfg = EnsembleConfig {
            realizations: 8,
            seed,
            category,
            ..EnsembleConfig::default()
        };
        let (lo, hi) = category.pressure_deficit_range_hpa();
        for storm in TrackEnsemble::new(cfg).expect("cfg").generate() {
            let d = storm.pressure_deficit_hpa();
            prop_assert!((lo..=hi).contains(&d), "{category}: deficit {d}");
        }
    }
}
