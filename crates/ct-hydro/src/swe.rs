//! 2-D depth-averaged shallow-water surge solver.
//!
//! This is the laptop-scale equivalent of the ADCIRC run that produced
//! the paper's hurricane realizations: an explicit finite-difference
//! solver for the shallow-water equations with wind stress, atmospheric
//! pressure-gradient forcing, Manning bottom friction, and
//! wetting/drying, run over the synthetic Oahu DEM.
//!
//! The solver is deliberately first-order and robust rather than
//! high-order: the analysis only consumes *peak* coastal water levels,
//! and the parametric model ([`crate::ParametricSurge`]) is calibrated
//! against it. See `EXPERIMENTS.md` for the agreement record.

use crate::ensemble::StormParams;
use crate::error::HydroError;
use ct_geo::{Dem, EnuKm, Grid, Projection};
use serde::{Deserialize, Serialize};

/// Water density (kg/m³).
const RHO_WATER: f64 = 1025.0;
/// Gravitational acceleration (m/s²).
const G: f64 = 9.81;

/// Configuration of the shallow-water solver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShallowWaterConfig {
    /// Solver cell size, km (the DEM is resampled to this resolution).
    pub cell_km: f64,
    /// CFL number used to pick the time step (0 < cfl < 1).
    pub cfl: f64,
    /// Wind/pressure forcing refresh interval, simulated minutes.
    pub forcing_update_minutes: f64,
    /// Manning roughness coefficient for bottom friction.
    pub manning_n: f64,
    /// Minimum water depth (m) for a cell to be considered wet.
    pub dry_tolerance_m: f64,
    /// Bathymetry is clipped to this depth (m); surge dynamics are a
    /// nearshore phenomenon and clipping keeps the time step usable.
    pub max_depth_m: f64,
    /// Hours simulated before/after the storm's closest approach to
    /// the domain centre.
    pub window_before_hours: f64,
    /// See `window_before_hours`.
    pub window_after_hours: f64,
}

impl Default for ShallowWaterConfig {
    fn default() -> Self {
        Self {
            cell_km: 1.5,
            cfl: 0.35,
            forcing_update_minutes: 10.0,
            manning_n: 0.025,
            dry_tolerance_m: 0.05,
            max_depth_m: 300.0,
            window_before_hours: 12.0,
            window_after_hours: 6.0,
        }
    }
}

/// Result of a surge simulation: the envelope of maximum water-surface
/// elevation reached in every cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurgeOutcome {
    /// Maximum water-surface elevation (m above MSL) per cell; `NAN`
    /// for cells that never wetted.
    pub max_eta: Grid<f64>,
    /// Bed elevation used by the solver (m, negative = sea floor).
    pub bed: Grid<f64>,
    /// Number of time steps executed.
    pub steps: usize,
    /// Time step used (s).
    pub dt_s: f64,
    /// Peak water speed observed (m/s) — a stability diagnostic.
    pub max_speed_ms: f64,
}

impl SurgeOutcome {
    /// Maximum water level at a local point (m above MSL), `None`
    /// outside the domain or where the cell never wetted.
    pub fn water_level_at(&self, p: EnuKm) -> Option<f64> {
        let (c, r) = self.max_eta.cell_of(p)?;
        let v = *self.max_eta.get(c, r)?;
        if v.is_nan() {
            None
        } else {
            Some(v)
        }
    }

    /// Peak water-surface elevation over the *sea* cells within
    /// `radius_km` of `p` — the coastal surge reading. Land cells are
    /// excluded: a briefly-wetted bluff records a water level near its
    /// own ground elevation, which is a splash artifact, not surge.
    pub fn coastal_peak_near(&self, p: EnuKm, radius_km: f64) -> Option<f64> {
        let reach = (radius_km / self.max_eta.cell_km()).ceil() as isize;
        let (c0, r0) = self.max_eta.cell_of(p)?;
        let (cols, rows) = (self.max_eta.cols() as isize, self.max_eta.rows() as isize);
        let mut best: Option<f64> = None;
        for dr in -reach..=reach {
            for dc in -reach..=reach {
                let (c, r) = (c0 as isize + dc, r0 as isize + dr);
                if c < 0 || r < 0 || c >= cols || r >= rows {
                    continue;
                }
                let (c, r) = (c as usize, r as usize);
                if *self.bed.get(c, r).expect("in range") >= 0.0 {
                    continue;
                }
                let v = *self.max_eta.get(c, r).expect("in range");
                if !v.is_nan() {
                    best = Some(best.map_or(v, |b: f64| b.max(v)));
                }
            }
        }
        best
    }
}

/// External forcing applied to the water column.
pub trait Forcing {
    /// Wind stress vector (N/m², east and north components) at local
    /// point `p` and simulation time `t_s` seconds.
    fn wind_stress(&self, t_s: f64, p: EnuKm) -> (f64, f64);

    /// Atmospheric pressure (Pa) at `p`, `t_s`.
    fn pressure_pa(&self, _t_s: f64, _p: EnuKm) -> f64 {
        101_000.0
    }

    /// Fills one time level of forcing for every cell in a single
    /// virtual call — the solver's hot path. `cells` holds the cell
    /// centres in row-major order; the output slices are parallel to
    /// it. The default implementation falls back to the per-point
    /// methods; implementations with expensive per-time-level setup
    /// (e.g. [`StormForcing`]'s wind-field construction) override it
    /// to hoist that setup out of the per-cell loop. Overrides must
    /// produce exactly the values of the per-point methods.
    fn fill_forcing(
        &self,
        t_s: f64,
        cells: &[EnuKm],
        tau_east: &mut [f64],
        tau_north: &mut [f64],
        pressure: &mut [f64],
    ) {
        for (i, &p) in cells.iter().enumerate() {
            let (te, tn) = self.wind_stress(t_s, p);
            tau_east[i] = te;
            tau_north[i] = tn;
            pressure[i] = self.pressure_pa(t_s, p);
        }
    }

    /// Still-water offset (tide), m.
    fn tide_m(&self) -> f64 {
        0.0
    }

    /// Initial free-surface perturbation (m) added on top of the
    /// still-water level at `p`. Defaults to flat; validation cases
    /// (seiche oscillation) override it.
    fn initial_eta_m(&self, _p: EnuKm) -> f64 {
        0.0
    }

    /// Simulated window `(start_s, end_s)`.
    fn window_s(&self) -> (f64, f64);
}

/// Constant uniform wind stress — used for validation tests (wind
/// setup in a closed basin has a textbook steady-state answer).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformWind {
    /// Eastward wind stress, N/m².
    pub tau_east: f64,
    /// Northward wind stress, N/m².
    pub tau_north: f64,
    /// Duration to simulate, s.
    pub duration_s: f64,
}

impl Forcing for UniformWind {
    fn wind_stress(&self, _t_s: f64, _p: EnuKm) -> (f64, f64) {
        (self.tau_east, self.tau_north)
    }

    fn window_s(&self) -> (f64, f64) {
        (0.0, self.duration_s)
    }
}

/// Hurricane forcing derived from [`StormParams`].
#[derive(Debug, Clone)]
pub struct StormForcing<'a> {
    storm: &'a StormParams,
    projection: Projection,
    window_s: (f64, f64),
}

impl<'a> StormForcing<'a> {
    /// Builds forcing for `storm` over a window of
    /// `[ca - before, ca + after]` hours around the storm's closest
    /// approach to `domain_center`.
    pub fn new(
        storm: &'a StormParams,
        projection: Projection,
        domain_center: EnuKm,
        before_hours: f64,
        after_hours: f64,
    ) -> Self {
        let center_ll = projection.to_latlon(domain_center);
        let (t_ca, _) = storm.track.closest_approach(center_ll, 0.25);
        let (t0, t1) = storm.track.time_span_hours();
        let start = (t_ca - before_hours).max(t0);
        let end = (t_ca + after_hours).min(t1);
        Self {
            storm,
            projection,
            window_s: (start * 3600.0, end * 3600.0),
        }
    }

    fn drag_coefficient(speed: f64) -> f64 {
        ((0.8 + 0.065 * speed) * 1e-3).min(2.4e-3)
    }
}

impl Forcing for StormForcing<'_> {
    fn wind_stress(&self, t_s: f64, p: EnuKm) -> (f64, f64) {
        let t_h = t_s / 3600.0;
        let center = self.storm.track.position(t_h);
        let Ok(field) = self.storm.wind_field(t_h) else {
            return (0.0, 0.0);
        };
        let w = field.wind_at(center, self.projection.to_latlon(p));
        let cd = Self::drag_coefficient(w.speed_ms);
        let tau = crate::wind::AIR_DENSITY * cd * w.speed_ms * w.speed_ms;
        let dir = w.toward_deg.to_radians();
        (tau * dir.sin(), tau * dir.cos())
    }

    fn pressure_pa(&self, t_s: f64, p: EnuKm) -> f64 {
        let t_h = t_s / 3600.0;
        let center = self.storm.track.position(t_h);
        let r_km = center.distance_km(self.projection.to_latlon(p));
        let Ok(field) = self.storm.wind_field(t_h) else {
            return 101_000.0;
        };
        field.pressure_hpa(r_km) * 100.0
    }

    fn fill_forcing(
        &self,
        t_s: f64,
        cells: &[EnuKm],
        tau_east: &mut [f64],
        tau_north: &mut [f64],
        pressure: &mut [f64],
    ) {
        // Same math as the per-point methods, with the storm-centre
        // lookup and wind-field construction hoisted out of the cell
        // loop: those are per-time-level quantities, and rebuilding
        // them per cell dominated the forcing update.
        let t_h = t_s / 3600.0;
        let center = self.storm.track.position(t_h);
        let Ok(field) = self.storm.wind_field(t_h) else {
            tau_east.fill(0.0);
            tau_north.fill(0.0);
            pressure.fill(101_000.0);
            return;
        };
        for (i, &p) in cells.iter().enumerate() {
            let ll = self.projection.to_latlon(p);
            let w = field.wind_at(center, ll);
            let cd = Self::drag_coefficient(w.speed_ms);
            let tau = crate::wind::AIR_DENSITY * cd * w.speed_ms * w.speed_ms;
            let dir = w.toward_deg.to_radians();
            tau_east[i] = tau * dir.sin();
            tau_north[i] = tau * dir.cos();
            pressure[i] = field.pressure_hpa(center.distance_km(ll)) * 100.0;
        }
    }

    fn tide_m(&self) -> f64 {
        self.storm.tide_m
    }

    fn window_s(&self) -> (f64, f64) {
        self.window_s
    }
}

/// Reusable scratch state for [`ShallowWaterSolver`] runs.
///
/// An ensemble run simulates hundreds of storms over the same grid;
/// the solver state (a dozen `n`-cell arrays) lives here so it is
/// allocated once and recycled across runs instead of reallocated per
/// run — and, for the step-local buffers the old kernel cloned, per
/// time step. Reuse is purely an allocation optimisation:
/// [`ShallowWaterSolver::run_forced_with_workspace`] clears every
/// buffer before use, so results are bit-identical whether a
/// workspace is fresh or recycled (asserted by the solver tests).
#[derive(Debug, Clone, Default)]
pub struct SweWorkspace {
    eta: Vec<f64>,
    u: Vec<f64>,
    v: Vec<f64>,
    new_u: Vec<f64>,
    new_v: Vec<f64>,
    new_eta: Vec<f64>,
    max_eta: Vec<f64>,
    tau_e: Vec<f64>,
    tau_n: Vec<f64>,
    p_atm: Vec<f64>,
    d_eta: Vec<f64>,
    du: Vec<f64>,
    dv: Vec<f64>,
    centers: Vec<EnuKm>,
    /// Column index of each cell — the flattened kernels look this up
    /// instead of paying an integer division per cell per sweep.
    col: Vec<u32>,
    /// Membership mask of `active_cells`.
    active: Vec<bool>,
    /// Sorted indices of cells the kernels must visit: every cell with
    /// water above its bed ("damp") plus a one-cell ring around them.
    /// The set only grows as the wetting front advances.
    active_cells: Vec<usize>,
    /// Active cells with at least one inactive neighbour — the only
    /// cells that can grow the active set, so the per-step growth scan
    /// is proportional to the front line, not the active area.
    frontier: Vec<usize>,
}

impl SweWorkspace {
    /// An empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn reset(&mut self, n: usize) {
        fn refill(buf: &mut Vec<f64>, n: usize, value: f64) {
            buf.clear();
            buf.resize(n, value);
        }
        refill(&mut self.eta, n, 0.0);
        refill(&mut self.u, n, 0.0);
        refill(&mut self.v, n, 0.0);
        refill(&mut self.new_u, n, 0.0);
        refill(&mut self.new_v, n, 0.0);
        refill(&mut self.new_eta, n, 0.0);
        refill(&mut self.max_eta, n, f64::NAN);
        refill(&mut self.tau_e, n, 0.0);
        refill(&mut self.tau_n, n, 0.0);
        refill(&mut self.p_atm, n, 101_000.0);
        refill(&mut self.d_eta, n, 0.0);
        refill(&mut self.du, n, 0.0);
        refill(&mut self.dv, n, 0.0);
        self.centers.clear();
        self.col.clear();
        self.active.clear();
        self.active.resize(n, false);
        self.active_cells.clear();
        self.frontier.clear();
    }
}

/// The explicit shallow-water solver.
#[derive(Debug, Clone)]
pub struct ShallowWaterSolver {
    config: ShallowWaterConfig,
    bed: Grid<f64>,
    projection: Projection,
}

impl ShallowWaterSolver {
    /// Builds a solver over a DEM, resampling the bed to the solver
    /// resolution and clipping deep bathymetry.
    pub fn new(dem: &Dem, config: ShallowWaterConfig) -> Self {
        let src = dem.elevation_grid();
        let (ext_e, ext_n) = src.extent_km();
        let cols = (ext_e / config.cell_km).floor().max(4.0) as usize;
        let rows = (ext_n / config.cell_km).floor().max(4.0) as usize;
        let bed = Grid::from_fn(cols, rows, src.origin(), config.cell_km, |p| {
            src.sample(p)
                .unwrap_or(-config.max_depth_m)
                .max(-config.max_depth_m)
        })
        .expect("non-empty solver grid");
        Self {
            config,
            bed,
            projection: *dem.projection(),
        }
    }

    /// Builds a solver directly from a bed grid (used by validation
    /// tests with analytic basins).
    pub fn from_bed(bed: Grid<f64>, projection: Projection, config: ShallowWaterConfig) -> Self {
        Self {
            config,
            bed,
            projection,
        }
    }

    /// The solver's bed grid.
    pub fn bed(&self) -> &Grid<f64> {
        &self.bed
    }

    /// The solver's configuration.
    pub fn config(&self) -> &ShallowWaterConfig {
        &self.config
    }

    /// The projection tying the bed grid to geographic coordinates.
    pub fn projection(&self) -> &Projection {
        &self.projection
    }

    /// Simulates a hurricane and returns the surge envelope.
    ///
    /// # Errors
    ///
    /// Returns [`HydroError::SolverDiverged`] if the state becomes
    /// non-finite.
    pub fn run(&self, storm: &StormParams) -> Result<SurgeOutcome, HydroError> {
        self.run_with_workspace(&mut SweWorkspace::new(), storm)
    }

    /// Like [`ShallowWaterSolver::run`], but recycles the scratch
    /// buffers in `ws` — the fast path for ensemble loops that
    /// simulate many storms back to back.
    ///
    /// # Errors
    ///
    /// Returns [`HydroError::SolverDiverged`] if the state becomes
    /// non-finite.
    pub fn run_with_workspace(
        &self,
        ws: &mut SweWorkspace,
        storm: &StormParams,
    ) -> Result<SurgeOutcome, HydroError> {
        let (ext_e, ext_n) = self.bed.extent_km();
        let center = EnuKm::new(
            self.bed.origin().east + ext_e / 2.0,
            self.bed.origin().north + ext_n / 2.0,
        );
        let forcing = StormForcing::new(
            storm,
            self.projection,
            center,
            self.config.window_before_hours,
            self.config.window_after_hours,
        );
        self.run_forced_with_workspace(ws, &forcing)
    }

    /// Simulates with arbitrary forcing.
    ///
    /// # Errors
    ///
    /// Returns [`HydroError::SolverDiverged`] if the state becomes
    /// non-finite.
    pub fn run_forced(&self, forcing: &dyn Forcing) -> Result<SurgeOutcome, HydroError> {
        self.run_forced_with_workspace(&mut SweWorkspace::new(), forcing)
    }

    /// [`ShallowWaterSolver::run_forced`] with caller-owned scratch
    /// buffers.
    ///
    /// # Errors
    ///
    /// Returns [`HydroError::SolverDiverged`] if the state becomes
    /// non-finite.
    pub fn run_forced_with_workspace(
        &self,
        ws: &mut SweWorkspace,
        forcing: &dyn Forcing,
    ) -> Result<SurgeOutcome, HydroError> {
        Ok(self.run_impl(ws, forcing, None)?.0)
    }

    /// Runs the pre-optimisation kernel: full row-major sweeps, per-run
    /// allocations, per-cell forcing calls. Kept as the ground truth
    /// for the equivalence tests and the ablation benchmark; the
    /// optimised kernel must reproduce its output bit for bit.
    ///
    /// # Errors
    ///
    /// Returns [`HydroError::SolverDiverged`] if the state becomes
    /// non-finite.
    pub fn run_forced_reference(&self, forcing: &dyn Forcing) -> Result<SurgeOutcome, HydroError> {
        Ok(self.run_impl_reference(forcing, None)?.0)
    }

    /// Simulates with arbitrary forcing, additionally recording the
    /// water-surface elevation at `probe` every time step — the
    /// time-series view used by the numerical validation tests (e.g.
    /// the seiche-period check against Merian's formula).
    ///
    /// Returns the surge outcome and `(t_s, eta_m)` samples.
    ///
    /// # Errors
    ///
    /// Returns [`HydroError::SolverDiverged`] if the state becomes
    /// non-finite.
    pub fn run_forced_with_probe(
        &self,
        forcing: &dyn Forcing,
        probe: EnuKm,
    ) -> Result<(SurgeOutcome, Vec<(f64, f64)>), HydroError> {
        self.run_impl(&mut SweWorkspace::new(), forcing, Some(probe))
    }

    /// The optimised kernel. Structurally this follows
    /// [`ShallowWaterSolver::run_impl_reference`] exactly; it differs
    /// only in how the work is laid out:
    ///
    /// - all state lives in the reusable [`SweWorkspace`] (no per-run
    ///   or per-step allocation),
    /// - forcing is filled through one [`Forcing::fill_forcing`] call
    ///   per time level instead of two virtual calls per cell,
    /// - the nested row/column sweeps are flattened to single-index
    ///   kernels over a sorted active-cell list.
    ///
    /// The active set is every "damp" cell (`eta > bed`) plus a
    /// one-cell ring, plus all open-boundary sea cells; it only grows.
    /// Skipped cells are provably inert: their velocities are zero,
    /// every face between two non-damp cells carries exactly zero flux
    /// (`h_face = max(eta - sill, 0) = 0`), and smoothing of a cell
    /// whose whole neighbourhood is dry is an exact no-op. Visiting
    /// the survivors in ascending index order preserves the reference
    /// kernel's floating-point accumulation order, so the output is
    /// bit-identical (asserted in the tests below).
    fn run_impl(
        &self,
        ws: &mut SweWorkspace,
        forcing: &dyn Forcing,
        probe: Option<EnuKm>,
    ) -> Result<(SurgeOutcome, Vec<(f64, f64)>), HydroError> {
        let cfg = &self.config;
        let cols = self.bed.cols();
        let rows = self.bed.rows();
        let n = cols * rows;
        let dx = cfg.cell_km * 1000.0;
        let bed = self.bed.as_slice();
        let tide = forcing.tide_m();

        ws.reset(n);
        let SweWorkspace {
            eta,
            u,
            v,
            new_u,
            new_v,
            new_eta,
            max_eta,
            tau_e,
            tau_n,
            p_atm,
            d_eta,
            du,
            dv,
            centers,
            col,
            active,
            active_cells,
            frontier,
        } = ws;

        // Rebind the buffers as bare slices: the kernels below index
        // them millions of times, and a slice gives LLVM a single
        // no-alias data pointer where `&mut Vec` adds a level of
        // indirection it cannot always hoist.
        let mut eta: &mut [f64] = eta;
        let mut u: &mut [f64] = u;
        let mut v: &mut [f64] = v;
        let mut new_u: &mut [f64] = new_u;
        let mut new_v: &mut [f64] = new_v;
        let mut new_eta: &mut [f64] = new_eta;
        let max_eta: &mut [f64] = max_eta;
        let tau_e: &mut [f64] = tau_e;
        let tau_n: &mut [f64] = tau_n;
        let p_atm: &mut [f64] = p_atm;
        let d_eta: &mut [f64] = d_eta;
        let du: &mut [f64] = du;
        let dv: &mut [f64] = dv;

        centers.reserve(n);
        col.reserve(n);
        for r in 0..rows {
            for c2 in 0..cols {
                centers.push(self.bed.cell_center(c2, r));
                col.push(c2 as u32);
            }
        }

        for i in 0..n {
            let z = bed[i];
            eta[i] = if z < tide {
                tide + forcing.initial_eta_m(centers[i])
            } else {
                z
            };
        }

        // Seed the active set: damp cells plus their ring, plus every
        // open-boundary sea cell (the relaxation below can re-wet those
        // even if the initial perturbation left them dry).
        for i in 0..n {
            let boundary_sea = bed[i] < tide
                && (i % cols == 0 || i % cols == cols - 1 || i < cols || i + cols >= n);
            if eta[i] > bed[i] || boundary_sea {
                active[i] = true;
                if i % cols > 0 {
                    active[i - 1] = true;
                }
                if i % cols + 1 < cols {
                    active[i + 1] = true;
                }
                if i >= cols {
                    active[i - cols] = true;
                }
                if i + cols < n {
                    active[i + cols] = true;
                }
            }
        }
        active_cells.extend((0..n).filter(|&i| active[i]));
        let has_inactive_neighbor = |active: &[bool], col: &[u32], i: usize| {
            let c2 = col[i] as usize;
            (c2 > 0 && !active[i - 1])
                || (c2 + 1 < cols && !active[i + 1])
                || (i >= cols && !active[i - cols])
                || (i + cols < n && !active[i + cols])
        };
        frontier.extend(
            active_cells
                .iter()
                .copied()
                .filter(|&i| has_inactive_neighbor(active, col, i)),
        );

        // Iteration strategy: the sorted index list wins while the set
        // is sparse, but once most cells are active the indirection
        // costs more than the skipped cells save, so a masked full
        // sweep takes over. Both visit exactly the active cells in
        // ascending order, so the floating-point accumulation order —
        // and therefore the output — is unchanged.
        let mut dense = active_cells.len() * 2 >= n;
        macro_rules! for_active {
            (|$i:ident| $body:block) => {
                if dense {
                    for $i in 0..n {
                        if active[$i] {
                            $body
                        }
                    }
                } else {
                    for &$i in active_cells.iter() {
                        $body
                    }
                }
            };
        }

        // Time step from the (clipped) deepest water.
        let max_h = bed.iter().map(|&z| (tide - z).max(0.0)).fold(0.0, f64::max);
        let c = (G * max_h).sqrt().max(1.0);
        let dt = (cfg.cfl * dx / (c + 10.0)).max(0.05);
        let (t_start, t_end) = forcing.window_s();
        let steps = ((t_end - t_start) / dt).ceil() as usize;
        let forcing_every = ((cfg.forcing_update_minutes * 60.0 / dt).round() as usize).max(1);
        let probe_idx = probe
            .and_then(|p| self.bed.cell_of(p))
            .map(|(c, r)| r * cols + c);
        let mut series: Vec<(f64, f64)> = Vec::new();
        let mut max_speed: f64 = 0.0;

        for step in 0..steps {
            let t = t_start + step as f64 * dt;
            if step % forcing_every == 0 {
                forcing.fill_forcing(
                    t,
                    &centers[..],
                    &mut tau_e[..],
                    &mut tau_n[..],
                    &mut p_atm[..],
                );
            }

            // Momentum update on wet cells.
            for_active!(|i| {
                let h = eta[i] - bed[i];
                if h <= cfg.dry_tolerance_m {
                    new_u[i] = 0.0;
                    new_v[i] = 0.0;
                    continue;
                }
                let c2 = col[i] as usize;
                let grad = |a: usize, b: usize, d: f64| {
                    // Surface + pressure gradient between wet cells;
                    // one-sided near dry neighbours.
                    (eta[b] - eta[a] + (p_atm[b] - p_atm[a]) / (RHO_WATER * G)) / d
                };
                let wet = |j: usize| eta[j] - bed[j] > cfg.dry_tolerance_m;
                // East gradient.
                let ge = {
                    let left = c2 > 0 && wet(i - 1);
                    let right = c2 + 1 < cols && wet(i + 1);
                    match (left, right) {
                        (true, true) => grad(i - 1, i + 1, 2.0 * dx),
                        (true, false) => grad(i - 1, i, dx),
                        (false, true) => grad(i, i + 1, dx),
                        (false, false) => 0.0,
                    }
                };
                let gn = {
                    let south = i >= cols && wet(i - cols);
                    let north = i + cols < n && wet(i + cols);
                    match (south, north) {
                        (true, true) => grad(i - cols, i + cols, 2.0 * dx),
                        (true, false) => grad(i - cols, i, dx),
                        (false, true) => grad(i, i + cols, dx),
                        (false, false) => 0.0,
                    }
                };
                let h_eff = h.max(0.5);
                let speed = (u[i] * u[i] + v[i] * v[i]).sqrt();
                // Manning friction, semi-implicit for stability.
                let cf = G * cfg.manning_n * cfg.manning_n * speed / h_eff.powf(4.0 / 3.0);
                let denom = 1.0 + dt * cf;
                new_u[i] = (u[i] + dt * (-G * ge + tau_e[i] / (RHO_WATER * h_eff))) / denom;
                new_v[i] = (v[i] + dt * (-G * gn + tau_n[i] / (RHO_WATER * h_eff))) / denom;
                // Hard speed clamp: keeps the explicit scheme from
                // blowing up during violent wetting fronts.
                let sp = (new_u[i] * new_u[i] + new_v[i] * new_v[i]).sqrt();
                if sp > 15.0 {
                    new_u[i] *= 15.0 / sp;
                    new_v[i] *= 15.0 / sp;
                }
                max_speed = max_speed.max(sp.min(15.0));
            });
            // Inactive cells hold zero velocity in both buffers, so the
            // swap reproduces the reference's clone-then-overwrite.
            std::mem::swap(&mut u, &mut new_u);
            std::mem::swap(&mut v, &mut new_v);

            // Continuity: upwind face fluxes with overtopping. Faces
            // whose west/south cell is inactive are skipped — both
            // endpoints of such a face are non-damp, so the flux is
            // exactly zero.
            new_eta.copy_from_slice(&eta[..]);
            for_active!(|i| {
                let c2 = col[i] as usize;
                // East face between i and i+1.
                if c2 + 1 < cols {
                    let j = i + 1;
                    let u_face = 0.5 * (u[i] + u[j]);
                    let sill = bed[i].max(bed[j]);
                    let h_face = if u_face > 0.0 {
                        (eta[i] - sill).max(0.0)
                    } else {
                        (eta[j] - sill).max(0.0)
                    };
                    let flux = u_face * h_face * dt / dx;
                    new_eta[i] -= flux;
                    new_eta[j] += flux;
                }
                // North face between i and i+cols.
                if i + cols < n {
                    let j = i + cols;
                    let v_face = 0.5 * (v[i] + v[j]);
                    let sill = bed[i].max(bed[j]);
                    let h_face = if v_face > 0.0 {
                        (eta[i] - sill).max(0.0)
                    } else {
                        (eta[j] - sill).max(0.0)
                    };
                    let flux = v_face * h_face * dt / dx;
                    new_eta[i] -= flux;
                    new_eta[j] += flux;
                }
            });
            std::mem::swap(&mut eta, &mut new_eta);

            // Conservative smoothing: a collocated (A-grid) scheme
            // supports checkerboard modes; exchanging a small fraction
            // of the surface difference across wet-wet faces damps
            // them without losing mass. Velocities get plain
            // diffusion.
            let smooth = 0.02;
            if dense {
                // Dense regime: these light stencils are bound by loop
                // overhead, and plain full sweeps vectorise where the
                // masked or indirect forms cannot. Visiting an inactive
                // cell here is an exact no-op (its depth is zero, its
                // velocities and scratch entries are +0.0, and no
                // active neighbour writes into it), so the sweep
                // produces bit-identical state.
                for r in 0..rows {
                    for c2 in 0..cols {
                        let i = r * cols + c2;
                        if eta[i] - bed[i] <= cfg.dry_tolerance_m {
                            continue;
                        }
                        if c2 + 1 < cols {
                            let j = i + 1;
                            if eta[j] - bed[j] > cfg.dry_tolerance_m {
                                let ex = smooth * (eta[j] - eta[i]);
                                d_eta[i] += ex;
                                d_eta[j] -= ex;
                            }
                        }
                        if i + cols < n {
                            let j = i + cols;
                            if eta[j] - bed[j] > cfg.dry_tolerance_m {
                                let ex = smooth * (eta[j] - eta[i]);
                                d_eta[i] += ex;
                                d_eta[j] -= ex;
                            }
                        }
                    }
                }
                for i in 0..n {
                    eta[i] += d_eta[i];
                    d_eta[i] = 0.0;
                }
            } else {
                for &i in active_cells.iter() {
                    if eta[i] - bed[i] <= cfg.dry_tolerance_m {
                        continue;
                    }
                    let c2 = col[i] as usize;
                    if c2 + 1 < cols {
                        let j = i + 1;
                        if eta[j] - bed[j] > cfg.dry_tolerance_m {
                            let ex = smooth * (eta[j] - eta[i]);
                            d_eta[i] += ex;
                            d_eta[j] -= ex;
                        }
                    }
                    if i + cols < n {
                        let j = i + cols;
                        if eta[j] - bed[j] > cfg.dry_tolerance_m {
                            let ex = smooth * (eta[j] - eta[i]);
                            d_eta[i] += ex;
                            d_eta[j] -= ex;
                        }
                    }
                }
                for &i in active_cells.iter() {
                    eta[i] += d_eta[i];
                    d_eta[i] = 0.0;
                }
            }
            if dense {
                for r in 0..rows {
                    for c2 in 0..cols {
                        let i = r * cols + c2;
                        let mut su = 0.0;
                        let mut sv = 0.0;
                        let mut count = 0.0;
                        let mut visit = |j: usize| {
                            su += u[j];
                            sv += v[j];
                            count += 1.0;
                        };
                        if c2 > 0 {
                            visit(i - 1);
                        }
                        if c2 + 1 < cols {
                            visit(i + 1);
                        }
                        if i >= cols {
                            visit(i - cols);
                        }
                        if i + cols < n {
                            visit(i + cols);
                        }
                        if count > 0.0 {
                            du[i] = 0.05 * (su / count - u[i]);
                            dv[i] = 0.05 * (sv / count - v[i]);
                        }
                    }
                }
                for i in 0..n {
                    u[i] += du[i];
                    v[i] += dv[i];
                    du[i] = 0.0;
                    dv[i] = 0.0;
                }
            } else {
                for &i in active_cells.iter() {
                    let c2 = col[i] as usize;
                    let mut su = 0.0;
                    let mut sv = 0.0;
                    let mut count = 0.0;
                    let mut visit = |j: usize| {
                        su += u[j];
                        sv += v[j];
                        count += 1.0;
                    };
                    if c2 > 0 {
                        visit(i - 1);
                    }
                    if c2 + 1 < cols {
                        visit(i + 1);
                    }
                    if i >= cols {
                        visit(i - cols);
                    }
                    if i + cols < n {
                        visit(i + cols);
                    }
                    if count > 0.0 {
                        du[i] = 0.05 * (su / count - u[i]);
                        dv[i] = 0.05 * (sv / count - v[i]);
                    }
                }
                for &i in active_cells.iter() {
                    u[i] += du[i];
                    v[i] += dv[i];
                    du[i] = 0.0;
                    dv[i] = 0.0;
                }
            }

            // Open-boundary relaxation toward the tidal still level.
            for r in 0..rows {
                for c2 in [0usize, cols - 1] {
                    let i = r * cols + c2;
                    if bed[i] < tide {
                        eta[i] += 0.2 * (tide - eta[i]);
                    }
                }
            }
            for c2 in 0..cols {
                for r in [0usize, rows - 1] {
                    let i = r * cols + c2;
                    if bed[i] < tide {
                        eta[i] += 0.2 * (tide - eta[i]);
                    }
                }
            }

            // Track the wet envelope; detect divergence cheaply. Only
            // active cells can have changed state.
            let mut any_nonfinite = false;
            for_active!(|i| {
                let h = eta[i] - bed[i];
                // `h > tol` proves eta[i] is finite here, so "NaN or
                // smaller" is exactly the old `!(max >= eta)` test and
                // the update collapses to a plain store.
                if h > cfg.dry_tolerance_m && (max_eta[i].is_nan() || max_eta[i] < eta[i]) {
                    max_eta[i] = eta[i];
                }
                if !eta[i].is_finite() {
                    any_nonfinite = true;
                }
            });
            if any_nonfinite {
                return Err(HydroError::SolverDiverged { at_time_s: t });
            }
            if let Some(pi) = probe_idx {
                series.push((t, eta[pi]));
            }

            // Grow the active set: every damp cell must carry its full
            // neighbour ring into the next step. Only frontier cells
            // (active with an inactive neighbour) can add anything, so
            // the scan is proportional to the wetting front, not the
            // active area. Newly activated cells are dry (their state
            // never changed while inactive), so one pass suffices; the
            // list is re-sorted to keep the ascending accumulation
            // order.
            let before = active_cells.len();
            for &i in frontier.iter() {
                if eta[i] > bed[i] {
                    let c2 = col[i] as usize;
                    if c2 > 0 && !active[i - 1] {
                        active[i - 1] = true;
                        active_cells.push(i - 1);
                    }
                    if c2 + 1 < cols && !active[i + 1] {
                        active[i + 1] = true;
                        active_cells.push(i + 1);
                    }
                    if i >= cols && !active[i - cols] {
                        active[i - cols] = true;
                        active_cells.push(i - cols);
                    }
                    if i + cols < n && !active[i + cols] {
                        active[i + cols] = true;
                        active_cells.push(i + cols);
                    }
                }
            }
            if active_cells.len() > before {
                // Activations can retire old frontier cells (their last
                // inactive neighbour may just have been activated) and
                // enlist the newly activated ones; an interior active
                // cell can never re-enter the frontier because the set
                // only grows.
                frontier.extend_from_slice(&active_cells[before..]);
                frontier.retain(|&i| has_inactive_neighbor(active, col, i));
                active_cells.sort_unstable();
                dense = active_cells.len() * 2 >= n;
            }
        }

        let mut max_grid = self.bed.map(|_| f64::NAN);
        max_grid.as_mut_slice().copy_from_slice(&max_eta[..]);
        ct_obs::add(ct_obs::names::SWE_SOLVES, 1);
        ct_obs::add(ct_obs::names::SWE_STEPS, steps as u64);
        ct_obs::histogram(
            ct_obs::names::SWE_STEPS_PER_SOLVE,
            &ct_obs::names::SWE_STEPS_PER_SOLVE_BOUNDS,
        )
        .observe(steps as f64);
        Ok((
            SurgeOutcome {
                max_eta: max_grid,
                bed: self.bed.clone(),
                steps,
                dt_s: dt,
                max_speed_ms: max_speed,
            },
            series,
        ))
    }

    fn run_impl_reference(
        &self,
        forcing: &dyn Forcing,
        probe: Option<EnuKm>,
    ) -> Result<(SurgeOutcome, Vec<(f64, f64)>), HydroError> {
        let cfg = &self.config;
        let cols = self.bed.cols();
        let rows = self.bed.rows();
        let n = cols * rows;
        let dx = cfg.cell_km * 1000.0;
        let bed = self.bed.as_slice();
        let tide = forcing.tide_m();

        // State: water-surface elevation and velocities at cell centres.
        let mut eta: Vec<f64> = Vec::with_capacity(n);
        for r in 0..rows {
            for c2 in 0..cols {
                let z = bed[r * cols + c2];
                if z < tide {
                    let p = self.bed.cell_center(c2, r);
                    eta.push(tide + forcing.initial_eta_m(p));
                } else {
                    eta.push(z);
                }
            }
        }
        let mut u = vec![0.0f64; n];
        let mut v = vec![0.0f64; n];
        let mut max_eta = vec![f64::NAN; n];
        let mut tau_e = vec![0.0f64; n];
        let mut tau_n = vec![0.0f64; n];
        let mut p_atm = vec![101_000.0f64; n];

        // Time step from the (clipped) deepest water.
        let max_h = bed.iter().map(|&z| (tide - z).max(0.0)).fold(0.0, f64::max);
        let c = (G * max_h).sqrt().max(1.0);
        let dt = (cfg.cfl * dx / (c + 10.0)).max(0.05);
        let (t_start, t_end) = forcing.window_s();
        let steps = ((t_end - t_start) / dt).ceil() as usize;
        let forcing_every = ((cfg.forcing_update_minutes * 60.0 / dt).round() as usize).max(1);
        let idx = |cc: usize, rr: usize| rr * cols + cc;
        let probe_idx = probe
            .and_then(|p| self.bed.cell_of(p))
            .map(|(c, r)| idx(c, r));
        let mut series: Vec<(f64, f64)> = Vec::new();
        let mut max_speed: f64 = 0.0;

        for step in 0..steps {
            let t = t_start + step as f64 * dt;
            if step % forcing_every == 0 {
                for r in 0..rows {
                    for c2 in 0..cols {
                        let i = idx(c2, r);
                        let p = self.bed.cell_center(c2, r);
                        let (te, tn) = forcing.wind_stress(t, p);
                        tau_e[i] = te;
                        tau_n[i] = tn;
                        p_atm[i] = forcing.pressure_pa(t, p);
                    }
                }
            }

            // Momentum update on wet cells.
            let mut new_u = u.clone();
            let mut new_v = v.clone();
            for r in 0..rows {
                for c2 in 0..cols {
                    let i = idx(c2, r);
                    let h = eta[i] - bed[i];
                    if h <= cfg.dry_tolerance_m {
                        new_u[i] = 0.0;
                        new_v[i] = 0.0;
                        continue;
                    }
                    let grad = |a: usize, b: usize, d: f64| {
                        // Surface + pressure gradient between wet cells;
                        // one-sided near dry neighbours.
                        (eta[b] - eta[a] + (p_atm[b] - p_atm[a]) / (RHO_WATER * G)) / d
                    };
                    let wet = |j: usize| eta[j] - bed[j] > cfg.dry_tolerance_m;
                    // East gradient.
                    let ge = {
                        let left = c2 > 0 && wet(idx(c2 - 1, r));
                        let right = c2 + 1 < cols && wet(idx(c2 + 1, r));
                        match (left, right) {
                            (true, true) => grad(idx(c2 - 1, r), idx(c2 + 1, r), 2.0 * dx),
                            (true, false) => grad(idx(c2 - 1, r), i, dx),
                            (false, true) => grad(i, idx(c2 + 1, r), dx),
                            (false, false) => 0.0,
                        }
                    };
                    let gn = {
                        let south = r > 0 && wet(idx(c2, r - 1));
                        let north = r + 1 < rows && wet(idx(c2, r + 1));
                        match (south, north) {
                            (true, true) => grad(idx(c2, r - 1), idx(c2, r + 1), 2.0 * dx),
                            (true, false) => grad(idx(c2, r - 1), i, dx),
                            (false, true) => grad(i, idx(c2, r + 1), dx),
                            (false, false) => 0.0,
                        }
                    };
                    let h_eff = h.max(0.5);
                    let speed = (u[i] * u[i] + v[i] * v[i]).sqrt();
                    // Manning friction, semi-implicit for stability.
                    let cf = G * cfg.manning_n * cfg.manning_n * speed / h_eff.powf(4.0 / 3.0);
                    let denom = 1.0 + dt * cf;
                    new_u[i] = (u[i] + dt * (-G * ge + tau_e[i] / (RHO_WATER * h_eff))) / denom;
                    new_v[i] = (v[i] + dt * (-G * gn + tau_n[i] / (RHO_WATER * h_eff))) / denom;
                    // Hard speed clamp: keeps the explicit scheme from
                    // blowing up during violent wetting fronts.
                    let sp = (new_u[i] * new_u[i] + new_v[i] * new_v[i]).sqrt();
                    if sp > 15.0 {
                        new_u[i] *= 15.0 / sp;
                        new_v[i] *= 15.0 / sp;
                    }
                    max_speed = max_speed.max(sp.min(15.0));
                }
            }
            u = new_u;
            v = new_v;

            // Continuity: upwind face fluxes with overtopping.
            let mut new_eta = eta.clone();
            for r in 0..rows {
                for c2 in 0..cols {
                    let i = idx(c2, r);
                    // East face between i and i+1.
                    if c2 + 1 < cols {
                        let j = idx(c2 + 1, r);
                        let u_face = 0.5 * (u[i] + u[j]);
                        let sill = bed[i].max(bed[j]);
                        let h_face = if u_face > 0.0 {
                            (eta[i] - sill).max(0.0)
                        } else {
                            (eta[j] - sill).max(0.0)
                        };
                        let flux = u_face * h_face * dt / dx;
                        new_eta[i] -= flux;
                        new_eta[j] += flux;
                    }
                    // North face between i and i+cols.
                    if r + 1 < rows {
                        let j = idx(c2, r + 1);
                        let v_face = 0.5 * (v[i] + v[j]);
                        let sill = bed[i].max(bed[j]);
                        let h_face = if v_face > 0.0 {
                            (eta[i] - sill).max(0.0)
                        } else {
                            (eta[j] - sill).max(0.0)
                        };
                        let flux = v_face * h_face * dt / dx;
                        new_eta[i] -= flux;
                        new_eta[j] += flux;
                    }
                }
            }
            eta = new_eta;

            // Conservative smoothing: a collocated (A-grid) scheme
            // supports checkerboard modes; exchanging a small fraction
            // of the surface difference across wet-wet faces damps
            // them without losing mass. Velocities get plain
            // diffusion.
            let smooth = 0.02;
            let mut d_eta = vec![0.0f64; n];
            for r in 0..rows {
                for c2 in 0..cols {
                    let i = idx(c2, r);
                    if eta[i] - bed[i] <= cfg.dry_tolerance_m {
                        continue;
                    }
                    if c2 + 1 < cols {
                        let j = idx(c2 + 1, r);
                        if eta[j] - bed[j] > cfg.dry_tolerance_m {
                            let ex = smooth * (eta[j] - eta[i]);
                            d_eta[i] += ex;
                            d_eta[j] -= ex;
                        }
                    }
                    if r + 1 < rows {
                        let j = idx(c2, r + 1);
                        if eta[j] - bed[j] > cfg.dry_tolerance_m {
                            let ex = smooth * (eta[j] - eta[i]);
                            d_eta[i] += ex;
                            d_eta[j] -= ex;
                        }
                    }
                }
            }
            for i in 0..n {
                eta[i] += d_eta[i];
            }
            let mut du = vec![0.0f64; n];
            let mut dv = vec![0.0f64; n];
            for r in 0..rows {
                for c2 in 0..cols {
                    let i = idx(c2, r);
                    let mut su = 0.0;
                    let mut sv = 0.0;
                    let mut count = 0.0;
                    let mut visit = |j: usize| {
                        su += u[j];
                        sv += v[j];
                        count += 1.0;
                    };
                    if c2 > 0 {
                        visit(idx(c2 - 1, r));
                    }
                    if c2 + 1 < cols {
                        visit(idx(c2 + 1, r));
                    }
                    if r > 0 {
                        visit(idx(c2, r - 1));
                    }
                    if r + 1 < rows {
                        visit(idx(c2, r + 1));
                    }
                    if count > 0.0 {
                        du[i] = 0.05 * (su / count - u[i]);
                        dv[i] = 0.05 * (sv / count - v[i]);
                    }
                }
            }
            for i in 0..n {
                u[i] += du[i];
                v[i] += dv[i];
            }

            // Open-boundary relaxation toward the tidal still level.
            for r in 0..rows {
                for c2 in [0usize, cols - 1] {
                    let i = idx(c2, r);
                    if bed[i] < tide {
                        eta[i] += 0.2 * (tide - eta[i]);
                    }
                }
            }
            for c2 in 0..cols {
                for r in [0usize, rows - 1] {
                    let i = idx(c2, r);
                    if bed[i] < tide {
                        eta[i] += 0.2 * (tide - eta[i]);
                    }
                }
            }

            // Track the wet envelope; detect divergence cheaply.
            let mut any_nonfinite = false;
            for i in 0..n {
                let h = eta[i] - bed[i];
                // `h > tol` proves eta[i] is finite here, so "NaN or
                // smaller" is exactly the old `!(max >= eta)` test and
                // the update collapses to a plain store.
                if h > cfg.dry_tolerance_m && (max_eta[i].is_nan() || max_eta[i] < eta[i]) {
                    max_eta[i] = eta[i];
                }
                if !eta[i].is_finite() {
                    any_nonfinite = true;
                }
            }
            if any_nonfinite {
                return Err(HydroError::SolverDiverged { at_time_s: t });
            }
            if let Some(pi) = probe_idx {
                series.push((t, eta[pi]));
            }
        }

        let mut max_grid = self.bed.map(|_| f64::NAN);
        max_grid.as_mut_slice().copy_from_slice(&max_eta);
        Ok((
            SurgeOutcome {
                max_eta: max_grid,
                bed: self.bed.clone(),
                steps,
                dt_s: dt,
                max_speed_ms: max_speed,
            },
            series,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::track::StormTrack;
    use ct_geo::LatLon;

    fn flat_basin(depth_m: f64) -> (Grid<f64>, Projection) {
        // A closed rectangular basin: walls (land) around the rim.
        let cols = 30;
        let rows = 10;
        let grid = Grid::from_fn(cols, rows, EnuKm::new(0.0, 0.0), 1.0, |p| {
            let c = (p.east / 1.0) as usize;
            let r = (p.north / 1.0) as usize;
            if c == 0 || r == 0 || c == cols - 1 || r == rows - 1 {
                5.0
            } else {
                -depth_m
            }
        })
        .unwrap();
        (grid, Projection::new(LatLon::new(21.45, -158.0)))
    }

    fn quiet_config() -> ShallowWaterConfig {
        ShallowWaterConfig {
            cell_km: 1.0,
            ..ShallowWaterConfig::default()
        }
    }

    /// Frictionless tilted initial surface — excites the fundamental
    /// seiche mode. Used by the Merian-period and probe-equivalence
    /// tests.
    #[derive(Debug)]
    struct Tilt;
    impl Forcing for Tilt {
        fn wind_stress(&self, _: f64, _: EnuKm) -> (f64, f64) {
            (0.0, 0.0)
        }
        fn initial_eta_m(&self, p: EnuKm) -> f64 {
            // Linear tilt across the interior (1..29 km): +-20 cm.
            0.2 * (p.east - 15.0) / 14.0
        }
        fn window_s(&self) -> (f64, f64) {
            (0.0, 10_000.0)
        }
    }

    /// Asserts two outcomes are identical to the bit (signed zeros
    /// compare equal; NaN only matches NaN).
    fn assert_outcomes_identical(fast: &SurgeOutcome, reference: &SurgeOutcome) {
        assert_eq!(fast.steps, reference.steps);
        assert_eq!(fast.dt_s.to_bits(), reference.dt_s.to_bits());
        assert_eq!(
            fast.max_speed_ms.to_bits(),
            reference.max_speed_ms.to_bits()
        );
        assert_eq!(fast.bed.as_slice(), reference.bed.as_slice());
        for (i, (a, b)) in fast
            .max_eta
            .as_slice()
            .iter()
            .zip(reference.max_eta.as_slice())
            .enumerate()
        {
            let same = (a.is_nan() && b.is_nan()) || a.to_bits() == b.to_bits() || a == b;
            assert!(same, "max_eta differs at cell {i}: {a:?} vs {b:?}");
        }
    }

    #[test]
    fn lake_at_rest_stays_at_rest() {
        let (bed, proj) = flat_basin(20.0);
        let solver = ShallowWaterSolver::from_bed(bed, proj, quiet_config());
        let calm = UniformWind {
            tau_east: 0.0,
            tau_north: 0.0,
            duration_s: 1800.0,
        };
        let out = solver.run_forced(&calm).unwrap();
        for (_, _, &m) in out.max_eta.iter() {
            if !m.is_nan() {
                assert!(m.abs() < 1e-6, "lake at rest perturbed: {m}");
            }
        }
        assert!(out.max_speed_ms < 1e-6);
    }

    #[test]
    fn wind_setup_tilts_the_basin() {
        // Steady eastward wind over a closed basin piles water up at
        // the east wall: Δη ≈ τ L / (ρ g H).
        let depth = 10.0;
        let (bed, proj) = flat_basin(depth);
        let solver = ShallowWaterSolver::from_bed(bed, proj, quiet_config());
        let tau = 1.0; // strong gale
        let wind = UniformWind {
            tau_east: tau,
            tau_north: 0.0,
            duration_s: 4.0 * 3600.0,
        };
        let out = solver.run_forced(&wind).unwrap();
        let west = out.water_level_at(EnuKm::new(2.5, 5.5)).unwrap();
        let east = out.water_level_at(EnuKm::new(27.5, 5.5)).unwrap();
        assert!(east > west, "east {east} west {west}");
        let expected = tau * 26_000.0 / (RHO_WATER * G * depth);
        let measured = east; // west end max is its initial 0 level
        assert!(
            measured > 0.3 * expected && measured < 3.0 * expected,
            "setup {measured}, analytic scale {expected}"
        );
    }

    #[test]
    fn mass_is_conserved_in_closed_basin() {
        let (bed, proj) = flat_basin(10.0);
        let solver = ShallowWaterSolver::from_bed(bed.clone(), proj, quiet_config());
        let wind = UniformWind {
            tau_east: 0.5,
            tau_north: 0.2,
            duration_s: 3600.0,
        };
        // Boundary relaxation only applies to sea cells on the domain
        // edge; the basin walls are land, so volume is conserved up to
        // the relaxation (walls block it) and floating-point drift.
        let out = solver.run_forced(&wind).unwrap();
        assert!(out.steps > 100);
        // The envelope must be bounded: no runaway growth.
        let (_, max) = {
            let vals: Vec<f64> = out
                .max_eta
                .as_slice()
                .iter()
                .copied()
                .filter(|v| !v.is_nan())
                .collect();
            (
                vals.iter().copied().fold(f64::INFINITY, f64::min),
                vals.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            )
        };
        assert!(max < 5.0, "unbounded surge in small basin: {max}");
    }

    #[test]
    fn seiche_period_matches_merians_formula() {
        // Fundamental standing wave in a closed rectangular basin:
        // T = 2L / sqrt(gH). Basin: 28 usable km, H = 20 m =>
        // c = 14 m/s, T = 4000 s. Initialize a tilted surface and
        // measure the oscillation period at the east end via upward
        // zero crossings.
        let depth = 20.0;
        let (bed, proj) = flat_basin(depth);
        let solver = ShallowWaterSolver::from_bed(bed, proj, quiet_config());

        let probe = EnuKm::new(27.5, 5.5); // near the east wall
        let (_, series) = solver.run_forced_with_probe(&Tilt, probe).unwrap();
        assert!(series.len() > 200, "need a usable time series");

        // Upward zero crossings of the probe elevation.
        let mut crossings = Vec::new();
        for w in series.windows(2) {
            let ((_, a), (t, b)) = (w[0], w[1]);
            if a <= 0.0 && b > 0.0 {
                crossings.push(t);
            }
        }
        assert!(
            crossings.len() >= 2,
            "no oscillation observed: {} crossings",
            crossings.len()
        );
        let periods: Vec<f64> = crossings.windows(2).map(|w| w[1] - w[0]).collect();
        let mean_period = periods.iter().sum::<f64>() / periods.len() as f64;
        let analytic = 2.0 * 28_000.0 / (9.81f64 * depth).sqrt();
        let rel = (mean_period - analytic).abs() / analytic;
        assert!(
            rel < 0.25,
            "seiche period {mean_period:.0} s vs Merian {analytic:.0} s (rel err {rel:.2})"
        );
    }

    #[test]
    fn tide_raises_still_water_level() {
        let (bed, proj) = flat_basin(10.0);
        let solver = ShallowWaterSolver::from_bed(bed, proj, quiet_config());
        #[derive(Debug)]
        struct TideOnly;
        impl Forcing for TideOnly {
            fn wind_stress(&self, _: f64, _: EnuKm) -> (f64, f64) {
                (0.0, 0.0)
            }
            fn tide_m(&self) -> f64 {
                0.3
            }
            fn window_s(&self) -> (f64, f64) {
                (0.0, 600.0)
            }
        }
        let out = solver.run_forced(&TideOnly).unwrap();
        let mid = out.water_level_at(EnuKm::new(15.5, 5.5)).unwrap();
        assert!((mid - 0.3).abs() < 0.05, "tide level {mid}");
    }

    #[test]
    fn active_set_kernel_matches_reference_bitwise() {
        for (tau_east, tau_north) in [(0.0, 0.0), (1.0, 0.0), (0.4, -0.7)] {
            let (bed, proj) = flat_basin(12.0);
            let solver = ShallowWaterSolver::from_bed(bed, proj, quiet_config());
            let wind = UniformWind {
                tau_east,
                tau_north,
                duration_s: 3600.0,
            };
            let fast = solver.run_forced(&wind).unwrap();
            let reference = solver.run_forced_reference(&wind).unwrap();
            assert_outcomes_identical(&fast, &reference);
        }
    }

    #[test]
    fn wetting_front_matches_reference_bitwise() {
        // Sloping beach: deep water in the west, a dry berm in the
        // east. Strong eastward wind drives the wetting front onto
        // initially-dry land, exercising active-set growth.
        let cols = 40;
        let rows = 12;
        let grid = Grid::from_fn(cols, rows, EnuKm::new(0.0, 0.0), 1.0, |p| {
            let c = (p.east / 1.0) as usize;
            let r = (p.north / 1.0) as usize;
            if c == 0 || r == 0 || c == cols - 1 || r == rows - 1 {
                5.0
            } else {
                -8.0 + 9.0 * (c as f64) / (cols as f64)
            }
        })
        .unwrap();
        let proj = Projection::new(LatLon::new(21.45, -158.0));
        let solver = ShallowWaterSolver::from_bed(grid, proj, quiet_config());
        let wind = UniformWind {
            tau_east: 1.5,
            tau_north: 0.0,
            duration_s: 2.0 * 3600.0,
        };
        let fast = solver.run_forced(&wind).unwrap();
        let reference = solver.run_forced_reference(&wind).unwrap();
        let wetted_land = fast
            .max_eta
            .as_slice()
            .iter()
            .zip(fast.bed.as_slice())
            .filter(|(m, &z)| !m.is_nan() && z > 0.0)
            .count();
        assert!(
            wetted_land > 0,
            "beach never wetted; test exercises nothing"
        );
        assert_outcomes_identical(&fast, &reference);
    }

    #[test]
    fn probe_series_matches_reference_bitwise() {
        let (bed, proj) = flat_basin(20.0);
        let solver = ShallowWaterSolver::from_bed(bed, proj, quiet_config());
        let probe = EnuKm::new(27.5, 5.5);
        let (fast, fast_series) = solver.run_forced_with_probe(&Tilt, probe).unwrap();
        let (reference, ref_series) = solver.run_impl_reference(&Tilt, Some(probe)).unwrap();
        assert_outcomes_identical(&fast, &reference);
        assert_eq!(fast_series.len(), ref_series.len());
        for ((ta, ea), (tb, eb)) in fast_series.iter().zip(&ref_series) {
            assert_eq!(ta.to_bits(), tb.to_bits());
            assert_eq!(ea.to_bits(), eb.to_bits(), "probe eta diverged at t={ta}");
        }
    }

    #[test]
    fn storm_forcing_batch_matches_reference_bitwise() {
        // A hurricane passing the basin: exercises the batched
        // StormForcing::fill_forcing override against the reference
        // kernel's per-cell wind_stress/pressure_pa calls.
        let (bed, proj) = flat_basin(15.0);
        let solver = ShallowWaterSolver::from_bed(bed, proj, quiet_config());
        let storm = StormParams {
            track: StormTrack::straight(LatLon::new(21.0, -158.3), 20.0, 6.0, 24.0)
                .expect("valid track"),
            central_pressure_hpa: 970.0,
            ambient_pressure_hpa: 1010.0,
            rmax_km: 40.0,
            b: 1.5,
            tide_m: 0.2,
        };
        let forcing = StormForcing::new(&storm, proj, EnuKm::new(15.0, 5.0), 2.0, 1.0);
        let fast = solver.run_forced(&forcing).unwrap();
        let reference = solver.run_forced_reference(&forcing).unwrap();
        assert!(fast.max_speed_ms > 0.0, "storm produced no motion");
        assert_outcomes_identical(&fast, &reference);
    }

    #[test]
    fn workspace_reuse_is_bit_deterministic() {
        let (bed, proj) = flat_basin(15.0);
        let solver = ShallowWaterSolver::from_bed(bed, proj, quiet_config());
        let first = UniformWind {
            tau_east: 0.8,
            tau_north: 0.1,
            duration_s: 1800.0,
        };
        let second = UniformWind {
            tau_east: -0.3,
            tau_north: 0.6,
            duration_s: 2400.0,
        };
        let mut ws = SweWorkspace::new();
        let reused_1 = solver.run_forced_with_workspace(&mut ws, &first).unwrap();
        let reused_2 = solver.run_forced_with_workspace(&mut ws, &second).unwrap();
        let fresh_1 = solver.run_forced(&first).unwrap();
        let fresh_2 = solver.run_forced(&second).unwrap();
        assert_outcomes_identical(&reused_1, &fresh_1);
        assert_outcomes_identical(&reused_2, &fresh_2);
    }
}
