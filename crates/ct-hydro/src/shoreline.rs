//! Shoreline post-processing of solver output.
//!
//! The paper (Sec. V-A) notes that the ADCIRC mesh was coarse near the
//! Oahu shoreline, producing artifacts such as a 1.5 m water-surface
//! elevation adjacent to 0 m. Their remedy — which we reproduce — is
//! to *average* the water-surface elevations near the shoreline and
//! then *extend* the averaged surface onto the shore to obtain the
//! inundation estimate.

use crate::swe::SurgeOutcome;
use ct_geo::{EnuKm, Grid};

/// Averages the wet water-surface envelope within `radius_km` of each
/// wet cell, removing cell-scale mesh artifacts. Dry cells stay `NAN`.
pub fn smooth_water_surface(outcome: &SurgeOutcome, radius_km: f64) -> Grid<f64> {
    let eta = &outcome.max_eta;
    let reach = (radius_km / eta.cell_km()).ceil() as isize;
    let (cols, rows) = (eta.cols() as isize, eta.rows() as isize);
    let mut smoothed = eta.clone();
    for r in 0..rows {
        for c in 0..cols {
            let center = *eta.get(c as usize, r as usize).expect("in range");
            if center.is_nan() {
                continue;
            }
            let mut sum = 0.0;
            let mut count = 0usize;
            for dr in -reach..=reach {
                for dc in -reach..=reach {
                    let (nc, nr) = (c + dc, r + dr);
                    if nc < 0 || nr < 0 || nc >= cols || nr >= rows {
                        continue;
                    }
                    let v = *eta.get(nc as usize, nr as usize).expect("in range");
                    if !v.is_nan() {
                        sum += v;
                        count += 1;
                    }
                }
            }
            if count > 0 {
                *smoothed.get_mut(c as usize, r as usize).expect("in range") = sum / count as f64;
            }
        }
    }
    smoothed
}

/// Extends a (smoothed) water surface onto dry shoreline cells: every
/// dry cell within `extend_km` of a wet cell receives the mean surface
/// elevation of the wet cells in that neighbourhood. Returns the
/// extended water-surface grid (`NAN` for cells that stay dry).
pub fn extend_onto_shore(surface: &Grid<f64>, extend_km: f64) -> Grid<f64> {
    let reach = (extend_km / surface.cell_km()).ceil() as isize;
    let (cols, rows) = (surface.cols() as isize, surface.rows() as isize);
    let mut extended = surface.clone();
    for r in 0..rows {
        for c in 0..cols {
            let v = *surface.get(c as usize, r as usize).expect("in range");
            if !v.is_nan() {
                continue; // already wet
            }
            let mut sum = 0.0;
            let mut count = 0usize;
            for dr in -reach..=reach {
                for dc in -reach..=reach {
                    let (nc, nr) = (c + dc, r + dr);
                    if nc < 0 || nr < 0 || nc >= cols || nr >= rows {
                        continue;
                    }
                    let w = *surface.get(nc as usize, nr as usize).expect("in range");
                    if !w.is_nan() {
                        sum += w;
                        count += 1;
                    }
                }
            }
            if count > 0 {
                *extended.get_mut(c as usize, r as usize).expect("in range") = sum / count as f64;
            }
        }
    }
    extended
}

/// Full post-processing pipeline: smooth then extend, mirroring the
/// paper's treatment of the coarse-mesh ADCIRC output.
pub fn postprocess(outcome: &SurgeOutcome, radius_km: f64, extend_km: f64) -> Grid<f64> {
    extend_onto_shore(&smooth_water_surface(outcome, radius_km), extend_km)
}

/// Inundation depth (m) at a local point given an extended
/// water-surface grid and the bed: `max(0, surface - ground)`.
/// Returns 0 where the surface never reached.
pub fn inundation_depth(surface: &Grid<f64>, bed: &Grid<f64>, p: EnuKm) -> f64 {
    let Some((c, r)) = surface.cell_of(p) else {
        return 0.0;
    };
    let s = *surface.get(c, r).expect("in range");
    if s.is_nan() {
        return 0.0;
    }
    let ground = *bed.get(c, r).expect("in range");
    (s - ground).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::swe::SurgeOutcome;
    use ct_geo::Grid;

    /// Builds a toy outcome: a 1-D shore. Cells 0..5 wet with a noisy
    /// surface, cells 5..10 dry land.
    fn toy_outcome() -> SurgeOutcome {
        let bed = Grid::from_fn(10, 3, EnuKm::new(0.0, 0.0), 1.0, |p| {
            if p.east < 5.0 {
                -10.0
            } else {
                1.0
            }
        })
        .unwrap();
        let max_eta = Grid::from_fn(10, 3, EnuKm::new(0.0, 0.0), 1.0, |p| {
            if p.east < 5.0 {
                // Mesh artifact: alternating 1.5 / 0.3 m.
                if (p.east as usize).is_multiple_of(2) {
                    1.5
                } else {
                    0.3
                }
            } else {
                f64::NAN
            }
        })
        .unwrap();
        SurgeOutcome {
            max_eta,
            bed,
            steps: 1,
            dt_s: 1.0,
            max_speed_ms: 0.0,
        }
    }

    #[test]
    fn smoothing_reduces_artifacts() {
        let out = toy_outcome();
        let smoothed = smooth_water_surface(&out, 2.0);
        // Spread between adjacent wet cells shrinks.
        let a = smoothed.get(1, 1).unwrap();
        let b = smoothed.get(2, 1).unwrap();
        assert!((a - b).abs() < 0.6, "still rough: {a} vs {b}");
        // Dry cells untouched.
        assert!(smoothed.get(8, 1).unwrap().is_nan());
    }

    #[test]
    fn extension_wets_the_shoreline_band() {
        let out = toy_outcome();
        let extended = postprocess(&out, 2.0, 2.0);
        // The first land cells (east = 5.5, 6.5) now carry a surface.
        assert!(!extended.get(5, 1).unwrap().is_nan());
        assert!(!extended.get(6, 1).unwrap().is_nan());
        // Far inland stays dry.
        assert!(extended.get(9, 1).unwrap().is_nan());
    }

    #[test]
    fn extended_surface_is_plausible_average() {
        let out = toy_outcome();
        let extended = postprocess(&out, 2.0, 2.0);
        let v = *extended.get(5, 1).unwrap();
        // The wet field averages to ~0.9 m.
        assert!((0.3..1.5).contains(&v), "extended value {v}");
    }

    #[test]
    fn inundation_depth_semantics() {
        let out = toy_outcome();
        let extended = postprocess(&out, 2.0, 2.0);
        // On the shoreline band (ground 1.0): depth = surface - 1.0,
        // floored at zero.
        let d = inundation_depth(&extended, &out.bed, EnuKm::new(5.5, 1.5));
        assert!((0.0..1.0).contains(&d));
        // Outside the domain: zero.
        assert_eq!(
            inundation_depth(&extended, &out.bed, EnuKm::new(99.0, 1.0)),
            0.0
        );
        // Far inland (never wetted): zero.
        assert_eq!(
            inundation_depth(&extended, &out.bed, EnuKm::new(9.5, 1.5)),
            0.0
        );
    }
}
