//! Parametric cyclone wind and pressure field (Holland 1980).

use crate::error::HydroError;
use ct_geo::LatLon;
use serde::{Deserialize, Serialize};

/// Air density at sea level, kg/m³.
pub const AIR_DENSITY: f64 = 1.15;

/// A wind observation at a point: speed and the compass direction the
/// air is moving *toward*.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindSample {
    /// Wind speed in m/s.
    pub speed_ms: f64,
    /// Direction of air motion, degrees clockwise from north.
    pub toward_deg: f64,
}

impl WindSample {
    /// Component of the wind blowing toward `bearing_deg` (m/s,
    /// negative when blowing away).
    pub fn component_toward(&self, bearing_deg: f64) -> f64 {
        let delta = (self.toward_deg - bearing_deg).to_radians();
        self.speed_ms * delta.cos()
    }
}

/// Holland (1980) parametric gradient-wind model of a tropical
/// cyclone, with a simple forward-motion asymmetry term.
///
/// The model gives azimuthal wind speed
/// `V(r) = sqrt(B Δp / ρ (Rmax/r)^B exp(-(Rmax/r)^B) + (r f / 2)²) - r f / 2`
/// and surface pressure `p(r) = p_c + Δp exp(-(Rmax/r)^B)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HollandWindField {
    /// Central pressure, hPa.
    pub central_pressure_hpa: f64,
    /// Ambient (environmental) pressure, hPa.
    pub ambient_pressure_hpa: f64,
    /// Radius of maximum winds, km.
    pub rmax_km: f64,
    /// Holland shape parameter `B` (typically 1.0-2.5).
    pub b: f64,
    /// Latitude used for the Coriolis parameter, degrees.
    pub latitude_deg: f64,
    /// Storm forward velocity: heading (deg clockwise from north).
    pub motion_toward_deg: f64,
    /// Storm forward speed, m/s.
    pub motion_speed_ms: f64,
    /// Surface inflow angle, degrees (wind spirals inward by this
    /// much relative to pure circular flow).
    pub inflow_angle_deg: f64,
}

impl HollandWindField {
    /// Creates a field, validating physical parameters.
    ///
    /// # Errors
    ///
    /// Returns [`HydroError::InvalidParameter`] when the pressure
    /// deficit is non-positive, `rmax_km <= 0`, or `b` is outside
    /// `(0.5, 3.5)`.
    pub fn new(
        central_pressure_hpa: f64,
        ambient_pressure_hpa: f64,
        rmax_km: f64,
        b: f64,
        latitude_deg: f64,
    ) -> Result<Self, HydroError> {
        let deficit_hpa = ambient_pressure_hpa - central_pressure_hpa;
        if deficit_hpa.is_nan() || deficit_hpa <= 0.0 {
            return Err(HydroError::InvalidParameter {
                name: "pressure deficit",
                value: deficit_hpa,
            });
        }
        if rmax_km.is_nan() || rmax_km <= 0.0 {
            return Err(HydroError::InvalidParameter {
                name: "rmax_km",
                value: rmax_km,
            });
        }
        if !(0.5..3.5).contains(&b) {
            return Err(HydroError::InvalidParameter {
                name: "b",
                value: b,
            });
        }
        Ok(Self {
            central_pressure_hpa,
            ambient_pressure_hpa,
            rmax_km,
            b,
            latitude_deg,
            motion_toward_deg: 0.0,
            motion_speed_ms: 0.0,
            inflow_angle_deg: 20.0,
        })
    }

    /// Sets the storm translation used for the asymmetry term.
    pub fn with_motion(mut self, toward_deg: f64, speed_ms: f64) -> Self {
        self.motion_toward_deg = toward_deg;
        self.motion_speed_ms = speed_ms;
        self
    }

    /// Pressure deficit `Δp` in Pa.
    pub fn pressure_deficit_pa(&self) -> f64 {
        (self.ambient_pressure_hpa - self.central_pressure_hpa) * 100.0
    }

    /// Coriolis parameter `f = 2 Ω sin(φ)` (1/s).
    pub fn coriolis(&self) -> f64 {
        2.0 * 7.2921e-5 * self.latitude_deg.to_radians().sin()
    }

    /// Maximum gradient wind speed (m/s), at `r = Rmax` ignoring the
    /// (small) Coriolis correction.
    pub fn max_gradient_wind_ms(&self) -> f64 {
        (self.b * self.pressure_deficit_pa() / (AIR_DENSITY * std::f64::consts::E)).sqrt()
    }

    /// Azimuthal gradient wind speed at radial distance `r_km` from
    /// the centre (m/s).
    pub fn gradient_wind_ms(&self, r_km: f64) -> f64 {
        if r_km <= 1e-6 {
            return 0.0;
        }
        let r_m = r_km * 1000.0;
        let x = (self.rmax_km / r_km).powf(self.b);
        let term = self.b * self.pressure_deficit_pa() / AIR_DENSITY * x * (-x).exp();
        let rf2 = r_m * self.coriolis().abs() / 2.0;
        (term + rf2 * rf2).sqrt() - rf2
    }

    /// Surface pressure (hPa) at radial distance `r_km`.
    pub fn pressure_hpa(&self, r_km: f64) -> f64 {
        if r_km <= 1e-6 {
            return self.central_pressure_hpa;
        }
        let x = (self.rmax_km / r_km).powf(self.b);
        self.central_pressure_hpa
            + (self.ambient_pressure_hpa - self.central_pressure_hpa) * (-x).exp()
    }

    /// Wind at geographic point `p` for a storm centred at `center`.
    ///
    /// Circulation is counter-clockwise (northern hemisphere), rotated
    /// inward by the inflow angle, plus a forward-motion asymmetry
    /// that peaks near the radius of maximum winds on the right of the
    /// track.
    pub fn wind_at(&self, center: LatLon, p: LatLon) -> WindSample {
        let r_km = center.distance_km(p);
        let v_rot = self.gradient_wind_ms(r_km);
        if r_km <= 1e-6 {
            return WindSample {
                speed_ms: 0.0,
                toward_deg: 0.0,
            };
        }
        let beta = center.bearing_deg(p);
        // Counter-clockwise circulation: at bearing β from the centre,
        // tangential flow is toward β - 90°; inflow rotates it further
        // toward the centre.
        let toward = beta - 90.0 - self.inflow_angle_deg;
        let toward_rad = toward.to_radians();
        let (ve, vn) = (v_rot * toward_rad.sin(), v_rot * toward_rad.cos());
        // Forward-motion asymmetry, peaking at r = Rmax.
        let asym = 2.0 * (r_km * self.rmax_km) / (r_km * r_km + self.rmax_km * self.rmax_km);
        let m_rad = self.motion_toward_deg.to_radians();
        let me = 0.6 * self.motion_speed_ms * asym * m_rad.sin();
        let mn = 0.6 * self.motion_speed_ms * asym * m_rad.cos();
        let (we, wn) = (ve + me, vn + mn);
        let speed = (we * we + wn * wn).sqrt();
        let dir = (we.atan2(wn).to_degrees() + 360.0) % 360.0;
        WindSample {
            speed_ms: speed,
            toward_deg: dir,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cat2_field() -> HollandWindField {
        HollandWindField::new(970.0, 1010.0, 30.0, 1.6, 21.4).unwrap()
    }

    #[test]
    fn validation() {
        assert!(HollandWindField::new(1010.0, 1010.0, 30.0, 1.6, 21.0).is_err());
        assert!(HollandWindField::new(970.0, 1010.0, 0.0, 1.6, 21.0).is_err());
        assert!(HollandWindField::new(970.0, 1010.0, 30.0, 5.0, 21.0).is_err());
    }

    #[test]
    fn max_wind_is_hurricane_strength_for_cat2_deficit() {
        let f = cat2_field();
        let vmax = f.max_gradient_wind_ms();
        assert!((38.0..55.0).contains(&vmax), "vmax {vmax}");
    }

    #[test]
    fn wind_peaks_near_rmax() {
        let f = cat2_field();
        let at_rmax = f.gradient_wind_ms(30.0);
        assert!(at_rmax > f.gradient_wind_ms(5.0));
        assert!(at_rmax > f.gradient_wind_ms(120.0));
        // The analytic peak of the Holland profile is at Rmax.
        assert!(at_rmax >= f.gradient_wind_ms(25.0) - 1e-9);
        assert!(at_rmax >= f.gradient_wind_ms(35.0) - 1e-9);
    }

    #[test]
    fn wind_decays_far_away() {
        let f = cat2_field();
        assert!(f.gradient_wind_ms(500.0) < 8.0);
        assert_eq!(f.gradient_wind_ms(0.0), 0.0);
    }

    #[test]
    fn pressure_profile_monotone() {
        let f = cat2_field();
        assert_eq!(f.pressure_hpa(0.0), 970.0);
        let mut prev = f.pressure_hpa(1.0);
        for r in [5.0, 15.0, 30.0, 60.0, 150.0, 400.0] {
            let p = f.pressure_hpa(r);
            assert!(p >= prev, "pressure must rise outward");
            prev = p;
        }
        assert!((f.pressure_hpa(2000.0) - 1010.0).abs() < 1.0);
    }

    #[test]
    fn circulation_is_counterclockwise() {
        let f = cat2_field();
        let center = LatLon::new(21.0, -158.0);
        // Point east of the centre: wind should be mostly northward.
        let east = center.destination(90.0, 30.0);
        let w = f.wind_at(center, east);
        let north_component = w.component_toward(0.0);
        assert!(north_component > 0.5 * w.speed_ms, "wind {w:?}");
    }

    #[test]
    fn inflow_spirals_inward() {
        let f = cat2_field();
        let center = LatLon::new(21.0, -158.0);
        let east = center.destination(90.0, 30.0);
        let w = f.wind_at(center, east);
        // Component toward the centre (bearing 270 from the point).
        assert!(w.component_toward(270.0) > 0.0, "no inflow: {w:?}");
    }

    #[test]
    fn moving_storm_is_stronger_on_the_right() {
        // Storm moving north: its right side is east.
        let f = cat2_field().with_motion(0.0, 6.0);
        let center = LatLon::new(21.0, -158.0);
        let east = f.wind_at(center, center.destination(90.0, 30.0));
        let west = f.wind_at(center, center.destination(270.0, 30.0));
        assert!(
            east.speed_ms > west.speed_ms + 3.0,
            "east {} west {}",
            east.speed_ms,
            west.speed_ms
        );
    }

    #[test]
    fn component_toward_projection() {
        let w = WindSample {
            speed_ms: 10.0,
            toward_deg: 0.0,
        };
        assert!((w.component_toward(0.0) - 10.0).abs() < 1e-9);
        assert!(w.component_toward(90.0).abs() < 1e-9);
        assert!((w.component_toward(180.0) + 10.0).abs() < 1e-9);
    }
}
