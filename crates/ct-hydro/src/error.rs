//! Error types for the hydrodynamic substrate.

use std::fmt;

/// Errors produced by hurricane/surge modelling.
#[derive(Debug, Clone, PartialEq)]
pub enum HydroError {
    /// A storm track needs at least two points to define motion.
    DegenerateTrack {
        /// Number of track points supplied.
        points: usize,
    },
    /// Track points must be strictly increasing in time.
    NonMonotonicTrack,
    /// A point of interest fell outside the DEM domain.
    PoiOutsideDomain {
        /// POI identifier for diagnostics.
        id: String,
    },
    /// A point of interest is in the sea.
    PoiInSea {
        /// POI identifier for diagnostics.
        id: String,
    },
    /// Invalid physical parameter (non-finite or out of range).
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
    /// Ensemble configuration requested zero realizations.
    EmptyEnsemble,
    /// The solver became unstable (non-finite state detected).
    SolverDiverged {
        /// Simulation time (s) at which divergence was detected.
        at_time_s: f64,
    },
    /// An underlying geospatial error.
    Geo(ct_geo::GeoError),
    /// An artifact-store failure while loading or saving a cached
    /// surge envelope.
    Store(ct_store::StoreError),
}

impl fmt::Display for HydroError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HydroError::DegenerateTrack { points } => {
                write!(f, "storm track needs >= 2 points, got {points}")
            }
            HydroError::NonMonotonicTrack => {
                write!(f, "storm track times must be strictly increasing")
            }
            HydroError::PoiOutsideDomain { id } => {
                write!(f, "point of interest '{id}' is outside the DEM domain")
            }
            HydroError::PoiInSea { id } => {
                write!(f, "point of interest '{id}' is located in the sea")
            }
            HydroError::InvalidParameter { name, value } => {
                write!(f, "invalid parameter {name} = {value}")
            }
            HydroError::EmptyEnsemble => write!(f, "ensemble must have >= 1 realization"),
            HydroError::SolverDiverged { at_time_s } => {
                write!(f, "shallow-water solver diverged at t = {at_time_s} s")
            }
            HydroError::Geo(e) => write!(f, "geospatial error: {e}"),
            HydroError::Store(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for HydroError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HydroError::Geo(e) => Some(e),
            HydroError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ct_geo::GeoError> for HydroError {
    fn from(e: ct_geo::GeoError) -> Self {
        HydroError::Geo(e)
    }
}

impl From<ct_store::StoreError> for HydroError {
    fn from(e: ct_store::StoreError) -> Self {
        HydroError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty_and_source_chains() {
        use std::error::Error;
        let e = HydroError::Geo(ct_geo::GeoError::EmptyGrid);
        assert!(!e.to_string().is_empty());
        assert!(e.source().is_some());
        let e = HydroError::EmptyEnsemble;
        assert!(e.source().is_none());
        assert!(!e.to_string().is_empty());
    }
}
