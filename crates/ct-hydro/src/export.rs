//! Plain-text export of hazard ensembles.

use crate::realization::RealizationSet;
use std::fmt::Write as _;

/// Renders the per-asset peak inundation matrix as CSV: one row per
/// realization, one column per POI, preceded by the tide and peak
/// station surge diagnostics.
///
/// Header: `realization,tide_m,max_station_surge_m,<poi ids...>`.
pub fn realizations_to_csv(set: &RealizationSet) -> String {
    let mut out = String::from("realization,tide_m,max_station_surge_m");
    for poi in set.pois() {
        out.push(',');
        out.push_str(&poi.id);
    }
    out.push('\n');
    for r in set.realizations() {
        write!(
            out,
            "{},{:.3},{:.3}",
            r.index, r.tide_m, r.max_station_surge_m
        )
        .expect("writing to String cannot fail");
        for d in &r.inundation_m {
            write!(out, ",{d:.3}").expect("writing to String cannot fail");
        }
        out.push('\n');
    }
    out
}

/// Renders the per-asset flood *probabilities* as CSV
/// (`asset,flood_probability`).
pub fn flood_probabilities_to_csv(set: &RealizationSet) -> String {
    let mut out = String::from("asset,flood_probability\n");
    for (i, poi) in set.pois().iter().enumerate() {
        writeln!(out, "{},{:.4}", poi.id, set.flood_fraction(i))
            .expect("writing to String cannot fail");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ensemble::EnsembleConfig;
    use crate::inundation::Poi;
    use ct_geo::terrain::{synthesize_oahu, OahuTerrainConfig};
    use ct_geo::LatLon;

    fn set() -> RealizationSet {
        let dem = synthesize_oahu(&OahuTerrainConfig::default());
        let pois = vec![
            Poi::from_dem("a", LatLon::new(21.307, -157.858), &dem).unwrap(),
            Poi::from_dem("b", LatLon::new(21.356, -158.122), &dem).unwrap(),
        ];
        let cfg = EnsembleConfig {
            realizations: 5,
            ..EnsembleConfig::default()
        };
        RealizationSet::generate(&cfg, &dem, &pois).unwrap()
    }

    #[test]
    fn realization_csv_shape() {
        let s = set();
        let csv = realizations_to_csv(&s);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 6);
        assert_eq!(lines[0], "realization,tide_m,max_station_surge_m,a,b");
        assert_eq!(lines[1].split(',').count(), 5);
        assert!(lines[1].starts_with("0,"));
    }

    #[test]
    fn probability_csv_shape() {
        let s = set();
        let csv = flood_probabilities_to_csv(&s);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "asset,flood_probability");
        assert!(lines[2].starts_with("b,"));
    }
}
