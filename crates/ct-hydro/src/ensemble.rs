//! Monte-Carlo hurricane ensembles.
//!
//! The paper's input data is 1000 ADCIRC realizations of a Category 2
//! hurricane approaching Oahu along "a realistic hurricane path used by
//! emergency planners in Hawaii". We reproduce that as a seeded
//! ensemble of parametric storms: each realization perturbs the
//! planner path (cross-track offset, heading), the storm intensity
//! (central pressure deficit, radius of maximum winds, Holland B),
//! the forward speed, and the tide phase at landfall.

use crate::category::Category;
use crate::error::HydroError;
use crate::sampling::{truncated_normal, uniform};
use crate::track::StormTrack;
use crate::wind::HollandWindField;
use ct_geo::LatLon;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A fully-specified storm: track plus intensity parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StormParams {
    /// The storm-centre path.
    pub track: StormTrack,
    /// Central pressure, hPa.
    pub central_pressure_hpa: f64,
    /// Ambient pressure, hPa.
    pub ambient_pressure_hpa: f64,
    /// Radius of maximum winds, km.
    pub rmax_km: f64,
    /// Holland shape parameter.
    pub b: f64,
    /// Tide anomaly at landfall, metres (positive = high tide).
    pub tide_m: f64,
}

impl StormParams {
    /// The wind field at simulation time `t_hours`, centred at the
    /// track position with the track's translation as asymmetry.
    ///
    /// # Errors
    ///
    /// Returns [`HydroError::InvalidParameter`] if the stored
    /// parameters are unphysical (should not happen for sampled
    /// storms).
    pub fn wind_field(&self, t_hours: f64) -> Result<HollandWindField, HydroError> {
        let pos = self.track.position(t_hours);
        let (heading, speed) = self.track.motion(t_hours);
        Ok(HollandWindField::new(
            self.central_pressure_hpa,
            self.ambient_pressure_hpa,
            self.rmax_km,
            self.b,
            pos.lat,
        )?
        .with_motion(heading, speed))
    }

    /// Pressure deficit in hPa.
    pub fn pressure_deficit_hpa(&self) -> f64 {
        self.ambient_pressure_hpa - self.central_pressure_hpa
    }
}

/// Configuration of the hurricane ensemble.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnsembleConfig {
    /// Number of realizations (the paper uses 1000).
    pub realizations: usize,
    /// RNG seed; the ensemble is fully reproducible.
    pub seed: u64,
    /// Storm intensity class.
    pub category: Category,
    /// Ambient pressure, hPa.
    pub ambient_pressure_hpa: f64,
    /// Reference longitude (deg) the mean planner track passes through
    /// at the island's latitude band.
    pub base_passing_lon: f64,
    /// Reference latitude (deg) of the track anchor — the latitude
    /// band of the studied region. Defaults to Oahu's 21.35 so
    /// pre-existing configs deserialize unchanged.
    #[serde(default = "default_anchor_lat")]
    pub anchor_lat: f64,
    /// Mean cross-track offset from the base passing longitude, km
    /// (negative = further west).
    pub cross_track_mean_km: f64,
    /// Standard deviation of the cross-track offset, km.
    pub cross_track_sd_km: f64,
    /// Mean storm heading, degrees clockwise from north.
    pub heading_mean_deg: f64,
    /// Heading standard deviation, degrees.
    pub heading_sd_deg: f64,
}

impl Default for EnsembleConfig {
    fn default() -> Self {
        Self {
            realizations: 1000,
            seed: 42,
            category: Category::Cat2,
            ambient_pressure_hpa: 1010.0,
            base_passing_lon: -158.10,
            anchor_lat: default_anchor_lat(),
            cross_track_mean_km: -35.0,
            cross_track_sd_km: 95.0,
            heading_mean_deg: 5.0,
            heading_sd_deg: 12.0,
        }
    }
}

fn default_anchor_lat() -> f64 {
    21.35
}

/// A seeded sampler of [`StormParams`].
#[derive(Debug, Clone)]
pub struct TrackEnsemble {
    config: EnsembleConfig,
}

impl TrackEnsemble {
    /// Creates an ensemble sampler.
    ///
    /// # Errors
    ///
    /// Returns [`HydroError::EmptyEnsemble`] when zero realizations
    /// are requested.
    pub fn new(config: EnsembleConfig) -> Result<Self, HydroError> {
        if config.realizations == 0 {
            return Err(HydroError::EmptyEnsemble);
        }
        Ok(Self { config })
    }

    /// The configuration this ensemble samples from.
    pub fn config(&self) -> &EnsembleConfig {
        &self.config
    }

    /// Generates all storms in the ensemble, deterministically from
    /// the seed.
    pub fn generate(&self) -> Vec<StormParams> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        (0..self.config.realizations)
            .map(|_| self.sample_one(&mut rng))
            .collect()
    }

    fn sample_one(&self, rng: &mut StdRng) -> StormParams {
        let c = &self.config;
        let (dp_lo, dp_hi) = c.category.pressure_deficit_range_hpa();
        let dp_mean = (dp_lo + dp_hi) / 2.0;
        let dp_sd = (dp_hi - dp_lo) / 5.0;
        let deficit = truncated_normal(rng, dp_mean, dp_sd, dp_lo, dp_hi);
        let rmax = truncated_normal(rng, 32.0, 8.0, 18.0, 55.0);
        let b = uniform(rng, 1.25, 1.9);
        let forward = truncated_normal(rng, 6.0, 1.5, 3.5, 9.0);
        let heading = truncated_normal(
            rng,
            c.heading_mean_deg,
            c.heading_sd_deg,
            c.heading_mean_deg - 35.0,
            c.heading_mean_deg + 35.0,
        );
        let offset_km =
            c.cross_track_mean_km + c.cross_track_sd_km * crate::sampling::standard_normal(rng);
        let tide = uniform(rng, -0.25, 0.45);

        // Anchor: the point where the track crosses the region's
        // latitude band, displaced east-west by the sampled
        // cross-track offset.
        let anchor = LatLon::new(c.anchor_lat, c.base_passing_lon).destination(90.0, offset_km);
        // Back the start off 260 km along the reverse heading so the
        // storm approaches, passes, and departs within the window.
        let start = anchor.destination((heading + 180.0) % 360.0, 260.0);
        let duration = 520.0 / (forward * 3.6);
        let track = StormTrack::straight(start, heading, forward, duration)
            .expect("sampled track parameters are valid");
        StormParams {
            track,
            central_pressure_hpa: c.ambient_pressure_hpa - deficit,
            ambient_pressure_hpa: c.ambient_pressure_hpa,
            rmax_km: rmax,
            b,
            tide_m: tide,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty() {
        let cfg = EnsembleConfig {
            realizations: 0,
            ..EnsembleConfig::default()
        };
        assert!(matches!(
            TrackEnsemble::new(cfg),
            Err(HydroError::EmptyEnsemble)
        ));
    }

    #[test]
    fn deterministic_generation() {
        let cfg = EnsembleConfig {
            realizations: 20,
            ..EnsembleConfig::default()
        };
        let a = TrackEnsemble::new(cfg.clone()).unwrap().generate();
        let b = TrackEnsemble::new(cfg).unwrap().generate();
        assert_eq!(a, b);
    }

    #[test]
    fn seed_changes_storms() {
        let mut cfg = EnsembleConfig {
            realizations: 5,
            ..EnsembleConfig::default()
        };
        let a = TrackEnsemble::new(cfg.clone()).unwrap().generate();
        cfg.seed = 43;
        let b = TrackEnsemble::new(cfg).unwrap().generate();
        assert_ne!(a, b);
    }

    #[test]
    fn sampled_storms_are_cat2() {
        let cfg = EnsembleConfig {
            realizations: 50,
            ..EnsembleConfig::default()
        };
        let storms = TrackEnsemble::new(cfg).unwrap().generate();
        let (lo, hi) = Category::Cat2.pressure_deficit_range_hpa();
        for s in &storms {
            let d = s.pressure_deficit_hpa();
            assert!((lo..=hi).contains(&d), "deficit {d}");
            assert!((18.0..=55.0).contains(&s.rmax_km));
            assert!((-0.25..=0.45).contains(&s.tide_m));
        }
    }

    #[test]
    fn tracks_pass_near_the_island() {
        let cfg = EnsembleConfig {
            realizations: 100,
            ..EnsembleConfig::default()
        };
        let storms = TrackEnsemble::new(cfg).unwrap().generate();
        let island = LatLon::new(21.45, -158.0);
        let mut close = 0;
        for s in &storms {
            let (_, d) = s.track.closest_approach(island, 0.5);
            if d < 150.0 {
                close += 1;
            }
        }
        // Most storms should pass within 150 km of the island.
        assert!(close > 50, "only {close}/100 storms pass nearby");
    }

    #[test]
    fn wind_field_constructs_for_all_samples() {
        let cfg = EnsembleConfig {
            realizations: 30,
            ..EnsembleConfig::default()
        };
        for s in TrackEnsemble::new(cfg).unwrap().generate() {
            let f = s.wind_field(10.0).unwrap();
            assert!(f.max_gradient_wind_ms() > 25.0);
        }
    }
}
