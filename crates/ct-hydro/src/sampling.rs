//! Small sampling utilities built on `rand`.
//!
//! The allowed dependency set does not include `rand_distr`, so the
//! normal sampler is implemented directly via the Box-Muller
//! transform.

use rand::{Rng, RngExt};

/// Samples a standard normal via the Box-Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from the half-open (0, 1].
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples `N(mean, sd)`.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    mean + sd * standard_normal(rng)
}

/// Samples `N(mean, sd)` truncated to `[lo, hi]` by rejection, falling
/// back to clamping after 64 rejections (only reachable for extreme
/// truncation bounds).
///
/// # Panics
///
/// Panics in debug builds if `lo > hi` or `sd < 0`.
pub fn truncated_normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64, lo: f64, hi: f64) -> f64 {
    debug_assert!(lo <= hi, "truncation bounds inverted");
    debug_assert!(sd >= 0.0, "negative standard deviation");
    for _ in 0..64 {
        let x = normal(rng, mean, sd);
        if (lo..=hi).contains(&x) {
            return x;
        }
    }
    normal(rng, mean, sd).clamp(lo, hi)
}

/// Samples uniformly from `[lo, hi)`.
pub fn uniform<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    if lo == hi {
        return lo;
    }
    rng.random_range(lo..hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn truncated_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..5_000 {
            let x = truncated_normal(&mut rng, 0.0, 5.0, -1.0, 2.0);
            assert!((-1.0..=2.0).contains(&x), "out of bounds: {x}");
        }
    }

    #[test]
    fn truncated_extreme_bounds_clamp() {
        let mut rng = StdRng::seed_from_u64(13);
        // Bounds 20 sigma away: rejection will fail, clamp must kick in.
        let x = truncated_normal(&mut rng, 0.0, 1.0, 20.0, 21.0);
        assert!((20.0..=21.0).contains(&x));
    }

    #[test]
    fn uniform_bounds_and_degenerate() {
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..1_000 {
            let x = uniform(&mut rng, -2.0, 5.0);
            assert!((-2.0..5.0).contains(&x));
        }
        assert_eq!(uniform(&mut rng, 3.0, 3.0), 3.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let a: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..10).map(|_| standard_normal(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..10).map(|_| standard_normal(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
