//! Fast parametric storm-surge model.
//!
//! Computes peak surge at each coastal reference station as the sum of
//! wind setup (proportional to the square of the peak onshore wind,
//! amplified by the station's shelf factor), wave setup, the inverse
//! barometer effect, and the sampled tide. This is the model used for
//! the 1000-realization ensembles; it is cross-validated against the
//! 2-D shallow-water solver in the integration tests and benches.

use crate::ensemble::StormParams;
use crate::error::HydroError;
use crate::stations::{StationId, Stations};
use serde::{Deserialize, Serialize};

/// Tunable coefficients of the parametric surge model.
///
/// Defaults are calibrated so the Category 2 Oahu ensemble reproduces
/// the paper's ~9.5 % Honolulu control-center flooding probability
/// (see EXPERIMENTS.md for the calibration record).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SurgeCalibration {
    /// Wind-setup coefficient: metres of setup per (m/s)² of onshore
    /// wind at `shelf_factor = 1`.
    pub setup_coefficient: f64,
    /// Inverse-barometer response, metres per hPa of pressure deficit.
    pub ib_m_per_hpa: f64,
    /// E-folding distance (km) of the inverse-barometer contribution
    /// with storm closest-approach distance.
    pub ib_decay_km: f64,
    /// Breaking-wave setup as a fraction of wind setup.
    pub wave_setup_fraction: f64,
    /// Overland surge attenuation, metres of head lost per km inland.
    pub attenuation_m_per_km: f64,
    /// Time step (hours) used to scan the storm passage for the peak
    /// onshore wind.
    pub scan_step_hours: f64,
}

impl Default for SurgeCalibration {
    fn default() -> Self {
        Self {
            setup_coefficient: 1.36e-3,
            ib_m_per_hpa: 0.010,
            ib_decay_km: 150.0,
            wave_setup_fraction: 0.15,
            attenuation_m_per_km: 0.20,
            scan_step_hours: 0.5,
        }
    }
}

/// Peak surge per station for one storm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StationSurge {
    entries: Vec<(StationId, f64)>,
}

impl StationSurge {
    /// Peak water-surface elevation (m above MSL) at a station.
    pub fn get(&self, id: StationId) -> f64 {
        self.entries
            .iter()
            .find(|(s, _)| *s == id)
            .map(|(_, v)| *v)
            .expect("all stations evaluated")
    }

    /// Iterates `(station, surge_m)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (StationId, f64)> + '_ {
        self.entries.iter().copied()
    }

    /// The largest surge across stations.
    pub fn max_surge_m(&self) -> f64 {
        self.entries
            .iter()
            .map(|(_, v)| *v)
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

/// The parametric surge model: stations plus calibration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParametricSurge {
    stations: Stations,
    calibration: SurgeCalibration,
}

impl ParametricSurge {
    /// Creates the model from a station set and calibration.
    pub fn new(stations: Stations, calibration: SurgeCalibration) -> Self {
        Self {
            stations,
            calibration,
        }
    }

    /// The station set.
    pub fn stations(&self) -> &Stations {
        &self.stations
    }

    /// The calibration constants.
    pub fn calibration(&self) -> &SurgeCalibration {
        &self.calibration
    }

    /// Evaluates peak surge at every station for `storm`.
    ///
    /// # Errors
    ///
    /// Returns an error if the storm parameters are unphysical.
    pub fn station_surge(&self, storm: &StormParams) -> Result<StationSurge, HydroError> {
        let mut met: Vec<(StationId, f64)> = Vec::with_capacity(6);
        for st in self.stations.iter() {
            if st.id == StationId::PearlHarbor {
                continue; // derived below
            }
            let surge =
                self.open_coast_met_surge(storm, st.pos, st.onshore_bearing_deg)? * st.shelf_factor;
            met.push((st.id, surge));
        }
        let south = met
            .iter()
            .find(|(id, _)| *id == StationId::South)
            .map(|(_, v)| *v)
            .expect("south station evaluated");
        met.push((
            StationId::PearlHarbor,
            south * self.stations.harbor_amplification,
        ));
        let entries = met
            .into_iter()
            .map(|(id, m)| (id, m + storm.tide_m))
            .collect();
        Ok(StationSurge { entries })
    }

    /// Meteorological (wind + wave + pressure) component of surge at
    /// an open-coast point, before shelf amplification and tide.
    fn open_coast_met_surge(
        &self,
        storm: &StormParams,
        pos: ct_geo::LatLon,
        onshore_bearing_deg: f64,
    ) -> Result<f64, HydroError> {
        let cal = &self.calibration;
        let (t0, t1) = storm.track.time_span_hours();
        let mut peak_onshore: f64 = 0.0;
        let mut min_dist = f64::INFINITY;
        let mut t = t0;
        while t <= t1 {
            let center = storm.track.position(t);
            let d = center.distance_km(pos);
            min_dist = min_dist.min(d);
            // Beyond 400 km the Cat 1-5 wind contribution is negligible.
            if d < 400.0 {
                let field = storm.wind_field(t)?;
                let w = field.wind_at(center, pos);
                peak_onshore = peak_onshore.max(w.component_toward(onshore_bearing_deg));
            }
            t += cal.scan_step_hours;
        }
        let eta_wind = cal.setup_coefficient * peak_onshore * peak_onshore;
        let ib_weight = (-(min_dist / cal.ib_decay_km).powi(2)).exp();
        let eta_ib = cal.ib_m_per_hpa * storm.pressure_deficit_hpa() * ib_weight;
        Ok(eta_wind * (1.0 + cal.wave_setup_fraction) + eta_ib)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ensemble::{EnsembleConfig, TrackEnsemble};
    use crate::track::StormTrack;
    use ct_geo::terrain::{synthesize_oahu, OahuTerrainConfig};
    use ct_geo::LatLon;

    fn model() -> ParametricSurge {
        let dem = synthesize_oahu(&OahuTerrainConfig::default());
        ParametricSurge::new(Stations::from_dem(&dem), SurgeCalibration::default())
    }

    /// A storm passing just west of Oahu heading north: the worst case
    /// for the south shore (onshore winds on the right of the track).
    fn direct_hit_storm() -> StormParams {
        let track = StormTrack::straight(LatLon::new(19.2, -158.35), 5.0, 6.0, 48.0).unwrap();
        StormParams {
            track,
            central_pressure_hpa: 966.0,
            ambient_pressure_hpa: 1010.0,
            rmax_km: 35.0,
            b: 1.6,
            tide_m: 0.3,
        }
    }

    /// A storm passing far to the east.
    fn miss_storm() -> StormParams {
        let track = StormTrack::straight(LatLon::new(19.2, -155.0), 0.0, 6.0, 48.0).unwrap();
        StormParams {
            tide_m: 0.0,
            ..{
                let mut s = direct_hit_storm();
                s.track = track;
                s
            }
        }
    }

    #[test]
    fn direct_hit_floods_south_shore() {
        let m = model();
        let s = m.station_surge(&direct_hit_storm()).unwrap();
        let south = s.get(StationId::South);
        assert!(
            (2.0..8.0).contains(&south),
            "south-shore surge for a direct Cat 2 hit: {south} m"
        );
    }

    #[test]
    fn harbor_exceeds_south_station() {
        let m = model();
        let s = m.station_surge(&direct_hit_storm()).unwrap();
        assert!(s.get(StationId::PearlHarbor) > s.get(StationId::South));
    }

    #[test]
    fn west_coast_sees_less_than_south() {
        let m = model();
        let s = m.station_surge(&direct_hit_storm()).unwrap();
        assert!(
            s.get(StationId::West) < 0.6 * s.get(StationId::South),
            "west {} vs south {}",
            s.get(StationId::West),
            s.get(StationId::South)
        );
    }

    #[test]
    fn distant_storm_produces_little_surge() {
        let m = model();
        let s = m.station_surge(&miss_storm()).unwrap();
        assert!(
            s.max_surge_m() < 0.6,
            "distant storm surge {}",
            s.max_surge_m()
        );
    }

    #[test]
    fn tide_shifts_all_stations_equally() {
        let m = model();
        let mut storm = direct_hit_storm();
        let a = m.station_surge(&storm).unwrap();
        storm.tide_m += 0.2;
        let b = m.station_surge(&storm).unwrap();
        for (id, v) in a.iter() {
            assert!((b.get(id) - v - 0.2).abs() < 1e-9, "{id}");
        }
    }

    #[test]
    fn stronger_storm_higher_surge() {
        let m = model();
        let mut storm = direct_hit_storm();
        let weak = m.station_surge(&storm).unwrap().get(StationId::South);
        storm.central_pressure_hpa = 940.0; // Cat 4 deficit
        let strong = m.station_surge(&storm).unwrap().get(StationId::South);
        assert!(strong > weak + 1.0, "weak {weak} strong {strong}");
    }

    #[test]
    fn ensemble_surges_all_finite() {
        let m = model();
        let cfg = EnsembleConfig {
            realizations: 40,
            ..EnsembleConfig::default()
        };
        for storm in TrackEnsemble::new(cfg).unwrap().generate() {
            let s = m.station_surge(&storm).unwrap();
            for (id, v) in s.iter() {
                assert!(v.is_finite(), "{id} produced {v}");
                assert!(v > -1.0 && v < 15.0, "{id} produced implausible {v}");
            }
        }
    }
}
