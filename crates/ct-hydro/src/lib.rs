//! Hurricane hazard substrate: parametric cyclone wind fields, storm
//! tracks, Monte-Carlo track ensembles, storm-surge models and
//! per-asset inundation — the stand-in for the ADCIRC simulation used
//! by the paper.
//!
//! Two surge models are provided:
//!
//! * [`ParametricSurge`] — a fast wind-setup + inverse-barometer +
//!   tide estimator evaluated at coastal reference [`stations`]. This
//!   drives the 1000-realization ensembles in the case study.
//! * [`ShallowWaterSolver`] — a 2-D depth-averaged shallow-water
//!   solver with wind-stress and pressure forcing on the synthetic
//!   Oahu DEM (the closest laptop-scale equivalent of ADCIRC). It is
//!   used to cross-validate the parametric model and for the surge
//!   benches/examples.
//!
//! The pipeline output is a [`RealizationSet`]: for every sampled
//! hurricane, the peak inundation depth at every point of interest.
//! An asset *fails* when its peak inundation exceeds the paper's 0.5 m
//! switch-height threshold ([`FloodThreshold`]).
//!
//! # Example
//!
//! ```
//! use ct_geo::terrain::{synthesize_oahu, OahuTerrainConfig};
//! use ct_hydro::{EnsembleConfig, Poi, RealizationSet};
//! use ct_geo::LatLon;
//!
//! let dem = synthesize_oahu(&OahuTerrainConfig::default());
//! let pois = vec![Poi::from_dem("honolulu-cc", LatLon::new(21.307, -157.858), &dem).unwrap()];
//! let cfg = EnsembleConfig { realizations: 25, ..EnsembleConfig::default() };
//! let set = RealizationSet::generate(&cfg, &dem, &pois).unwrap();
//! assert_eq!(set.len(), 25);
//! ```

pub mod cache;
pub mod category;
pub mod ensemble;
pub mod error;
pub mod export;
pub mod inundation;
pub mod parametric;
pub mod realization;
pub mod sampling;
pub mod shoreline;
pub mod stations;
pub mod swe;
pub mod track;
pub mod wind;

/// Version of the hydro numerics baked into artifact-store content
/// addresses. Bump when a formula change makes previously cached surge
/// or inundation results stale; old records then simply go unseen.
pub const HYDRO_KERNEL_VERSION: u32 = 1;

pub use category::Category;
pub use ensemble::{EnsembleConfig, StormParams, TrackEnsemble};
pub use error::HydroError;
pub use inundation::{FloodThreshold, Poi};
pub use parametric::{ParametricSurge, SurgeCalibration};
pub use realization::{Realization, RealizationSet};
pub use stations::{Station, StationId, Stations};
pub use swe::{ShallowWaterConfig, ShallowWaterSolver, SweWorkspace};
pub use track::{StormTrack, TrackPoint};
pub use wind::{HollandWindField, WindSample};
