//! Storm tracks: the path of a cyclone centre over time.

use crate::error::HydroError;
use ct_geo::LatLon;
use serde::{Deserialize, Serialize};

/// A single fix on a storm track.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrackPoint {
    /// Hours since the start of the simulation window.
    pub t_hours: f64,
    /// Storm centre position.
    pub pos: LatLon,
}

/// A storm track: a piecewise-linear path of the cyclone centre.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StormTrack {
    points: Vec<TrackPoint>,
}

impl StormTrack {
    /// Creates a track from fixes ordered by time.
    ///
    /// # Errors
    ///
    /// Returns [`HydroError::DegenerateTrack`] for fewer than two
    /// points, or [`HydroError::NonMonotonicTrack`] when times do not
    /// strictly increase.
    pub fn new(points: Vec<TrackPoint>) -> Result<Self, HydroError> {
        if points.len() < 2 {
            return Err(HydroError::DegenerateTrack {
                points: points.len(),
            });
        }
        if points.windows(2).any(|w| w[1].t_hours <= w[0].t_hours) {
            return Err(HydroError::NonMonotonicTrack);
        }
        Ok(Self { points })
    }

    /// Builds a straight-line track from `start`, travelling toward
    /// `heading_deg` at `speed_ms` for `duration_hours`.
    ///
    /// # Errors
    ///
    /// Returns [`HydroError::InvalidParameter`] for non-positive
    /// duration or speed.
    pub fn straight(
        start: LatLon,
        heading_deg: f64,
        speed_ms: f64,
        duration_hours: f64,
    ) -> Result<Self, HydroError> {
        if duration_hours.is_nan() || duration_hours <= 0.0 {
            return Err(HydroError::InvalidParameter {
                name: "duration_hours",
                value: duration_hours,
            });
        }
        if speed_ms.is_nan() || speed_ms <= 0.0 {
            return Err(HydroError::InvalidParameter {
                name: "speed_ms",
                value: speed_ms,
            });
        }
        let total_km = speed_ms * duration_hours * 3.6;
        let end = start.destination(heading_deg, total_km);
        Self::new(vec![
            TrackPoint {
                t_hours: 0.0,
                pos: start,
            },
            TrackPoint {
                t_hours: duration_hours,
                pos: end,
            },
        ])
    }

    /// The track fixes.
    pub fn points(&self) -> &[TrackPoint] {
        &self.points
    }

    /// Start and end of the simulated window, in hours.
    pub fn time_span_hours(&self) -> (f64, f64) {
        (
            self.points.first().expect("non-empty").t_hours,
            self.points.last().expect("non-empty").t_hours,
        )
    }

    /// Interpolated storm-centre position at `t_hours`, clamped to the
    /// track's time span.
    pub fn position(&self, t_hours: f64) -> LatLon {
        let first = self.points.first().expect("non-empty");
        let last = self.points.last().expect("non-empty");
        if t_hours <= first.t_hours {
            return first.pos;
        }
        if t_hours >= last.t_hours {
            return last.pos;
        }
        for w in self.points.windows(2) {
            if t_hours <= w[1].t_hours {
                let f = (t_hours - w[0].t_hours) / (w[1].t_hours - w[0].t_hours);
                return LatLon::new(
                    w[0].pos.lat + f * (w[1].pos.lat - w[0].pos.lat),
                    w[0].pos.lon + f * (w[1].pos.lon - w[0].pos.lon),
                );
            }
        }
        last.pos
    }

    /// Storm translation at `t_hours`: `(heading toward deg, speed m/s)`.
    pub fn motion(&self, t_hours: f64) -> (f64, f64) {
        let seg = self
            .points
            .windows(2)
            .find(|w| t_hours <= w[1].t_hours)
            .unwrap_or(&self.points[self.points.len() - 2..]);
        let (a, b) = (seg[0], seg[1]);
        let dist_km = a.pos.distance_km(b.pos);
        let dt_s = (b.t_hours - a.t_hours) * 3600.0;
        let heading = a.pos.bearing_deg(b.pos);
        (heading, dist_km * 1000.0 / dt_s)
    }

    /// Closest approach of the track to `p`: `(t_hours, distance_km)`,
    /// sampled at `step_hours` resolution.
    pub fn closest_approach(&self, p: LatLon, step_hours: f64) -> (f64, f64) {
        let (t0, t1) = self.time_span_hours();
        let mut best = (t0, self.position(t0).distance_km(p));
        let mut t = t0;
        while t <= t1 {
            let d = self.position(t).distance_km(p);
            if d < best.1 {
                best = (t, d);
            }
            t += step_hours;
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_tracks() {
        assert!(matches!(
            StormTrack::new(vec![TrackPoint {
                t_hours: 0.0,
                pos: LatLon::new(20.0, -158.0)
            }]),
            Err(HydroError::DegenerateTrack { points: 1 })
        ));
        let p = |t: f64| TrackPoint {
            t_hours: t,
            pos: LatLon::new(20.0, -158.0),
        };
        assert!(matches!(
            StormTrack::new(vec![p(0.0), p(0.0)]),
            Err(HydroError::NonMonotonicTrack)
        ));
        assert!(StormTrack::straight(LatLon::new(20.0, -158.0), 0.0, 6.0, 0.0).is_err());
        assert!(StormTrack::straight(LatLon::new(20.0, -158.0), 0.0, -1.0, 24.0).is_err());
    }

    #[test]
    fn straight_track_geometry() {
        let start = LatLon::new(19.0, -158.0);
        let track = StormTrack::straight(start, 0.0, 6.0, 24.0).unwrap();
        // 6 m/s for 24 h = 518.4 km due north.
        let end = track.position(24.0);
        assert!((start.distance_km(end) - 518.4).abs() < 1.0);
        assert!(end.lat > start.lat);
        assert!((end.lon - start.lon).abs() < 0.01);
    }

    #[test]
    fn position_clamps_and_interpolates() {
        let track = StormTrack::straight(LatLon::new(19.0, -158.0), 0.0, 6.0, 24.0).unwrap();
        assert_eq!(track.position(-5.0), track.position(0.0));
        assert_eq!(track.position(50.0), track.position(24.0));
        let mid = track.position(12.0);
        assert!((mid.lat - (19.0 + (track.position(24.0).lat - 19.0) / 2.0)).abs() < 1e-9);
    }

    #[test]
    fn motion_reports_heading_and_speed() {
        let track = StormTrack::straight(LatLon::new(19.0, -158.0), 0.0, 6.0, 24.0).unwrap();
        let (heading, speed) = track.motion(12.0);
        assert!(!(1.0..=359.0).contains(&heading), "heading {heading}");
        assert!((speed - 6.0).abs() < 0.1, "speed {speed}");
    }

    #[test]
    fn closest_approach_finds_ca() {
        // Track passing due north along lon -158.3; observer at -158.0.
        let track = StormTrack::straight(LatLon::new(19.5, -158.3), 0.0, 6.0, 48.0).unwrap();
        let obs = LatLon::new(21.3, -158.0);
        let (t, d) = track.closest_approach(obs, 0.25);
        assert!(d < 40.0, "closest distance {d}");
        assert!(t > 4.0 && t < 40.0, "closest time {t}");
    }
}
