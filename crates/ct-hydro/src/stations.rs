//! Coastal reference stations used by the parametric surge model.
//!
//! The parametric model evaluates surge at a small set of named
//! shoreline stations, each characterised by its onshore direction and
//! a *shelf factor* derived from the DEM's offshore bathymetry
//! profile: broad shallow shelves amplify wind-driven setup, steep
//! drop-offs suppress it. Pearl Harbor is a *derived* station — surge
//! inside the harbor is the open-coast south-shore surge scaled by a
//! funnelling factor, which structurally couples harbor-side assets
//! (Waiau) to south-shore assets (Honolulu) exactly as the paper's
//! inundation data does.

use ct_geo::{Dem, LatLon};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a coastal reference station around Oahu.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StationId {
    /// Honolulu waterfront (open south shore).
    South,
    /// 'Ewa Beach (south shore, west of Pearl Harbor).
    Ewa,
    /// Inside Pearl Harbor (derived from [`StationId::South`]).
    PearlHarbor,
    /// Kahe Point (leeward/west coast).
    West,
    /// North shore.
    North,
    /// Windward (east) coast.
    East,
}

impl StationId {
    /// All station identifiers.
    pub const ALL: [StationId; 6] = [
        StationId::South,
        StationId::Ewa,
        StationId::PearlHarbor,
        StationId::West,
        StationId::North,
        StationId::East,
    ];
}

impl fmt::Display for StationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            StationId::South => "South (Honolulu)",
            StationId::Ewa => "Ewa",
            StationId::PearlHarbor => "Pearl Harbor",
            StationId::West => "West (Kahe)",
            StationId::North => "North Shore",
            StationId::East => "Windward",
        };
        f.write_str(name)
    }
}

/// A coastal reference station.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Station {
    /// Which station this is.
    pub id: StationId,
    /// Shoreline position of the station.
    pub pos: LatLon,
    /// Compass bearing pointing inland (degrees clockwise from north);
    /// wind blowing toward this bearing piles water onshore.
    pub onshore_bearing_deg: f64,
    /// Dimensionless surge amplification from the offshore shelf
    /// profile (1.0 = reference 30 m shelf).
    pub shelf_factor: f64,
}

/// The full set of Oahu stations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stations {
    stations: Vec<Station>,
    /// Pearl Harbor funnelling amplification applied to the south
    /// station's open-coast surge.
    pub harbor_amplification: f64,
}

/// Reference shelf depth (m) for `shelf_factor = 1`.
const REFERENCE_DEPTH_M: f64 = 30.0;
/// Range over which the offshore profile is averaged (km).
const SHELF_RANGE_KM: f64 = 4.0;

impl Stations {
    /// Builds the station set, measuring each station's shelf factor
    /// from the DEM bathymetry along its offshore normal.
    pub fn from_dem(dem: &Dem) -> Self {
        let defs: [(StationId, LatLon, f64); 5] = [
            (StationId::South, LatLon::new(21.285, -157.862), 0.0),
            (StationId::Ewa, LatLon::new(21.312, -158.012), 0.0),
            (StationId::West, LatLon::new(21.352, -158.128), 90.0),
            (StationId::North, LatLon::new(21.705, -157.982), 180.0),
            (StationId::East, LatLon::new(21.415, -157.742), 270.0),
        ];
        let mut stations: Vec<Station> = defs
            .iter()
            .map(|&(id, pos, onshore)| {
                let enu = dem.projection().to_enu(pos);
                let shore = dem.nearest_shore(enu).map(|(s, _)| s).unwrap_or(enu);
                let offshore = (onshore + 180.0) % 360.0;
                let depth = dem
                    .mean_offshore_depth(shore, offshore, SHELF_RANGE_KM)
                    .unwrap_or(REFERENCE_DEPTH_M)
                    .max(2.0);
                Station {
                    id,
                    pos,
                    onshore_bearing_deg: onshore,
                    shelf_factor: (REFERENCE_DEPTH_M / depth).sqrt().clamp(0.4, 2.5),
                }
            })
            .collect();
        // Pearl Harbor: positioned at East Loch; surge value is
        // derived, so its shelf factor mirrors the south station's.
        let south_factor = stations
            .iter()
            .find(|s| s.id == StationId::South)
            .expect("south station defined")
            .shelf_factor;
        stations.push(Station {
            id: StationId::PearlHarbor,
            pos: LatLon::new(21.370, -157.975),
            onshore_bearing_deg: 0.0,
            shelf_factor: south_factor,
        });
        Self {
            stations,
            harbor_amplification: 1.3,
        }
    }

    /// Builds a cardinal station set for an arbitrary (synthetic)
    /// region: one station at the southern-, western-, northern-, and
    /// eastern-most coastline cells, shelf factors measured from the
    /// DEM exactly as [`Stations::from_dem`] does. The Oahu-specific
    /// [`StationId::Ewa`] and [`StationId::PearlHarbor`] ids mirror
    /// the south station so [`Stations::get`] stays total over
    /// [`StationId::ALL`].
    pub fn cardinal_from_dem(dem: &Dem) -> Self {
        let coast = dem.coastline_cells();
        let origin = *dem.projection();
        let extreme = |pick: fn(&ct_geo::EnuKm, &ct_geo::EnuKm) -> bool| {
            let mut best = None;
            for c in coast {
                match best {
                    None => best = Some(*c),
                    Some(b) if pick(c, &b) => best = Some(*c),
                    Some(_) => {}
                }
            }
            best.unwrap_or(ct_geo::EnuKm::new(0.0, 0.0))
        };
        let defs: [(StationId, ct_geo::EnuKm, f64); 4] = [
            (StationId::South, extreme(|c, b| c.north < b.north), 0.0),
            (StationId::West, extreme(|c, b| c.east < b.east), 90.0),
            (StationId::North, extreme(|c, b| c.north > b.north), 180.0),
            (StationId::East, extreme(|c, b| c.east > b.east), 270.0),
        ];
        let measured: Vec<Station> = defs
            .iter()
            .map(|&(id, cell, onshore)| {
                let offshore = (onshore + 180.0) % 360.0;
                let depth = dem
                    .mean_offshore_depth(cell, offshore, SHELF_RANGE_KM)
                    .unwrap_or(REFERENCE_DEPTH_M)
                    .max(2.0);
                Station {
                    id,
                    pos: origin.to_latlon(cell),
                    onshore_bearing_deg: onshore,
                    shelf_factor: (REFERENCE_DEPTH_M / depth).sqrt().clamp(0.4, 2.5),
                }
            })
            .collect();
        let south = measured[0];
        let mut stations = vec![south];
        stations.push(Station {
            id: StationId::Ewa,
            ..south
        });
        stations.extend_from_slice(&measured[1..]);
        stations.push(Station {
            id: StationId::PearlHarbor,
            ..south
        });
        Self {
            stations,
            harbor_amplification: 1.3,
        }
    }

    /// All stations.
    pub fn iter(&self) -> impl Iterator<Item = &Station> {
        self.stations.iter()
    }

    /// Looks up a station by id.
    pub fn get(&self, id: StationId) -> &Station {
        self.stations
            .iter()
            .find(|s| s.id == id)
            .expect("all station ids are constructed")
    }

    /// The station whose position is nearest to `p` — the station a
    /// point of interest is assigned to.
    pub fn nearest(&self, p: LatLon) -> &Station {
        self.stations
            .iter()
            .min_by(|a, b| a.pos.distance_km(p).total_cmp(&b.pos.distance_km(p)))
            .expect("station list non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_geo::terrain::{synthesize_oahu, OahuTerrainConfig};

    fn stations() -> Stations {
        Stations::from_dem(&synthesize_oahu(&OahuTerrainConfig::default()))
    }

    #[test]
    fn all_ids_present() {
        let s = stations();
        for id in StationId::ALL {
            let st = s.get(id);
            assert_eq!(st.id, id);
        }
        assert_eq!(s.iter().count(), 6);
    }

    #[test]
    fn south_shelf_amplifies_west_suppresses() {
        let s = stations();
        let south = s.get(StationId::South).shelf_factor;
        let west = s.get(StationId::West).shelf_factor;
        assert!(
            south > 1.0,
            "south shore shallow shelf should amplify, got {south}"
        );
        assert!(west < 0.9, "west steep shelf should suppress, got {west}");
        assert!(south > 1.5 * west, "south {south} vs west {west}");
    }

    #[test]
    fn harbor_mirrors_south_and_amplifies() {
        let s = stations();
        assert_eq!(
            s.get(StationId::PearlHarbor).shelf_factor,
            s.get(StationId::South).shelf_factor
        );
        assert!(s.harbor_amplification > 1.0);
    }

    #[test]
    fn nearest_assignments_match_geography() {
        let s = stations();
        // Honolulu control center -> South.
        assert_eq!(
            s.nearest(LatLon::new(21.307, -157.858)).id,
            StationId::South
        );
        // Waiau (by East Loch) -> Pearl Harbor.
        assert_eq!(
            s.nearest(LatLon::new(21.388, -157.950)).id,
            StationId::PearlHarbor
        );
        // Kahe -> West.
        assert_eq!(s.nearest(LatLon::new(21.356, -158.122)).id, StationId::West);
    }

    #[test]
    fn display_names() {
        for id in StationId::ALL {
            assert!(!id.to_string().is_empty());
        }
    }

    #[test]
    fn cardinal_stations_cover_all_ids() {
        let dem = synthesize_oahu(&OahuTerrainConfig::default());
        let s = Stations::cardinal_from_dem(&dem);
        for id in StationId::ALL {
            let st = s.get(id);
            assert_eq!(st.id, id);
            assert!((0.4..=2.5).contains(&st.shelf_factor));
        }
        // Cardinal geometry: the south station sits south of the north
        // station, the west station west of the east station.
        assert!(s.get(StationId::South).pos.lat < s.get(StationId::North).pos.lat);
        assert!(s.get(StationId::West).pos.lon < s.get(StationId::East).pos.lon);
        // Derived ids mirror the south station.
        assert_eq!(
            s.get(StationId::PearlHarbor).shelf_factor,
            s.get(StationId::South).shelf_factor
        );
    }
}
