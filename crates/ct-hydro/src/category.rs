//! Saffir-Simpson hurricane categories.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Saffir-Simpson hurricane category.
///
/// The case study in the paper simulates a **Category 2** hurricane
/// striking Oahu. Categories carry typical sustained-wind and
/// central-pressure-deficit ranges used to sample storm intensity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Category {
    /// 33-42 m/s sustained winds.
    Cat1,
    /// 43-49 m/s sustained winds (the paper's scenario).
    Cat2,
    /// 50-58 m/s sustained winds.
    Cat3,
    /// 58-70 m/s sustained winds.
    Cat4,
    /// >70 m/s sustained winds.
    Cat5,
}

impl Category {
    /// All categories, weakest first.
    pub const ALL: [Category; 5] = [
        Category::Cat1,
        Category::Cat2,
        Category::Cat3,
        Category::Cat4,
        Category::Cat5,
    ];

    /// Range of maximum sustained wind speeds (m/s) for the category.
    pub fn wind_range_ms(self) -> (f64, f64) {
        match self {
            Category::Cat1 => (33.0, 42.0),
            Category::Cat2 => (43.0, 49.0),
            Category::Cat3 => (50.0, 58.0),
            Category::Cat4 => (58.0, 70.0),
            Category::Cat5 => (70.0, 85.0),
        }
    }

    /// Typical central pressure deficit range (hPa below ambient).
    pub fn pressure_deficit_range_hpa(self) -> (f64, f64) {
        match self {
            Category::Cat1 => (20.0, 33.0),
            Category::Cat2 => (33.0, 48.0),
            Category::Cat3 => (48.0, 65.0),
            Category::Cat4 => (65.0, 90.0),
            Category::Cat5 => (90.0, 120.0),
        }
    }

    /// Classifies a maximum sustained wind speed into a category.
    /// Winds below hurricane strength return `None`.
    pub fn from_wind_ms(v: f64) -> Option<Category> {
        if v < 33.0 {
            None
        } else if v < 43.0 {
            Some(Category::Cat1)
        } else if v < 50.0 {
            Some(Category::Cat2)
        } else if v < 58.0 {
            Some(Category::Cat3)
        } else if v < 70.0 {
            Some(Category::Cat4)
        } else {
            Some(Category::Cat5)
        }
    }

    /// Numeric category (1-5).
    pub fn number(self) -> u8 {
        match self {
            Category::Cat1 => 1,
            Category::Cat2 => 2,
            Category::Cat3 => 3,
            Category::Cat4 => 4,
            Category::Cat5 => 5,
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Category {}", self.number())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_round_trips() {
        for cat in Category::ALL {
            let (lo, hi) = cat.wind_range_ms();
            let mid = (lo + hi) / 2.0;
            assert_eq!(Category::from_wind_ms(mid), Some(cat), "{cat} at {mid} m/s");
        }
    }

    #[test]
    fn sub_hurricane_is_none() {
        assert_eq!(Category::from_wind_ms(20.0), None);
        assert_eq!(Category::from_wind_ms(32.9), None);
    }

    #[test]
    fn ranges_are_ordered_and_contiguousish() {
        let mut prev_hi = 0.0;
        for cat in Category::ALL {
            let (lo, hi) = cat.wind_range_ms();
            assert!(lo < hi);
            assert!(lo >= prev_hi - 1.0, "{cat} overlaps too much");
            prev_hi = hi;
        }
    }

    #[test]
    fn pressure_deficit_increases_with_category() {
        let mut prev = 0.0;
        for cat in Category::ALL {
            let (lo, hi) = cat.pressure_deficit_range_hpa();
            assert!(lo < hi);
            assert!(lo >= prev, "{cat}");
            prev = lo;
        }
    }

    #[test]
    fn display_and_number() {
        assert_eq!(Category::Cat2.to_string(), "Category 2");
        assert_eq!(Category::Cat5.number(), 5);
    }

    #[test]
    fn ordering_matches_intensity() {
        assert!(Category::Cat1 < Category::Cat2);
        assert!(Category::Cat4 < Category::Cat5);
    }
}
