//! Hurricane realizations: per-asset peak inundation outcomes.
//!
//! A [`RealizationSet`] is the hazard input the analysis framework
//! consumes — the direct analogue of the paper's 1000 ADCIRC
//! realizations tracked at the power-asset locations.

use crate::ensemble::{EnsembleConfig, StormParams, TrackEnsemble};
use crate::error::HydroError;
use crate::inundation::{FloodThreshold, Poi};
use crate::parametric::{ParametricSurge, SurgeCalibration};
use crate::stations::{StationId, Stations};
use ct_geo::Dem;
use serde::{Deserialize, Serialize};

/// The outcome of one sampled hurricane: peak inundation depth (m) at
/// every point of interest, in POI order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Realization {
    /// Index within the ensemble.
    pub index: usize,
    /// Tide anomaly sampled for this storm (m).
    pub tide_m: f64,
    /// Largest station surge produced by this storm (diagnostics).
    pub max_station_surge_m: f64,
    /// Peak inundation depth per POI (m), parallel to the POI list.
    pub inundation_m: Vec<f64>,
}

impl Realization {
    /// Whether the POI at `poi_idx` fails under `threshold`.
    ///
    /// # Panics
    ///
    /// Panics if `poi_idx` is out of range.
    pub fn flooded(&self, poi_idx: usize, threshold: FloodThreshold) -> bool {
        threshold.is_flooded(self.inundation_m[poi_idx])
    }
}

/// A full hazard ensemble: POIs plus one [`Realization`] per storm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RealizationSet {
    pois: Vec<Poi>,
    realizations: Vec<Realization>,
    threshold: FloodThreshold,
}

impl RealizationSet {
    /// Generates the ensemble using the default parametric surge model
    /// built from `dem`.
    ///
    /// # Errors
    ///
    /// Propagates ensemble-configuration and storm-parameter errors.
    pub fn generate(config: &EnsembleConfig, dem: &Dem, pois: &[Poi]) -> Result<Self, HydroError> {
        let model = ParametricSurge::new(Stations::from_dem(dem), SurgeCalibration::default());
        Self::generate_with(config, &model, pois)
    }

    /// Generates the ensemble with an explicit surge model.
    ///
    /// # Errors
    ///
    /// Propagates ensemble-configuration and storm-parameter errors.
    pub fn generate_with(
        config: &EnsembleConfig,
        model: &ParametricSurge,
        pois: &[Poi],
    ) -> Result<Self, HydroError> {
        let storms = TrackEnsemble::new(config.clone())?.generate();
        Self::from_storms(&storms, model, pois)
    }

    /// Evaluates an explicit storm list (used by tests and by the
    /// shallow-water cross-validation, which swaps the surge model).
    ///
    /// # Errors
    ///
    /// Propagates storm-parameter errors.
    pub fn from_storms(
        storms: &[StormParams],
        model: &ParametricSurge,
        pois: &[Poi],
    ) -> Result<Self, HydroError> {
        let assignments: Vec<StationId> = pois
            .iter()
            .map(|p| {
                p.station_override
                    .unwrap_or_else(|| model.stations().nearest(p.pos).id)
            })
            .collect();
        let cal = model.calibration();
        let mut realizations = Vec::with_capacity(storms.len());
        for (index, storm) in storms.iter().enumerate() {
            let surge = model.station_surge(storm)?;
            let inundation_m: Vec<f64> = pois
                .iter()
                .zip(&assignments)
                .map(|(poi, st)| poi.inundation_m(surge.get(*st), cal))
                .collect();
            realizations.push(Realization {
                index,
                tide_m: storm.tide_m,
                max_station_surge_m: surge.max_surge_m(),
                inundation_m,
            });
        }
        Ok(Self {
            pois: pois.to_vec(),
            realizations,
            threshold: FloodThreshold::default(),
        })
    }

    /// Assembles a set from pre-computed parts (used by parallel
    /// evaluators that compute [`Realization`]s on worker threads).
    ///
    /// # Panics
    ///
    /// Panics if any realization's inundation vector length differs
    /// from the POI count.
    pub fn from_parts(pois: Vec<Poi>, realizations: Vec<Realization>) -> Self {
        for r in &realizations {
            assert_eq!(
                r.inundation_m.len(),
                pois.len(),
                "realization/POI arity mismatch"
            );
        }
        Self {
            pois,
            realizations,
            threshold: FloodThreshold::default(),
        }
    }

    /// Evaluates a single storm against the POIs (the per-storm step
    /// of [`RealizationSet::from_storms`], exposed for parallel use).
    ///
    /// # Errors
    ///
    /// Propagates storm-parameter errors.
    pub fn evaluate_storm(
        index: usize,
        storm: &StormParams,
        model: &ParametricSurge,
        pois: &[Poi],
    ) -> Result<Realization, HydroError> {
        let surge = model.station_surge(storm)?;
        let cal = model.calibration();
        let inundation_m = pois
            .iter()
            .map(|poi| {
                let st = poi
                    .station_override
                    .unwrap_or_else(|| model.stations().nearest(poi.pos).id);
                poi.inundation_m(surge.get(st), cal)
            })
            .collect();
        ct_obs::add(ct_obs::names::HYDRO_REALIZATIONS_EVALUATED, 1);
        ct_obs::add(ct_obs::names::HYDRO_POI_EVALUATIONS, pois.len() as u64);
        Ok(Realization {
            index,
            tide_m: storm.tide_m,
            max_station_surge_m: surge.max_surge_m(),
            inundation_m,
        })
    }

    /// Number of realizations.
    pub fn len(&self) -> usize {
        self.realizations.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.realizations.is_empty()
    }

    /// The tracked points of interest, in column order.
    pub fn pois(&self) -> &[Poi] {
        &self.pois
    }

    /// The realizations.
    pub fn realizations(&self) -> &[Realization] {
        &self.realizations
    }

    /// The flood threshold used by the failure queries.
    pub fn threshold(&self) -> FloodThreshold {
        self.threshold
    }

    /// Overrides the flood threshold.
    pub fn set_threshold(&mut self, threshold: FloodThreshold) {
        self.threshold = threshold;
    }

    /// Column index of a POI by id.
    pub fn poi_index(&self, id: &str) -> Option<usize> {
        self.pois.iter().position(|p| p.id == id)
    }

    /// Fraction of realizations in which the POI floods.
    ///
    /// # Panics
    ///
    /// Panics if `poi_idx` is out of range.
    pub fn flood_fraction(&self, poi_idx: usize) -> f64 {
        assert!(poi_idx < self.pois.len(), "poi index out of range");
        if self.realizations.is_empty() {
            return 0.0;
        }
        let n = self
            .realizations
            .iter()
            .filter(|r| r.flooded(poi_idx, self.threshold))
            .count();
        n as f64 / self.realizations.len() as f64
    }

    /// Per-POI failure mask for one realization.
    ///
    /// # Panics
    ///
    /// Panics if `realization_idx` is out of range.
    pub fn flooded_mask(&self, realization_idx: usize) -> Vec<bool> {
        let r = &self.realizations[realization_idx];
        (0..self.pois.len())
            .map(|i| r.flooded(i, self.threshold))
            .collect()
    }

    /// Fraction of realizations in which POI `a` floods but POI `b`
    /// does not — zero means `b` always fails together with `a`
    /// (the correlation structure the paper's siting analysis hinges
    /// on).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn exclusive_flood_fraction(&self, a: usize, b: usize) -> f64 {
        if self.realizations.is_empty() {
            return 0.0;
        }
        let n = self
            .realizations
            .iter()
            .filter(|r| r.flooded(a, self.threshold) && !r.flooded(b, self.threshold))
            .count();
        n as f64 / self.realizations.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_geo::terrain::{synthesize_oahu, OahuTerrainConfig};
    use ct_geo::LatLon;

    fn small_set() -> RealizationSet {
        let dem = synthesize_oahu(&OahuTerrainConfig::default());
        let pois = vec![
            Poi::from_dem("honolulu-cc", LatLon::new(21.307, -157.858), &dem).unwrap(),
            Poi::from_dem("kahe", LatLon::new(21.356, -158.122), &dem).unwrap(),
        ];
        let cfg = EnsembleConfig {
            realizations: 60,
            ..EnsembleConfig::default()
        };
        RealizationSet::generate(&cfg, &dem, &pois).unwrap()
    }

    #[test]
    fn shapes_and_lookup() {
        let set = small_set();
        assert_eq!(set.len(), 60);
        assert!(!set.is_empty());
        assert_eq!(set.pois().len(), 2);
        assert_eq!(set.poi_index("honolulu-cc"), Some(0));
        assert_eq!(set.poi_index("nope"), None);
        for r in set.realizations() {
            assert_eq!(r.inundation_m.len(), 2);
            for &d in &r.inundation_m {
                assert!(d >= 0.0 && d.is_finite());
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_set();
        let b = small_set();
        assert_eq!(a.realizations(), b.realizations());
    }

    #[test]
    fn kahe_floods_less_than_honolulu() {
        let set = small_set();
        let h = set.flood_fraction(0);
        let k = set.flood_fraction(1);
        assert!(
            k <= h,
            "kahe {k} should flood no more often than honolulu {h}"
        );
        assert_eq!(k, 0.0, "elevated Kahe should never flood, got {k}");
    }

    #[test]
    fn mask_matches_flood_fraction() {
        let set = small_set();
        let mut count = 0;
        for i in 0..set.len() {
            if set.flooded_mask(i)[0] {
                count += 1;
            }
        }
        assert!((set.flood_fraction(0) - count as f64 / set.len() as f64).abs() < 1e-12);
    }

    #[test]
    fn threshold_override_changes_fractions() {
        let mut set = small_set();
        let base = set.flood_fraction(0);
        set.set_threshold(FloodThreshold::new(0.0).unwrap());
        let generous = set.flood_fraction(0);
        assert!(generous >= base);
    }

    #[test]
    fn exclusive_flood_fraction_bounds() {
        let set = small_set();
        let x = set.exclusive_flood_fraction(0, 1);
        assert!((0.0..=1.0).contains(&x));
        // Kahe never floods, so "honolulu floods and kahe doesn't" is
        // exactly honolulu's flood fraction.
        assert!((x - set.flood_fraction(0)).abs() < 1e-12);
    }
}
