//! Content-addressed caching for shallow-water surge envelopes.
//!
//! A [`SurgeOutcome`] is by far the most expensive artifact in the
//! workspace (thousands of solver steps per storm), and it is a pure
//! function of the solver's bed/config/projection and the storm
//! parameters. [`ShallowWaterSolver::run_cached`] keys the outcome by
//! a stable hash of exactly those inputs (plus
//! [`crate::HYDRO_KERNEL_VERSION`], so numerics changes invalidate by
//! construction) and round-trips it through any
//! [`ct_store::StoreBackend`] bit-exactly — `f64` fields travel as raw bit patterns, never
//! through text formatting.

use crate::ensemble::StormParams;
use crate::error::HydroError;
use crate::swe::{ShallowWaterSolver, SurgeOutcome, SweWorkspace};
use ct_geo::{EnuKm, Grid};
use ct_store::{Digest, StableHasher, StoreBackend};

impl ShallowWaterSolver {
    /// The content address of this solver's outcome for `storm`:
    /// a stable hash of the solver configuration, the (resampled) bed
    /// grid, the projection, the full storm description, and the
    /// hydro kernel version. Two solvers that would produce the same
    /// envelope produce the same key, regardless of how they were
    /// constructed.
    pub fn storm_key(&self, storm: &StormParams) -> Digest {
        let mut h = StableHasher::new();
        h.write_str("ct-hydro/swe-envelope");
        h.write_u32(crate::HYDRO_KERNEL_VERSION);

        let c = self.config();
        h.write_f64(c.cell_km);
        h.write_f64(c.cfl);
        h.write_f64(c.forcing_update_minutes);
        h.write_f64(c.manning_n);
        h.write_f64(c.dry_tolerance_m);
        h.write_f64(c.max_depth_m);
        h.write_f64(c.window_before_hours);
        h.write_f64(c.window_after_hours);

        hash_grid(&mut h, self.bed());
        let origin = self.projection().origin();
        h.write_f64(origin.lat);
        h.write_f64(origin.lon);

        let points = storm.track.points();
        h.write_usize(points.len());
        for p in points {
            h.write_f64(p.t_hours);
            h.write_f64(p.pos.lat);
            h.write_f64(p.pos.lon);
        }
        h.write_f64(storm.central_pressure_hpa);
        h.write_f64(storm.ambient_pressure_hpa);
        h.write_f64(storm.rmax_km);
        h.write_f64(storm.b);
        h.write_f64(storm.tide_m);
        h.finish()
    }

    /// [`ShallowWaterSolver::run_with_workspace`] through an artifact
    /// store: a stored envelope is returned bit-exactly without
    /// touching the solver; otherwise the storm is simulated and the
    /// envelope written back. A record that passes the store's frame
    /// checksum but fails the payload codec is invalidated and
    /// recomputed, so the cache can only degrade to recompute.
    ///
    /// Store I/O failure *also* degrades rather than aborts: a failed
    /// read falls through to a fresh solve and a failed write-back is
    /// dropped, each counted as `store.degraded` — the cache can slow
    /// a run down, never kill it. The `hydro.cache.get` /
    /// `hydro.cache.put` failpoints ([`ct_store::faults`]) sit on
    /// those two paths.
    ///
    /// # Errors
    ///
    /// Returns [`HydroError::SolverDiverged`] from a fresh simulation;
    /// store failures never surface.
    pub fn run_cached(
        &self,
        store: &dyn StoreBackend,
        ws: &mut SweWorkspace,
        storm: &StormParams,
    ) -> Result<SurgeOutcome, HydroError> {
        use ct_store::faults::sites;

        let key = self.storm_key(storm);
        // An injected fault at the cache-read site stands in for the
        // whole read failing, whatever the kind.
        let cached = if store.injected_fault(sites::HYDRO_CACHE_GET).is_some() {
            Err(())
        } else {
            store.get(&key).map_err(|_| ())
        };
        match cached {
            Ok(Some(bytes)) => match decode_surge_outcome(&bytes) {
                Some(outcome) => return Ok(outcome),
                None => {
                    if store.invalidate(&key).is_err() {
                        store.note_degraded();
                    }
                }
            },
            Ok(None) => {}
            Err(()) => store.note_degraded(),
        }
        let outcome = self.run_with_workspace(ws, storm)?;
        let written = if store.injected_fault(sites::HYDRO_CACHE_PUT).is_some() {
            Err(())
        } else {
            store
                .put(&key, &encode_surge_outcome(&outcome))
                .map_err(|_| ())
        };
        if written.is_err() {
            store.note_degraded();
        }
        Ok(outcome)
    }
}

fn hash_grid(h: &mut StableHasher, g: &Grid<f64>) {
    h.write_usize(g.cols());
    h.write_usize(g.rows());
    h.write_f64(g.origin().east);
    h.write_f64(g.origin().north);
    h.write_f64(g.cell_km());
    h.write_f64_slice(g.as_slice());
}

/// Encodes a [`SurgeOutcome`] as a store payload: the two grids
/// (dims, origin, cell size, then cell values as `f64` bit patterns),
/// followed by `steps`, `dt_s`, and `max_speed_ms`.
pub fn encode_surge_outcome(outcome: &SurgeOutcome) -> Vec<u8> {
    let mut out = Vec::new();
    encode_grid(&mut out, &outcome.max_eta);
    encode_grid(&mut out, &outcome.bed);
    out.extend_from_slice(&(outcome.steps as u64).to_le_bytes());
    out.extend_from_slice(&outcome.dt_s.to_bits().to_le_bytes());
    out.extend_from_slice(&outcome.max_speed_ms.to_bits().to_le_bytes());
    out
}

/// Decodes a payload written by [`encode_surge_outcome`]. Returns
/// `None` on any shape mismatch (truncation, trailing bytes, zero or
/// absurd dimensions) — the caller treats that as a miss.
pub fn decode_surge_outcome(bytes: &[u8]) -> Option<SurgeOutcome> {
    let mut r = Reader { bytes, pos: 0 };
    let max_eta = decode_grid(&mut r)?;
    let bed = decode_grid(&mut r)?;
    let steps = usize::try_from(r.u64()?).ok()?;
    let dt_s = r.f64()?;
    let max_speed_ms = r.f64()?;
    if r.pos != r.bytes.len() {
        return None;
    }
    Some(SurgeOutcome {
        max_eta,
        bed,
        steps,
        dt_s,
        max_speed_ms,
    })
}

fn encode_grid(out: &mut Vec<u8>, g: &Grid<f64>) {
    out.extend_from_slice(&(g.cols() as u64).to_le_bytes());
    out.extend_from_slice(&(g.rows() as u64).to_le_bytes());
    out.extend_from_slice(&g.origin().east.to_bits().to_le_bytes());
    out.extend_from_slice(&g.origin().north.to_bits().to_le_bytes());
    out.extend_from_slice(&g.cell_km().to_bits().to_le_bytes());
    for &v in g.as_slice() {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
}

fn decode_grid(r: &mut Reader<'_>) -> Option<Grid<f64>> {
    let cols = usize::try_from(r.u64()?).ok()?;
    let rows = usize::try_from(r.u64()?).ok()?;
    let east = r.f64()?;
    let north = r.f64()?;
    let cell_km = r.f64()?;
    // Reject sizes the remaining payload cannot possibly hold before
    // allocating anything.
    let cells = cols.checked_mul(rows)?;
    if cells == 0 || cells > (r.bytes.len() - r.pos) / 8 {
        return None;
    }
    let mut g = Grid::filled(cols, rows, EnuKm::new(east, north), cell_km, 0.0).ok()?;
    for slot in g.as_mut_slice() {
        *slot = r.f64()?;
    }
    Some(g)
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn u64(&mut self) -> Option<u64> {
        let end = self.pos.checked_add(8)?;
        let v = u64::from_le_bytes(self.bytes.get(self.pos..end)?.try_into().ok()?);
        self.pos = end;
        Some(v)
    }

    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ensemble::{EnsembleConfig, TrackEnsemble};
    use crate::swe::ShallowWaterConfig;
    use ct_geo::terrain::{synthesize_oahu, OahuTerrainConfig};
    use ct_store::Store;

    fn solver_and_storm() -> (ShallowWaterSolver, StormParams) {
        let dem = synthesize_oahu(&OahuTerrainConfig::default());
        let config = ShallowWaterConfig {
            cell_km: 6.0, // coarse: keep the test solve fast
            ..ShallowWaterConfig::default()
        };
        let solver = ShallowWaterSolver::new(&dem, config);
        let storms = TrackEnsemble::new(EnsembleConfig {
            realizations: 2,
            ..EnsembleConfig::default()
        })
        .unwrap()
        .generate();
        (solver, storms[0].clone())
    }

    fn scratch_store(tag: &str) -> (std::path::PathBuf, Store) {
        let root = std::env::temp_dir().join(format!(
            "ct-hydro-cache-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&root).ok();
        let store = Store::open(&root).unwrap();
        (root, store)
    }

    #[test]
    fn storm_key_separates_inputs() {
        let (solver, storm) = solver_and_storm();
        let base = solver.storm_key(&storm);
        assert_eq!(solver.storm_key(&storm), base, "key must be stable");

        let mut tweaked = storm.clone();
        tweaked.central_pressure_hpa += 1.0;
        assert_ne!(solver.storm_key(&tweaked), base);

        let dem = synthesize_oahu(&OahuTerrainConfig::default());
        let other_solver = ShallowWaterSolver::new(
            &dem,
            ShallowWaterConfig {
                cell_km: 6.0,
                manning_n: 0.05,
                ..ShallowWaterConfig::default()
            },
        );
        assert_ne!(other_solver.storm_key(&storm), base);
    }

    #[test]
    fn run_cached_round_trips_bit_exactly() {
        let (solver, storm) = solver_and_storm();
        let (root, store) = scratch_store("roundtrip");
        let mut ws = SweWorkspace::new();
        let fresh = solver.run_cached(&store, &mut ws, &storm).unwrap();
        let cached = solver.run_cached(&store, &mut ws, &storm).unwrap();
        assert_eq!(fresh.steps, cached.steps);
        assert_eq!(fresh.dt_s.to_bits(), cached.dt_s.to_bits());
        assert_eq!(fresh.max_speed_ms.to_bits(), cached.max_speed_ms.to_bits());
        for (a, b) in fresh
            .max_eta
            .as_slice()
            .iter()
            .zip(cached.max_eta.as_slice())
        {
            // NaN marks never-wetted cells; bit comparison covers it.
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(fresh.bed.as_slice(), cached.bed.as_slice());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn undecodable_record_is_invalidated_and_recomputed() {
        let (solver, storm) = solver_and_storm();
        let (root, store) = scratch_store("heal");
        let key = solver.storm_key(&storm);
        // A record that is *framed* correctly but whose payload is not
        // a surge outcome: the frame checksum passes, the codec fails,
        // and run_cached must fall through to a real solve.
        store.put(&key, b"not an outcome").unwrap();
        let mut ws = SweWorkspace::new();
        let outcome = solver.run_cached(&store, &mut ws, &storm).unwrap();
        assert!(outcome.steps > 0);
        // The bad record was replaced: a second call decodes cleanly.
        let again = solver.run_cached(&store, &mut ws, &storm).unwrap();
        assert_eq!(outcome.steps, again.steps);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn run_cached_degrades_on_injected_cache_faults() {
        use ct_store::faults::sites;
        use ct_store::{FaultKind, FaultRegistry, FaultSpec};
        use std::sync::Arc;

        let (solver, storm) = solver_and_storm();
        let root = std::env::temp_dir().join(format!(
            "ct-hydro-cache-faults-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&root).ok();
        let registry = Arc::new(ct_obs::Registry::new());
        let faults = Arc::new(FaultRegistry::with_obs(Arc::clone(&registry)));
        let store =
            Store::open_with_faults(&root, Arc::clone(&registry), Arc::clone(&faults)).unwrap();
        let mut ws = SweWorkspace::new();

        // Write-back fails: the outcome must still come back, with the
        // record silently dropped.
        faults.arm(FaultSpec::every(sites::HYDRO_CACHE_PUT, 1, FaultKind::Io));
        let fresh = solver.run_cached(&store, &mut ws, &storm).unwrap();
        assert_eq!(store.get(&solver.storm_key(&storm)).unwrap(), None);

        // Cache read fails: degrade to a fresh solve, bit-identical to
        // the first; this time the write-back lands.
        faults.disarm_all();
        faults.arm(FaultSpec::every(sites::HYDRO_CACHE_GET, 1, FaultKind::Io));
        let resolved = solver.run_cached(&store, &mut ws, &storm).unwrap();
        assert_eq!(fresh.steps, resolved.steps);
        assert_eq!(
            fresh.max_speed_ms.to_bits(),
            resolved.max_speed_ms.to_bits()
        );

        // Faults gone: the record written under fire is a clean hit.
        faults.disarm_all();
        let warm = solver.run_cached(&store, &mut ws, &storm).unwrap();
        assert_eq!(fresh.dt_s.to_bits(), warm.dt_s.to_bits());

        let snap = registry.snapshot();
        assert_eq!(snap.counter(ct_obs::names::STORE_DEGRADED), Some(2));
        assert_eq!(snap.counter(ct_obs::names::FAULTS_FIRED), Some(2));
        assert_eq!(snap.counter(ct_obs::names::STORE_HITS), Some(1));
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn surge_outcome_codec_rejects_malformed_payloads() {
        let (solver, storm) = solver_and_storm();
        let outcome = solver.run(&storm).unwrap();
        let bytes = encode_surge_outcome(&outcome);
        assert!(decode_surge_outcome(&bytes).is_some());
        assert!(decode_surge_outcome(&bytes[..bytes.len() - 1]).is_none());
        let mut long = bytes.clone();
        long.push(0);
        assert!(decode_surge_outcome(&long).is_none());
        assert!(decode_surge_outcome(&[]).is_none());
        // Absurd dimension claims must be rejected before allocation.
        let mut huge = bytes;
        huge[..8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode_surge_outcome(&huge).is_none());
    }
}
