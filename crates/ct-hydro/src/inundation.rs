//! Points of interest and the flood-failure criterion.

use crate::error::HydroError;
use crate::parametric::SurgeCalibration;
use crate::stations::StationId;
use ct_geo::{Dem, LatLon};
use serde::{Deserialize, Serialize};

/// The paper's asset-failure criterion: equipment fails when peak
/// inundation exceeds the typical switch height in plants and
/// substations — 0.5 m (2 ft).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FloodThreshold {
    depth_m: f64,
}

impl FloodThreshold {
    /// Creates a threshold at the given depth (m).
    ///
    /// # Errors
    ///
    /// Returns [`HydroError::InvalidParameter`] for negative or
    /// non-finite depths.
    pub fn new(depth_m: f64) -> Result<Self, HydroError> {
        if !depth_m.is_finite() || depth_m < 0.0 {
            return Err(HydroError::InvalidParameter {
                name: "flood threshold depth",
                value: depth_m,
            });
        }
        Ok(Self { depth_m })
    }

    /// The threshold depth in metres.
    pub fn depth_m(&self) -> f64 {
        self.depth_m
    }

    /// Whether an inundation depth constitutes asset failure.
    pub fn is_flooded(&self, inundation_m: f64) -> bool {
        inundation_m > self.depth_m
    }
}

impl Default for FloodThreshold {
    /// The paper's 0.5 m switch-height threshold.
    fn default() -> Self {
        Self { depth_m: 0.5 }
    }
}

/// A point of interest: a location whose peak inundation is tracked
/// per realization (in the case study, every SCADA control site).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Poi {
    /// Stable identifier (e.g. `"honolulu-cc"`).
    pub id: String,
    /// Geographic position.
    pub pos: LatLon,
    /// Ground elevation, metres above MSL.
    pub ground_elevation_m: f64,
    /// Distance to the nearest coastline, km (surge attenuates over
    /// this distance).
    pub shore_distance_km: f64,
    /// Explicit coastal-station assignment. `None` uses the nearest
    /// station; hydraulically-coupled assets (e.g. a harbor-side plant
    /// that floods as part of the adjacent coastal plain) can pin a
    /// station instead.
    pub station_override: Option<StationId>,
}

impl Poi {
    /// Creates a POI by sampling elevation and shore distance from a
    /// DEM.
    ///
    /// # Errors
    ///
    /// Returns [`HydroError::PoiOutsideDomain`] when the point is
    /// outside the raster, or [`HydroError::PoiInSea`] when it falls
    /// in the water.
    pub fn from_dem(id: impl Into<String>, pos: LatLon, dem: &Dem) -> Result<Self, HydroError> {
        let id = id.into();
        let elev = dem
            .elevation_at(pos)
            .map_err(|_| HydroError::PoiOutsideDomain { id: id.clone() })?;
        if elev <= 0.0 {
            return Err(HydroError::PoiInSea { id });
        }
        let shore = dem
            .distance_to_shore_km(pos)
            .map_err(|_| HydroError::PoiOutsideDomain { id: id.clone() })?;
        Ok(Self {
            id,
            pos,
            ground_elevation_m: elev,
            shore_distance_km: shore,
            station_override: None,
        })
    }

    /// Creates a POI with explicit elevation and shore distance
    /// (useful for tests and hypothetical siting studies).
    pub fn with_site_profile(
        id: impl Into<String>,
        pos: LatLon,
        ground_elevation_m: f64,
        shore_distance_km: f64,
    ) -> Self {
        Self {
            id: id.into(),
            pos,
            ground_elevation_m,
            shore_distance_km,
            station_override: None,
        }
    }

    /// Pins this POI to a specific coastal station instead of the
    /// nearest one.
    pub fn with_station(mut self, station: StationId) -> Self {
        self.station_override = Some(station);
        self
    }

    /// Inundation depth (m) at this POI given the peak water-surface
    /// elevation at its assigned coastal station.
    ///
    /// The surge head attenuates linearly with distance inland, then
    /// floods whatever is left above the ground elevation. Never
    /// negative.
    pub fn inundation_m(&self, station_surge_m: f64, cal: &SurgeCalibration) -> f64 {
        let at_site = station_surge_m - cal.attenuation_m_per_km * self.shore_distance_km;
        (at_site - self.ground_elevation_m).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_geo::terrain::{synthesize_oahu, OahuTerrainConfig};

    #[test]
    fn threshold_validation_and_default() {
        assert!(FloodThreshold::new(-0.1).is_err());
        assert!(FloodThreshold::new(f64::NAN).is_err());
        let t = FloodThreshold::default();
        assert_eq!(t.depth_m(), 0.5);
        assert!(t.is_flooded(0.51));
        assert!(!t.is_flooded(0.5));
        assert!(!t.is_flooded(0.0));
    }

    #[test]
    fn poi_from_dem_reads_terrain() {
        let dem = synthesize_oahu(&OahuTerrainConfig::default());
        let poi = Poi::from_dem("honolulu-cc", LatLon::new(21.307, -157.858), &dem).unwrap();
        assert!(poi.ground_elevation_m > 0.5);
        assert!(poi.shore_distance_km > 0.5);
    }

    #[test]
    fn poi_in_sea_rejected() {
        let dem = synthesize_oahu(&OahuTerrainConfig::default());
        let err = Poi::from_dem("boat", LatLon::new(21.15, -158.0), &dem).unwrap_err();
        assert!(matches!(err, HydroError::PoiInSea { .. }));
    }

    #[test]
    fn poi_outside_domain_rejected() {
        let dem = synthesize_oahu(&OahuTerrainConfig::default());
        let err = Poi::from_dem("maui", LatLon::new(20.8, -156.3), &dem).unwrap_err();
        assert!(matches!(err, HydroError::PoiOutsideDomain { .. }));
    }

    #[test]
    fn inundation_attenuates_inland() {
        let cal = SurgeCalibration::default();
        let near = Poi::with_site_profile("a", LatLon::new(21.3, -157.9), 1.0, 0.2);
        let far = Poi::with_site_profile("b", LatLon::new(21.3, -157.9), 1.0, 4.0);
        let surge = 3.0;
        assert!(near.inundation_m(surge, &cal) > far.inundation_m(surge, &cal));
    }

    #[test]
    fn inundation_never_negative() {
        let cal = SurgeCalibration::default();
        let high = Poi::with_site_profile("ridge", LatLon::new(21.4, -158.1), 300.0, 5.0);
        assert_eq!(high.inundation_m(4.0, &cal), 0.0);
        assert_eq!(high.inundation_m(-1.0, &cal), 0.0);
    }

    #[test]
    fn elevation_dominates_flooding() {
        let cal = SurgeCalibration::default();
        let low = Poi::with_site_profile("low", LatLon::new(21.3, -157.9), 1.0, 1.0);
        let high = Poi::with_site_profile("high", LatLon::new(21.3, -157.9), 9.0, 1.0);
        let surge = 3.0;
        assert!(FloodThreshold::default().is_flooded(low.inundation_m(surge, &cal)));
        assert!(!FloodThreshold::default().is_flooded(high.inundation_m(surge, &cal)));
    }
}
