//! Intrusion-tolerant quorum replication (configs `6`, `6-6`, `6+6+6`).
//!
//! A simplified leader-based state-machine-replication protocol in the
//! spirit of the Prime/Spire systems the paper's intrusion-tolerant
//! configurations are built on:
//!
//! * `n = 3f + 2k + 1` replicas tolerate `f` intrusions while one
//!   replica is down for proactive recovery (`k`). The commit quorum is
//!   `Q = ⌊(n + f) / 2⌋ + 1`, so any two quorums intersect in more
//!   than `f` replicas — a single compromised replica cannot cause
//!   conflicting commits, while `f + 1` compromises can (the paper's
//!   gray state).
//! * Leadership rotates **striped across sites** on view changes, so a
//!   site isolation stalls the protocol for at most one view-change
//!   timeout in multi-site deployments (config `6+6+6`'s "no downtime"
//!   property).
//! * Cold-backup groups (config `6-6`) monitor heartbeats from the
//!   active site and activate as an independent replica group after an
//!   activation delay — the paper's orange state.
//! * Byzantine replicas equivocate when leading (proposing different
//!   requests for the same slot to different halves of the group),
//!   vote for everything they see, and send fabricated replies to
//!   clients.

use crate::msg::{correct_digest, fake_request, ProtocolMsg, ReqId};
use ct_simnet::{Actor, Ctx, NodeId, SimTime};
use std::collections::{BTreeMap, BTreeSet};

const TIMER_TICK: u64 = 1;
const TIMER_ACTIVATE: u64 = 2;
const TIMER_RECOVERY_START: u64 = 3;
const TIMER_RECOVERY_END: u64 = 4;

/// Tick cadence for leaders/heartbeats/timeout checks.
const TICK: SimTime = SimTime(500_000);
/// Pending-request age that triggers a view change.
const VC_TIMEOUT: SimTime = SimTime(1_500_000);
/// Heartbeat silence that makes a cold group consider the active site
/// dead.
const COLD_DETECT: SimTime = SimTime(2_000_000);

/// Cold-backup behaviour attached to replicas in a backup site.
#[derive(Debug, Clone, PartialEq)]
pub struct ColdConfig {
    /// Delay between detecting active-site death and taking over.
    pub activation_delay: SimTime,
}

/// Proactive recovery schedule for one replica.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoverySchedule {
    /// When this replica's first recovery window opens.
    pub start: SimTime,
    /// How long a recovery takes (the replica is silent meanwhile).
    pub duration: SimTime,
}

#[derive(Debug, Clone)]
struct PendingReq {
    client: Option<NodeId>,
    since: SimTime,
}

/// One replica of an intrusion-tolerant group.
#[derive(Debug, Clone)]
pub struct Replica {
    /// My index within the group (position in `peers`).
    pub group_index: usize,
    /// The replica group, in index order (includes self).
    pub peers: Vec<NodeId>,
    /// Site index of each group member (for striped leader rotation).
    pub peer_sites: Vec<usize>,
    /// Maximum tolerated intrusions.
    pub f: usize,
    /// Whether this replica has been compromised (Byzantine).
    pub byzantine: bool,
    /// Whether this replica participates in the protocol (cold-backup
    /// replicas start inactive).
    pub active: bool,
    /// Cold-backup behaviour, for inactive backup groups.
    pub cold: Option<ColdConfig>,
    /// Cold replicas send nothing; active replicas heartbeat these
    /// nodes so backups can detect active-site death.
    pub heartbeat_targets: Vec<NodeId>,
    /// Proactive recovery schedule (active replicas only).
    pub recovery: Option<RecoverySchedule>,

    view: u64,
    next_seq: u64,
    recovering: bool,
    pending: BTreeMap<ReqId, PendingReq>,
    /// Requests proposed in the current view (leader bookkeeping).
    assigned: BTreeMap<ReqId, u64>,
    /// The proposal this replica accepted per `(view, seq)` slot.
    slots: BTreeMap<(u64, u64), ReqId>,
    /// Vote tallies per `(view, seq, req)`.
    votes: BTreeMap<(u64, u64, ReqId), BTreeSet<usize>>,
    /// Votes this replica already broadcast (dedup, incl. Byzantine).
    my_votes: BTreeSet<(u64, u64, ReqId)>,
    /// Committed slot → request (the replicated log; safety checks
    /// compare these across the group).
    pub committed_slots: BTreeMap<(u64, u64), ReqId>,
    /// First-commit time per request.
    pub committed_reqs: BTreeMap<ReqId, SimTime>,
    vc_votes: BTreeMap<u64, BTreeSet<usize>>,
    last_vc_sent: SimTime,
    last_primary_heard: SimTime,
    activation_scheduled: bool,
}

impl Replica {
    /// Creates a replica.
    ///
    /// # Panics
    ///
    /// Panics if `peers` and `peer_sites` disagree in length or
    /// `group_index` is out of range.
    pub fn new(group_index: usize, peers: Vec<NodeId>, peer_sites: Vec<usize>, f: usize) -> Self {
        assert_eq!(peers.len(), peer_sites.len(), "peer/site length mismatch");
        assert!(group_index < peers.len(), "group index out of range");
        Self {
            group_index,
            peers,
            peer_sites,
            f,
            byzantine: false,
            active: true,
            cold: None,
            heartbeat_targets: Vec::new(),
            recovery: None,
            view: 0,
            next_seq: 0,
            recovering: false,
            pending: BTreeMap::new(),
            assigned: BTreeMap::new(),
            slots: BTreeMap::new(),
            votes: BTreeMap::new(),
            my_votes: BTreeSet::new(),
            committed_slots: BTreeMap::new(),
            committed_reqs: BTreeMap::new(),
            vc_votes: BTreeMap::new(),
            last_vc_sent: SimTime::ZERO,
            last_primary_heard: SimTime::ZERO,
            activation_scheduled: false,
        }
    }

    /// Group size.
    pub fn n(&self) -> usize {
        self.peers.len()
    }

    /// Commit quorum: `⌊(n + f) / 2⌋ + 1`.
    pub fn quorum(&self) -> usize {
        (self.n() + self.f) / 2 + 1
    }

    /// Current view.
    pub fn view(&self) -> u64 {
        self.view
    }

    /// Whether this replica is currently the leader.
    pub fn is_leader(&self) -> bool {
        self.leader_of(self.view) == self.group_index
    }

    /// Group index of the leader of `view`, striped across sites:
    /// successive views move leadership to the next site first, so a
    /// whole-site outage costs at most one view change.
    pub fn leader_of(&self, view: u64) -> usize {
        let mut site_order: Vec<usize> = self.peer_sites.clone();
        site_order.sort_unstable();
        site_order.dedup();
        let s = site_order.len() as u64;
        let site = site_order[(view % s) as usize];
        let members: Vec<usize> = (0..self.peers.len())
            .filter(|&i| self.peer_sites[i] == site)
            .collect();
        members[((view / s) % members.len() as u64) as usize]
    }

    fn peer_index(&self, node: NodeId) -> Option<usize> {
        self.peers.iter().position(|&p| p == node)
    }

    /// Leader action: order a request in the next slot.
    fn propose(&mut self, req: ReqId, ctx: &mut Ctx<'_, ProtocolMsg>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.assigned.insert(req, self.view);
        if self.byzantine {
            // Equivocate: half the group sees the real request, the
            // other half a fabricated one competing for the same slot.
            let fake = fake_request(req);
            for (i, &peer) in self.peers.iter().enumerate() {
                if peer == self.peers[self.group_index] {
                    continue;
                }
                let r = if i % 2 == 0 { req } else { fake };
                ctx.send(
                    peer,
                    ProtocolMsg::Propose {
                        view: self.view,
                        seq,
                        req: r,
                        digest: correct_digest(r),
                    },
                );
            }
            return;
        }
        let msg = ProtocolMsg::Propose {
            view: self.view,
            seq,
            req,
            digest: correct_digest(req),
        };
        ctx.broadcast(self.peers.iter().copied(), msg);
        // Handle our own proposal locally.
        self.accept_slot(self.view, seq, req, ctx);
    }

    /// Correct-replica vote: accept a proposal for an empty slot.
    fn accept_slot(&mut self, view: u64, seq: u64, req: ReqId, ctx: &mut Ctx<'_, ProtocolMsg>) {
        if self.slots.contains_key(&(view, seq)) {
            return;
        }
        self.slots.insert((view, seq), req);
        let msg = ProtocolMsg::Accept {
            view,
            seq,
            req,
            digest: correct_digest(req),
        };
        self.my_votes.insert((view, seq, req));
        ctx.broadcast(self.peers.iter().copied(), msg);
        self.tally(view, seq, req, self.group_index, ctx);
    }

    fn tally(
        &mut self,
        view: u64,
        seq: u64,
        req: ReqId,
        voter: usize,
        ctx: &mut Ctx<'_, ProtocolMsg>,
    ) {
        let votes = self.votes.entry((view, seq, req)).or_default();
        votes.insert(voter);
        if votes.len() >= self.quorum() && !self.committed_slots.contains_key(&(view, seq)) {
            self.committed_slots.insert((view, seq), req);
            if let std::collections::btree_map::Entry::Vacant(e) = self.committed_reqs.entry(req) {
                e.insert(ctx.now());
                if let Some(p) = self.pending.remove(&req) {
                    if let Some(client) = p.client {
                        ctx.send(
                            client,
                            ProtocolMsg::Reply {
                                id: req,
                                digest: correct_digest(req),
                            },
                        );
                    }
                }
            }
        }
    }

    fn adopt_view(&mut self, view: u64, ctx: &mut Ctx<'_, ProtocolMsg>) {
        if view <= self.view {
            return;
        }
        self.view = view;
        let now = ctx.now();
        for p in self.pending.values_mut() {
            p.since = now;
        }
        if self.is_leader() && self.active && !self.byzantine {
            let reqs: Vec<ReqId> = self.pending.keys().copied().collect();
            for req in reqs {
                self.propose(req, ctx);
            }
        }
    }

    fn on_tick(&mut self, ctx: &mut Ctx<'_, ProtocolMsg>) {
        let now = ctx.now();
        if self.recovering {
            return;
        }
        if !self.active {
            // Cold-backup site: watch for active-site death.
            if let Some(cold) = &self.cold {
                if !self.activation_scheduled
                    && now.saturating_sub(self.last_primary_heard) > COLD_DETECT
                {
                    self.activation_scheduled = true;
                    ctx.set_timer(cold.activation_delay, TIMER_ACTIVATE);
                }
            }
            return;
        }
        // Heartbeat the cold backups.
        ctx.broadcast(
            self.heartbeat_targets.iter().copied(),
            ProtocolMsg::Heartbeat,
        );
        // Leader duties: propose pending requests not yet assigned in
        // this view.
        if self.is_leader() && !self.byzantine {
            let due: Vec<ReqId> = self
                .pending
                .keys()
                .filter(|r| self.assigned.get(r) != Some(&self.view))
                .copied()
                .collect();
            for req in due {
                self.propose(req, ctx);
            }
        }
        // View change when requests stall.
        let stalled = self
            .pending
            .values()
            .any(|p| now.saturating_sub(p.since) > VC_TIMEOUT);
        if stalled && now.saturating_sub(self.last_vc_sent) > VC_TIMEOUT && !self.byzantine {
            let next = self.view + 1;
            self.last_vc_sent = now;
            let me = self.group_index;
            self.vc_votes.entry(next).or_default().insert(me);
            ctx.broadcast(
                self.peers.iter().copied(),
                ProtocolMsg::ViewChange { view: next },
            );
            if self.vc_votes[&next].len() > self.f {
                self.adopt_view(next, ctx);
            }
        }
    }
}

impl Actor for Replica {
    type Msg = ProtocolMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, ProtocolMsg>) {
        ctx.set_timer(TICK, TIMER_TICK);
        if self.active {
            if let Some(r) = self.recovery {
                ctx.set_timer(r.start, TIMER_RECOVERY_START);
            }
        }
        self.last_primary_heard = ctx.now();
    }

    fn on_message(&mut self, from: NodeId, msg: ProtocolMsg, ctx: &mut Ctx<'_, ProtocolMsg>) {
        if self.recovering {
            return;
        }
        if !self.active {
            if msg == ProtocolMsg::Heartbeat {
                self.last_primary_heard = ctx.now();
            }
            return;
        }
        match msg {
            ProtocolMsg::Request { id } => {
                if self.byzantine {
                    // Fabricated state, sent straight back.
                    ctx.send(
                        from,
                        ProtocolMsg::Reply {
                            id,
                            digest: correct_digest(fake_request(id)),
                        },
                    );
                }
                if let Some(t) = self.committed_reqs.get(&id).copied() {
                    let _ = t;
                    if !self.byzantine {
                        ctx.send(
                            from,
                            ProtocolMsg::Reply {
                                id,
                                digest: correct_digest(id),
                            },
                        );
                    }
                    return;
                }
                self.pending.entry(id).or_insert(PendingReq {
                    client: Some(from),
                    since: ctx.now(),
                });
                if self.is_leader() && self.assigned.get(&id) != Some(&self.view) {
                    self.propose(id, ctx);
                }
            }
            ProtocolMsg::Propose {
                view,
                seq,
                req,
                digest,
            } => {
                let Some(sender) = self.peer_index(from) else {
                    return;
                };
                if self.byzantine {
                    // Vote for anything, once.
                    if self.my_votes.insert((view, seq, req)) {
                        ctx.broadcast(
                            self.peers.iter().copied(),
                            ProtocolMsg::Accept {
                                view,
                                seq,
                                req,
                                digest,
                            },
                        );
                    }
                    return;
                }
                if digest != correct_digest(req) {
                    return; // fabricated payload
                }
                if view > self.view && self.leader_of(view) == sender {
                    self.adopt_view(view, ctx);
                }
                if view != self.view || self.leader_of(view) != sender {
                    return;
                }
                // Track the request so a stalled slot triggers a view
                // change even if the client's copy was lost.
                self.pending.entry(req).or_insert(PendingReq {
                    client: None,
                    since: ctx.now(),
                });
                self.accept_slot(view, seq, req, ctx);
            }
            ProtocolMsg::Accept {
                view,
                seq,
                req,
                digest,
            } => {
                let Some(sender) = self.peer_index(from) else {
                    return;
                };
                if self.byzantine {
                    if self.my_votes.insert((view, seq, req)) {
                        ctx.broadcast(
                            self.peers.iter().copied(),
                            ProtocolMsg::Accept {
                                view,
                                seq,
                                req,
                                digest,
                            },
                        );
                    }
                    return;
                }
                if digest != correct_digest(req) {
                    return;
                }
                self.tally(view, seq, req, sender, ctx);
            }
            ProtocolMsg::ViewChange { view } => {
                let Some(sender) = self.peer_index(from) else {
                    return;
                };
                if self.byzantine || view <= self.view {
                    return;
                }
                let votes = self.vc_votes.entry(view).or_default();
                votes.insert(sender);
                if votes.len() > self.f {
                    self.adopt_view(view, ctx);
                }
            }
            ProtocolMsg::Heartbeat => {
                self.last_primary_heard = ctx.now();
            }
            ProtocolMsg::Reply { .. } => {}
        }
    }

    fn on_timer(&mut self, id: u64, ctx: &mut Ctx<'_, ProtocolMsg>) {
        match id {
            TIMER_TICK => {
                self.on_tick(ctx);
                ctx.set_timer(TICK, TIMER_TICK);
            }
            TIMER_ACTIVATE => {
                if !self.active && ctx.now().saturating_sub(self.last_primary_heard) > COLD_DETECT {
                    self.active = true;
                }
                self.activation_scheduled = false;
            }
            TIMER_RECOVERY_START => {
                self.recovering = true;
                let d = self
                    .recovery
                    .map(|r| r.duration)
                    .unwrap_or(SimTime::from_secs(3.0));
                ctx.set_timer(d, TIMER_RECOVERY_END);
            }
            TIMER_RECOVERY_END => {
                self.recovering = false;
            }
            _ => {}
        }
    }
}

impl ct_simnet::StateHash for Replica {
    /// Hashes the protocol-relevant state: role flags, view/sequence
    /// counters, and every table keyed by request or slot. Absolute
    /// timestamps (`since`, `last_*`) are excluded per the [`StateHash`]
    /// convention — under zero-jitter exploration they are determined by
    /// the delivery history that is already hashed.
    ///
    /// [`StateHash`]: ct_simnet::StateHash
    fn state_hash(&self, h: &mut ct_store::StableHasher) {
        h.write_usize(self.group_index);
        h.write_bool(self.byzantine);
        h.write_bool(self.active);
        h.write_bool(self.recovering);
        h.write_bool(self.activation_scheduled);
        h.write_u64(self.view);
        h.write_u64(self.next_seq);
        h.write_usize(self.pending.len());
        for (req, p) in &self.pending {
            h.write_u64(*req);
            h.write_bool(p.client.is_some());
        }
        h.write_usize(self.assigned.len());
        for (req, seq) in &self.assigned {
            h.write_u64(*req);
            h.write_u64(*seq);
        }
        h.write_usize(self.slots.len());
        for (&(view, seq), req) in &self.slots {
            h.write_u64(view);
            h.write_u64(seq);
            h.write_u64(*req);
        }
        h.write_usize(self.votes.len());
        for (&(view, seq, req), voters) in &self.votes {
            h.write_u64(view);
            h.write_u64(seq);
            h.write_u64(req);
            h.write_usize(voters.len());
            for &voter in voters {
                h.write_usize(voter);
            }
        }
        h.write_usize(self.my_votes.len());
        for &(view, seq, req) in &self.my_votes {
            h.write_u64(view);
            h.write_u64(seq);
            h.write_u64(req);
        }
        h.write_usize(self.committed_slots.len());
        for (&(view, seq), req) in &self.committed_slots {
            h.write_u64(view);
            h.write_u64(seq);
            h.write_u64(*req);
        }
        h.write_usize(self.committed_reqs.len());
        for req in self.committed_reqs.keys() {
            h.write_u64(*req);
        }
        h.write_usize(self.vc_votes.len());
        for (view, voters) in &self.vc_votes {
            h.write_u64(*view);
            h.write_usize(voters.len());
            for &voter in voters {
                h.write_usize(voter);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_simnet::CommandBuffer;

    fn group(n: usize, sites: &[usize]) -> Vec<Replica> {
        let peers: Vec<NodeId> = (0..n).map(NodeId).collect();
        (0..n)
            .map(|i| Replica::new(i, peers.clone(), sites.to_vec(), 1))
            .collect()
    }

    #[test]
    fn quorum_sizes_match_theory() {
        let r6 = Replica::new(0, (0..6).map(NodeId).collect(), vec![0; 6], 1);
        assert_eq!(r6.quorum(), 4);
        let r18 = Replica::new(0, (0..18).map(NodeId).collect(), vec![0; 18], 1);
        assert_eq!(r18.quorum(), 10);
    }

    #[test]
    fn leader_rotation_single_site() {
        let r = Replica::new(0, (0..6).map(NodeId).collect(), vec![0; 6], 1);
        let leaders: Vec<usize> = (0..6).map(|v| r.leader_of(v)).collect();
        assert_eq!(leaders, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(r.leader_of(6), 0);
    }

    #[test]
    fn leader_rotation_striped_across_sites() {
        // 6 replicas in each of 3 sites: consecutive views hit
        // different sites.
        let sites: Vec<usize> = (0..18).map(|i| i / 6).collect();
        let r = Replica::new(0, (0..18).map(NodeId).collect(), sites.clone(), 1);
        let l0 = r.leader_of(0);
        let l1 = r.leader_of(1);
        let l2 = r.leader_of(2);
        assert_ne!(sites[l0], sites[l1]);
        assert_ne!(sites[l1], sites[l2]);
        assert_ne!(sites[l0], sites[l2]);
    }

    #[test]
    fn commit_requires_quorum() {
        let mut g = group(6, &[0; 6]);
        let mut buf = CommandBuffer::new();
        let now = SimTime::from_secs(1.0);
        // Replica 5 tallies votes for (view 0, seq 0, req 9).
        let r = &mut g[5];
        for voter in 0..3 {
            let mut ctx = buf.ctx(now, NodeId(5));
            r.tally(0, 0, 9, voter, &mut ctx);
        }
        assert!(r.committed_slots.is_empty(), "3 < Q = 4");
        let mut ctx = buf.ctx(now, NodeId(5));
        r.tally(0, 0, 9, 3, &mut ctx);
        assert_eq!(r.committed_slots.get(&(0, 0)), Some(&9));
    }

    #[test]
    fn correct_replica_votes_once_per_slot() {
        let mut g = group(6, &[0; 6]);
        let mut buf = CommandBuffer::new();
        let now = SimTime::from_secs(1.0);
        let r = &mut g[2];
        // Two conflicting proposals from the view-0 leader (node 0).
        let prop = |req: ReqId| ProtocolMsg::Propose {
            view: 0,
            seq: 0,
            req,
            digest: correct_digest(req),
        };
        {
            let mut ctx = buf.ctx(now, NodeId(2));
            r.on_message(NodeId(0), prop(7), &mut ctx);
        }
        buf.clear();
        {
            let mut ctx = buf.ctx(now, NodeId(2));
            r.on_message(NodeId(0), prop(8), &mut ctx);
        }
        // Second proposal for the same slot: no Accept broadcast.
        assert!(
            buf.sent().is_empty(),
            "correct replica must not vote twice for a slot"
        );
        assert_eq!(r.slots.get(&(0, 0)), Some(&7));
    }

    #[test]
    fn fabricated_digest_rejected() {
        let mut g = group(6, &[0; 6]);
        let mut buf = CommandBuffer::new();
        let r = &mut g[1];
        let mut ctx = buf.ctx(SimTime::from_secs(1.0), NodeId(1));
        r.on_message(
            NodeId(0),
            ProtocolMsg::Propose {
                view: 0,
                seq: 0,
                req: 7,
                digest: correct_digest(8), // wrong digest for req 7
            },
            &mut ctx,
        );
        assert!(r.slots.is_empty());
        assert!(buf.sent().is_empty());
    }

    #[test]
    fn proposal_from_non_leader_ignored() {
        let mut g = group(6, &[0; 6]);
        let mut buf = CommandBuffer::new();
        let r = &mut g[2];
        let mut ctx = buf.ctx(SimTime::from_secs(1.0), NodeId(2));
        // Node 3 is not the leader of view 0.
        r.on_message(
            NodeId(3),
            ProtocolMsg::Propose {
                view: 0,
                seq: 0,
                req: 7,
                digest: correct_digest(7),
            },
            &mut ctx,
        );
        assert!(r.slots.is_empty());
    }

    #[test]
    fn view_change_needs_f_plus_one() {
        let mut g = group(6, &[0; 6]);
        let mut buf = CommandBuffer::new();
        let now = SimTime::from_secs(1.0);
        let r = &mut g[4];
        {
            let mut ctx = buf.ctx(now, NodeId(4));
            r.on_message(NodeId(1), ProtocolMsg::ViewChange { view: 1 }, &mut ctx);
        }
        assert_eq!(r.view(), 0, "one vote (f) is not enough");
        {
            let mut ctx = buf.ctx(now, NodeId(4));
            r.on_message(NodeId(2), ProtocolMsg::ViewChange { view: 1 }, &mut ctx);
        }
        assert_eq!(r.view(), 1, "f+1 votes adopt the view");
    }

    #[test]
    fn byzantine_votes_for_everything() {
        let mut g = group(6, &[0; 6]);
        g[3].byzantine = true;
        let mut buf = CommandBuffer::new();
        let now = SimTime::from_secs(1.0);
        let r = &mut g[3];
        let prop = |req: ReqId| ProtocolMsg::Propose {
            view: 0,
            seq: 0,
            req,
            digest: correct_digest(req),
        };
        {
            let mut ctx = buf.ctx(now, NodeId(3));
            r.on_message(NodeId(0), prop(7), &mut ctx);
            r.on_message(NodeId(0), prop(8), &mut ctx);
        }
        // Voted for both conflicting proposals.
        let sent = buf.sent();
        let accepts = sent
            .iter()
            .filter(|(_, m)| matches!(m, ProtocolMsg::Accept { .. }))
            .count();
        assert!(accepts >= 2 * (r.n() - 1));
    }

    #[test]
    fn inactive_cold_replica_ignores_protocol() {
        let mut g = group(6, &[0; 6]);
        let r = &mut g[0];
        r.active = false;
        r.cold = Some(ColdConfig {
            activation_delay: SimTime::from_secs(10.0),
        });
        let mut buf = CommandBuffer::new();
        let mut ctx = buf.ctx(SimTime::from_secs(1.0), NodeId(0));
        r.on_message(NodeId(5), ProtocolMsg::Request { id: 3 }, &mut ctx);
        assert!(r.pending.is_empty());
        assert!(buf.sent().is_empty());
    }
}
