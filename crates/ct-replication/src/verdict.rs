//! Executing a deployment under a compound-threat scenario and
//! reducing the run to an operational verdict.

use crate::deployment::{build, DeploymentSpec};
use crate::msg::correct_digest;
use crate::role::Role;
use ct_simnet::{FaultAction, FaultPlan, NodeId, Sim, SimTime, SiteId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The concrete faults applied to one simulation run: the
/// post-hurricane site outages plus the cyberattack.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultScenario {
    /// Control sites destroyed by the hurricane (crashed at t = 0).
    pub flooded_sites: Vec<usize>,
    /// Control sites isolated by the attacker at `attack_time`.
    pub isolated_sites: Vec<usize>,
    /// Servers compromised by the attacker: `(site, index-in-site)`.
    pub intrusions: Vec<(usize, usize)>,
}

impl FaultScenario {
    /// No faults at all.
    pub fn benign() -> Self {
        Self::default()
    }
}

/// Timing and classification parameters for a verdict run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VerdictConfig {
    /// Total virtual time simulated.
    pub run_duration: SimTime,
    /// When the cyberattack (site isolation) lands.
    pub attack_time: SimTime,
    /// Start of the service-gap measurement window (skips startup).
    pub measure_from: SimTime,
    /// A service gap longer than this is a disruption (orange); the
    /// cold-backup activation delay exceeds it, view changes do not.
    pub orange_gap: SimTime,
    /// The system counts as operational at the end if it accepted a
    /// response within this margin of the run end.
    pub resume_margin: SimTime,
    /// RNG seed for network jitter.
    pub seed: u64,
}

impl Default for VerdictConfig {
    fn default() -> Self {
        Self {
            run_duration: SimTime::from_secs(90.0),
            attack_time: SimTime::from_secs(10.0),
            measure_from: SimTime::from_secs(5.0),
            orange_gap: SimTime::from_secs(8.0),
            resume_margin: SimTime::from_secs(3.0),
            seed: 7,
        }
    }
}

/// Operational state observed from an actual protocol execution; the
/// simulation-side analogue of the paper's color classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObservedState {
    /// Continuously operational.
    Green,
    /// Recovered after a service disruption (cold-backup activation).
    Orange,
    /// Not operational at the end of the run.
    Red,
    /// Safety violated: conflicting commits or forged data accepted.
    Gray,
}

impl fmt::Display for ObservedState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ObservedState::Green => "green",
            ObservedState::Orange => "orange",
            ObservedState::Red => "red",
            ObservedState::Gray => "gray",
        };
        f.write_str(s)
    }
}

/// The reduced outcome of one simulated run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimVerdict {
    /// Overall classification.
    pub state: ObservedState,
    /// No safety violation observed.
    pub safe: bool,
    /// Responses were being accepted at the end of the run.
    pub resumed: bool,
    /// Longest service gap inside the measurement window.
    pub max_gap: SimTime,
    /// Responses accepted over the whole run.
    pub accepted: u64,
    /// Responses accepted whose integrity check failed.
    pub bad_accepts: u64,
    /// Conflicting slot commits detected across a replica group.
    pub slot_conflicts: u64,
}

/// A deployment with its scenario faults installed but virtual time
/// not yet advanced: the common setup shared by single-schedule
/// verdict runs ([`run_scenario`]), exhaustive exploration, and
/// randomized campaigns (`crate::properties`).
#[derive(Debug, Clone)]
pub struct PreparedRun {
    /// The simulation, faults armed, not yet started.
    pub sim: Sim<Role>,
    /// Replica/master groups as node-id lists.
    pub groups: Vec<Vec<NodeId>>,
    /// Node ids of every RTU.
    pub clients: Vec<NodeId>,
    /// The never-attacked field site hosting the RTUs.
    pub field_site: SiteId,
}

/// Builds `spec`, installs the scenario's intrusions and hurricane
/// outages, and arms the isolation attack at
/// [`VerdictConfig::attack_time`] — everything short of running.
pub fn prepare_run(
    spec: &DeploymentSpec,
    scenario: &FaultScenario,
    config: &VerdictConfig,
) -> PreparedRun {
    let built = build(spec);
    let mut nodes = built.nodes;
    for &(site, idx) in &scenario.intrusions {
        let node = built.site_base[site] + idx;
        nodes[node].set_byzantine();
    }
    let mut sim: Sim<Role> = Sim::new(built.net, config.seed, nodes);
    for &site in &scenario.flooded_sites {
        sim.crash_site(SiteId(site));
    }
    let mut plan = FaultPlan::new();
    for &site in &scenario.isolated_sites {
        plan = plan.at(config.attack_time, FaultAction::IsolateSite(SiteId(site)));
    }
    sim.apply_fault_plan(&plan);
    PreparedRun {
        sim,
        groups: built.groups,
        clients: built.clients,
        field_site: SiteId(spec.site_count()),
    }
}

/// Runs `spec` under `scenario` and classifies the outcome.
///
/// Intrusions are active from the start of the run (the attacker has
/// compromised the servers before the measurement window); the site
/// isolation attack lands at [`VerdictConfig::attack_time`]; hurricane
/// outages exist from t = 0.
pub fn run_scenario(
    spec: &DeploymentSpec,
    scenario: &FaultScenario,
    config: &VerdictConfig,
) -> SimVerdict {
    ct_obs::add(ct_obs::names::REPLICATION_VERDICT_RUNS, 1);
    let mut prepared = prepare_run(spec, scenario, config);
    prepared.sim.run_until(config.run_duration);
    summarize(&prepared.sim, &prepared.groups, &prepared.clients, config)
}

/// Counts slots where two replicas in the same group committed
/// different requests (divergent state machines) — the agreement
/// property's safety scan, also used per-step by exploration.
pub fn slot_conflict_count(sim: &Sim<Role>, groups: &[Vec<NodeId>]) -> u64 {
    let mut slot_conflicts = 0u64;
    for group in groups {
        let mut by_slot: BTreeMap<(u64, u64), u64> = BTreeMap::new();
        for &node in group {
            let Some(replica) = sim.node(node).as_replica() else {
                continue;
            };
            for (&slot, &req) in &replica.committed_slots {
                match by_slot.get(&slot) {
                    None => {
                        by_slot.insert(slot, req);
                    }
                    Some(&existing) if existing != req => {
                        slot_conflicts += 1;
                    }
                    Some(_) => {}
                }
            }
        }
    }
    slot_conflicts
}

/// Reduces a (fully or partially) executed simulation to a verdict:
/// safety scans over accepted data and committed slots, plus service
/// continuity over the RTUs' accept times. Gap and resumption
/// measures are taken against `config.run_duration`, so summarizing
/// before that time treats the remainder as silence.
pub fn summarize(
    sim: &Sim<Role>,
    groups: &[Vec<NodeId>],
    clients: &[NodeId],
    config: &VerdictConfig,
) -> SimVerdict {
    let rtus: Vec<&crate::client::Rtu> = clients
        .iter()
        .map(|&c| sim.node(c).as_rtu().expect("client is an RTU"))
        .collect();
    let bad_accepts: u64 = rtus.iter().map(|r| r.bad_accepts).sum();
    let accepted: u64 = rtus.iter().map(|r| r.accepted_log.len() as u64).sum();

    // Safety scan 1: the client accepted forged data.
    let mut safe = bad_accepts == 0;

    // Safety scan 2: divergent state machines within a group.
    let slot_conflicts = slot_conflict_count(sim, groups);
    if slot_conflicts > 0 {
        safe = false;
    }

    // Integrity of the accepted logs themselves (defence in depth).
    for rtu in &rtus {
        for &(_, id, digest) in &rtu.accepted_log {
            if digest != correct_digest(id) && bad_accepts == 0 {
                safe = false;
            }
        }
    }

    // Service continuity over the union of all RTUs' accepted
    // responses: the SCADA system is "up" when it answers the field.
    let end = config.run_duration;
    let mut times: Vec<SimTime> = rtus.iter().flat_map(|r| r.accept_times()).collect();
    times.sort();
    let resumed = times
        .last()
        .is_some_and(|&t| t + config.resume_margin >= end);
    let mut max_gap = SimTime::ZERO;
    let mut prev = config.measure_from;
    for &t in times.iter().filter(|&&t| t >= config.measure_from) {
        let gap = t.saturating_sub(prev);
        if gap > max_gap {
            max_gap = gap;
        }
        prev = t;
    }
    let tail = end.saturating_sub(prev);
    if tail > max_gap {
        max_gap = tail;
    }

    let state = if !safe {
        ObservedState::Gray
    } else if !resumed {
        ObservedState::Red
    } else if max_gap > config.orange_gap {
        ObservedState::Orange
    } else {
        ObservedState::Green
    };

    SimVerdict {
        state,
        safe,
        resumed,
        max_gap,
        accepted,
        bad_accepts,
        slot_conflicts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> VerdictConfig {
        VerdictConfig {
            run_duration: SimTime::from_secs(60.0),
            ..VerdictConfig::default()
        }
    }

    #[test]
    fn benign_runs_are_green_for_all_configs() {
        for spec in DeploymentSpec::all_paper_configs() {
            let v = run_scenario(&spec, &FaultScenario::benign(), &cfg());
            assert_eq!(
                v.state,
                ObservedState::Green,
                "config {} should be green when nothing fails: {v:?}",
                spec.name
            );
            assert!(v.accepted > 100, "config {} barely ran: {v:?}", spec.name);
        }
    }

    #[test]
    fn flooding_the_only_site_is_red() {
        for spec in [DeploymentSpec::config_2(), DeploymentSpec::config_6()] {
            let v = run_scenario(
                &spec,
                &FaultScenario {
                    flooded_sites: vec![0],
                    ..FaultScenario::default()
                },
                &cfg(),
            );
            assert_eq!(v.state, ObservedState::Red, "config {}: {v:?}", spec.name);
            assert_eq!(v.accepted, 0);
        }
    }

    #[test]
    fn cold_backup_turns_primary_flood_into_orange() {
        for spec in [DeploymentSpec::config_2_2(), DeploymentSpec::config_6_6()] {
            let v = run_scenario(
                &spec,
                &FaultScenario {
                    flooded_sites: vec![0],
                    ..FaultScenario::default()
                },
                &cfg(),
            );
            assert_eq!(
                v.state,
                ObservedState::Orange,
                "config {}: {v:?}",
                spec.name
            );
        }
    }

    #[test]
    fn intrusion_breaks_industry_configs() {
        let v = run_scenario(
            &DeploymentSpec::config_2(),
            &FaultScenario {
                intrusions: vec![(0, 0)],
                ..FaultScenario::default()
            },
            &cfg(),
        );
        assert_eq!(v.state, ObservedState::Gray, "{v:?}");
        assert!(v.bad_accepts > 0);
    }

    #[test]
    fn single_intrusion_tolerated_by_quorum_configs() {
        for spec in [DeploymentSpec::config_6(), DeploymentSpec::config_6p6p6()] {
            let v = run_scenario(
                &spec,
                &FaultScenario {
                    intrusions: vec![(0, 0)],
                    ..FaultScenario::default()
                },
                &cfg(),
            );
            assert_eq!(
                v.state,
                ObservedState::Green,
                "config {} must tolerate one intrusion: {v:?}",
                spec.name
            );
        }
    }

    #[test]
    fn two_intrusions_compromise_quorum_safety() {
        let v = run_scenario(
            &DeploymentSpec::config_6(),
            &FaultScenario {
                intrusions: vec![(0, 0), (0, 1)],
                ..FaultScenario::default()
            },
            &cfg(),
        );
        assert_eq!(v.state, ObservedState::Gray, "{v:?}");
    }

    #[test]
    fn isolation_kills_single_site_configs() {
        for spec in [DeploymentSpec::config_2(), DeploymentSpec::config_6()] {
            let v = run_scenario(
                &spec,
                &FaultScenario {
                    isolated_sites: vec![0],
                    ..FaultScenario::default()
                },
                &cfg(),
            );
            assert_eq!(v.state, ObservedState::Red, "config {}: {v:?}", spec.name);
            assert!(v.accepted > 0, "worked until the attack");
        }
    }

    #[test]
    fn isolation_of_primary_is_orange_with_cold_backup() {
        let v = run_scenario(
            &DeploymentSpec::config_2_2(),
            &FaultScenario {
                isolated_sites: vec![0],
                ..FaultScenario::default()
            },
            &cfg(),
        );
        assert_eq!(v.state, ObservedState::Orange, "{v:?}");
    }

    #[test]
    fn six_six_six_rides_through_isolation() {
        let v = run_scenario(
            &DeploymentSpec::config_6p6p6(),
            &FaultScenario {
                isolated_sites: vec![0],
                ..FaultScenario::default()
            },
            &cfg(),
        );
        assert_eq!(v.state, ObservedState::Green, "{v:?}");
    }

    #[test]
    fn six_six_six_full_compound_attack_stays_green() {
        // Hurricane spares all sites; attacker isolates one site and
        // compromises a server in another: the paper's headline claim.
        let v = run_scenario(
            &DeploymentSpec::config_6p6p6(),
            &FaultScenario {
                isolated_sites: vec![0],
                intrusions: vec![(1, 0)],
                ..FaultScenario::default()
            },
            &cfg(),
        );
        assert_eq!(v.state, ObservedState::Green, "{v:?}");
    }

    #[test]
    fn six_six_six_two_sites_down_is_red() {
        let v = run_scenario(
            &DeploymentSpec::config_6p6p6(),
            &FaultScenario {
                flooded_sites: vec![0, 1],
                ..FaultScenario::default()
            },
            &cfg(),
        );
        assert_eq!(v.state, ObservedState::Red, "{v:?}");
    }
}
