//! Industry-standard SCADA masters (configs `2` and `2-2`).
//!
//! A primary SCADA master answers RTU polls directly; a *hot* standby
//! in the same control center takes over within seconds when the
//! primary goes silent. A *cold* backup control center (config `2-2`)
//! monitors heartbeats from the primary site and activates after a
//! configurable delay — the paper's orange state. None of this
//! tolerates intrusions: a compromised acting master simply fabricates
//! replies (the paper's gray state).

use crate::msg::{correct_digest, fake_request, ProtocolMsg};
use ct_simnet::{Actor, Ctx, NodeId, SimTime};

const TIMER_TICK: u64 = 1;
const TIMER_ACTIVATE: u64 = 2;

/// Tick cadence (heartbeats + silence checks).
const TICK: SimTime = SimTime(500_000);
/// Silence after which a hot standby takes over.
const HOT_TAKEOVER: SimTime = SimTime(1_500_000);
/// Silence after which a cold site considers the primary dead.
const COLD_DETECT: SimTime = SimTime(2_000_000);

/// One SCADA master in a hot-standby / cold-backup deployment.
#[derive(Debug, Clone)]
pub struct Master {
    /// Index of this master within its site (0 = first in line).
    pub index_in_site: usize,
    /// Masters in the same site, in takeover order (includes self).
    pub site_peers: Vec<NodeId>,
    /// Every master in the deployment (heartbeat fan-out).
    pub all_masters: Vec<NodeId>,
    /// Whether this master has been compromised.
    pub byzantine: bool,
    /// Whether this master is currently answering RTU polls.
    pub acting: bool,
    /// Hot site: standbys take over within seconds. Cold sites wait
    /// for `cold_activation_delay` first.
    pub hot: bool,
    /// Activation delay for cold-site masters.
    pub cold_activation_delay: Option<SimTime>,
    /// Replies sent (diagnostics).
    pub replies_sent: u64,
    last_heard_acting: SimTime,
    activation_scheduled: bool,
    /// Set once the cold site has taken over.
    pub activated: bool,
}

impl Master {
    /// Creates a master. The very first master of the hot site should
    /// be constructed with `acting = true`.
    pub fn new(
        index_in_site: usize,
        site_peers: Vec<NodeId>,
        all_masters: Vec<NodeId>,
        hot: bool,
        acting: bool,
    ) -> Self {
        Self {
            index_in_site,
            site_peers,
            all_masters,
            byzantine: false,
            acting,
            hot,
            cold_activation_delay: None,
            replies_sent: 0,
            last_heard_acting: SimTime::ZERO,
            activation_scheduled: false,
            activated: false,
        }
    }

    fn reply(&mut self, to: NodeId, id: u64, ctx: &mut Ctx<'_, ProtocolMsg>) {
        let digest = if self.byzantine {
            correct_digest(fake_request(id))
        } else {
            correct_digest(id)
        };
        self.replies_sent += 1;
        ctx.send(to, ProtocolMsg::Reply { id, digest });
    }

    fn on_tick(&mut self, ctx: &mut Ctx<'_, ProtocolMsg>) {
        let now = ctx.now();
        if self.acting {
            ctx.broadcast(self.all_masters.iter().copied(), ProtocolMsg::Heartbeat);
            return;
        }
        let silence = now.saturating_sub(self.last_heard_acting);
        if self.hot || self.activated {
            // Hot standby: take over quickly, in site order.
            let wait = HOT_TAKEOVER + SimTime::from_millis(200.0 * self.index_in_site as f64);
            if silence > wait {
                self.acting = true;
            }
        } else if let Some(delay) = self.cold_activation_delay {
            if silence > COLD_DETECT && !self.activation_scheduled {
                self.activation_scheduled = true;
                ctx.set_timer(delay, TIMER_ACTIVATE);
            }
        }
    }
}

impl Actor for Master {
    type Msg = ProtocolMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, ProtocolMsg>) {
        self.last_heard_acting = ctx.now();
        ctx.set_timer(TICK, TIMER_TICK);
    }

    fn on_message(&mut self, from: NodeId, msg: ProtocolMsg, ctx: &mut Ctx<'_, ProtocolMsg>) {
        match msg {
            ProtocolMsg::Request { id } if self.acting => {
                self.reply(from, id, ctx);
            }
            ProtocolMsg::Heartbeat => {
                // Another acting master exists; stand down takeover
                // clocks. (A non-acting master never heartbeats.)
                self.last_heard_acting = ctx.now();
                let _ = from;
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, id: u64, ctx: &mut Ctx<'_, ProtocolMsg>) {
        match id {
            TIMER_TICK => {
                self.on_tick(ctx);
                ctx.set_timer(TICK, TIMER_TICK);
            }
            TIMER_ACTIVATE => {
                let silence = ctx.now().saturating_sub(self.last_heard_acting);
                if silence > COLD_DETECT {
                    self.activated = true;
                    if self.index_in_site == 0 {
                        self.acting = true;
                    }
                }
                self.activation_scheduled = false;
            }
            _ => {}
        }
    }
}

impl ct_simnet::StateHash for Master {
    /// Hashes role flags and the reply counter; `last_heard_acting` is
    /// an absolute timestamp and is excluded per the [`StateHash`]
    /// convention.
    ///
    /// [`StateHash`]: ct_simnet::StateHash
    fn state_hash(&self, h: &mut ct_store::StableHasher) {
        h.write_usize(self.index_in_site);
        h.write_bool(self.byzantine);
        h.write_bool(self.acting);
        h.write_bool(self.hot);
        h.write_bool(self.activation_scheduled);
        h.write_bool(self.activated);
        h.write_u64(self.replies_sent);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_simnet::CommandBuffer;

    fn pair() -> (Master, Master) {
        let peers = vec![NodeId(0), NodeId(1)];
        (
            Master::new(0, peers.clone(), peers.clone(), true, true),
            Master::new(1, peers.clone(), peers, true, false),
        )
    }

    #[test]
    fn acting_master_answers_polls() {
        let (mut primary, _) = pair();
        let mut buf = CommandBuffer::new();
        let mut ctx = buf.ctx(SimTime::from_secs(1.0), NodeId(0));
        primary.on_message(NodeId(9), ProtocolMsg::Request { id: 4 }, &mut ctx);
        let sent = buf.sent();
        assert_eq!(sent.len(), 1);
        assert_eq!(
            *sent[0].1,
            ProtocolMsg::Reply {
                id: 4,
                digest: correct_digest(4)
            }
        );
    }

    #[test]
    fn standby_stays_silent() {
        let (_, mut backup) = pair();
        let mut buf = CommandBuffer::new();
        let mut ctx = buf.ctx(SimTime::from_secs(1.0), NodeId(1));
        backup.on_message(NodeId(9), ProtocolMsg::Request { id: 4 }, &mut ctx);
        assert!(buf.sent().is_empty());
    }

    #[test]
    fn byzantine_master_forges_replies() {
        let (mut primary, _) = pair();
        primary.byzantine = true;
        let mut buf = CommandBuffer::new();
        let mut ctx = buf.ctx(SimTime::from_secs(1.0), NodeId(0));
        primary.on_message(NodeId(9), ProtocolMsg::Request { id: 4 }, &mut ctx);
        match buf.sent()[0].1 {
            ProtocolMsg::Reply { digest, .. } => assert_ne!(*digest, correct_digest(4)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn hot_standby_takes_over_after_silence() {
        let (_, mut backup) = pair();
        let mut buf = CommandBuffer::new();
        {
            let mut ctx = buf.ctx(SimTime::ZERO, NodeId(1));
            backup.on_start(&mut ctx);
        }
        // 10 seconds with no heartbeat.
        let mut ctx = buf.ctx(SimTime::from_secs(10.0), NodeId(1));
        backup.on_tick(&mut ctx);
        assert!(backup.acting, "hot standby must take over");
    }

    #[test]
    fn heartbeat_resets_takeover_clock() {
        let (_, mut backup) = pair();
        let mut buf = CommandBuffer::new();
        {
            let mut ctx = buf.ctx(SimTime::ZERO, NodeId(1));
            backup.on_start(&mut ctx);
        }
        {
            let mut ctx = buf.ctx(SimTime::from_secs(9.5), NodeId(1));
            backup.on_message(NodeId(0), ProtocolMsg::Heartbeat, &mut ctx);
        }
        let mut ctx = buf.ctx(SimTime::from_secs(10.0), NodeId(1));
        backup.on_tick(&mut ctx);
        assert!(!backup.acting);
    }

    #[test]
    fn cold_master_waits_for_activation_delay() {
        let peers = vec![NodeId(2), NodeId(3)];
        let mut cold = Master::new(0, peers.clone(), peers, false, false);
        cold.cold_activation_delay = Some(SimTime::from_secs(20.0));
        let mut buf = CommandBuffer::new();
        {
            let mut ctx = buf.ctx(SimTime::ZERO, NodeId(2));
            cold.on_start(&mut ctx);
        }
        buf.clear();
        {
            let mut ctx = buf.ctx(SimTime::from_secs(5.0), NodeId(2));
            cold.on_tick(&mut ctx);
        }
        assert!(!cold.acting, "cold backup must not act immediately");
        assert_eq!(
            buf.timers(),
            vec![(SimTime::from_secs(20.0), TIMER_ACTIVATE)]
        );
        // Activation timer fires, primary still silent -> takes over.
        let mut ctx = buf.ctx(SimTime::from_secs(25.0), NodeId(2));
        cold.on_timer(TIMER_ACTIVATE, &mut ctx);
        assert!(cold.acting && cold.activated);
    }

    #[test]
    fn cold_activation_aborts_if_primary_returns() {
        let peers = vec![NodeId(2), NodeId(3)];
        let mut cold = Master::new(0, peers.clone(), peers, false, false);
        cold.cold_activation_delay = Some(SimTime::from_secs(20.0));
        let mut buf = CommandBuffer::new();
        {
            let mut ctx = buf.ctx(SimTime::ZERO, NodeId(2));
            cold.on_start(&mut ctx);
        }
        {
            let mut ctx = buf.ctx(SimTime::from_secs(5.0), NodeId(2));
            cold.on_tick(&mut ctx); // schedules activation
        }
        {
            let mut ctx = buf.ctx(SimTime::from_secs(24.0), NodeId(2));
            cold.on_message(NodeId(0), ProtocolMsg::Heartbeat, &mut ctx);
        }
        let mut ctx = buf.ctx(SimTime::from_secs(25.0), NodeId(2));
        cold.on_timer(TIMER_ACTIVATE, &mut ctx);
        assert!(!cold.acting, "primary recovered before activation");
    }
}
