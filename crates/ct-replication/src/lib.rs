//! Executable models of the paper's SCADA replication architectures.
//!
//! The paper evaluates five SCADA configurations — `2`, `2-2`, `6`,
//! `6-6` and `6+6+6` — whose fault-tolerance properties it takes from
//! prior work (Table I). This crate makes those properties *testable*
//! by implementing the architectures as actors on the [`ct_simnet`]
//! discrete-event kernel:
//!
//! * [`Master`] — SCADA master with a hot standby in the same site and
//!   optional cold-backup sites that activate after a delay (configs
//!   `2` and `2-2`);
//! * [`Replica`] — leader-based intrusion-tolerant quorum replication
//!   with `n = 3f + 2k + 1` sizing, equivocation-resistant voting,
//!   view changes striped across sites, proactive recovery, and
//!   Byzantine fault injection (configs `6`, `6-6`, `6+6+6`);
//! * [`Rtu`] — a field client polling the SCADA masters and checking
//!   reply integrity with an `f + 1` matching-reply rule.
//!
//! [`run_scenario`] executes a [`DeploymentSpec`] under a
//! [`FaultScenario`] (flooded sites, site isolations, server
//! intrusions) and reduces the execution to a [`SimVerdict`] whose
//! [`ObservedState`] is directly comparable to the paper's
//! green/orange/red/gray classification — the framework's rule-based
//! classifier is cross-validated against these executions.
//!
//! The [`properties`] module goes beyond single-schedule runs: it
//! states Table I as executable predicates ([`ReplicationProperty`])
//! and checks them with bounded exhaustive schedule exploration
//! ([`explore_scenario`]) and seeded randomized fault campaigns
//! ([`randomized_campaign`]).

pub mod client;
pub mod deployment;
pub mod master;
pub mod msg;
pub mod properties;
pub mod replica;
pub mod role;
pub mod verdict;

pub use client::Rtu;
pub use deployment::{
    build as build_deployment, BuiltDeployment, DeploymentSpec, ReplicationStyle,
};
pub use master::Master;
pub use msg::{correct_digest, fake_request, Digest, ProtocolMsg, ReqId};
pub use properties::{
    default_campaign_dist, explore_scenario, randomized_campaign, severity, worse, CampaignOutcome,
    CampaignViolation, ExploreOutcome, ReplicationProperty,
};
pub use replica::Replica;
pub use role::Role;
pub use verdict::{
    prepare_run, run_scenario, summarize, FaultScenario, ObservedState, PreparedRun, SimVerdict,
    VerdictConfig,
};
