//! Protocol messages shared by all replication styles.

use serde::{Deserialize, Serialize};

/// Identifier of a client request (a SCADA poll or command).
pub type ReqId = u64;

/// A digest standing in for the request contents. Correct nodes
/// compute it deterministically from the request id; a Byzantine node
/// fabricating state produces a digest that fails this check.
pub type Digest = u64;

/// The digest a correct node computes for a request.
pub fn correct_digest(req: ReqId) -> Digest {
    req.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(7)
}

/// A fabricated request id a Byzantine leader uses to equivocate:
/// competing with the real request for the same sequence slot.
pub fn fake_request(req: ReqId) -> ReqId {
    req ^ 0x5A5A_5A5A
}

/// Messages exchanged by masters, replicas and clients.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProtocolMsg {
    /// Client poll/command.
    Request {
        /// Request id.
        id: ReqId,
    },
    /// Server response to a request.
    Reply {
        /// Request id being answered.
        id: ReqId,
        /// Digest of the (claimed) result.
        digest: Digest,
    },
    /// Leader orders `req` at `(view, seq)`.
    Propose {
        /// Protocol view.
        view: u64,
        /// Sequence slot.
        seq: u64,
        /// Request ordered in the slot.
        req: ReqId,
        /// Digest of the request.
        digest: Digest,
    },
    /// Replica vote for a proposal.
    Accept {
        /// Protocol view.
        view: u64,
        /// Sequence slot.
        seq: u64,
        /// Request voted for.
        req: ReqId,
        /// Digest voted for.
        digest: Digest,
    },
    /// Vote to move to `view`.
    ViewChange {
        /// The proposed new view.
        view: u64,
    },
    /// Liveness beacon from an active site to its cold backups (and
    /// between masters).
    Heartbeat,
}

impl ct_simnet::StateHash for ProtocolMsg {
    fn state_hash(&self, h: &mut ct_store::StableHasher) {
        match *self {
            ProtocolMsg::Request { id } => {
                h.write_u8(0);
                h.write_u64(id);
            }
            ProtocolMsg::Reply { id, digest } => {
                h.write_u8(1);
                h.write_u64(id);
                h.write_u64(digest);
            }
            ProtocolMsg::Propose {
                view,
                seq,
                req,
                digest,
            } => {
                h.write_u8(2);
                h.write_u64(view);
                h.write_u64(seq);
                h.write_u64(req);
                h.write_u64(digest);
            }
            ProtocolMsg::Accept {
                view,
                seq,
                req,
                digest,
            } => {
                h.write_u8(3);
                h.write_u64(view);
                h.write_u64(seq);
                h.write_u64(req);
                h.write_u64(digest);
            }
            ProtocolMsg::ViewChange { view } => {
                h.write_u8(4);
                h.write_u64(view);
            }
            ProtocolMsg::Heartbeat => h.write_u8(5),
        }
    }
}

impl ct_simnet::MsgClass for ProtocolMsg {
    /// Message classes targetable by [`ct_simnet::ScheduleDist`]:
    /// `request`, `reply`, `propose`, `accept`, `view_change`,
    /// `heartbeat`.
    fn msg_class(&self) -> &'static str {
        match self {
            ProtocolMsg::Request { .. } => "request",
            ProtocolMsg::Reply { .. } => "reply",
            ProtocolMsg::Propose { .. } => "propose",
            ProtocolMsg::Accept { .. } => "accept",
            ProtocolMsg::ViewChange { .. } => "view_change",
            ProtocolMsg::Heartbeat => "heartbeat",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_deterministic_and_request_sensitive() {
        assert_eq!(correct_digest(5), correct_digest(5));
        assert_ne!(correct_digest(5), correct_digest(6));
    }

    #[test]
    fn fake_request_differs_and_is_involutive() {
        assert_ne!(fake_request(9), 9);
        assert_eq!(fake_request(fake_request(9)), 9);
    }

    #[test]
    fn fake_request_digest_differs() {
        assert_ne!(correct_digest(fake_request(3)), correct_digest(3));
    }
}
