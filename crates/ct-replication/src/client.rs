//! The field client (RTU) workload.

use crate::msg::{correct_digest, Digest, ProtocolMsg, ReqId};
use ct_simnet::{Actor, Ctx, NodeId, SimTime};
use std::collections::BTreeMap;

const TIMER_TICK: u64 = 5;

/// State of one outstanding request.
#[derive(Debug, Clone)]
struct Outstanding {
    sent: SimTime,
    last_send: SimTime,
    replies: BTreeMap<Digest, Vec<NodeId>>,
    accepted: bool,
}

/// A remote terminal unit: polls the SCADA masters on a fixed cycle
/// and accepts a response once enough matching replies arrive.
///
/// `need_matching = f + 1` makes a single compromised server unable to
/// forge an accepted response in the intrusion-tolerant
/// configurations; the industry-standard configurations use
/// `need_matching = 1` (and are therefore vulnerable — exactly the
/// paper's gray state).
#[derive(Debug, Clone)]
pub struct Rtu {
    /// All server nodes this RTU polls.
    pub servers: Vec<NodeId>,
    /// Matching replies required to accept a response.
    pub need_matching: usize,
    /// Poll cycle.
    pub interval: SimTime,
    /// Retransmit an unanswered request after this long.
    pub retransmit_after: SimTime,
    /// Namespace offset so multiple RTUs use disjoint request ids.
    pub id_base: ReqId,
    next: ReqId,
    outstanding: BTreeMap<ReqId, Outstanding>,
    /// Accepted responses: `(time, request, digest)`.
    pub accepted_log: Vec<(SimTime, ReqId, Digest)>,
    /// Number of accepted responses whose digest failed the integrity
    /// check — any non-zero value is a safety violation.
    pub bad_accepts: u64,
}

impl Rtu {
    /// Creates an RTU polling `servers`.
    pub fn new(servers: Vec<NodeId>, need_matching: usize, id_base: ReqId) -> Self {
        Self {
            servers,
            need_matching: need_matching.max(1),
            interval: SimTime::from_millis(100.0),
            retransmit_after: SimTime::from_secs(2.0),
            id_base,
            next: 0,
            outstanding: BTreeMap::new(),
            accepted_log: Vec::new(),
            bad_accepts: 0,
        }
    }

    /// Times at which responses were accepted, in order.
    pub fn accept_times(&self) -> Vec<SimTime> {
        self.accepted_log.iter().map(|(t, _, _)| *t).collect()
    }

    fn issue(&mut self, ctx: &mut Ctx<'_, ProtocolMsg>) {
        let id = self.id_base + self.next;
        self.next += 1;
        self.outstanding.insert(
            id,
            Outstanding {
                sent: ctx.now(),
                last_send: ctx.now(),
                replies: BTreeMap::new(),
                accepted: false,
            },
        );
        ctx.broadcast(self.servers.iter().copied(), ProtocolMsg::Request { id });
    }

    fn retransmit(&mut self, ctx: &mut Ctx<'_, ProtocolMsg>) {
        let now = ctx.now();
        let due: Vec<ReqId> = self
            .outstanding
            .iter()
            .filter(|(_, o)| {
                !o.accepted && now.saturating_sub(o.last_send) >= self.retransmit_after
            })
            .map(|(id, _)| *id)
            .rev()
            .take(5)
            .collect();
        for id in due {
            if let Some(o) = self.outstanding.get_mut(&id) {
                o.last_send = now;
            }
            ctx.broadcast(self.servers.iter().copied(), ProtocolMsg::Request { id });
        }
        // Garbage-collect ancient unanswered requests.
        let horizon = now.saturating_sub(SimTime::from_secs(60.0));
        self.outstanding
            .retain(|_, o| o.accepted || o.sent >= horizon);
    }
}

impl Actor for Rtu {
    type Msg = ProtocolMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, ProtocolMsg>) {
        ctx.set_timer(self.interval, TIMER_TICK);
    }

    fn on_message(&mut self, from: NodeId, msg: ProtocolMsg, _ctx: &mut Ctx<'_, ProtocolMsg>) {
        let ProtocolMsg::Reply { id, digest } = msg else {
            return;
        };
        let now = _ctx.now();
        let need = self.need_matching;
        let Some(o) = self.outstanding.get_mut(&id) else {
            return;
        };
        if o.accepted {
            return;
        }
        let voters = o.replies.entry(digest).or_default();
        if !voters.contains(&from) {
            voters.push(from);
        }
        if voters.len() >= need {
            o.accepted = true;
            self.accepted_log.push((now, id, digest));
            if digest != correct_digest(id) {
                self.bad_accepts += 1;
            }
        }
    }

    fn on_timer(&mut self, id: u64, ctx: &mut Ctx<'_, ProtocolMsg>) {
        if id != TIMER_TICK {
            return;
        }
        self.issue(ctx);
        self.retransmit(ctx);
        ctx.set_timer(self.interval, TIMER_TICK);
    }
}

impl ct_simnet::StateHash for Rtu {
    /// Hashes the request counter, per-request reply tallies and the
    /// accepted log (request + digest). Send/accept timestamps are
    /// excluded per the [`StateHash`] convention.
    ///
    /// [`StateHash`]: ct_simnet::StateHash
    fn state_hash(&self, h: &mut ct_store::StableHasher) {
        h.write_u64(self.id_base);
        h.write_u64(self.next);
        h.write_u64(self.bad_accepts);
        h.write_usize(self.outstanding.len());
        for (req, o) in &self.outstanding {
            h.write_u64(*req);
            h.write_bool(o.accepted);
            h.write_usize(o.replies.len());
            for (digest, voters) in &o.replies {
                h.write_u64(*digest);
                h.write_usize(voters.len());
                for v in voters {
                    h.write_usize(v.0);
                }
            }
        }
        h.write_usize(self.accepted_log.len());
        for (_, req, digest) in &self.accepted_log {
            h.write_u64(*req);
            h.write_u64(*digest);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::fake_request;

    fn ctx_shim<F: FnOnce(&mut Rtu, &mut Ctx<'_, ProtocolMsg>)>(rtu: &mut Rtu, f: F) {
        // Drive the actor directly without a kernel.
        let mut buf = ct_simnet::CommandBuffer::new();
        let mut ctx = buf.ctx(SimTime::from_secs(1.0), NodeId(99));
        f(rtu, &mut ctx);
    }

    #[test]
    fn accepts_after_matching_replies() {
        let mut rtu = Rtu::new(vec![NodeId(0), NodeId(1), NodeId(2)], 2, 0);
        rtu.outstanding.insert(
            7,
            Outstanding {
                sent: SimTime::ZERO,
                last_send: SimTime::ZERO,
                replies: BTreeMap::new(),
                accepted: false,
            },
        );
        let d = correct_digest(7);
        ctx_shim(&mut rtu, |r, ctx| {
            r.on_message(NodeId(0), ProtocolMsg::Reply { id: 7, digest: d }, ctx);
            assert!(r.accepted_log.is_empty(), "one reply is not enough");
            // Duplicate from the same server must not count twice.
            r.on_message(NodeId(0), ProtocolMsg::Reply { id: 7, digest: d }, ctx);
            assert!(r.accepted_log.is_empty());
            r.on_message(NodeId(1), ProtocolMsg::Reply { id: 7, digest: d }, ctx);
        });
        assert_eq!(rtu.accepted_log.len(), 1);
        assert_eq!(rtu.bad_accepts, 0);
    }

    #[test]
    fn single_forged_reply_cannot_be_accepted_at_f1() {
        let mut rtu = Rtu::new(vec![NodeId(0), NodeId(1)], 2, 0);
        rtu.outstanding.insert(
            3,
            Outstanding {
                sent: SimTime::ZERO,
                last_send: SimTime::ZERO,
                replies: BTreeMap::new(),
                accepted: false,
            },
        );
        let forged = correct_digest(fake_request(3));
        ctx_shim(&mut rtu, |r, ctx| {
            r.on_message(
                NodeId(0),
                ProtocolMsg::Reply {
                    id: 3,
                    digest: forged,
                },
                ctx,
            );
        });
        assert!(rtu.accepted_log.is_empty());
        assert_eq!(rtu.bad_accepts, 0);
    }

    #[test]
    fn forged_reply_accepted_at_need_one_is_flagged() {
        let mut rtu = Rtu::new(vec![NodeId(0)], 1, 0);
        rtu.outstanding.insert(
            3,
            Outstanding {
                sent: SimTime::ZERO,
                last_send: SimTime::ZERO,
                replies: BTreeMap::new(),
                accepted: false,
            },
        );
        let forged = correct_digest(fake_request(3));
        ctx_shim(&mut rtu, |r, ctx| {
            r.on_message(
                NodeId(0),
                ProtocolMsg::Reply {
                    id: 3,
                    digest: forged,
                },
                ctx,
            );
        });
        assert_eq!(rtu.accepted_log.len(), 1);
        assert_eq!(rtu.bad_accepts, 1);
    }

    #[test]
    fn unknown_reply_ignored() {
        let mut rtu = Rtu::new(vec![NodeId(0)], 1, 0);
        ctx_shim(&mut rtu, |r, ctx| {
            r.on_message(
                NodeId(0),
                ProtocolMsg::Reply {
                    id: 42,
                    digest: correct_digest(42),
                },
                ctx,
            );
        });
        assert!(rtu.accepted_log.is_empty());
    }
}
