//! Deployment specifications: the five SCADA configurations as
//! buildable simulations.

use crate::client::Rtu;
use crate::master::Master;
use crate::replica::{ColdConfig, RecoverySchedule, Replica};
use crate::role::Role;
use ct_simnet::{NetConfig, NodeId, SimTime};
use serde::{Deserialize, Serialize};

/// Replication style of a deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplicationStyle {
    /// Primary + hot standby masters (configs `2`, `2-2`).
    HotStandby,
    /// Intrusion-tolerant quorum replication (configs `6`, `6-6`,
    /// `6+6+6`).
    Quorum,
}

/// A buildable SCADA deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeploymentSpec {
    /// Display name (matches the paper's configuration labels).
    pub name: String,
    /// Replication style.
    pub style: ReplicationStyle,
    /// Replicas/masters per control site.
    pub site_replicas: Vec<usize>,
    /// Indices (into `site_replicas`) of cold-backup sites.
    pub cold_sites: Vec<usize>,
    /// Delay before a cold site activates after detecting primary
    /// death. The paper quotes minutes; the simulation scales this to
    /// tens of virtual seconds.
    pub activation_delay: SimTime,
    /// Intrusions tolerated by each quorum group.
    pub f: usize,
    /// Replicas concurrently in proactive recovery.
    pub k: usize,
    /// Whether the proactive-recovery rotation runs.
    pub proactive_recovery: bool,
    /// Field clients (RTUs) polling the system. All live in the
    /// never-attacked field site; more RTUs mean denser coverage of
    /// the service-availability signal.
    pub rtu_count: usize,
}

impl DeploymentSpec {
    /// Configuration `2`: one control center, primary + hot standby.
    pub fn config_2() -> Self {
        Self {
            name: "2".to_string(),
            style: ReplicationStyle::HotStandby,
            site_replicas: vec![2],
            cold_sites: Vec::new(),
            activation_delay: SimTime::from_secs(20.0),
            f: 0,
            k: 0,
            proactive_recovery: false,
            rtu_count: 3,
        }
    }

    /// Configuration `2-2`: primary control center plus a cold-backup
    /// control center, two masters each.
    pub fn config_2_2() -> Self {
        Self {
            name: "2-2".to_string(),
            site_replicas: vec![2, 2],
            cold_sites: vec![1],
            ..Self::config_2()
        }
    }

    /// Configuration `6`: one control center with 6-replica
    /// intrusion-tolerant replication (`n = 3f + 2k + 1`, `f = k = 1`).
    pub fn config_6() -> Self {
        Self {
            name: "6".to_string(),
            style: ReplicationStyle::Quorum,
            site_replicas: vec![6],
            cold_sites: Vec::new(),
            activation_delay: SimTime::from_secs(20.0),
            f: 1,
            k: 1,
            proactive_recovery: true,
            rtu_count: 3,
        }
    }

    /// Configuration `6-6`: intrusion-tolerant primary site plus a
    /// cold-backup site with 6 more replicas.
    pub fn config_6_6() -> Self {
        Self {
            name: "6-6".to_string(),
            site_replicas: vec![6, 6],
            cold_sites: vec![1],
            ..Self::config_6()
        }
    }

    /// Configuration `6+6+6`: 18 active replicas across two control
    /// centers and a data center, one quorum group.
    pub fn config_6p6p6() -> Self {
        Self {
            name: "6+6+6".to_string(),
            site_replicas: vec![6, 6, 6],
            cold_sites: Vec::new(),
            ..Self::config_6()
        }
    }

    /// All five paper configurations, in the paper's order.
    pub fn all_paper_configs() -> Vec<DeploymentSpec> {
        vec![
            Self::config_2(),
            Self::config_2_2(),
            Self::config_6(),
            Self::config_6_6(),
            Self::config_6p6p6(),
        ]
    }

    /// Number of control sites.
    pub fn site_count(&self) -> usize {
        self.site_replicas.len()
    }

    /// Total servers across sites.
    pub fn server_count(&self) -> usize {
        self.site_replicas.iter().sum()
    }

    /// Whether `site` is a cold backup.
    pub fn is_cold(&self, site: usize) -> bool {
        self.cold_sites.contains(&site)
    }
}

/// A built deployment ready to simulate.
#[derive(Debug, Clone)]
pub struct BuiltDeployment {
    /// Actors in node-id order (servers first, then the RTUs).
    pub nodes: Vec<Role>,
    /// Network configuration (one extra site hosts the RTUs).
    pub net: NetConfig,
    /// Replica/master groups, as node-id lists (for safety checks).
    pub groups: Vec<Vec<NodeId>>,
    /// Node id of the first RTU (kept for single-client callers).
    pub client: NodeId,
    /// Node ids of every RTU.
    pub clients: Vec<NodeId>,
    /// First node id of each control site.
    pub site_base: Vec<usize>,
}

/// Builds the actors and network for a deployment.
///
/// Node ids are assigned site by site, then the RTUs in an extra
/// "field" site that is never flooded or isolated.
pub fn build(spec: &DeploymentSpec) -> BuiltDeployment {
    let mut site_base = Vec::with_capacity(spec.site_count());
    let mut next = 0usize;
    for &count in &spec.site_replicas {
        site_base.push(next);
        next += count;
    }
    let server_total = next;
    let rtu_count = spec.rtu_count.max(1);
    let clients: Vec<NodeId> = (0..rtu_count).map(|k| NodeId(server_total + k)).collect();
    let client = clients[0];

    let mut net_sites: Vec<usize> = spec.site_replicas.clone();
    net_sites.push(rtu_count); // field site for the RTUs
    let net = NetConfig::multi_site(&net_sites);

    let all_servers: Vec<NodeId> = (0..server_total).map(NodeId).collect();
    let mut nodes: Vec<Role> = Vec::with_capacity(server_total + 1);
    let mut groups: Vec<Vec<NodeId>> = Vec::new();

    match spec.style {
        ReplicationStyle::HotStandby => {
            for (site, &count) in spec.site_replicas.iter().enumerate() {
                let base = site_base[site];
                let site_peers: Vec<NodeId> = (base..base + count).map(NodeId).collect();
                groups.push(site_peers.clone());
                for idx in 0..count {
                    let hot = !spec.is_cold(site);
                    let acting = hot && site == 0 && idx == 0;
                    let mut m =
                        Master::new(idx, site_peers.clone(), all_servers.clone(), hot, acting);
                    if spec.is_cold(site) {
                        m.cold_activation_delay = Some(spec.activation_delay);
                    }
                    nodes.push(Role::Master(m));
                }
            }
        }
        ReplicationStyle::Quorum => {
            // Active group: all non-cold sites together. Each cold
            // site forms its own group.
            let active_sites: Vec<usize> = (0..spec.site_count())
                .filter(|s| !spec.is_cold(*s))
                .collect();
            let mut active_peers: Vec<NodeId> = Vec::new();
            let mut active_peer_sites: Vec<usize> = Vec::new();
            for &s in &active_sites {
                for i in 0..spec.site_replicas[s] {
                    active_peers.push(NodeId(site_base[s] + i));
                    active_peer_sites.push(s);
                }
            }
            let cold_nodes: Vec<NodeId> = spec
                .cold_sites
                .iter()
                .flat_map(|&s| (0..spec.site_replicas[s]).map(move |i| (s, i)))
                .map(|(s, i)| NodeId(site_base[s] + i))
                .collect();
            groups.push(active_peers.clone());

            // Build per-site so node ids stay consecutive.
            for (site, &count) in spec.site_replicas.iter().enumerate() {
                if spec.is_cold(site) {
                    let base = site_base[site];
                    let peers: Vec<NodeId> = (base..base + count).map(NodeId).collect();
                    for idx in 0..count {
                        let mut r = Replica::new(idx, peers.clone(), vec![site; count], spec.f);
                        r.active = false;
                        r.cold = Some(ColdConfig {
                            activation_delay: spec.activation_delay,
                        });
                        nodes.push(Role::Replica(r));
                    }
                    groups.push(peers);
                } else {
                    for idx in 0..count {
                        let node = NodeId(site_base[site] + idx);
                        let group_index = active_peers
                            .iter()
                            .position(|&p| p == node)
                            .expect("active node in active group");
                        let mut r = Replica::new(
                            group_index,
                            active_peers.clone(),
                            active_peer_sites.clone(),
                            spec.f,
                        );
                        r.heartbeat_targets = cold_nodes.clone();
                        if spec.proactive_recovery {
                            r.recovery = Some(RecoverySchedule {
                                start: SimTime::from_secs(10.0 + 30.0 * group_index as f64),
                                duration: SimTime::from_secs(3.0),
                            });
                        }
                        nodes.push(Role::Replica(r));
                    }
                }
            }
        }
    }

    let need_matching = match spec.style {
        ReplicationStyle::HotStandby => 1,
        ReplicationStyle::Quorum => spec.f + 1,
    };
    for k in 0..rtu_count {
        nodes.push(Role::Rtu(Rtu::new(
            all_servers.clone(),
            need_matching,
            1_000_000 * (k as u64 + 1),
        )));
    }

    BuiltDeployment {
        nodes,
        net,
        groups,
        client,
        clients,
        site_base,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_have_expected_shapes() {
        let all = DeploymentSpec::all_paper_configs();
        let names: Vec<&str> = all.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["2", "2-2", "6", "6-6", "6+6+6"]);
        assert_eq!(all[0].server_count(), 2);
        assert_eq!(all[1].server_count(), 4);
        assert_eq!(all[2].server_count(), 6);
        assert_eq!(all[3].server_count(), 12);
        assert_eq!(all[4].server_count(), 18);
        assert!(all[1].is_cold(1));
        assert!(!all[4].is_cold(2));
    }

    #[test]
    fn build_2_2_layout() {
        let b = build(&DeploymentSpec::config_2_2());
        assert_eq!(b.nodes.len(), 4 + 3);
        assert_eq!(b.client, NodeId(4));
        assert_eq!(b.clients, vec![NodeId(4), NodeId(5), NodeId(6)]);
        assert_eq!(b.net.site_count(), 3); // 2 control sites + field
        assert_eq!(b.groups.len(), 2);
        // Only the hot primary acts at start.
        let acting: Vec<bool> = b
            .nodes
            .iter()
            .filter_map(|n| n.as_master().map(|m| m.acting))
            .collect();
        assert_eq!(acting, vec![true, false, false, false]);
        // Cold site masters have an activation delay.
        assert!(b.nodes[2]
            .as_master()
            .unwrap()
            .cold_activation_delay
            .is_some());
        assert!(b.nodes[0]
            .as_master()
            .unwrap()
            .cold_activation_delay
            .is_none());
    }

    #[test]
    fn build_6_6_groups() {
        let b = build(&DeploymentSpec::config_6_6());
        assert_eq!(b.nodes.len(), 12 + 3);
        assert_eq!(b.groups.len(), 2);
        assert_eq!(b.groups[0].len(), 6);
        assert_eq!(b.groups[1].len(), 6);
        // Active replicas heartbeat the cold group.
        let active = b.nodes[0].as_replica().unwrap();
        assert_eq!(active.heartbeat_targets.len(), 6);
        assert!(active.active);
        let cold = b.nodes[6].as_replica().unwrap();
        assert!(!cold.active);
        assert!(cold.cold.is_some());
    }

    #[test]
    fn build_6p6p6_single_group() {
        let b = build(&DeploymentSpec::config_6p6p6());
        assert_eq!(b.nodes.len(), 18 + 3);
        assert_eq!(b.groups.len(), 1);
        assert_eq!(b.groups[0].len(), 18);
        let r = b.nodes[0].as_replica().unwrap();
        assert_eq!(r.quorum(), 10);
        // Peer sites are striped 0,0,..,1,..,2.
        assert_eq!(r.peer_sites[0], 0);
        assert_eq!(r.peer_sites[6], 1);
        assert_eq!(r.peer_sites[17], 2);
    }

    #[test]
    fn rtu_matching_rule_follows_style() {
        let hot = build(&DeploymentSpec::config_2());
        assert_eq!(hot.nodes.last().unwrap().as_rtu().unwrap().need_matching, 1);
        let quorum = build(&DeploymentSpec::config_6());
        assert_eq!(
            quorum.nodes.last().unwrap().as_rtu().unwrap().need_matching,
            2
        );
    }
}
