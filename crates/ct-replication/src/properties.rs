//! Executable Table I properties and the two checking tiers.
//!
//! The paper's operational-state classification is a *judgment* about
//! a deployment under a compound threat. This module turns it into
//! three machine-checkable predicates evaluated over many schedules:
//!
//! * **Agreement** — the field never accepts forged data and no two
//!   replicas in a group commit different requests in the same slot.
//! * **No split-brain** — at no point can two *independent*
//!   authorities (a quorum-capable replica group, or an acting master
//!   in some site) both answer the field. Dual acting masters inside
//!   one site are deliberately not flagged: they share state via the
//!   site LAN and the paper treats hot takeover as seamless.
//! * **Liveness under quorum** — whenever some authority remains able
//!   to reach the field at the end of a run, service must actually
//!   have resumed.
//!
//! Two tiers evaluate the predicates:
//!
//! 1. [`explore_scenario`] — bounded *exhaustive* exploration of
//!    delivery orderings via [`Explorer`], with jitter forced to zero
//!    so reordering-within-a-window stands in for latency noise.
//! 2. [`randomized_campaign`] — many seeded schedules under a
//!    [`ScheduleDist`] of per-message-class discard / delay /
//!    duplicate faults. Run `i` of a campaign with base seed `s` uses
//!    schedule seed `s + i`, so any counterexample is replayed by a
//!    single-schedule campaign at its reported seed.

use crate::deployment::DeploymentSpec;
use crate::verdict::{
    prepare_run, slot_conflict_count, summarize, FaultScenario, ObservedState, SimVerdict,
    VerdictConfig,
};
use crate::Role;
use ct_simnet::{
    ClassFaults, ExploreConfig, ExploreStats, ExploreViolation, Explorer, NodeId, ScheduleDist,
    Sim, SimTime, SiteId,
};
use std::fmt;

/// How often (in executed events) exploration re-runs the full
/// slot-conflict scan; cheap checks run on every event and every
/// terminal state runs the full scan, so this only bounds detection
/// latency, not coverage.
const SLOT_SCAN_EVERY: u64 = 64;

/// The three checkable replication properties.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicationProperty {
    /// No forged accepts, no conflicting slot commits.
    Agreement,
    /// Never two independent field-reachable authorities.
    NoSplitBrain,
    /// A surviving authority implies resumed service.
    LivenessUnderQuorum,
}

impl ReplicationProperty {
    /// All properties, in reporting order.
    pub const ALL: [ReplicationProperty; 3] = [
        ReplicationProperty::Agreement,
        ReplicationProperty::NoSplitBrain,
        ReplicationProperty::LivenessUnderQuorum,
    ];

    /// Stable name used in violation records and CSV output.
    pub fn name(self) -> &'static str {
        match self {
            ReplicationProperty::Agreement => "agreement",
            ReplicationProperty::NoSplitBrain => "no-split-brain",
            ReplicationProperty::LivenessUnderQuorum => "liveness-under-quorum",
        }
    }

    /// The observed state a violation of this property implies:
    /// safety violations are gray, liveness violations are red.
    pub fn implied_state(self) -> ObservedState {
        match self {
            ReplicationProperty::Agreement | ReplicationProperty::NoSplitBrain => {
                ObservedState::Gray
            }
            ReplicationProperty::LivenessUnderQuorum => ObservedState::Red,
        }
    }
}

impl fmt::Display for ReplicationProperty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Severity order of observed states: green < orange < red < gray.
pub fn severity(state: ObservedState) -> u8 {
    match state {
        ObservedState::Green => 0,
        ObservedState::Orange => 1,
        ObservedState::Red => 2,
        ObservedState::Gray => 3,
    }
}

/// The more severe of two observed states.
pub fn worse(a: ObservedState, b: ObservedState) -> ObservedState {
    if severity(b) > severity(a) {
        b
    } else {
        a
    }
}

/// Whether `node` can exchange messages with the field site right
/// now (not crashed, and no isolation severing the WAN path).
fn field_reachable(sim: &Sim<Role>, node: NodeId, field_site: SiteId) -> bool {
    if sim.is_crashed(node) {
        return false;
    }
    let site = sim.net_config().site(node);
    site == field_site || (!sim.is_isolated(site) && !sim.is_isolated(field_site))
}

/// Counts the independent authorities currently able to answer the
/// field: replica groups with a field-reachable active quorum, and
/// sites with a field-reachable acting master. More than one at a
/// time is a split brain — two authorities with divergent state can
/// both answer RTU polls.
pub fn authority_count(sim: &Sim<Role>, groups: &[Vec<NodeId>], field_site: SiteId) -> usize {
    let mut count = 0usize;
    for group in groups {
        let Some(&first) = group.first() else {
            continue;
        };
        match sim.node(first) {
            Role::Master(_) => {
                let acting_reachable = group.iter().any(|&n| {
                    sim.node(n).as_master().is_some_and(|m| m.acting)
                        && field_reachable(sim, n, field_site)
                });
                if acting_reachable {
                    count += 1;
                }
            }
            Role::Replica(r) => {
                let quorum = r.quorum();
                let live = group
                    .iter()
                    .filter(|&&n| {
                        sim.node(n).as_replica().is_some_and(|r| r.active)
                            && field_reachable(sim, n, field_site)
                    })
                    .count();
                if live >= quorum {
                    count += 1;
                }
            }
            Role::Rtu(_) => {}
        }
    }
    count
}

fn violation(property: ReplicationProperty, detail: String) -> Option<(String, String)> {
    Some((property.name().to_string(), detail))
}

/// Per-event property check: forged accepts and split brain on every
/// event, the slot-conflict scan only when `scan_slots` (terminal
/// states always scan via [`end_violation`]).
fn step_violation(
    sim: &Sim<Role>,
    groups: &[Vec<NodeId>],
    clients: &[NodeId],
    field_site: SiteId,
    scan_slots: bool,
) -> Option<(String, String)> {
    let bad: u64 = clients
        .iter()
        .map(|&c| sim.node(c).as_rtu().map_or(0, |r| r.bad_accepts))
        .sum();
    if bad > 0 {
        return violation(
            ReplicationProperty::Agreement,
            format!("{bad} forged response(s) accepted by the field"),
        );
    }
    let authorities = authority_count(sim, groups, field_site);
    if authorities > 1 {
        return violation(
            ReplicationProperty::NoSplitBrain,
            format!("{authorities} independent authorities can answer the field"),
        );
    }
    if scan_slots {
        let conflicts = slot_conflict_count(sim, groups);
        if conflicts > 0 {
            return violation(
                ReplicationProperty::Agreement,
                format!("{conflicts} conflicting slot commit(s)"),
            );
        }
    }
    None
}

/// End-of-run property check over a full verdict: agreement over the
/// complete logs, then liveness — a surviving authority with no
/// resumed service is a liveness violation.
fn end_violation(
    sim: &Sim<Role>,
    groups: &[Vec<NodeId>],
    field_site: SiteId,
    v: &SimVerdict,
) -> Option<(String, String)> {
    if v.bad_accepts > 0 {
        return violation(
            ReplicationProperty::Agreement,
            format!("{} forged response(s) accepted by the field", v.bad_accepts),
        );
    }
    if v.slot_conflicts > 0 {
        return violation(
            ReplicationProperty::Agreement,
            format!("{} conflicting slot commit(s)", v.slot_conflicts),
        );
    }
    let authorities = authority_count(sim, groups, field_site);
    if authorities > 1 {
        return violation(
            ReplicationProperty::NoSplitBrain,
            format!("{authorities} independent authorities can answer the field"),
        );
    }
    if authorities >= 1 && !v.resumed {
        return violation(
            ReplicationProperty::LivenessUnderQuorum,
            format!(
                "an authority can answer the field but service did not resume \
                 (accepted={} over the run)",
                v.accepted
            ),
        );
    }
    None
}

/// Result of one bounded exhaustive exploration of a scenario.
#[derive(Debug, Clone)]
pub struct ExploreOutcome {
    /// Search counters.
    pub stats: ExploreStats,
    /// Property violations with replayable choice-point traces.
    pub violations: Vec<ExploreViolation>,
    /// Verdicts of every terminal state, in DFS order.
    pub verdicts: Vec<SimVerdict>,
    /// Worst observed state across all terminals and violations.
    pub worst: ObservedState,
}

/// Exhaustively explores delivery orderings of `scenario` on `spec`
/// up to the bounds in `explore`, checking all three
/// [`ReplicationProperty`]s along every path.
///
/// Jitter is forced to zero so event times are schedule-independent
/// (the explorer's reordering of near-simultaneous events is the
/// model of jitter), and the verdict horizon is aligned to
/// [`ExploreConfig::horizon`], overriding
/// [`VerdictConfig::run_duration`].
pub fn explore_scenario(
    spec: &DeploymentSpec,
    scenario: &FaultScenario,
    config: &VerdictConfig,
    explore: &ExploreConfig,
) -> ExploreOutcome {
    let mut config = *config;
    config.run_duration = explore.horizon;
    let prepared = prepare_run(spec, scenario, &config);
    let groups = prepared.groups;
    let clients = prepared.clients;
    let field_site = prepared.field_site;
    let mut sim = prepared.sim;
    sim.set_jitter(0.0);

    let mut explorer = Explorer::new(sim, *explore);
    let mut steps = 0u64;
    let report = explorer.run(
        |sim| {
            steps += 1;
            step_violation(
                sim,
                &groups,
                &clients,
                field_site,
                steps.is_multiple_of(SLOT_SCAN_EVERY),
            )
        },
        |sim| {
            let v = summarize(sim, &groups, &clients, &config);
            let end = end_violation(sim, &groups, field_site, &v);
            (end, v)
        },
    );

    let mut worst = report
        .terminals
        .iter()
        .map(|v| v.state)
        .fold(ObservedState::Green, worse);
    for v in &report.violations {
        for property in ReplicationProperty::ALL {
            if v.property == property.name() {
                worst = worse(worst, property.implied_state());
            }
        }
    }
    ExploreOutcome {
        stats: report.stats,
        violations: report.violations,
        verdicts: report.terminals,
        worst,
    }
}

/// A property violation found by a randomized campaign, replayable
/// from its schedule seed alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignViolation {
    /// Which property failed.
    pub property: ReplicationProperty,
    /// Human-readable description.
    pub detail: String,
    /// Schedule seed of the violating run: a one-schedule campaign
    /// with this base seed reproduces it exactly.
    pub seed: u64,
    /// Index of the run within the campaign.
    pub run_index: u64,
}

/// Result of a randomized schedule campaign.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// Schedules run.
    pub schedules: u64,
    /// Runs classified green.
    pub green: u64,
    /// Runs classified orange.
    pub orange: u64,
    /// Runs classified red.
    pub red: u64,
    /// Runs classified gray.
    pub gray: u64,
    /// Worst observed state across all runs.
    pub worst: ObservedState,
    /// Total schedule perturbations injected (discards + delays +
    /// duplicates) across the campaign.
    pub perturbations: u64,
    /// Property violations, one entry per violating run.
    pub violations: Vec<CampaignViolation>,
}

impl CampaignOutcome {
    /// Tally of one run's observed state.
    fn count(&mut self, state: ObservedState) {
        match state {
            ObservedState::Green => self.green += 1,
            ObservedState::Orange => self.orange += 1,
            ObservedState::Red => self.red += 1,
            ObservedState::Gray => self.gray += 1,
        }
        self.worst = worse(self.worst, state);
    }
}

/// The default fault mix for campaigns: light uniform discard /
/// delay / duplicate on every message class — enough to shuffle
/// delivery order and drop individual protocol messages without
/// modelling a new attack (site isolation and intrusions are the
/// scenario's job, not the schedule's).
pub fn default_campaign_dist(seed: u64) -> ScheduleDist {
    ScheduleDist::uniform(
        seed,
        ClassFaults {
            discard: 0.02,
            delay: 0.05,
            delay_by: SimTime::from_millis(40.0),
            duplicate: 0.02,
        },
    )
}

/// Runs `schedules` seeded randomized schedules of `scenario` on
/// `spec` and checks every property on each completed run.
///
/// Run `i` uses `dist.seed + i` as its schedule seed; everything
/// else (network seed, timing) is identical across runs, so a
/// campaign is a pure function of `(spec, scenario, config, dist,
/// schedules)` and any reported violation seed replays as a
/// one-schedule campaign.
pub fn randomized_campaign(
    spec: &DeploymentSpec,
    scenario: &FaultScenario,
    config: &VerdictConfig,
    dist: &ScheduleDist,
    schedules: u64,
) -> CampaignOutcome {
    let mut out = CampaignOutcome {
        schedules,
        green: 0,
        orange: 0,
        red: 0,
        gray: 0,
        worst: ObservedState::Green,
        perturbations: 0,
        violations: Vec::new(),
    };
    for i in 0..schedules {
        let seed = dist.seed.wrapping_add(i);
        let mut prepared = prepare_run(spec, scenario, config);
        prepared.sim.set_schedule_dist(dist.with_seed(seed));
        let stats = prepared.sim.run_until(config.run_duration);
        out.perturbations +=
            stats.schedule_discards + stats.schedule_delays + stats.schedule_duplicates;
        let v = summarize(&prepared.sim, &prepared.groups, &prepared.clients, config);
        out.count(v.state);
        if let Some((name, detail)) =
            end_violation(&prepared.sim, &prepared.groups, prepared.field_site, &v)
        {
            let property = ReplicationProperty::ALL
                .into_iter()
                .find(|p| p.name() == name)
                .expect("end_violation names a known property");
            out.violations.push(CampaignViolation {
                property,
                detail,
                seed,
                run_index: i,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> VerdictConfig {
        VerdictConfig {
            run_duration: SimTime::from_secs(40.0),
            ..VerdictConfig::default()
        }
    }

    fn explore_cfg() -> ExploreConfig {
        ExploreConfig {
            horizon: SimTime::from_secs(40.0),
            max_depth: 2,
            ..ExploreConfig::default()
        }
    }

    #[test]
    fn benign_exploration_of_config_2_is_green_everywhere() {
        let out = explore_scenario(
            &DeploymentSpec {
                rtu_count: 1,
                ..DeploymentSpec::config_2()
            },
            &FaultScenario::benign(),
            &cfg(),
            &explore_cfg(),
        );
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert_eq!(out.worst, ObservedState::Green);
        assert!(out.stats.terminals >= 1);
        assert!(out.verdicts.iter().all(|v| v.state == ObservedState::Green));
    }

    #[test]
    fn intrusion_on_config_2_violates_agreement_on_every_path() {
        let out = explore_scenario(
            &DeploymentSpec {
                rtu_count: 1,
                ..DeploymentSpec::config_2()
            },
            &FaultScenario {
                intrusions: vec![(0, 0)],
                ..FaultScenario::default()
            },
            &cfg(),
            &explore_cfg(),
        );
        assert!(!out.violations.is_empty());
        assert_eq!(out.worst, ObservedState::Gray);
        assert!(out
            .violations
            .iter()
            .all(|v| v.property == ReplicationProperty::Agreement.name()));
    }

    #[test]
    fn exploration_is_deterministic() {
        let run = || {
            let out = explore_scenario(
                &DeploymentSpec {
                    rtu_count: 1,
                    ..DeploymentSpec::config_2_2()
                },
                &FaultScenario {
                    isolated_sites: vec![0],
                    ..FaultScenario::default()
                },
                &cfg(),
                &explore_cfg(),
            );
            (out.stats, out.worst, out.verdicts.len())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn isolation_of_2_2_primary_explores_to_orange_without_violations() {
        let out = explore_scenario(
            &DeploymentSpec {
                rtu_count: 1,
                ..DeploymentSpec::config_2_2()
            },
            &FaultScenario {
                isolated_sites: vec![0],
                ..FaultScenario::default()
            },
            &cfg(),
            &explore_cfg(),
        );
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert_eq!(out.worst, ObservedState::Orange, "{:?}", out.verdicts);
    }

    #[test]
    fn campaign_on_benign_config_2_stays_green() {
        let out = randomized_campaign(
            &DeploymentSpec {
                rtu_count: 1,
                ..DeploymentSpec::config_2()
            },
            &FaultScenario::benign(),
            &cfg(),
            &default_campaign_dist(1),
            25,
        );
        assert_eq!(out.green, 25, "{out:?}");
        assert_eq!(out.worst, ObservedState::Green);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert!(out.perturbations > 0, "campaign never perturbed anything");
    }

    #[test]
    fn campaign_flags_the_gray_cell_with_replayable_seeds() {
        let spec = DeploymentSpec {
            rtu_count: 1,
            ..DeploymentSpec::config_2()
        };
        let scenario = FaultScenario {
            intrusions: vec![(0, 0)],
            ..FaultScenario::default()
        };
        let out = randomized_campaign(&spec, &scenario, &cfg(), &default_campaign_dist(1), 10);
        assert_eq!(out.gray, 10, "{out:?}");
        assert_eq!(out.violations.len(), 10);
        let first = &out.violations[0];
        assert_eq!(first.property, ReplicationProperty::Agreement);
        // Replay: a one-schedule campaign at the reported seed
        // reproduces the same violation.
        let replay = randomized_campaign(
            &spec,
            &scenario,
            &cfg(),
            &default_campaign_dist(first.seed),
            1,
        );
        assert_eq!(replay.violations.len(), 1);
        assert_eq!(replay.violations[0].detail, first.detail);
        assert_eq!(replay.violations[0].seed, first.seed);
    }

    #[test]
    fn campaigns_are_deterministic_per_seed() {
        let spec = DeploymentSpec {
            rtu_count: 1,
            ..DeploymentSpec::config_2_2()
        };
        let scenario = FaultScenario {
            isolated_sites: vec![0],
            ..FaultScenario::default()
        };
        let run = || {
            let out = randomized_campaign(&spec, &scenario, &cfg(), &default_campaign_dist(9), 8);
            (
                out.green,
                out.orange,
                out.red,
                out.gray,
                out.perturbations,
                out.violations.len(),
            )
        };
        assert_eq!(run(), run());
    }
}
