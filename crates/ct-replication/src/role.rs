//! The unified node type used by deployments.

use crate::client::Rtu;
use crate::master::Master;
use crate::msg::ProtocolMsg;
use crate::replica::Replica;
use ct_simnet::{Actor, Ctx, NodeId, StateHash};

/// A node in a SCADA deployment: a quorum replica, a hot/cold SCADA
/// master, or a field client.
#[derive(Debug, Clone)]
// A `Replica` dwarfs the other variants, but only a handful of roles
// exist per simulation, so boxing would buy nothing.
#[allow(clippy::large_enum_variant)]
pub enum Role {
    /// Intrusion-tolerant quorum replica.
    Replica(Replica),
    /// Hot-standby / cold-backup SCADA master.
    Master(Master),
    /// Field client.
    Rtu(Rtu),
}

impl Role {
    /// The replica inside, if any.
    pub fn as_replica(&self) -> Option<&Replica> {
        match self {
            Role::Replica(r) => Some(r),
            _ => None,
        }
    }

    /// The master inside, if any.
    pub fn as_master(&self) -> Option<&Master> {
        match self {
            Role::Master(m) => Some(m),
            _ => None,
        }
    }

    /// The RTU inside, if any.
    pub fn as_rtu(&self) -> Option<&Rtu> {
        match self {
            Role::Rtu(c) => Some(c),
            _ => None,
        }
    }

    /// Marks the node as compromised (Byzantine).
    ///
    /// # Panics
    ///
    /// Panics when applied to an RTU: the threat model compromises
    /// servers, not field devices.
    pub fn set_byzantine(&mut self) {
        match self {
            Role::Replica(r) => r.byzantine = true,
            Role::Master(m) => m.byzantine = true,
            Role::Rtu(_) => panic!("cannot compromise an RTU in this threat model"),
        }
    }
}

impl Actor for Role {
    type Msg = ProtocolMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, ProtocolMsg>) {
        match self {
            Role::Replica(r) => r.on_start(ctx),
            Role::Master(m) => m.on_start(ctx),
            Role::Rtu(c) => c.on_start(ctx),
        }
    }

    fn on_message(&mut self, from: NodeId, msg: ProtocolMsg, ctx: &mut Ctx<'_, ProtocolMsg>) {
        match self {
            Role::Replica(r) => r.on_message(from, msg, ctx),
            Role::Master(m) => m.on_message(from, msg, ctx),
            Role::Rtu(c) => c.on_message(from, msg, ctx),
        }
    }

    fn on_timer(&mut self, id: u64, ctx: &mut Ctx<'_, ProtocolMsg>) {
        match self {
            Role::Replica(r) => r.on_timer(id, ctx),
            Role::Master(m) => m.on_timer(id, ctx),
            Role::Rtu(c) => c.on_timer(id, ctx),
        }
    }
}

impl StateHash for Role {
    fn state_hash(&self, h: &mut ct_store::StableHasher) {
        match self {
            Role::Replica(r) => {
                h.write_u8(0);
                r.state_hash(h);
            }
            Role::Master(m) => {
                h.write_u8(1);
                m.state_hash(h);
            }
            Role::Rtu(c) => {
                h.write_u8(2);
                c.state_hash(h);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_discriminate() {
        let rtu = Role::Rtu(Rtu::new(vec![NodeId(0)], 1, 0));
        assert!(rtu.as_rtu().is_some());
        assert!(rtu.as_replica().is_none());
        assert!(rtu.as_master().is_none());
    }

    #[test]
    #[should_panic(expected = "cannot compromise an RTU")]
    fn rtu_cannot_be_byzantine() {
        let mut rtu = Role::Rtu(Rtu::new(vec![NodeId(0)], 1, 0));
        rtu.set_byzantine();
    }
}
