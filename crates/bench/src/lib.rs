//! Shared helpers for the benchmark suite.
//!
//! Each `benches/figN_*.rs` target regenerates one figure of the
//! paper's evaluation: it prints the reproduced probability rows (the
//! deliverable) and then times the analysis stage that produces them.

use compound_threats::figures::{reproduce, Figure, FigureData};
use compound_threats::report::figure_table;
use compound_threats::{CaseStudy, CaseStudyConfig};
use std::sync::OnceLock;

/// The shared full-scale case study (1000 realizations), built once
/// per benchmark process.
pub fn study() -> &'static CaseStudy {
    static STUDY: OnceLock<CaseStudy> = OnceLock::new();
    STUDY.get_or_init(|| CaseStudy::build(&CaseStudyConfig::default()).expect("case study builds"))
}

/// Reproduces a figure and prints its rows (so `cargo bench` output
/// contains the regenerated table), returning the data for timing
/// assertions.
pub fn print_figure(figure: Figure) -> FigureData {
    let data = reproduce(study(), figure).expect("figure reproduces");
    println!("\n{}", figure_table(&data));
    data
}

/// Times the end-to-end per-figure analysis (post-disaster derivation,
/// worst-case attack, classification for all five architectures) in a
/// Criterion benchmark body.
pub fn bench_figure(c: &mut criterion::Criterion, figure: Figure, name: &str) {
    print_figure(figure);
    let study = study();
    c.bench_function(name, |b| {
        b.iter(|| reproduce(study, figure).expect("figure reproduces"))
    });
}
