//! Regenerates Figure 10 of the paper and times the analysis stage.

use compound_threats::figures::Figure;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    ct_bench::bench_figure(c, Figure::Fig10, "fig10_kahe_hurricane");
}

criterion_group!(benches, bench);
criterion_main!(benches);
