//! Extension bench: grid-impact evaluation (wind fragility + DC power
//! flow + cascade) over the hazard ensemble, printing the
//! supervised-vs-blind served-load table.

use compound_threats::grid_impact::{grid_impact, GridImpactConfig};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let study = ct_bench::study();
    let config = GridImpactConfig::default();
    let summary = grid_impact(study, &config).expect("grid impact runs");
    println!(
        "\nGrid impact over {} realizations:",
        summary.served_blind.len()
    );
    println!(
        "  mean served, SCADA up   : {:5.1} %",
        100.0 * summary.mean_served_supervised()
    );
    println!(
        "  mean served, SCADA down : {:5.1} %",
        100.0 * summary.mean_served_blind()
    );
    println!(
        "  P(blind served < 90%)   : {:5.1} %",
        100.0 * summary.p_loss_below(0.9)
    );

    let mut group = c.benchmark_group("grid_impact");
    group.sample_size(10);
    group.bench_function("full_ensemble", |b| {
        b.iter(|| grid_impact(study, &config).expect("grid impact runs"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
