//! Profiling-path microbenchmark: the naive per-realization attacker
//! evaluation vs the histogram-memoized path, with the histogram cache
//! cold (first profile call for a plan) and warm (every later call).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use ct_scada::oahu::{self, SiteChoice};
use ct_scada::Architecture;
use ct_threat::ThreatScenario;

fn bench_profile_memo(c: &mut Criterion) {
    let study = ct_bench::study();
    let plan = oahu::site_plan(Architecture::C2_2, SiteChoice::Waiau).expect("site plan");
    let scenario = ThreatScenario::HurricaneIntrusionIsolation;
    let mut group = c.benchmark_group("profile_memoization");
    group.throughput(Throughput::Elements(study.realizations().len() as u64));
    group.bench_function("naive", |b| {
        b.iter(|| {
            study
                .profile_with_plan_naive(&plan, scenario)
                .expect("profiles")
        })
    });
    group.bench_function("memoized_cold", |b| {
        // Cloning resets the histogram cache, so every iteration pays
        // the full histogram build plus the per-pattern evaluations.
        b.iter_batched(
            || study.clone(),
            |cold| cold.profile_with_plan(&plan, scenario).expect("profiles"),
            BatchSize::LargeInput,
        )
    });
    group.bench_function("memoized_warm", |b| {
        b.iter(|| study.profile_with_plan(&plan, scenario).expect("profiles"))
    });
    group.finish();
}

criterion_group!(benches, bench_profile_memo);
criterion_main!(benches);
