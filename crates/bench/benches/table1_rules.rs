//! Regenerates Table I (the state-classification conditions) by
//! classifying every architecture × site-status × intrusion-count
//! combination, printing the resulting decision table, and timing the
//! classifier.

use criterion::{criterion_group, criterion_main, Criterion};
use ct_scada::Architecture;
use ct_threat::{classify, SiteState, SiteStatus, SystemState};

fn all_states(arch: Architecture) -> Vec<SystemState> {
    let statuses = [SiteStatus::Up, SiteStatus::Flooded, SiteStatus::Isolated];
    let n = arch.site_count();
    let mut out = Vec::new();
    let combos = 3usize.pow(n as u32);
    for mut code in 0..combos {
        let mut sites = Vec::with_capacity(n);
        for _ in 0..n {
            sites.push(statuses[code % 3]);
            code /= 3;
        }
        for intrusions in 0..=arch.gray_threshold() {
            // Place intrusions in the first running site, mirroring
            // the worst-case attacker.
            let mut site_states: Vec<SiteState> = sites
                .iter()
                .map(|&status| SiteState {
                    status,
                    intrusions: 0,
                })
                .collect();
            if intrusions > 0 {
                if let Some(target) = site_states
                    .iter()
                    .position(|s| s.status != SiteStatus::Flooded)
                {
                    site_states[target].intrusions = intrusions;
                } else {
                    continue;
                }
            }
            out.push(SystemState {
                architecture: arch,
                sites: site_states,
            });
        }
    }
    out
}

fn print_table() {
    println!("\nTable I — operational state per configuration and condition:");
    for arch in Architecture::ALL {
        println!("Configuration {arch}:");
        for state in all_states(arch) {
            println!("  {:<46} -> {}", state.to_string(), classify(&state));
        }
    }
}

fn bench(c: &mut Criterion) {
    print_table();
    let states: Vec<SystemState> = Architecture::ALL
        .iter()
        .flat_map(|&a| all_states(a))
        .collect();
    println!("\n({} distinct conditions classified)", states.len());
    c.bench_function("table1_rules", |b| {
        b.iter(|| {
            states
                .iter()
                .map(|s| classify(std::hint::black_box(s)) as usize)
                .sum::<usize>()
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
