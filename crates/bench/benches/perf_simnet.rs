//! Performance of the discrete-event replication substrate: events
//! per second through the intrusion-tolerant protocol for each
//! configuration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ct_replication::{run_scenario, DeploymentSpec, FaultScenario, VerdictConfig};
use ct_simnet::SimTime;

fn bench(c: &mut Criterion) {
    let cfg = VerdictConfig {
        run_duration: SimTime::from_secs(30.0),
        ..VerdictConfig::default()
    };
    let mut group = c.benchmark_group("replication_30s_virtual");
    group.sample_size(10);
    for spec in DeploymentSpec::all_paper_configs() {
        group.bench_with_input(BenchmarkId::from_parameter(&spec.name), &spec, |b, spec| {
            b.iter(|| {
                let v = run_scenario(spec, &FaultScenario::benign(), &cfg);
                assert!(v.safe);
                v.accepted
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
