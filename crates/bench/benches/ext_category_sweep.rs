//! Extension bench: hazard-intensity sensitivity — the case study
//! rebuilt per Saffir-Simpson category.

use compound_threats::pipeline::CaseStudyConfig;
use compound_threats::sensitivity::category_sweep;
use criterion::{criterion_group, criterion_main, Criterion};
use ct_hydro::Category;
use ct_scada::{oahu::SiteChoice, Architecture};
use ct_threat::ThreatScenario;

fn bench(c: &mut Criterion) {
    let base = CaseStudyConfig::builder()
        .realizations(300)
        .build()
        .unwrap();
    let cats = [
        Category::Cat1,
        Category::Cat2,
        Category::Cat3,
        Category::Cat4,
    ];
    let points = category_sweep(&base, &cats, ThreatScenario::Hurricane, SiteChoice::Waiau)
        .expect("sweep runs");
    println!("\nCategory sweep (hurricane-only, Waiau backup):");
    for p in &points {
        println!(
            "  {:<12} P(CC floods) {:5.1} %   \"6+6+6\" green {:5.1} %",
            p.category.to_string(),
            100.0 * p.p_honolulu_flood,
            100.0 * p.profile(Architecture::C6P6P6).unwrap().green()
        );
    }
    let mut group = c.benchmark_group("category_sweep");
    group.sample_size(10);
    group.bench_function("four_categories_300_realizations", |b| {
        b.iter(|| {
            category_sweep(&base, &cats, ThreatScenario::Hurricane, SiteChoice::Waiau)
                .expect("sweep runs")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
