//! Ablation: the fast parametric surge model (used for the
//! 1000-realization ensembles) vs the 2-D shallow-water solver (the
//! ADCIRC stand-in). Prints both models' station peaks for a direct
//! hit, then times one storm evaluation under each.

use criterion::{criterion_group, criterion_main, Criterion};
use ct_geo::terrain::{synthesize_oahu, OahuTerrainConfig};
use ct_geo::LatLon;
use ct_hydro::{
    ParametricSurge, ShallowWaterConfig, ShallowWaterSolver, StationId, Stations, StormParams,
    StormTrack, SurgeCalibration,
};

fn direct_hit() -> StormParams {
    StormParams {
        track: StormTrack::straight(LatLon::new(19.2, -158.35), 5.0, 6.0, 48.0)
            .expect("valid track"),
        central_pressure_hpa: 966.0,
        ambient_pressure_hpa: 1010.0,
        rmax_km: 35.0,
        b: 1.6,
        tide_m: 0.3,
    }
}

fn bench(c: &mut Criterion) {
    let dem = synthesize_oahu(&OahuTerrainConfig::default());
    let storm = direct_hit();
    let parametric = ParametricSurge::new(Stations::from_dem(&dem), SurgeCalibration::default());
    let coarse = ShallowWaterConfig {
        cell_km: 3.0,
        window_before_hours: 8.0,
        window_after_hours: 4.0,
        ..ShallowWaterConfig::default()
    };
    let solver = ShallowWaterSolver::new(&dem, coarse);

    // Print the comparison once.
    let fast = parametric.station_surge(&storm).expect("parametric runs");
    let outcome = solver.run(&storm).expect("solver stays stable");
    println!("\nDirect-hit Category 2 — station peaks (m):");
    for id in [
        StationId::South,
        StationId::Ewa,
        StationId::West,
        StationId::North,
        StationId::East,
    ] {
        let enu = dem.projection().to_enu(parametric.stations().get(id).pos);
        println!(
            "  {:<18} parametric {:5.2}   shallow-water {:5.2}",
            id.to_string(),
            fast.get(id),
            outcome.coastal_peak_near(enu, 8.0).unwrap_or(f64::NAN)
        );
    }

    c.bench_function("surge_parametric_one_storm", |b| {
        b.iter(|| parametric.station_surge(&storm).expect("parametric runs"))
    });
    let mut slow = c.benchmark_group("surge_shallow_water");
    slow.sample_size(10);
    slow.bench_function("one_storm_coarse", |b| {
        b.iter(|| solver.run(&storm).expect("solver stays stable"))
    });
    slow.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
