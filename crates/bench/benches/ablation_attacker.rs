//! Ablation: the paper's greedy worst-case attacker vs the
//! "computationally inefficient" exhaustive search it replaces
//! (Sec. V-B). Both produce identical worst-case classifications
//! (property-tested); this bench quantifies the cost gap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ct_scada::Architecture;
use ct_threat::{
    classify, AttackBudget, Attacker, ExhaustiveAttacker, PostDisasterState, WorstCaseAttacker,
};

fn posts(arch: Architecture) -> Vec<PostDisasterState> {
    let n = arch.site_count();
    (0..(1u32 << n))
        .map(|mask| PostDisasterState::new(arch, (0..n).map(|i| mask & (1 << i) != 0).collect()))
        .collect()
}

fn bench(c: &mut Criterion) {
    let budget = AttackBudget {
        intrusions: 2,
        isolations: 1,
    };
    let mut group = c.benchmark_group("attacker");
    for arch in [Architecture::C2_2, Architecture::C6_6, Architecture::C6P6P6] {
        let states = posts(arch);
        group.bench_with_input(
            BenchmarkId::new("greedy", arch.label()),
            &states,
            |b, states| {
                b.iter(|| {
                    states
                        .iter()
                        .map(|p| classify(&WorstCaseAttacker.attack(arch, p, budget)) as usize)
                        .sum::<usize>()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("exhaustive", arch.label()),
            &states,
            |b, states| {
                b.iter(|| {
                    states
                        .iter()
                        .map(|p| classify(&ExhaustiveAttacker.attack(arch, p, budget)) as usize)
                        .sum::<usize>()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
