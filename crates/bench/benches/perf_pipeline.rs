//! Performance of the full Fig. 5 pipeline: hazard-ensemble
//! generation (serial vs crossbeam-parallel) and per-scenario
//! profiling throughput.

use compound_threats::parallel::{par_map, par_map_dynamic};
use compound_threats::{CaseStudy, CaseStudyConfig};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ct_scada::{oahu::SiteChoice, Architecture};
use ct_threat::ThreatScenario;

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ensemble_generation");
    let n = 200usize;
    group.throughput(Throughput::Elements(n as u64));
    group.sample_size(10);
    for threads in [1usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                let cfg = CaseStudyConfig::builder()
                    .realizations(n)
                    .threads(threads)
                    .build()
                    .expect("valid config");
                b.iter(|| CaseStudy::build(&cfg).expect("case study builds"))
            },
        );
    }
    // Skewed-cost scheduling: every eighth item is ~40x heavier, so
    // static chunking strands the heavy items on a few workers while
    // the work-stealing cursor keeps all of them busy.
    let items: Vec<u64> = (0..64)
        .map(|i| if i % 8 == 0 { 400_000 } else { 10_000 })
        .collect();
    let spin = |&n: &u64| -> u64 {
        let mut acc = 0u64;
        for i in 0..n {
            acc = acc.wrapping_add(black_box(i));
        }
        acc
    };
    group.bench_function("skewed/static_chunks", |b| {
        b.iter(|| par_map(&items, 8, spin))
    });
    group.bench_function("skewed/work_stealing", |b| {
        b.iter(|| par_map_dynamic(&items, 8, spin))
    });
    group.finish();
}

fn bench_profiling(c: &mut Criterion) {
    let study = ct_bench::study();
    let mut group = c.benchmark_group("scenario_profiling");
    group.throughput(Throughput::Elements(
        study.realizations().len() as u64 * Architecture::ALL.len() as u64,
    ));
    group.bench_function("all_architectures_full_compound", |b| {
        b.iter(|| {
            Architecture::ALL
                .iter()
                .map(|&arch| {
                    study
                        .profile(
                            arch,
                            ThreatScenario::HurricaneIntrusionIsolation,
                            SiteChoice::Waiau,
                        )
                        .expect("profiles")
                        .green()
                })
                .sum::<f64>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_generation, bench_profiling);
criterion_main!(benches);
