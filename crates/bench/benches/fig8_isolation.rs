//! Regenerates Figure 8 of the paper and times the analysis stage.

use compound_threats::figures::Figure;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    ct_bench::bench_figure(c, Figure::Fig8, "fig8_isolation");
}

criterion_group!(benches, bench);
criterion_main!(benches);
