//! Offline timing probe behind `BENCH_pipeline.json`: measures the
//! single-threaded speedups of the optimised SWE kernel and the
//! histogram-memoized profiling path with plain wall clocks, so the
//! numbers can be regenerated without the criterion harness
//! (`cargo run --release -p ct-bench --example perf_probe`).
//! Reports best-of-N to suppress scheduler noise.

use ct_geo::grid::Grid;
use ct_geo::{EnuKm, LatLon, Projection};
use ct_hydro::swe::Forcing;
use ct_hydro::{Realization, RealizationSet, ShallowWaterConfig, ShallowWaterSolver, SweWorkspace};
use ct_scada::{oahu, Architecture};
use ct_threat::{
    classify, post_disaster_histogram, post_disaster_states, Attacker, ThreatScenario,
    WorstCaseAttacker,
};
use std::time::Instant;

#[derive(Debug)]
struct SteadyWind;

impl Forcing for SteadyWind {
    fn wind_stress(&self, _: f64, _: EnuKm) -> (f64, f64) {
        (1.2, 0.4)
    }
    fn window_s(&self) -> (f64, f64) {
        (0.0, 3.0 * 3600.0)
    }
}

fn time<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    // Warm-up once, then best-of-reps wall time in seconds.
    let _ = f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        let out = f();
        let dt = t0.elapsed().as_secs_f64();
        std::mem::drop(out);
        if dt < best {
            best = dt;
        }
    }
    best
}

fn swe_probe_domain(label: &str, wet_cols: f64) {
    // Sloping coastal strip: open sea on the west, beach rising inland.
    // `wet_cols` sets how much of the 80-col domain starts wet — the
    // active set pays off on dry-dominated (realistic island) domains.
    let cols = 80usize;
    let rows = 50usize;
    let bed = Grid::from_fn(cols, rows, EnuKm::new(0.0, 0.0), 1.0, |p| {
        -12.0 + 12.0 * (p.east / wet_cols)
    })
    .unwrap();
    let proj = Projection::new(LatLon::new(21.45, -158.0));
    let cfg = ShallowWaterConfig {
        cell_km: 1.0,
        ..ShallowWaterConfig::default()
    };
    let solver = ShallowWaterSolver::from_bed(bed, proj, cfg);

    let reps = 8;
    let fast = time(reps, || {
        let mut ws = SweWorkspace::new();
        solver
            .run_forced_with_workspace(&mut ws, &SteadyWind)
            .unwrap()
    });
    let reference = time(reps, || solver.run_forced_reference(&SteadyWind).unwrap());
    let mut ws = SweWorkspace::new();
    let reused = time(reps, || {
        solver
            .run_forced_with_workspace(&mut ws, &SteadyWind)
            .unwrap()
    });
    println!(
        "swe {cols}x{rows} {label} 3h: reference {:.3}s fast {:.3}s ({:.2}x) reused-ws {:.3}s ({:.2}x)",
        reference,
        fast,
        reference / fast,
        reused,
        reference / reused,
    );
}

fn profile_probe() {
    let dem = ct_geo::terrain::synthesize_oahu(&ct_geo::terrain::OahuTerrainConfig::default());
    let topo = oahu::topology();
    let pois = topo.to_pois(&dem).unwrap();
    let plan = oahu::site_plan(Architecture::C2_2, oahu::SiteChoice::Waiau).unwrap();
    let h = pois.iter().position(|p| p.id == oahu::HONOLULU_CC).unwrap();
    let w = pois.iter().position(|p| p.id == oahu::WAIAU).unwrap();
    let n = 1000usize;
    let mut realizations = Vec::new();
    for i in 0..n {
        let mut inundation_m = vec![0.0; pois.len()];
        if i % 3 != 0 {
            inundation_m[h] = 2.0;
        }
        if i % 7 == 0 {
            inundation_m[w] = 1.5;
        }
        realizations.push(Realization {
            index: i,
            tide_m: 0.0,
            max_station_surge_m: 0.0,
            inundation_m,
        });
    }
    let set = RealizationSet::from_parts(pois, realizations);
    let budget = ThreatScenario::HurricaneIntrusionIsolation.budget();
    let arch = plan.architecture();
    let attacker = WorstCaseAttacker;

    let reps = 20;
    let naive = time(reps, || {
        let posts = post_disaster_states(&plan, &set).unwrap();
        posts
            .iter()
            .map(|post| classify(&attacker.attack(arch, post, budget)) as usize)
            .sum::<usize>()
    });
    let memo = time(reps, || {
        let hist = post_disaster_histogram(&plan, &set).unwrap();
        hist.iter()
            .map(|(post, n)| classify(&attacker.attack(arch, post, budget)) as usize * n)
            .sum::<usize>()
    });
    let hist = post_disaster_histogram(&plan, &set).unwrap();
    let warm = time(reps, || {
        hist.iter()
            .map(|(post, n)| classify(&attacker.attack(arch, post, budget)) as usize * n)
            .sum::<usize>()
    });
    println!(
        "profile n={n}: naive {:.6}s histogram {:.6}s ({:.1}x) warm-cache {:.9}s ({:.0}x)",
        naive,
        memo,
        naive / memo,
        warm,
        naive / warm,
    );
}

fn swe_probe_oahu() {
    // The production case: the ablation benchmark's direct-hit storm
    // over the synthetic Oahu DEM at the coarse solver resolution.
    use ct_geo::terrain::{synthesize_oahu, OahuTerrainConfig};
    use ct_hydro::swe::StormForcing;
    use ct_hydro::{StormParams, StormTrack};

    let dem = synthesize_oahu(&OahuTerrainConfig::default());
    let storm = StormParams {
        track: StormTrack::straight(LatLon::new(19.2, -158.35), 5.0, 6.0, 48.0)
            .expect("valid track"),
        central_pressure_hpa: 966.0,
        ambient_pressure_hpa: 1010.0,
        rmax_km: 35.0,
        b: 1.6,
        tide_m: 0.3,
    };
    let coarse = ct_hydro::ShallowWaterConfig {
        cell_km: 3.0,
        window_before_hours: 8.0,
        window_after_hours: 4.0,
        ..ct_hydro::ShallowWaterConfig::default()
    };
    let solver = ShallowWaterSolver::new(&dem, coarse);
    let bed = solver.bed().as_slice();
    let wet = bed.iter().filter(|&&z| z < storm.tide_m).count();
    let n = bed.len();

    let (ext_e, ext_n) = solver.bed().extent_km();
    let center = EnuKm::new(
        solver.bed().origin().east + ext_e / 2.0,
        solver.bed().origin().north + ext_n / 2.0,
    );
    let forcing = StormForcing::new(&storm, *dem.projection(), center, 8.0, 4.0);

    let reps = 5;
    let fast = time(reps, || solver.run(&storm).unwrap());
    let reference = time(reps, || solver.run_forced_reference(&forcing).unwrap());
    let mut ws = SweWorkspace::new();
    let reused = time(reps, || solver.run_with_workspace(&mut ws, &storm).unwrap());
    println!(
        "swe oahu {n} cells ({:.0}% wet) direct hit: reference {:.3}s fast {:.3}s ({:.2}x) reused-ws {:.3}s ({:.2}x)",
        100.0 * wet as f64 / n as f64,
        reference,
        fast,
        reference / fast,
        reused,
        reference / reused,
    );
}

fn hazard_probe() {
    // The hazard-engine seam: trait-dispatched surge vs the retained
    // hard-wired reference pipeline (the dispatch overhead must be
    // noise), plus the wind and compound engines on the same ensemble.
    use compound_threats::prelude::*;

    let n = 100usize;
    let cfg = |hazard| {
        CaseStudyConfig::builder()
            .hazard(hazard)
            .realizations(n)
            .threads(1)
            .build()
            .unwrap()
    };
    let reps = 3;
    let surge_cfg = cfg(HazardSpec::Surge);
    let reference = time(reps, || {
        CaseStudy::build_reference_surge(&surge_cfg).unwrap()
    });
    let surge = time(reps, || CaseStudy::build(&surge_cfg).unwrap());
    let wind = time(reps, || CaseStudy::build(&cfg(HazardSpec::Wind)).unwrap());
    let compound = time(reps, || {
        CaseStudy::build(&cfg(HazardSpec::Compound)).unwrap()
    });
    println!(
        "hazard n={n} 1 thread: surge-reference {reference:.3}s surge-trait {surge:.3}s ({:.2}x) wind {wind:.3}s compound {compound:.3}s",
        reference / surge,
    );
}

fn store_probe() {
    // The packed-segment claim behind `BENCH_store.json`: artifact
    // put/get throughput, loose (file-per-record) vs packed
    // (append-only segment log), n records of 256 B each — the order
    // of magnitude of a realization record.
    use ct_store::{StableHasher, Store};

    let n = 10_000usize;
    let payload = vec![0xA5u8; 256];
    let key = |tag: u64, i: usize| {
        let mut h = StableHasher::new();
        h.write_u64(tag);
        h.write_u64(i as u64);
        h.finish()
    };
    let scratch = std::env::temp_dir().join(format!("ct-store-probe-{}", std::process::id()));
    std::fs::remove_dir_all(&scratch).ok();

    let reps = 3;
    let mut round = 0u64;
    let loose_put = time(reps, || {
        round += 1;
        let store = Store::open(scratch.join(format!("loose-{round}"))).unwrap();
        for i in 0..n {
            store.put(&key(round, i), &payload).unwrap();
        }
        round
    });
    let mut round_p = 0u64;
    let packed_put = time(reps, || {
        round_p += 1;
        let store = Store::open_packed(scratch.join(format!("packed-{round_p}"))).unwrap();
        for i in 0..n {
            store.put(&key(round_p, i), &payload).unwrap();
        }
        round_p
    });

    // Reads against the last round written by each layout (dropping
    // the packed store seals + reopening rebuilds its index).
    let loose = Store::open(scratch.join(format!("loose-{round}"))).unwrap();
    let loose_get = time(reps, || {
        (0..n)
            .map(|i| loose.get(&key(round, i)).unwrap().unwrap().len())
            .sum::<usize>()
    });
    let packed = Store::open(scratch.join(format!("packed-{round_p}"))).unwrap();
    assert!(packed.is_packed(), "layout must auto-detect");
    let packed_get = time(reps, || {
        (0..n)
            .map(|i| packed.get(&key(round_p, i)).unwrap().unwrap().len())
            .sum::<usize>()
    });
    println!(
        "store n={n} 256B: put loose {:.0}/s packed {:.0}/s ({:.1}x) get loose {:.0}/s packed {:.0}/s ({:.1}x)",
        n as f64 / loose_put,
        n as f64 / packed_put,
        loose_put / packed_put,
        n as f64 / loose_get,
        n as f64 / packed_get,
        loose_get / packed_get,
    );
    std::fs::remove_dir_all(&scratch).ok();
}

fn remote_probe() {
    // The serving-tier claims behind `BENCH_store.json`'s remote
    // section: put/get throughput through a loopback `ct serve`
    // daemon (one TCP connection per operation, the wire contract),
    // and /probe latency percentiles under 64 concurrent connections
    // hammering a cached study.
    use compound_threats::serve::{ServeOptions, Server};
    use ct_store::remote::{read_response, write_request};
    use ct_store::{RemoteStore, StableHasher, StoreBackend};

    let scratch = std::env::temp_dir().join(format!("ct-remote-probe-{}", std::process::id()));
    std::fs::remove_dir_all(&scratch).ok();
    let server = Server::bind(
        &scratch,
        &ServeOptions {
            addr: "127.0.0.1:0".into(),
            packed: true,
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let remote = RemoteStore::connect(server.addr().to_string());

    let n = 2000usize;
    let payload = vec![0xA5u8; 256];
    let key = |tag: u64, i: usize| {
        let mut h = StableHasher::new();
        h.write_u64(0xCAFE);
        h.write_u64(tag);
        h.write_u64(i as u64);
        h.finish()
    };
    let reps = 3;
    let mut round = 0u64;
    let put = time(reps, || {
        round += 1;
        for i in 0..n {
            remote.put(&key(round, i), &payload).unwrap();
        }
        round
    });
    let get = time(reps, || {
        (0..n)
            .map(|i| remote.get(&key(round, i)).unwrap().unwrap().len())
            .sum::<usize>()
    });

    // Probe latency under 64 concurrent loopback connections. The
    // first probe builds and caches the study; the measured requests
    // are all served from it.
    let addr = server.addr();
    let target = "/probe?scenario=compound&site=waiau&realizations=12";
    let probe_once = || {
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        write_request(&mut stream, "GET", target, &[], false).unwrap();
        let response = read_response(&mut stream).unwrap();
        assert_eq!(
            response.status,
            200,
            "{}",
            String::from_utf8_lossy(&response.body)
        );
        response.body.len()
    };
    probe_once();
    let clients = 64usize;
    let per_client = 25usize;
    let mut latencies: Vec<f64> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..clients)
            .map(|_| {
                scope.spawn(|| {
                    (0..per_client)
                        .map(|_| {
                            let t0 = Instant::now();
                            probe_once();
                            t0.elapsed().as_secs_f64()
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        workers
            .into_iter()
            .flat_map(|w| w.join().unwrap())
            .collect()
    });
    latencies.sort_by(|a, b| a.total_cmp(b));
    let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p) as usize];
    println!(
        "remote n={n} 256B loopback: put {:.0}/s get {:.0}/s; probe x{} ({} clients x{}): p50 {:.2}ms p99 {:.2}ms",
        n as f64 / put,
        n as f64 / get,
        latencies.len(),
        clients,
        per_client,
        pct(0.50) * 1e3,
        pct(0.99) * 1e3,
    );
    drop(server);
    std::fs::remove_dir_all(&scratch).ok();
}

fn portfolio_probe() {
    // The region-generic pipeline claims behind `BENCH_pipeline.json`'s
    // portfolio section: build wall time vs region count at a fixed
    // per-region ensemble size under the wind hazard (whose station
    // queries go through the ct-geo spatial index), plus the index's
    // candidate-vs-hit counters for the largest portfolio — the
    // bucket walk scans `spatial.candidates` points to return
    // `spatial.hits`, versus a brute-force scan of every asset per
    // query.
    use compound_threats::prelude::*;

    let reps = 3;
    for spec in ["oahu", "synth:42:2:64", "synth:42:4:128", "synth:42:8:256"] {
        let region: ct_scada::RegionSpec = spec.parse().unwrap();
        let cfg = CaseStudyConfig::builder()
            .region(region)
            .hazard(HazardSpec::Wind)
            .realizations(40)
            .build()
            .unwrap();
        let candidates0 = ct_obs::counter(ct_obs::names::SPATIAL_CANDIDATES).get();
        let queries0 = ct_obs::counter(ct_obs::names::SPATIAL_QUERIES).get();
        let build = time(reps, || CaseStudy::build(&cfg).unwrap());
        let candidates = ct_obs::counter(ct_obs::names::SPATIAL_CANDIDATES).get() - candidates0;
        let queries = ct_obs::counter(ct_obs::names::SPATIAL_QUERIES).get() - queries0;
        println!(
            "portfolio {spec} ({} regions, {} assets) n=40 wind: build {build:.3}s \
             mean scan width {:.1}/query over {queries} queries",
            region.region_count(),
            region.total_assets(),
            candidates as f64 / queries.max(1) as f64,
        );
    }

    // Thread scaling at the acceptance scale (8 regions, 2000
    // assets): per-region solves share one work-stealing pool over
    // the flattened region × realization sequence. n=200 so the
    // parallel evaluation dominates the serial prep (topology build,
    // ensemble generation).
    for threads in [1usize, 4, 8] {
        let cfg = CaseStudyConfig::builder()
            .region("synth:42:8:2000".parse().unwrap())
            .hazard(HazardSpec::Wind)
            .realizations(200)
            .threads(threads)
            .build()
            .unwrap();
        let build = time(reps, || CaseStudy::build(&cfg).unwrap());
        println!("portfolio synth:42:8:2000 n=200 wind threads={threads}: build {build:.3}s");
    }
}

fn main() {
    swe_probe_domain("wet20pct", 16.0);
    swe_probe_domain("wet75pct", 60.0);
    swe_probe_oahu();
    profile_probe();
    hazard_probe();
    store_probe();
    remote_probe();
    portfolio_probe();
}
