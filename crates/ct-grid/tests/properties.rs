//! Property-based tests for the power-grid substrate: random radial
//! networks with arbitrary outages must always satisfy the physical
//! invariants of the DC power-flow model.

use ct_geo::LatLon;
use ct_grid::{
    dc_power_flow, simulate_cascade, Bus, BusId, BusKind, GridNetwork, Line, LineId, OutageSet,
};
use proptest::prelude::*;

/// Builds a random tree-plus-chords network: bus 0 is a big generator,
/// every other bus is a load attached to a random earlier bus, plus a
/// few extra chord lines for meshing.
fn random_network(
    n_buses: usize,
    attach: &[usize],
    chords: &[(usize, usize)],
    demands: &[f64],
) -> GridNetwork {
    let mut buses = vec![Bus {
        name: "gen".to_string(),
        kind: BusKind::Generator {
            capacity_mw: 10_000.0,
        },
        pos: LatLon::new(21.3, -158.0),
    }];
    for (i, &d) in demands.iter().enumerate().take(n_buses - 1) {
        buses.push(Bus {
            name: format!("load{i}"),
            kind: BusKind::Load {
                demand_mw: d.max(1.0),
            },
            pos: LatLon::new(21.3 + 0.01 * i as f64, -158.0),
        });
    }
    let mut lines = Vec::new();
    for i in 1..n_buses {
        let parent = attach[i - 1] % i;
        lines.push(Line {
            from: BusId(parent),
            to: BusId(i),
            susceptance: 20.0,
            capacity_mw: 20_000.0,
        });
    }
    for &(a, b) in chords {
        let (a, b) = (a % n_buses, b % n_buses);
        if a != b {
            lines.push(Line {
                from: BusId(a),
                to: BusId(b),
                susceptance: 10.0,
                capacity_mw: 20_000.0,
            });
        }
    }
    GridNetwork::new(buses, lines).expect("generated network is valid")
}

fn strategy() -> impl Strategy<Value = (GridNetwork, Vec<usize>)> {
    (3usize..10).prop_flat_map(|n| {
        (
            prop::collection::vec(0usize..10, n - 1),
            prop::collection::vec((0usize..10, 0usize..10), 0..3),
            prop::collection::vec(5.0f64..200.0, n - 1),
            prop::collection::vec(0usize..20, 0..4),
        )
            .prop_map(move |(attach, chords, demands, outage_picks)| {
                (random_network(n, &attach, &chords, &demands), outage_picks)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Physical invariants under arbitrary line outages: served is
    /// within [0, demand]; islands partition the live buses; flows
    /// conserve at junction-free accounting level.
    #[test]
    fn power_flow_invariants((grid, outage_picks) in strategy()) {
        let mut outages = OutageSet::none();
        for pick in outage_picks {
            outages.lines.insert(LineId(pick % grid.lines().len()));
        }
        let state = dc_power_flow(&grid, &outages).expect("solvable");
        let served = state.served_mw();
        prop_assert!(served >= -1e-9);
        prop_assert!(served <= grid.total_demand_mw() + 1e-6);
        // Islands partition the buses.
        let mut seen = std::collections::BTreeSet::new();
        for island in &state.islands {
            for &b in &island.buses {
                prop_assert!(seen.insert(b), "bus {b:?} in two islands");
            }
        }
        prop_assert_eq!(seen.len(), grid.buses().len());
        // With the giant generator connected, served equals the demand
        // reachable from bus 0.
        let gen_island = state
            .islands
            .iter()
            .find(|i| i.buses.contains(&BusId(0)))
            .expect("generator island exists");
        prop_assert!((gen_island.served_mw - gen_island.demand_mw).abs() < 1e-6);
    }

    /// Cascades terminate and never increase the served load.
    #[test]
    fn cascade_terminates_and_never_helps((grid, outage_picks) in strategy()) {
        let mut outages = OutageSet::none();
        for pick in outage_picks {
            outages.lines.insert(LineId(pick % grid.lines().len()));
        }
        let before = dc_power_flow(&grid, &outages).expect("solvable");
        let outcome = simulate_cascade(&grid, &outages).expect("cascade runs");
        prop_assert!(outcome.rounds <= grid.lines().len());
        prop_assert!(
            outcome.final_state.served_mw() <= before.served_mw() + 1e-6,
            "cascade increased service"
        );
        // Over-generous limits here: nothing should actually trip.
        prop_assert!(outcome.tripped.is_empty());
    }

    /// Emergency shedding keeps at least as much load as the cascade,
    /// for any initial damage.
    #[test]
    fn shedding_dominates_cascade((grid, outage_picks) in strategy()) {
        let mut outages = OutageSet::none();
        for pick in outage_picks {
            outages.lines.insert(LineId(pick % grid.lines().len()));
        }
        let state = dc_power_flow(&grid, &outages).expect("solvable");
        let shed = state.served_after_emergency_shedding(&grid);
        let cascade = simulate_cascade(&grid, &outages).expect("cascade runs");
        let supervised = shed.max(cascade.final_state.served_mw());
        prop_assert!(supervised + 1e-6 >= cascade.final_state.served_mw());
        prop_assert!(shed <= state.served_mw() + 1e-6, "shedding created power");
    }
}

#[test]
fn oahu_grid_invariants_under_every_single_line_outage() {
    // Exhaustive N-1 sweep of the real case-study network.
    let grid = ct_grid::oahu::grid();
    for li in 0..grid.lines().len() {
        let mut outages = OutageSet::none();
        outages.lines.insert(LineId(li));
        let outcome = simulate_cascade(&grid, &outages).expect("solvable");
        let f = outcome.served_fraction();
        assert!(
            (0.0..=1.0 + 1e-9).contains(&f),
            "line {li}: served fraction {f}"
        );
        // Losing any single line must never black out more than half
        // the island in the supervised model (operators pick the
        // better of island-wide shedding and deliberately opening the
        // congested line — the same rule `core::grid_impact` uses).
        let state = dc_power_flow(&grid, &outages).unwrap();
        let shed = state.served_after_emergency_shedding(&grid) / state.total_demand_mw;
        let supervised = shed.max(f);
        assert!(
            supervised > 0.5,
            "line {li}: supervised served only {supervised}"
        );
    }
}
