//! Cascading-overload simulation: after the initial damage, lines
//! loaded beyond their thermal limit trip, flows redistribute, and the
//! process repeats until no line is overloaded.

use crate::network::{GridError, GridNetwork, LineId, OutageSet};
use crate::powerflow::{dc_power_flow, GridState};
use serde::{Deserialize, Serialize};

/// Result of a cascade simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CascadeOutcome {
    /// Final solved grid state.
    pub final_state: GridState,
    /// Lines tripped by overload, in trip order (per round).
    pub tripped: Vec<LineId>,
    /// Number of redistribution rounds executed.
    pub rounds: usize,
    /// Outages at the end (initial damage plus trips).
    pub final_outages: OutageSet,
}

impl CascadeOutcome {
    /// Demand served after the cascade settles (fraction of nominal).
    pub fn served_fraction(&self) -> f64 {
        self.final_state.served_fraction()
    }
}

/// Runs the overload cascade from an initial damage set.
///
/// Each round solves the DC power flow and trips every line loaded
/// beyond its limit; the loop ends when a round trips nothing. The
/// round count is bounded by the line count, so termination is
/// guaranteed.
///
/// # Errors
///
/// Propagates power-flow errors.
pub fn simulate_cascade(
    grid: &GridNetwork,
    initial: &OutageSet,
) -> Result<CascadeOutcome, GridError> {
    let mut outages = initial.clone();
    let mut tripped = Vec::new();
    let mut rounds = 0usize;
    loop {
        let state = dc_power_flow(grid, &outages)?;
        let overloaded = state.overloaded_lines(grid);
        if overloaded.is_empty() {
            return Ok(CascadeOutcome {
                final_state: state,
                tripped,
                rounds,
                final_outages: outages,
            });
        }
        rounds += 1;
        for line in overloaded {
            outages.lines.insert(line);
            tripped.push(line);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{Bus, BusId, BusKind, Line};
    use ct_geo::LatLon;

    fn bus(name: &str, kind: BusKind) -> Bus {
        Bus {
            name: name.to_string(),
            kind,
            pos: LatLon::new(21.3, -157.9),
        }
    }

    /// Two parallel corridors from one generator to one load; each
    /// corridor alone cannot carry the full demand.
    fn fragile_pair(demand: f64, per_line_cap: f64) -> GridNetwork {
        GridNetwork::new(
            vec![
                bus("g", BusKind::Generator { capacity_mw: 200.0 }),
                bus("l", BusKind::Load { demand_mw: demand }),
            ],
            vec![
                Line {
                    from: BusId(0),
                    to: BusId(1),
                    susceptance: 10.0,
                    capacity_mw: per_line_cap,
                },
                Line {
                    from: BusId(0),
                    to: BusId(1),
                    susceptance: 10.0,
                    capacity_mw: per_line_cap,
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn no_damage_no_cascade() {
        let g = fragile_pair(100.0, 60.0); // 50 MW each, within limits
        let out = simulate_cascade(&g, &OutageSet::none()).unwrap();
        assert_eq!(out.rounds, 0);
        assert!(out.tripped.is_empty());
        assert!((out.served_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn losing_one_line_overloads_and_blacks_out_the_other() {
        // 100 MW demand, 60 MW per line: N-1 insecure by design.
        let g = fragile_pair(100.0, 60.0);
        let mut initial = OutageSet::none();
        initial.lines.insert(LineId(0));
        let out = simulate_cascade(&g, &initial).unwrap();
        // The surviving line takes 100 MW > 60 MW, trips, and the load
        // islands away from generation.
        assert_eq!(out.tripped, vec![LineId(1)]);
        assert_eq!(out.rounds, 1);
        assert_eq!(out.served_fraction(), 0.0);
    }

    #[test]
    fn strong_lines_absorb_the_contingency() {
        let g = fragile_pair(100.0, 120.0); // N-1 secure
        let mut initial = OutageSet::none();
        initial.lines.insert(LineId(0));
        let out = simulate_cascade(&g, &initial).unwrap();
        assert!(out.tripped.is_empty());
        assert!((out.served_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cascade_terminates_on_real_network() {
        let g = crate::oahu::grid();
        // Knock out the two biggest plants' interconnections brutally:
        // trip the first four lines.
        let mut initial = OutageSet::none();
        for i in 0..4 {
            initial.lines.insert(LineId(i));
        }
        let out = simulate_cascade(&g, &initial).unwrap();
        assert!(out.rounds <= g.lines().len());
        let f = out.served_fraction();
        assert!((0.0..=1.0).contains(&f));
    }
}
