//! DC (linearised) power flow with islanding, proportional dispatch
//! and load shedding.

use crate::linalg::solve;
use crate::network::{BusId, BusKind, GridError, GridNetwork, LineId, OutageSet};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Solved state of one electrical island.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IslandState {
    /// Buses in the island.
    pub buses: Vec<BusId>,
    /// Demand present (MW).
    pub demand_mw: f64,
    /// Demand actually served after shedding (MW).
    pub served_mw: f64,
    /// Generation dispatched (MW), equal to `served_mw`.
    pub dispatched_mw: f64,
}

/// Solved state of the whole network under an outage set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridState {
    /// Per-island summaries.
    pub islands: Vec<IslandState>,
    /// Signed flow per in-service line (MW, positive from -> to).
    pub flows_mw: BTreeMap<LineId, f64>,
    /// Total nominal demand of the *whole* network (including dead
    /// buses), MW.
    pub total_demand_mw: f64,
}

impl GridState {
    /// Total demand served across islands (MW).
    pub fn served_mw(&self) -> f64 {
        self.islands.iter().map(|i| i.served_mw).sum()
    }

    /// Fraction of the network's nominal demand served.
    pub fn served_fraction(&self) -> f64 {
        if self.total_demand_mw == 0.0 {
            1.0
        } else {
            self.served_mw() / self.total_demand_mw
        }
    }

    /// Lines whose flow exceeds their thermal limit.
    pub fn overloaded_lines(&self, grid: &GridNetwork) -> Vec<LineId> {
        self.flows_mw
            .iter()
            .filter(|(id, flow)| flow.abs() > grid.lines()[id.0].capacity_mw)
            .map(|(id, _)| *id)
            .collect()
    }

    /// Demand served (MW) after *emergency load shedding*: a working
    /// control room relieves every thermal overload by curtailing load
    /// (and generation) island-wide. Because the DC power flow is
    /// linear in the injections, scaling an island's injections by
    /// `1 / max_utilization` brings its worst line exactly to its
    /// limit — a closed-form model of SCADA-directed corrective
    /// action. Without SCADA the alternative is the unchecked
    /// [`crate::simulate_cascade`].
    pub fn served_after_emergency_shedding(&self, grid: &GridNetwork) -> f64 {
        // Map each bus to its island index.
        let mut island_of = BTreeMap::new();
        for (k, island) in self.islands.iter().enumerate() {
            for &b in &island.buses {
                island_of.insert(b, k);
            }
        }
        // Worst utilisation per island.
        let mut max_util = vec![0.0f64; self.islands.len()];
        for (lid, flow) in &self.flows_mw {
            let line = &grid.lines()[lid.0];
            if let Some(&k) = island_of.get(&line.from) {
                let u = flow.abs() / line.capacity_mw;
                if u > max_util[k] {
                    max_util[k] = u;
                }
            }
        }
        self.islands
            .iter()
            .enumerate()
            .map(|(k, island)| {
                if max_util[k] > 1.0 {
                    island.served_mw / max_util[k]
                } else {
                    island.served_mw
                }
            })
            .sum()
    }
}

/// Runs a DC power flow over every island of the in-service network.
///
/// Dispatch model: within each island, generation is dispatched
/// proportionally to capacity to meet island demand; when capacity is
/// insufficient, load is shed proportionally (`served < demand`).
/// Islands without generation (or without load) serve nothing.
///
/// # Errors
///
/// Returns [`GridError::SingularSystem`] if an island's susceptance
/// matrix cannot be solved (should not occur for connected islands
/// with positive susceptances).
pub fn dc_power_flow(grid: &GridNetwork, outages: &OutageSet) -> Result<GridState, GridError> {
    let islands = grid.islands(outages);
    let mut island_states = Vec::with_capacity(islands.len());
    let mut flows: BTreeMap<LineId, f64> = BTreeMap::new();

    for island in islands {
        let state = solve_island(grid, outages, &island, &mut flows)?;
        island_states.push(state);
    }

    Ok(GridState {
        islands: island_states,
        flows_mw: flows,
        total_demand_mw: grid.total_demand_mw(),
    })
}

fn solve_island(
    grid: &GridNetwork,
    outages: &OutageSet,
    island: &[BusId],
    flows: &mut BTreeMap<LineId, f64>,
) -> Result<IslandState, GridError> {
    // Dispatch: balance generation against demand inside the island.
    let mut demand = 0.0;
    let mut capacity = 0.0;
    for &b in island {
        match grid.buses()[b.0].kind {
            BusKind::Load { demand_mw } => demand += demand_mw,
            BusKind::Generator { capacity_mw } => capacity += capacity_mw,
            BusKind::Junction => {}
        }
    }
    let served = demand.min(capacity);
    let load_scale = if demand > 0.0 { served / demand } else { 0.0 };
    let gen_scale = if capacity > 0.0 {
        served / capacity
    } else {
        0.0
    };

    let state = IslandState {
        buses: island.to_vec(),
        demand_mw: demand,
        served_mw: served,
        dispatched_mw: served,
    };
    if island.len() == 1 || served == 0.0 {
        // Single bus or dead island: no flows to compute.
        return Ok(state);
    }

    // Net injection per island bus (MW): generation minus load.
    let index: BTreeMap<BusId, usize> = island.iter().enumerate().map(|(i, &b)| (b, i)).collect();
    let n = island.len();
    let mut injection = vec![0.0; n];
    for (&bus, &i) in &index {
        injection[i] = match grid.buses()[bus.0].kind {
            BusKind::Generator { capacity_mw } => capacity_mw * gen_scale,
            BusKind::Load { demand_mw } => -demand_mw * load_scale,
            BusKind::Junction => 0.0,
        };
    }

    // Build the susceptance matrix over island buses.
    let mut b_mat = vec![vec![0.0; n]; n];
    let mut island_lines: Vec<(LineId, usize, usize, f64)> = Vec::new();
    for (li, line) in grid.lines().iter().enumerate() {
        let lid = LineId(li);
        if outages.lines.contains(&lid)
            || outages.buses.contains(&line.from)
            || outages.buses.contains(&line.to)
        {
            continue;
        }
        let (Some(&i), Some(&j)) = (index.get(&line.from), index.get(&line.to)) else {
            continue;
        };
        b_mat[i][i] += line.susceptance;
        b_mat[j][j] += line.susceptance;
        b_mat[i][j] -= line.susceptance;
        b_mat[j][i] -= line.susceptance;
        island_lines.push((lid, i, j, line.susceptance));
    }

    // Reduce by the slack bus (island bus 0): delete its row/column.
    let reduced: Vec<Vec<f64>> = (1..n)
        .map(|i| (1..n).map(|j| b_mat[i][j]).collect())
        .collect();
    let rhs: Vec<f64> = (1..n).map(|i| injection[i]).collect();
    let theta_rest = solve(reduced, rhs).ok_or(GridError::SingularSystem {
        island_bus: island[0].0,
    })?;
    let mut theta = vec![0.0; n];
    theta[1..].copy_from_slice(&theta_rest);

    for (lid, i, j, susceptance) in island_lines {
        flows.insert(lid, susceptance * (theta[i] - theta[j]));
    }
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{Bus, Line};
    use ct_geo::LatLon;

    fn bus(name: &str, kind: BusKind) -> Bus {
        Bus {
            name: name.to_string(),
            kind,
            pos: LatLon::new(21.3, -157.9),
        }
    }

    /// g(100 MW cap) -- l(60 MW) with one line.
    fn two_bus() -> GridNetwork {
        GridNetwork::new(
            vec![
                bus("g", BusKind::Generator { capacity_mw: 100.0 }),
                bus("l", BusKind::Load { demand_mw: 60.0 }),
            ],
            vec![Line {
                from: BusId(0),
                to: BusId(1),
                susceptance: 10.0,
                capacity_mw: 100.0,
            }],
        )
        .unwrap()
    }

    #[test]
    fn two_bus_flow_carries_the_demand() {
        let state = dc_power_flow(&two_bus(), &OutageSet::none()).unwrap();
        assert_eq!(state.islands.len(), 1);
        assert!((state.served_mw() - 60.0).abs() < 1e-9);
        assert!((state.served_fraction() - 1.0).abs() < 1e-12);
        let flow = state.flows_mw[&LineId(0)];
        assert!((flow - 60.0).abs() < 1e-9, "flow {flow}");
    }

    #[test]
    fn shedding_when_capacity_short() {
        let g = GridNetwork::new(
            vec![
                bus("g", BusKind::Generator { capacity_mw: 40.0 }),
                bus("l", BusKind::Load { demand_mw: 60.0 }),
            ],
            vec![Line {
                from: BusId(0),
                to: BusId(1),
                susceptance: 10.0,
                capacity_mw: 100.0,
            }],
        )
        .unwrap();
        let state = dc_power_flow(&g, &OutageSet::none()).unwrap();
        assert!((state.served_mw() - 40.0).abs() < 1e-9);
        assert!((state.served_fraction() - 40.0 / 60.0).abs() < 1e-9);
    }

    #[test]
    fn island_without_generation_is_dark() {
        let g = two_bus();
        let mut out = OutageSet::none();
        out.lines.insert(LineId(0));
        let state = dc_power_flow(&g, &out).unwrap();
        assert_eq!(state.served_mw(), 0.0);
        assert_eq!(state.islands.len(), 2);
        assert!(state.flows_mw.is_empty());
    }

    #[test]
    fn parallel_paths_split_flow_by_susceptance() {
        // g -0- l with a second path through a junction: g -1- j -2- l.
        // Direct line susceptance 10; series path 30&30 -> effective 15.
        let g = GridNetwork::new(
            vec![
                bus("g", BusKind::Generator { capacity_mw: 100.0 }),
                bus("l", BusKind::Load { demand_mw: 50.0 }),
                bus("j", BusKind::Junction),
            ],
            vec![
                Line {
                    from: BusId(0),
                    to: BusId(1),
                    susceptance: 10.0,
                    capacity_mw: 100.0,
                },
                Line {
                    from: BusId(0),
                    to: BusId(2),
                    susceptance: 30.0,
                    capacity_mw: 100.0,
                },
                Line {
                    from: BusId(2),
                    to: BusId(1),
                    susceptance: 30.0,
                    capacity_mw: 100.0,
                },
            ],
        )
        .unwrap();
        let state = dc_power_flow(&g, &OutageSet::none()).unwrap();
        let direct = state.flows_mw[&LineId(0)];
        let via_j = state.flows_mw[&LineId(1)];
        // Split 10 : 15 => direct 20 MW, indirect 30 MW.
        assert!((direct - 20.0).abs() < 1e-6, "direct {direct}");
        assert!((via_j - 30.0).abs() < 1e-6, "via junction {via_j}");
        // Conservation through the junction.
        assert!((state.flows_mw[&LineId(1)] - state.flows_mw[&LineId(2)]).abs() < 1e-9);
    }

    #[test]
    fn emergency_shedding_relieves_overloads_exactly() {
        // 100 MW demand over one 60 MW line: shedding to 60 MW serves
        // exactly the line limit.
        let g = GridNetwork::new(
            vec![
                bus("g", BusKind::Generator { capacity_mw: 200.0 }),
                bus("l", BusKind::Load { demand_mw: 100.0 }),
            ],
            vec![Line {
                from: BusId(0),
                to: BusId(1),
                susceptance: 10.0,
                capacity_mw: 60.0,
            }],
        )
        .unwrap();
        let state = dc_power_flow(&g, &OutageSet::none()).unwrap();
        assert_eq!(state.overloaded_lines(&g), vec![LineId(0)]);
        let shed = state.served_after_emergency_shedding(&g);
        assert!((shed - 60.0).abs() < 1e-9, "served {shed}");
    }

    #[test]
    fn shedding_is_noop_without_overloads() {
        let g = two_bus();
        let state = dc_power_flow(&g, &OutageSet::none()).unwrap();
        assert!((state.served_after_emergency_shedding(&g) - state.served_mw()).abs() < 1e-12);
    }

    #[test]
    fn flow_conservation_at_every_bus() {
        let g = crate::oahu::grid();
        let state = dc_power_flow(&g, &OutageSet::none()).unwrap();
        // For each bus: injection - sum(outflows) = 0.
        let mut net = vec![0.0; g.buses().len()];
        for island in &state.islands {
            let demand_scale = if island.demand_mw > 0.0 {
                island.served_mw / island.demand_mw
            } else {
                0.0
            };
            let cap: f64 = island
                .buses
                .iter()
                .map(|b| match g.buses()[b.0].kind {
                    BusKind::Generator { capacity_mw } => capacity_mw,
                    _ => 0.0,
                })
                .sum();
            let gen_scale = if cap > 0.0 {
                island.dispatched_mw / cap
            } else {
                0.0
            };
            for &b in &island.buses {
                net[b.0] = match g.buses()[b.0].kind {
                    BusKind::Generator { capacity_mw } => capacity_mw * gen_scale,
                    BusKind::Load { demand_mw } => -demand_mw * demand_scale,
                    BusKind::Junction => 0.0,
                };
            }
        }
        for (lid, flow) in &state.flows_mw {
            let line = &g.lines()[lid.0];
            net[line.from.0] -= flow;
            net[line.to.0] += flow;
        }
        for (i, v) in net.iter().enumerate() {
            assert!(v.abs() < 1e-6, "bus {i} violates conservation by {v}");
        }
    }
}
