//! Hurricane damage to the grid: wind fragility of transmission lines
//! and flood failure of substations.
//!
//! Lines fail with a logistic fragility curve in the peak gust along
//! the span (fragility-modelling practice per Panteli et al., one of
//! the paper's own citations); substations and plants fail when the
//! hazard model floods them above the switch height — the same
//! criterion the SCADA analysis uses.

use crate::network::{BusId, GridNetwork, LineId, OutageSet};
use ct_geo::{LatLon, SpatialIndex};
use ct_hydro::StormParams;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Fragility parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DamageModel {
    /// Gust speed (m/s) at which a line span fails with probability
    /// one half.
    pub line_v50_ms: f64,
    /// Logistic spread (m/s) of the line fragility curve.
    pub line_spread_ms: f64,
    /// Gust factor over sustained wind.
    pub gust_factor: f64,
    /// Seed for the per-line failure draws.
    pub seed: u64,
    /// Hours between wind samples along the storm passage.
    pub scan_step_hours: f64,
}

impl Default for DamageModel {
    fn default() -> Self {
        Self {
            line_v50_ms: 85.0,
            line_spread_ms: 8.0,
            gust_factor: 1.3,
            seed: 0xD4_11A6E,
            scan_step_hours: 1.0,
        }
    }
}

/// Damage drawn for one realization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DamageSample {
    /// Buses and lines out of service.
    pub outages: OutageSet,
    /// Failure probability evaluated per line (diagnostics, parallel
    /// to the line list).
    pub line_fail_probability: Vec<f64>,
    /// Peak gust evaluated per line (m/s).
    pub line_peak_gust_ms: Vec<f64>,
}

impl DamageModel {
    /// Failure probability for a peak gust, logistic in the gust
    /// speed.
    pub fn line_failure_probability(&self, gust_ms: f64) -> f64 {
        1.0 / (1.0 + (-(gust_ms - self.line_v50_ms) / self.line_spread_ms).exp())
    }

    /// Peak sustained wind (m/s) at a point over the storm passage,
    /// scanning the Holland wind field along the track at
    /// `scan_step_hours` intervals (public so hazard models can reuse
    /// the same wind kernel the line-fragility sampler uses).
    pub fn peak_wind_at(&self, storm: &StormParams, p: LatLon) -> f64 {
        let (t0, t1) = storm.track.time_span_hours();
        let mut peak: f64 = 0.0;
        let mut t = t0;
        while t <= t1 {
            let center = storm.track.position(t);
            if center.distance_km(p) < 400.0 {
                if let Ok(field) = storm.wind_field(t) {
                    peak = peak.max(field.wind_at(center, p).speed_ms);
                }
            }
            t += self.scan_step_hours;
        }
        peak
    }

    /// Batched [`peak_wind_at`](Self::peak_wind_at): peak sustained
    /// wind (m/s) at each point, evaluated time-major so the Holland
    /// field is parameterized **once per time step** instead of once
    /// per `(step, point)` pair. Bit-identical to the per-point scan:
    /// the per-`(t, point)` arithmetic and the t-ascending max fold
    /// are unchanged, only the field construction is hoisted.
    pub fn peak_winds_at(&self, storm: &StormParams, points: &[LatLon]) -> Vec<f64> {
        let mut peaks = vec![0.0_f64; points.len()];
        let (t0, t1) = storm.track.time_span_hours();
        let mut t = t0;
        while t <= t1 {
            let center = storm.track.position(t);
            // Lazy so steps with every point out of range skip the
            // field entirely, matching the scalar path's range gate.
            let mut field: Option<Result<_, _>> = None;
            for (peak, &p) in peaks.iter_mut().zip(points) {
                if center.distance_km(p) >= 400.0 {
                    continue;
                }
                if let Ok(f) = field.get_or_insert_with(|| storm.wind_field(t)) {
                    *peak = peak.max(f.wind_at(center, p).speed_ms);
                }
            }
            t += self.scan_step_hours;
        }
        peaks
    }

    /// Batched range-gated variant of
    /// [`peak_winds_at`](Self::peak_winds_at): evaluates the peak wind
    /// for every point in a prebuilt [`SpatialIndex`], using the
    /// index's `within_km` query (same strict `< 400 km` footprint
    /// gate) to touch only the O(affected) points near the track at
    /// each step. Bit-identical to the linear scan: per-`(t, point)`
    /// arithmetic, the lazy per-step field construction (including
    /// skipping every point at a step whose field errors), and the
    /// t-ascending max fold are unchanged — the index only narrows
    /// which points are *visited*, and out-of-range points contribute
    /// nothing to a max fold over non-negative speeds.
    pub fn peak_winds_at_indexed(&self, storm: &StormParams, index: &SpatialIndex) -> Vec<f64> {
        let points = index.points();
        let mut peaks = vec![0.0_f64; points.len()];
        let (t0, t1) = storm.track.time_span_hours();
        let mut t = t0;
        while t <= t1 {
            let center = storm.track.position(t);
            let hits = index.within_km(center, 400.0);
            if !hits.is_empty() {
                if let Ok(field) = storm.wind_field(t) {
                    for i in hits {
                        peaks[i] = peaks[i].max(field.wind_at(center, points[i]).speed_ms);
                    }
                }
            }
            t += self.scan_step_hours;
        }
        peaks
    }

    /// Realization-major storm blocking over the batched wind kernel:
    /// peak winds for every `(storm, point)` pair, with the point set
    /// (typically line midpoints) computed once by the caller and
    /// shared across the whole block instead of being rebuilt per
    /// realization. Row `r` is bit-identical to
    /// `peak_winds_at(&storms[r], points)`.
    pub fn peak_winds_at_storms(&self, storms: &[StormParams], points: &[LatLon]) -> Vec<Vec<f64>> {
        storms
            .iter()
            .map(|storm| self.peak_winds_at(storm, points))
            .collect()
    }

    /// Midpoints of every line span, in line order — the point set the
    /// fragility scan evaluates winds at. Exposed so callers blocking
    /// over storms can compute it once.
    pub fn line_midpoints(grid: &GridNetwork) -> Vec<LatLon> {
        grid.lines()
            .iter()
            .map(|line| {
                let a = grid.buses()[line.from.0].pos;
                let b = grid.buses()[line.to.0].pos;
                LatLon::new((a.lat + b.lat) / 2.0, (a.lon + b.lon) / 2.0)
            })
            .collect()
    }

    /// Samples the grid damage for one realization: wind draws per
    /// line (deterministic in `(seed, realization_idx, line)`) plus
    /// the flooded buses supplied by the hazard model.
    pub fn sample(
        &self,
        grid: &GridNetwork,
        storm: &StormParams,
        flooded_bus_names: &BTreeSet<String>,
        realization_idx: usize,
    ) -> DamageSample {
        let midpoints = Self::line_midpoints(grid);
        let peaks = self.peak_winds_at(storm, &midpoints);
        self.sample_with_peaks(grid, flooded_bus_names, realization_idx, &peaks)
    }

    /// [`sample`](Self::sample) with the wind scan already done:
    /// consumes precomputed per-line peak winds (one entry per line,
    /// as returned by the `peak_winds_at*` family) so storm-blocked
    /// callers don't re-scan per realization. Identical output to
    /// [`sample`](Self::sample) for matching peaks.
    pub fn sample_with_peaks(
        &self,
        grid: &GridNetwork,
        flooded_bus_names: &BTreeSet<String>,
        realization_idx: usize,
        peaks: &[f64],
    ) -> DamageSample {
        let mut outages = OutageSet::none();
        for (i, bus) in grid.buses().iter().enumerate() {
            if flooded_bus_names.contains(&bus.name) {
                outages.buses.insert(BusId(i));
            }
        }
        let mut probs = Vec::with_capacity(grid.lines().len());
        let mut gusts = Vec::with_capacity(grid.lines().len());
        for (li, peak) in peaks.iter().enumerate() {
            let gust = self.gust_factor * peak;
            let p = self.line_failure_probability(gust);
            probs.push(p);
            gusts.push(gust);
            if hash_unit(self.seed, realization_idx as u64, li as u64) < p {
                outages.lines.insert(LineId(li));
            }
        }
        DamageSample {
            outages,
            line_fail_probability: probs,
            line_peak_gust_ms: gusts,
        }
    }
}

/// Deterministic uniform draw in `[0, 1)` from a hashed
/// `(seed, realization, element)` triple — the fragility sampler's
/// counter-based RNG, shared with the wind hazard model so per-asset
/// draws stay reproducible under any evaluation order or sharding.
pub fn fragility_draw(seed: u64, realization: u64, element: u64) -> f64 {
    hash_unit(seed, realization, element)
}

/// Deterministic uniform draw in `[0, 1)` from a hashed triple.
fn hash_unit(seed: u64, realization: u64, line: u64) -> f64 {
    let mut x = seed
        ^ realization.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ line.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_hydro::StormTrack;

    fn direct_hit() -> StormParams {
        StormParams {
            track: StormTrack::straight(LatLon::new(19.2, -158.35), 5.0, 6.0, 48.0).expect("valid"),
            central_pressure_hpa: 966.0,
            ambient_pressure_hpa: 1010.0,
            rmax_km: 35.0,
            b: 1.6,
            tide_m: 0.3,
        }
    }

    fn distant() -> StormParams {
        let mut s = direct_hit();
        s.track = StormTrack::straight(LatLon::new(19.2, -163.0), 0.0, 6.0, 48.0).unwrap();
        s
    }

    #[test]
    fn fragility_curve_shape() {
        let m = DamageModel::default();
        assert!(m.line_failure_probability(20.0) < 0.01);
        let p50 = m.line_failure_probability(m.line_v50_ms);
        assert!((p50 - 0.5).abs() < 1e-9);
        assert!(m.line_failure_probability(110.0) > 0.95);
    }

    #[test]
    fn direct_hit_damages_more_than_distant_storm() {
        let grid = crate::oahu::grid();
        let m = DamageModel::default();
        let none = BTreeSet::new();
        let hit = m.sample(&grid, &direct_hit(), &none, 0);
        let miss = m.sample(&grid, &distant(), &none, 0);
        let sum = |s: &DamageSample| s.line_fail_probability.iter().sum::<f64>();
        assert!(
            sum(&hit) > sum(&miss) + 0.5,
            "{} vs {}",
            sum(&hit),
            sum(&miss)
        );
        assert!(miss.outages.lines.is_empty(), "distant storm broke lines");
    }

    #[test]
    fn flooded_buses_propagate() {
        let grid = crate::oahu::grid();
        let m = DamageModel::default();
        let mut flooded = BTreeSet::new();
        flooded.insert("waiau-pp".to_string());
        let s = m.sample(&grid, &distant(), &flooded, 0);
        let waiau = grid.bus_id("waiau-pp").unwrap();
        assert!(s.outages.buses.contains(&waiau));
        assert_eq!(s.outages.buses.len(), 1);
    }

    #[test]
    fn draws_are_deterministic_per_realization() {
        let grid = crate::oahu::grid();
        let m = DamageModel::default();
        let none = BTreeSet::new();
        let a = m.sample(&grid, &direct_hit(), &none, 7);
        let b = m.sample(&grid, &direct_hit(), &none, 7);
        assert_eq!(a, b);
        let c = m.sample(&grid, &direct_hit(), &none, 8);
        // Same probabilities, (very likely) different draws.
        assert_eq!(a.line_fail_probability, c.line_fail_probability);
    }

    #[test]
    fn fragility_curve_is_monotone_in_gust_speed() {
        // The logistic must be strictly increasing over the whole
        // operating range — a fragility curve that ever *decreases*
        // with gust speed would invert the hazard ordering.
        let m = DamageModel::default();
        let mut prev = m.line_failure_probability(0.0);
        let mut gust = 0.5;
        while gust <= 160.0 {
            let p = m.line_failure_probability(gust);
            assert!(p > prev, "p({gust}) = {p} did not increase over {prev}");
            assert!((0.0..=1.0).contains(&p));
            prev = p;
            gust += 0.5;
        }
    }

    #[test]
    fn sample_is_reproducible_and_seed_sensitive() {
        let grid = crate::oahu::grid();
        let base = DamageModel::default();
        let none = BTreeSet::new();
        // Two freshly-constructed models with identical parameters
        // draw identical damage: no hidden RNG state.
        let a = base.sample(&grid, &direct_hit(), &none, 3);
        let b = DamageModel::default().sample(&grid, &direct_hit(), &none, 3);
        assert_eq!(a, b);
        // A different seed keeps probabilities (physics) but may
        // change draws; the draw function itself must differ.
        let reseeded = DamageModel {
            seed: base.seed + 1,
            ..base
        };
        let c = reseeded.sample(&grid, &direct_hit(), &none, 3);
        assert_eq!(a.line_fail_probability, c.line_fail_probability);
        assert_ne!(
            fragility_draw(base.seed, 3, 0),
            fragility_draw(base.seed + 1, 3, 0)
        );
        // The public draw is the sampler's: re-derive the outage set.
        for (li, p) in a.line_fail_probability.iter().enumerate() {
            let failed = fragility_draw(base.seed, 3, li as u64) < *p;
            assert_eq!(
                failed,
                a.outages.lines.contains(&LineId(li)),
                "line {li} draw/outage mismatch"
            );
        }
    }

    #[test]
    fn batched_peak_winds_match_the_scalar_scan_bitwise() {
        let m = DamageModel::default();
        let grid = crate::oahu::grid();
        let points: Vec<LatLon> = grid.buses().iter().map(|b| b.pos).collect();
        for storm in [direct_hit(), distant()] {
            let batched = m.peak_winds_at(&storm, &points);
            for (i, &p) in points.iter().enumerate() {
                let scalar = m.peak_wind_at(&storm, p);
                assert_eq!(
                    scalar.to_bits(),
                    batched[i].to_bits(),
                    "point {i}: scalar {scalar} vs batched {}",
                    batched[i]
                );
            }
        }
        assert!(m.peak_winds_at(&direct_hit(), &[]).is_empty());
    }

    #[test]
    fn indexed_peak_winds_match_the_linear_scan_bitwise() {
        let m = DamageModel::default();
        let grid = crate::oahu::grid();
        let points: Vec<LatLon> = grid.buses().iter().map(|b| b.pos).collect();
        let index = SpatialIndex::new(points.clone());
        for storm in [direct_hit(), distant()] {
            let linear = m.peak_winds_at(&storm, &points);
            let indexed = m.peak_winds_at_indexed(&storm, &index);
            assert_eq!(linear.len(), indexed.len());
            for (i, (a, b)) in linear.iter().zip(&indexed).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "point {i}: linear {a} vs indexed {b}"
                );
            }
        }
        assert!(m
            .peak_winds_at_indexed(&direct_hit(), &SpatialIndex::new(Vec::new()))
            .is_empty());
    }

    #[test]
    fn storm_blocked_peak_winds_match_per_storm_rows_bitwise() {
        let m = DamageModel::default();
        let grid = crate::oahu::grid();
        let midpoints = DamageModel::line_midpoints(&grid);
        let storms = [direct_hit(), distant()];
        let blocked = m.peak_winds_at_storms(&storms, &midpoints);
        assert_eq!(blocked.len(), storms.len());
        for (r, storm) in storms.iter().enumerate() {
            let row = m.peak_winds_at(storm, &midpoints);
            assert_eq!(row.len(), blocked[r].len());
            for (i, (a, b)) in row.iter().zip(&blocked[r]).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "storm {r} point {i}");
            }
        }
        assert!(m.peak_winds_at_storms(&[], &midpoints).is_empty());
    }

    #[test]
    fn sample_with_precomputed_peaks_matches_sample() {
        let grid = crate::oahu::grid();
        let m = DamageModel::default();
        let mut flooded = BTreeSet::new();
        flooded.insert("waiau-pp".to_string());
        let midpoints = DamageModel::line_midpoints(&grid);
        for (r, storm) in [(0usize, direct_hit()), (11, distant())] {
            let peaks = m.peak_winds_at(&storm, &midpoints);
            let direct = m.sample(&grid, &storm, &flooded, r);
            let blocked = m.sample_with_peaks(&grid, &flooded, r, &peaks);
            assert_eq!(direct, blocked);
        }
    }

    #[test]
    fn hash_unit_is_uniformish() {
        let n = 4000;
        let mean: f64 = (0..n).map(|i| hash_unit(1, i, 3)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.03, "mean {mean}");
    }
}
