//! Buses, lines and the grid network graph.

use ct_geo::LatLon;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Identifier of a bus (indexes into [`GridNetwork::buses`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BusId(pub usize);

/// Identifier of a line (indexes into [`GridNetwork::lines`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LineId(pub usize);

/// Electrical role of a bus.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BusKind {
    /// Generation with a capacity ceiling (MW).
    Generator {
        /// Maximum output.
        capacity_mw: f64,
    },
    /// Demand (MW).
    Load {
        /// Nominal demand.
        demand_mw: f64,
    },
    /// Switching/junction bus: neither injects nor consumes.
    Junction,
}

/// A bus in the network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bus {
    /// Stable name (typically the hosting asset's id).
    pub name: String,
    /// Electrical role.
    pub kind: BusKind,
    /// Geographic position (used by the fragility model).
    pub pos: LatLon,
}

/// A transmission line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Line {
    /// Terminal buses.
    pub from: BusId,
    /// Terminal buses.
    pub to: BusId,
    /// Susceptance magnitude (p.u.); higher carries more flow per
    /// angle difference.
    pub susceptance: f64,
    /// Thermal limit (MW) used by the cascade model.
    pub capacity_mw: f64,
}

/// Errors from network construction and power-flow evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum GridError {
    /// A line references a bus index that does not exist.
    DanglingLine {
        /// Index of the offending line.
        line: usize,
    },
    /// A physical parameter was non-positive or non-finite.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
    /// The power-flow system for an island was singular.
    SingularSystem {
        /// A bus of the island concerned.
        island_bus: usize,
    },
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::DanglingLine { line } => {
                write!(f, "line {line} references a missing bus")
            }
            GridError::InvalidParameter { name, value } => {
                write!(f, "invalid grid parameter {name} = {value}")
            }
            GridError::SingularSystem { island_bus } => {
                write!(
                    f,
                    "singular power-flow system in island of bus {island_bus}"
                )
            }
        }
    }
}

impl std::error::Error for GridError {}

/// Buses and lines taken out of service (by damage or by cascading
/// trips).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct OutageSet {
    /// Out-of-service buses.
    pub buses: BTreeSet<BusId>,
    /// Out-of-service lines.
    pub lines: BTreeSet<LineId>,
}

impl OutageSet {
    /// Nothing out of service.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether the outage set is empty.
    pub fn is_empty(&self) -> bool {
        self.buses.is_empty() && self.lines.is_empty()
    }

    /// Merges another outage set into this one.
    pub fn merge(&mut self, other: &OutageSet) {
        self.buses.extend(other.buses.iter().copied());
        self.lines.extend(other.lines.iter().copied());
    }
}

/// The transmission network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridNetwork {
    buses: Vec<Bus>,
    lines: Vec<Line>,
}

impl GridNetwork {
    /// Creates a network, validating line endpoints and parameters.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::DanglingLine`] or
    /// [`GridError::InvalidParameter`].
    pub fn new(buses: Vec<Bus>, lines: Vec<Line>) -> Result<Self, GridError> {
        for (i, l) in lines.iter().enumerate() {
            if l.from.0 >= buses.len() || l.to.0 >= buses.len() || l.from == l.to {
                return Err(GridError::DanglingLine { line: i });
            }
            if l.susceptance <= 0.0 || !l.susceptance.is_finite() {
                return Err(GridError::InvalidParameter {
                    name: "susceptance",
                    value: l.susceptance,
                });
            }
            if l.capacity_mw <= 0.0 || !l.capacity_mw.is_finite() {
                return Err(GridError::InvalidParameter {
                    name: "capacity_mw",
                    value: l.capacity_mw,
                });
            }
        }
        for b in &buses {
            let v = match b.kind {
                BusKind::Generator { capacity_mw } => capacity_mw,
                BusKind::Load { demand_mw } => demand_mw,
                BusKind::Junction => 1.0,
            };
            if v <= 0.0 || !v.is_finite() {
                return Err(GridError::InvalidParameter {
                    name: "bus power",
                    value: v,
                });
            }
        }
        Ok(Self { buses, lines })
    }

    /// All buses.
    pub fn buses(&self) -> &[Bus] {
        &self.buses
    }

    /// All lines.
    pub fn lines(&self) -> &[Line] {
        &self.lines
    }

    /// Looks up a bus id by name.
    pub fn bus_id(&self, name: &str) -> Option<BusId> {
        self.buses.iter().position(|b| b.name == name).map(BusId)
    }

    /// Total nominal demand (MW).
    pub fn total_demand_mw(&self) -> f64 {
        self.buses
            .iter()
            .map(|b| match b.kind {
                BusKind::Load { demand_mw } => demand_mw,
                _ => 0.0,
            })
            .sum()
    }

    /// Total generation capacity (MW).
    pub fn total_capacity_mw(&self) -> f64 {
        self.buses
            .iter()
            .map(|b| match b.kind {
                BusKind::Generator { capacity_mw } => capacity_mw,
                _ => 0.0,
            })
            .sum()
    }

    /// Connected components of the in-service network: lists of bus
    /// ids, smallest-index-first order.
    pub fn islands(&self, outages: &OutageSet) -> Vec<Vec<BusId>> {
        let n = self.buses.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (li, l) in self.lines.iter().enumerate() {
            if outages.lines.contains(&LineId(li))
                || outages.buses.contains(&l.from)
                || outages.buses.contains(&l.to)
            {
                continue;
            }
            adj[l.from.0].push(l.to.0);
            adj[l.to.0].push(l.from.0);
        }
        let mut seen = vec![false; n];
        let mut out = Vec::new();
        for start in 0..n {
            if seen[start] || outages.buses.contains(&BusId(start)) {
                continue;
            }
            let mut stack = vec![start];
            let mut comp = Vec::new();
            seen[start] = true;
            while let Some(u) = stack.pop() {
                comp.push(BusId(u));
                for &v in &adj[u] {
                    if !seen[v] {
                        seen[v] = true;
                        stack.push(v);
                    }
                }
            }
            comp.sort();
            out.push(comp);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus(name: &str, kind: BusKind) -> Bus {
        Bus {
            name: name.to_string(),
            kind,
            pos: LatLon::new(21.3, -157.9),
        }
    }

    fn line(from: usize, to: usize) -> Line {
        Line {
            from: BusId(from),
            to: BusId(to),
            susceptance: 10.0,
            capacity_mw: 100.0,
        }
    }

    fn triangle() -> GridNetwork {
        GridNetwork::new(
            vec![
                bus("g", BusKind::Generator { capacity_mw: 100.0 }),
                bus("l", BusKind::Load { demand_mw: 60.0 }),
                bus("j", BusKind::Junction),
            ],
            vec![line(0, 1), line(1, 2), line(2, 0)],
        )
        .unwrap()
    }

    #[test]
    fn validation() {
        assert!(matches!(
            GridNetwork::new(vec![bus("a", BusKind::Junction)], vec![line(0, 1)]),
            Err(GridError::DanglingLine { line: 0 })
        ));
        let mut l = line(0, 1);
        l.susceptance = -1.0;
        assert!(GridNetwork::new(
            vec![bus("a", BusKind::Junction), bus("b", BusKind::Junction)],
            vec![l]
        )
        .is_err());
        assert!(GridNetwork::new(
            vec![bus("g", BusKind::Generator { capacity_mw: 0.0 })],
            vec![]
        )
        .is_err());
    }

    #[test]
    fn totals_and_lookup() {
        let g = triangle();
        assert_eq!(g.total_demand_mw(), 60.0);
        assert_eq!(g.total_capacity_mw(), 100.0);
        assert_eq!(g.bus_id("l"), Some(BusId(1)));
        assert_eq!(g.bus_id("zzz"), None);
    }

    #[test]
    fn islands_intact_and_split() {
        let g = triangle();
        assert_eq!(g.islands(&OutageSet::none()).len(), 1);
        // Remove two lines: bus 2 separates.
        let mut out = OutageSet::none();
        out.lines.insert(LineId(1));
        out.lines.insert(LineId(2));
        let islands = g.islands(&out);
        assert_eq!(islands.len(), 2);
        assert_eq!(islands[0], vec![BusId(0), BusId(1)]);
        assert_eq!(islands[1], vec![BusId(2)]);
    }

    #[test]
    fn dead_bus_removes_its_lines() {
        let g = triangle();
        let mut out = OutageSet::none();
        out.buses.insert(BusId(0));
        let islands = g.islands(&out);
        // Buses 1 and 2 remain, still joined by line(1,2).
        assert_eq!(islands.len(), 1);
        assert_eq!(islands[0], vec![BusId(1), BusId(2)]);
    }

    #[test]
    fn outage_merge() {
        let mut a = OutageSet::none();
        a.buses.insert(BusId(1));
        let mut b = OutageSet::none();
        b.lines.insert(LineId(0));
        a.merge(&b);
        assert!(!a.is_empty());
        assert!(a.buses.contains(&BusId(1)) && a.lines.contains(&LineId(0)));
    }
}
