//! Power-grid substrate: the electrical network the SCADA system
//! monitors and controls.
//!
//! The paper's threat model notes that a hurricane "may damage
//! additional components of the power grid infrastructure (e.g.
//! substations, transmission lines) and cause disruptions in power
//! generation, transmission or delivery" but scopes those effects out
//! ("we do not currently consider these in our model, as we focus on
//! the SCADA control system"). This crate builds that scoped-out
//! substrate so the framework can quantify the *grid-side* impact of
//! the same compound threats:
//!
//! * [`GridNetwork`] — buses (generators, loads, junctions) and
//!   transmission lines with susceptances and thermal limits;
//! * [`dc_power_flow`] — DC (linearised) power flow per electrical
//!   island, with proportional dispatch and load shedding, solved by
//!   an in-crate dense Gaussian-elimination kernel ([`linalg`]);
//! * [`cascade`] — iterative tripping of thermally overloaded lines;
//! * [`fragility`] — wind fragility of lines and flood failure of
//!   substations, driven by the same hurricane realizations as the
//!   SCADA analysis;
//! * [`oahu`] — an Oahu-shaped 138 kV network built on the case-study
//!   assets.
//!
//! # Example
//!
//! ```
//! use ct_grid::{dc_power_flow, oahu, OutageSet};
//!
//! let grid = oahu::grid();
//! let intact = dc_power_flow(&grid, &OutageSet::none()).unwrap();
//! assert!(intact.served_fraction() > 0.999);
//! ```

pub mod cascade;
pub mod fragility;
pub mod linalg;
pub mod network;
pub mod oahu;
pub mod powerflow;

pub use cascade::{simulate_cascade, CascadeOutcome};
pub use fragility::{fragility_draw, DamageModel, DamageSample};
pub use network::{Bus, BusId, BusKind, GridError, GridNetwork, Line, LineId, OutageSet};
pub use powerflow::{dc_power_flow, GridState, IslandState};
