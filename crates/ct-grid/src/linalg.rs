//! Minimal dense linear algebra: Gaussian elimination with partial
//! pivoting, sized for island-scale power-flow systems (tens of
//! buses). No external dependency needed at this scale.

/// Solves `A x = b` in place via Gaussian elimination with partial
/// pivoting. Returns `None` when the matrix is (numerically)
/// singular.
///
/// # Panics
///
/// Panics if `a` is not square or `b`'s length differs from `a`'s
/// dimension.
// The elimination inner loop indexes both `a[row]` and `a[col]`; an
// iterator form would need `split_at_mut` gymnastics for no clarity gain.
#[allow(clippy::needless_range_loop)]
pub fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = a.len();
    assert!(a.iter().all(|row| row.len() == n), "matrix must be square");
    assert_eq!(b.len(), n, "rhs length must match");
    const EPS: f64 = 1e-10;

    for col in 0..n {
        // Partial pivot.
        let pivot_row = (col..n)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            .expect("non-empty range");
        if a[pivot_row][col].abs() < EPS {
            return None;
        }
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);

        let pivot = a[col][col];
        for row in (col + 1)..n {
            let factor = a[row][col] / pivot;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }

    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn solves_identity() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let x = solve(a, vec![3.0, -4.0]).unwrap();
        assert_eq!(x, vec![3.0, -4.0]);
    }

    #[test]
    fn solves_known_system() {
        // 2x + y = 5 ; x - y = 1  => x = 2, y = 1.
        let a = vec![vec![2.0, 1.0], vec![1.0, -1.0]];
        let x = solve(a, vec![5.0, 1.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn needs_pivoting() {
        // Zero on the initial diagonal; only pivoting saves it.
        let a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let x = solve(a, vec![7.0, 9.0]).unwrap();
        assert!((x[0] - 9.0).abs() < 1e-12);
        assert!((x[1] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn detects_singular() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve(a, vec![1.0, 2.0]).is_none());
    }

    #[test]
    #[should_panic(expected = "matrix must be square")]
    fn rejects_non_square() {
        let _ = solve(vec![vec![1.0, 2.0]], vec![1.0]);
    }

    proptest! {
        /// A x = b round-trips: generate a diagonally-dominant (hence
        /// nonsingular) matrix and a solution, recompute it.
        #[test]
        fn round_trips_diagonally_dominant(
            seed_vals in prop::collection::vec(-1.0f64..1.0, 9),
            x_true in prop::collection::vec(-10.0f64..10.0, 3),
        ) {
            let n = 3;
            let mut a = vec![vec![0.0; n]; n];
            for i in 0..n {
                for j in 0..n {
                    a[i][j] = seed_vals[i * n + j];
                }
                a[i][i] = 4.0 + seed_vals[i * n + i].abs();
            }
            let b: Vec<f64> = (0..n)
                .map(|i| (0..n).map(|j| a[i][j] * x_true[j]).sum())
                .collect();
            let x = solve(a, b).expect("diagonally dominant is nonsingular");
            for i in 0..n {
                prop_assert!((x[i] - x_true[i]).abs() < 1e-6);
            }
        }
    }
}
