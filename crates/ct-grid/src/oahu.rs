//! An Oahu-shaped 138 kV transmission network over the case-study
//! assets.
//!
//! Generation and demand magnitudes are sized to the real island
//! (peak demand ~1.2 GW; Kahe is the largest plant). The topology is
//! a stylised version of the HECO system: a southern coastal corridor
//! from the leeward plants into the Honolulu load pocket, a windward
//! ring, and a central cross-island tie.

use crate::network::{Bus, BusId, BusKind, GridNetwork, Line};
use ct_geo::LatLon;

fn gen(name: &str, lat: f64, lon: f64, capacity_mw: f64) -> Bus {
    Bus {
        name: name.to_string(),
        kind: BusKind::Generator { capacity_mw },
        pos: LatLon::new(lat, lon),
    }
}

fn load(name: &str, lat: f64, lon: f64, demand_mw: f64) -> Bus {
    Bus {
        name: name.to_string(),
        kind: BusKind::Load { demand_mw },
        pos: LatLon::new(lat, lon),
    }
}

/// Builds the Oahu grid.
///
/// # Panics
///
/// Never panics: the static network is valid by construction (checked
/// by tests).
pub fn grid() -> GridNetwork {
    let buses = vec![
        // 0-4: generation (same ids as the SCADA topology assets).
        gen("kahe-pp", 21.356, -158.122, 650.0),
        gen("waiau-pp", 21.388, -157.950, 500.0),
        gen("campbell-pp", 21.310, -158.085, 180.0),
        gen("kalaeloa-pp", 21.315, -158.070, 200.0),
        gen("waialua-pp", 21.570, -158.120, 20.0),
        // 5-16: substation load pockets.
        load("sub-archer", 21.310, -157.862, 150.0),
        load("sub-iwilei", 21.317, -157.870, 120.0),
        load("sub-school", 21.330, -157.860, 130.0),
        load("sub-kamoku", 21.280, -157.830, 110.0),
        load("sub-pukele", 21.300, -157.790, 90.0),
        load("sub-koolau", 21.380, -157.790, 80.0),
        load("sub-kahuku", 21.670, -157.970, 30.0),
        load("sub-wahiawa", 21.500, -158.020, 60.0),
        load("sub-ewa", 21.340, -158.030, 90.0),
        load("sub-makalapa", 21.350, -157.940, 100.0),
        load("sub-halawa", 21.370, -157.920, 90.0),
        load("sub-waianae", 21.430, -158.170, 50.0),
    ];
    let by_name = |n: &str| BusId(buses.iter().position(|b| b.name == n).expect("bus"));
    let line = |from: &str, to: &str, susceptance: f64, capacity_mw: f64| Line {
        from: by_name(from),
        to: by_name(to),
        susceptance,
        capacity_mw,
    };
    let lines = vec![
        // Leeward generation pocket.
        line("kahe-pp", "sub-waianae", 30.0, 200.0),
        line("kahe-pp", "campbell-pp", 60.0, 700.0),
        line("campbell-pp", "kalaeloa-pp", 80.0, 700.0),
        line("kalaeloa-pp", "sub-ewa", 60.0, 700.0),
        line("kahe-pp", "sub-ewa", 40.0, 700.0),
        // Southern corridor into the Honolulu pocket.
        line("sub-ewa", "waiau-pp", 50.0, 800.0),
        line("waiau-pp", "sub-makalapa", 70.0, 600.0),
        line("sub-makalapa", "sub-halawa", 70.0, 600.0),
        line("sub-halawa", "sub-iwilei", 50.0, 500.0),
        line("waiau-pp", "sub-iwilei", 35.0, 500.0),
        line("sub-iwilei", "sub-archer", 80.0, 400.0),
        line("sub-archer", "sub-school", 70.0, 300.0),
        line("sub-halawa", "sub-school", 45.0, 350.0),
        line("sub-school", "sub-kamoku", 50.0, 350.0),
        line("sub-kamoku", "sub-pukele", 50.0, 250.0),
        // Windward ring.
        line("sub-pukele", "sub-koolau", 8.0, 200.0),
        line("sub-koolau", "sub-kahuku", 6.0, 150.0),
        line("sub-kahuku", "waialua-pp", 6.0, 150.0),
        line("waialua-pp", "sub-wahiawa", 8.0, 150.0),
        // Central cross-island ties.
        line("sub-wahiawa", "waiau-pp", 30.0, 300.0),
        line("kahe-pp", "sub-wahiawa", 12.0, 300.0),
    ];
    GridNetwork::new(buses, lines).expect("static Oahu grid is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::OutageSet;
    use crate::powerflow::dc_power_flow;

    #[test]
    fn shape_and_balance() {
        let g = grid();
        assert_eq!(g.buses().len(), 17);
        assert_eq!(g.lines().len(), 21);
        assert!(g.total_capacity_mw() > g.total_demand_mw());
        // Oahu peak is ~1.2 GW; stay in that regime.
        assert!((900.0..1500.0).contains(&g.total_demand_mw()));
    }

    #[test]
    fn intact_grid_serves_everything_without_overloads() {
        let g = grid();
        let state = dc_power_flow(&g, &OutageSet::none()).unwrap();
        assert_eq!(state.islands.len(), 1, "grid should be connected");
        assert!(
            (state.served_fraction() - 1.0).abs() < 1e-9,
            "base case sheds load"
        );
        let overloaded = state.overloaded_lines(&g);
        assert!(
            overloaded.is_empty(),
            "base case overloads lines {overloaded:?}: flows {:?}",
            state.flows_mw
        );
    }

    #[test]
    fn losing_kahe_still_serves_most_load() {
        let g = grid();
        let mut out = OutageSet::none();
        out.buses.insert(g.bus_id("kahe-pp").unwrap());
        let state = dc_power_flow(&g, &out).unwrap();
        // 900 MW of remaining capacity against 1150 MW demand.
        let f = state.served_fraction();
        assert!((0.6..1.0).contains(&f), "served {f}");
    }

    #[test]
    fn severing_the_windward_ring_islands_kahuku() {
        let g = grid();
        let mut out = OutageSet::none();
        // koolau--kahuku and kahuku--waialua are lines 16 and 17.
        let names: Vec<(String, String)> = g
            .lines()
            .iter()
            .map(|l| {
                (
                    g.buses()[l.from.0].name.clone(),
                    g.buses()[l.to.0].name.clone(),
                )
            })
            .collect();
        for (i, (a, b)) in names.iter().enumerate() {
            if a.contains("kahuku") || b.contains("kahuku") {
                out.lines.insert(crate::network::LineId(i));
            }
        }
        let state = dc_power_flow(&g, &out).unwrap();
        assert!(state.islands.len() >= 2);
        // The 30 MW Kahuku pocket is dark.
        let deficit = state.total_demand_mw - state.served_mw();
        assert!((deficit - 30.0).abs() < 1e-6, "deficit {deficit}");
    }
}
