//! Pluggable hazard engine: the pipeline's disaster input behind one
//! trait.
//!
//! The paper's framework is data-centric and hazard-agnostic — the
//! hurricane-surge ensemble is just one possible input to the
//! disaster → attack → classify chain. This crate extracts that seam:
//! a [`HazardModel`] turns a sampled storm into a per-asset severity
//! vector, and everything downstream (post-disaster states, attacker,
//! Table I classification, the artifact store) consumes the result
//! without knowing which hazard produced it.
//!
//! # The severity contract
//!
//! A hazard evaluation fills [`ct_hydro::Realization`]: for every
//! tracked [`ct_hydro::Poi`] a non-negative *severity* in threshold-comparable
//! metres, stored in `inundation_m`. An asset **fails** when its
//! severity exceeds the study's [`ct_hydro::FloodThreshold`] (the
//! paper's 0.5 m switch height by default). Each model documents what
//! its severity means physically:
//!
//! * [`SurgeHazard`] — peak inundation depth in metres (bit-identical
//!   to the pre-trait hard-wired pipeline).
//! * [`WindFragilityHazard`] — a fragility *exceedance depth*: the
//!   switch height scaled by the ratio of the asset's gust-failure
//!   probability to its seeded uniform draw, so the default threshold
//!   reproduces the draw `u < p(gust)` exactly.
//! * [`CompoundHazard`] — the per-asset **maximum** over its parts.
//!   Because `max(a, b) > t ⇔ a > t ∨ b > t`, the compound failure
//!   set is the *union* of the component failure sets at every
//!   threshold, which is the union semantics compound weather+cyber
//!   analyses need.
//!
//! # Cache-key contract
//!
//! Content-addressed stores key hazard output by
//! [`HazardModel::hazard_id`] plus [`HazardModel::digest_params`]:
//! every parameter that can change an evaluated severity must be
//! folded into the digest, so records produced by different hazards
//! (or differently-parameterized instances of one hazard) can never
//! alias.
//!
//! Determinism: `evaluate` must be a pure function of
//! `(index, storm, pois)` and the model's own parameters — models
//! needing randomness derive it from counter-based hashes of
//! `(seed, index, asset)` (see [`ct_grid::fragility`]), never from
//! shared mutable RNG state, so realizations can be computed on any
//! worker thread, in any order, or resumed from a store shard.

pub mod compound;
pub mod model;
pub mod spec;
pub mod surge;
pub mod wind;

/// Version of the hazard-engine semantics baked into artifact-store
/// content addresses (alongside each model's own parameter digest).
/// Bump when the meaning of an evaluated severity changes for every
/// model at once (e.g. a different severity contract).
pub const HAZARD_KERNEL_VERSION: u32 = 1;

pub use compound::CompoundHazard;
pub use model::HazardModel;
pub use spec::{HazardSpec, ParseHazardSpecError};
pub use surge::SurgeHazard;
pub use wind::WindFragilityHazard;
