//! The [`HazardModel`] trait — the pipeline's hazard seam.

use ct_hydro::{HydroError, Poi, Realization, StormParams};
use ct_store::StableHasher;

/// A hazard model: evaluates one sampled storm at a set of assets,
/// producing the per-asset severity vector the rest of the pipeline
/// consumes (see the crate docs for the severity and cache-key
/// contracts).
///
/// Implementations must be deterministic in `(index, storm, pois)`
/// and their own parameters; `Send + Sync` because realizations are
/// evaluated on worker threads in arbitrary order.
pub trait HazardModel: std::fmt::Debug + Send + Sync {
    /// Stable, user-facing identifier of the hazard *kind*
    /// (`"surge"`, `"wind"`, `"compound(surge+wind)"`). Used in store
    /// keys, record payload tags, and report labels; changing an id
    /// orphans every record written under it.
    fn hazard_id(&self) -> String;

    /// Folds every parameter that can change an evaluated severity
    /// into the content-address hasher. The caller has already
    /// written the hazard id and the ensemble/terrain inputs; this
    /// adds only the model's own knobs (calibration, fragility
    /// parameters, seeds, …).
    fn digest_params(&self, h: &mut StableHasher);

    /// Evaluates realization `index` of `storm` at `pois`: a
    /// [`Realization`] whose `inundation_m[j]` is the severity at
    /// `pois[j]` in threshold-comparable metres.
    ///
    /// # Errors
    ///
    /// Propagates storm-parameter errors.
    fn evaluate(
        &self,
        index: usize,
        storm: &StormParams,
        pois: &[Poi],
    ) -> Result<Realization, HydroError>;
}
