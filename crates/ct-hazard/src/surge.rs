//! The storm-surge hazard: the paper's original flood channel, now
//! behind the [`HazardModel`] seam.

use crate::model::HazardModel;
use ct_hydro::{HydroError, ParametricSurge, Poi, Realization, RealizationSet, StormParams};
use ct_store::StableHasher;

/// Storm-surge inundation evaluated by the calibrated parametric
/// surge model. Severity is the peak inundation depth in metres at
/// each asset — exactly the quantity the pre-trait pipeline computed,
/// and [`SurgeHazard::evaluate`] delegates to the same
/// [`RealizationSet::evaluate_storm`] kernel, so the output is
/// bit-identical to the hard-wired path (pinned by the
/// `hazard_engine` equivalence tests).
#[derive(Debug, Clone)]
pub struct SurgeHazard {
    model: ParametricSurge,
}

impl SurgeHazard {
    /// Wraps a calibrated surge model.
    pub fn new(model: ParametricSurge) -> Self {
        Self { model }
    }

    /// The underlying surge model.
    pub fn model(&self) -> &ParametricSurge {
        &self.model
    }
}

impl HazardModel for SurgeHazard {
    fn hazard_id(&self) -> String {
        "surge".to_string()
    }

    fn digest_params(&self, h: &mut StableHasher) {
        let c = self.model.calibration();
        h.write_f64(c.setup_coefficient);
        h.write_f64(c.ib_m_per_hpa);
        h.write_f64(c.ib_decay_km);
        h.write_f64(c.wave_setup_fraction);
        h.write_f64(c.attenuation_m_per_km);
        h.write_f64(c.scan_step_hours);
    }

    fn evaluate(
        &self,
        index: usize,
        storm: &StormParams,
        pois: &[Poi],
    ) -> Result<Realization, HydroError> {
        RealizationSet::evaluate_storm(index, storm, &self.model, pois)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_geo::terrain::{synthesize_oahu, OahuTerrainConfig};
    use ct_geo::LatLon;
    use ct_hydro::{EnsembleConfig, Stations, SurgeCalibration, TrackEnsemble};

    #[test]
    fn surge_via_trait_matches_direct_kernel() {
        let dem = synthesize_oahu(&OahuTerrainConfig::default());
        let pois = vec![
            Poi::from_dem("honolulu-cc", LatLon::new(21.307, -157.858), &dem).unwrap(),
            Poi::from_dem("kahe", LatLon::new(21.356, -158.122), &dem).unwrap(),
        ];
        let model = ParametricSurge::new(Stations::from_dem(&dem), SurgeCalibration::default());
        let hazard = SurgeHazard::new(model.clone());
        let storms = TrackEnsemble::new(EnsembleConfig {
            realizations: 12,
            ..EnsembleConfig::default()
        })
        .unwrap()
        .generate();
        for (i, storm) in storms.iter().enumerate() {
            let direct = RealizationSet::evaluate_storm(i, storm, &model, &pois).unwrap();
            let via_trait = hazard.evaluate(i, storm, &pois).unwrap();
            assert_eq!(direct, via_trait, "realization {i} diverged");
        }
    }

    #[test]
    fn digest_is_calibration_sensitive() {
        let dem = synthesize_oahu(&OahuTerrainConfig::default());
        let digest = |cal: SurgeCalibration| {
            let mut h = StableHasher::new();
            SurgeHazard::new(ParametricSurge::new(Stations::from_dem(&dem), cal))
                .digest_params(&mut h);
            h.finish()
        };
        let base = digest(SurgeCalibration::default());
        assert_eq!(base, digest(SurgeCalibration::default()));
        let mut other = SurgeCalibration::default();
        other.ib_m_per_hpa *= 2.0;
        assert_ne!(base, digest(other));
    }
}
