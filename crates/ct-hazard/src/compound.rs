//! The compound combinator: several hazards acting on the same storm.

use crate::model::HazardModel;
use ct_hydro::{HydroError, Poi, Realization, StormParams};
use ct_store::StableHasher;

/// A hazard built from several component hazards evaluated against
/// the same storm, combined with per-asset **maximum** severity.
///
/// Because every component reports severity on the shared
/// threshold-comparable axis, `max` gives exact *union* failure
/// semantics: the compound fails an asset at threshold `t` iff any
/// component fails it at `t`. That matches the compound-threat
/// reading of simultaneous flood and wind damage — an asset is lost
/// if either channel takes it out.
///
/// Diagnostics: `tide_m` comes from the storm (identical across
/// components); `max_station_surge_m` is the max over components
/// (mixed units — diagnostics only, as each component defines).
#[derive(Debug)]
pub struct CompoundHazard {
    parts: Vec<Box<dyn HazardModel>>,
}

impl CompoundHazard {
    /// Combines `parts` (at least one) under union semantics.
    ///
    /// # Errors
    ///
    /// Returns [`HydroError::InvalidParameter`] for an empty part
    /// list.
    pub fn union(parts: Vec<Box<dyn HazardModel>>) -> Result<Self, HydroError> {
        if parts.is_empty() {
            return Err(HydroError::InvalidParameter {
                name: "compound hazard parts",
                value: 0.0,
            });
        }
        Ok(Self { parts })
    }

    /// The component hazards.
    pub fn parts(&self) -> &[Box<dyn HazardModel>] {
        &self.parts
    }
}

impl HazardModel for CompoundHazard {
    fn hazard_id(&self) -> String {
        let ids: Vec<String> = self.parts.iter().map(|p| p.hazard_id()).collect();
        format!("compound({})", ids.join("+"))
    }

    fn digest_params(&self, h: &mut StableHasher) {
        h.write_usize(self.parts.len());
        for part in &self.parts {
            h.write_str(&part.hazard_id());
            part.digest_params(h);
        }
    }

    fn evaluate(
        &self,
        index: usize,
        storm: &StormParams,
        pois: &[Poi],
    ) -> Result<Realization, HydroError> {
        let mut combined: Option<Realization> = None;
        for part in &self.parts {
            let r = part.evaluate(index, storm, pois)?;
            ct_obs::add(ct_obs::names::HAZARD_COMPOUND_COMPONENT_EVALUATIONS, 1);
            combined = Some(match combined {
                None => r,
                Some(mut acc) => {
                    for (a, b) in acc.inundation_m.iter_mut().zip(&r.inundation_m) {
                        *a = a.max(*b);
                    }
                    acc.max_station_surge_m = acc.max_station_surge_m.max(r.max_station_surge_m);
                    acc
                }
            });
        }
        Ok(combined.expect("union() guarantees at least one part"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A constant-severity stub hazard for combinator tests.
    #[derive(Debug)]
    struct Flat(f64, &'static str);

    impl HazardModel for Flat {
        fn hazard_id(&self) -> String {
            self.1.to_string()
        }
        fn digest_params(&self, h: &mut StableHasher) {
            h.write_f64(self.0);
        }
        fn evaluate(
            &self,
            index: usize,
            storm: &StormParams,
            pois: &[Poi],
        ) -> Result<Realization, HydroError> {
            Ok(Realization {
                index,
                tide_m: storm.tide_m,
                max_station_surge_m: self.0,
                inundation_m: pois.iter().map(|_| self.0).collect(),
            })
        }
    }

    fn storm() -> StormParams {
        use ct_geo::LatLon;
        StormParams {
            track: ct_hydro::StormTrack::straight(LatLon::new(19.2, -158.35), 5.0, 6.0, 48.0)
                .unwrap(),
            central_pressure_hpa: 966.0,
            ambient_pressure_hpa: 1010.0,
            rmax_km: 35.0,
            b: 1.6,
            tide_m: 0.1,
        }
    }

    fn pois() -> Vec<Poi> {
        use ct_geo::LatLon;
        vec![
            Poi::with_site_profile("a", LatLon::new(21.31, -157.86), 3.0, 0.5),
            Poi::with_site_profile("b", LatLon::new(21.36, -158.12), 60.0, 1.2),
        ]
    }

    #[test]
    fn empty_part_list_is_rejected() {
        assert!(CompoundHazard::union(vec![]).is_err());
    }

    #[test]
    fn union_takes_per_asset_max() {
        let c = CompoundHazard::union(vec![Box::new(Flat(0.2, "lo")), Box::new(Flat(0.9, "hi"))])
            .unwrap();
        let r = c.evaluate(0, &storm(), &pois()).unwrap();
        assert_eq!(r.inundation_m, vec![0.9, 0.9]);
        assert_eq!(r.max_station_surge_m, 0.9);
        assert_eq!(r.tide_m, 0.1);
    }

    #[test]
    fn id_and_digest_compose_from_parts() {
        let c = CompoundHazard::union(vec![Box::new(Flat(0.2, "lo")), Box::new(Flat(0.9, "hi"))])
            .unwrap();
        assert_eq!(c.hazard_id(), "compound(lo+hi)");
        let digest = |h: &dyn HazardModel| {
            let mut s = StableHasher::new();
            h.digest_params(&mut s);
            s.finish()
        };
        let reordered =
            CompoundHazard::union(vec![Box::new(Flat(0.9, "hi")), Box::new(Flat(0.2, "lo"))])
                .unwrap();
        assert_ne!(digest(&c), digest(&reordered), "part order is keyed");
    }
}
