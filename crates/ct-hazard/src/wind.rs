//! The wind-fragility hazard: Holland wind field + logistic gust
//! fragility, mapped onto the pipeline's severity axis.

use crate::model::HazardModel;
use ct_geo::SpatialIndex;
use ct_grid::{fragility_draw, DamageModel};
use ct_hydro::{FloodThreshold, HydroError, Poi, Realization, StormParams};
use ct_store::StableHasher;

/// Severity cap (m). The exceedance ratio `p / u` is unbounded as the
/// uniform draw approaches zero; capping keeps severities finite for
/// exports and histograms without affecting any realistic threshold
/// (sensitivity sweeps stay far below this).
pub const MAX_SEVERITY_M: f64 = 1.0e3;

/// Wind damage to assets, driven by the same Holland wind kernel and
/// logistic fragility curve as [`ct_grid::fragility::DamageModel`]
/// (which this model wraps — the previously grid-only fragility code
/// now feeds the SCADA pipeline too).
///
/// # Severity semantics
///
/// For asset `j` of realization `i`, the model evaluates the peak
/// gust over the storm passage at the asset's position, the logistic
/// failure probability `p` at that gust, and the deterministic
/// uniform draw `u = fragility_draw(seed, i, j)`. Severity is the
/// *fragility exceedance depth*
///
/// ```text
/// severity_m = switch_height_m · p / u        (capped at MAX_SEVERITY_M)
/// ```
///
/// so at the paper's default 0.5 m threshold an asset fails exactly
/// when `u < p` — the plain fragility draw — while raising the
/// threshold in a sensitivity sweep demands a proportionally stronger
/// exceedance, and severity remains monotone in gust speed for a
/// fixed draw. Diagnostics: `tide_m` carries the storm's tide anomaly
/// (unused by wind failures), `max_station_surge_m` carries the
/// largest per-asset peak gust in m/s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindFragilityHazard {
    damage: DamageModel,
}

impl Default for WindFragilityHazard {
    fn default() -> Self {
        Self::new(DamageModel::default())
    }
}

impl WindFragilityHazard {
    /// Wraps a fragility parameterization.
    pub fn new(damage: DamageModel) -> Self {
        Self { damage }
    }

    /// The fragility parameters.
    pub fn damage(&self) -> &DamageModel {
        &self.damage
    }

    /// Peak gust (m/s) at a POI over the storm passage.
    pub fn peak_gust_ms(&self, storm: &StormParams, poi: &Poi) -> f64 {
        self.damage.gust_factor * self.damage.peak_wind_at(storm, poi.pos)
    }

    /// The severity mapping for one asset (see the type docs).
    fn severity_m(&self, gust_ms: f64, draw: f64) -> f64 {
        let p = self.damage.line_failure_probability(gust_ms);
        let switch_height_m = FloodThreshold::default().depth_m();
        (switch_height_m * p / draw.max(f64::MIN_POSITIVE)).min(MAX_SEVERITY_M)
    }
}

impl HazardModel for WindFragilityHazard {
    fn hazard_id(&self) -> String {
        "wind".to_string()
    }

    fn digest_params(&self, h: &mut StableHasher) {
        let d = &self.damage;
        h.write_f64(d.line_v50_ms);
        h.write_f64(d.line_spread_ms);
        h.write_f64(d.gust_factor);
        h.write_u64(d.seed);
        h.write_f64(d.scan_step_hours);
    }

    fn evaluate(
        &self,
        index: usize,
        storm: &StormParams,
        pois: &[Poi],
    ) -> Result<Realization, HydroError> {
        // Batched wind kernel over a spatial index: one Holland-field
        // parameterization per time step, and only the O(affected)
        // POIs inside the 400 km footprint are visited at each step
        // (bit-identical to the per-POI scan — see
        // `DamageModel::peak_winds_at_indexed`).
        let spatial = SpatialIndex::new(pois.iter().map(|poi| poi.pos).collect());
        let peaks = self.damage.peak_winds_at_indexed(storm, &spatial);
        let mut max_gust_ms: f64 = 0.0;
        let inundation_m = peaks
            .iter()
            .enumerate()
            .map(|(j, peak)| {
                let gust = self.damage.gust_factor * peak;
                max_gust_ms = max_gust_ms.max(gust);
                let u = fragility_draw(self.damage.seed, index as u64, j as u64);
                self.severity_m(gust, u)
            })
            .collect();
        Ok(Realization {
            index,
            tide_m: storm.tide_m,
            max_station_surge_m: max_gust_ms,
            inundation_m,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_geo::LatLon;
    use ct_hydro::StormTrack;

    fn direct_hit() -> StormParams {
        StormParams {
            track: StormTrack::straight(LatLon::new(19.2, -158.35), 5.0, 6.0, 48.0).unwrap(),
            central_pressure_hpa: 966.0,
            ambient_pressure_hpa: 1010.0,
            rmax_km: 35.0,
            b: 1.6,
            tide_m: 0.3,
        }
    }

    fn distant() -> StormParams {
        let mut s = direct_hit();
        s.track = StormTrack::straight(LatLon::new(19.2, -170.0), 0.0, 6.0, 48.0).unwrap();
        s
    }

    fn pois() -> Vec<Poi> {
        vec![
            Poi::with_site_profile("a", LatLon::new(21.31, -157.86), 3.0, 0.5),
            Poi::with_site_profile("b", LatLon::new(21.36, -158.12), 60.0, 1.2),
        ]
    }

    #[test]
    fn evaluation_is_deterministic_and_index_seeded() {
        let hazard = WindFragilityHazard::default();
        let a = hazard.evaluate(4, &direct_hit(), &pois()).unwrap();
        let b = hazard.evaluate(4, &direct_hit(), &pois()).unwrap();
        assert_eq!(a, b);
        let c = hazard.evaluate(5, &direct_hit(), &pois()).unwrap();
        // Same storm, different realization index: different draws.
        assert_ne!(a.inundation_m, c.inundation_m);
        assert_eq!(a.index, 4);
        assert_eq!(a.tide_m, 0.3);
    }

    #[test]
    fn severity_is_finite_nonnegative_and_storm_sensitive() {
        let hazard = WindFragilityHazard::default();
        let hit = hazard.evaluate(0, &direct_hit(), &pois()).unwrap();
        let miss = hazard.evaluate(0, &distant(), &pois()).unwrap();
        for r in [&hit, &miss] {
            for &s in &r.inundation_m {
                assert!(s.is_finite() && s >= 0.0, "severity {s}");
            }
        }
        assert!(hit.max_station_surge_m > miss.max_station_surge_m);
        let sum = |r: &Realization| r.inundation_m.iter().sum::<f64>();
        assert!(sum(&hit) >= sum(&miss));
    }

    #[test]
    fn default_threshold_reproduces_the_fragility_draw() {
        let hazard = WindFragilityHazard::default();
        let threshold = FloodThreshold::default();
        let storm = direct_hit();
        let pois = pois();
        let r = hazard.evaluate(7, &storm, &pois).unwrap();
        for (j, poi) in pois.iter().enumerate() {
            let gust = hazard.peak_gust_ms(&storm, poi);
            let p = hazard.damage().line_failure_probability(gust);
            let u = fragility_draw(hazard.damage().seed, 7, j as u64);
            assert_eq!(
                threshold.is_flooded(r.inundation_m[j]),
                u < p,
                "asset {j}: threshold failure must equal the draw"
            );
        }
    }

    #[test]
    fn severity_is_monotone_in_gust_for_a_fixed_draw() {
        let hazard = WindFragilityHazard::default();
        let mut prev = hazard.severity_m(0.0, 0.25);
        for gust in 1..300 {
            let s = hazard.severity_m(gust as f64, 0.25);
            assert!(s >= prev, "severity fell at gust {gust}");
            prev = s;
        }
        assert!(prev <= MAX_SEVERITY_M);
    }

    #[test]
    fn batched_evaluation_matches_the_per_poi_gust_scan_bitwise() {
        // `evaluate` goes through the batched SoA wind kernel; the
        // public scalar `peak_gust_ms` is the per-POI reference path.
        // Severities recomputed from scalar gusts must match bitwise.
        let hazard = WindFragilityHazard::default();
        for storm in [direct_hit(), distant()] {
            let pois = pois();
            let r = hazard.evaluate(11, &storm, &pois).unwrap();
            for (j, poi) in pois.iter().enumerate() {
                let gust = hazard.peak_gust_ms(&storm, poi);
                let u = fragility_draw(hazard.damage().seed, 11, j as u64);
                assert_eq!(
                    hazard.severity_m(gust, u).to_bits(),
                    r.inundation_m[j].to_bits(),
                    "asset {j}: batched severity diverged from the scalar path"
                );
            }
        }
    }

    #[test]
    fn digest_separates_parameterizations() {
        let digest = |hz: &WindFragilityHazard| {
            let mut h = StableHasher::new();
            hz.digest_params(&mut h);
            h.finish()
        };
        let base = WindFragilityHazard::default();
        assert_eq!(digest(&base), digest(&WindFragilityHazard::default()));
        let reseeded = WindFragilityHazard::new(DamageModel {
            seed: 99,
            ..DamageModel::default()
        });
        assert_ne!(digest(&base), digest(&reseeded));
    }
}
