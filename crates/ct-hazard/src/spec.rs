//! [`HazardSpec`] — the serializable, CLI-parsable hazard selector.

use crate::compound::CompoundHazard;
use crate::model::HazardModel;
use crate::surge::SurgeHazard;
use crate::wind::WindFragilityHazard;
use ct_geo::Dem;
use ct_hydro::{ParametricSurge, Stations, SurgeCalibration};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Which hazard engine a run uses. This is the *configuration-level*
/// name a user types (`ct run --hazard wind`) and a config file
/// serializes; [`HazardSpec::build_model`] turns it into the live
/// [`HazardModel`] once the terrain is synthesized.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HazardSpec {
    /// Storm-surge inundation (the paper's original hazard; default).
    #[default]
    Surge,
    /// Wind-gust fragility of the assets.
    Wind,
    /// Surge ∪ wind under per-asset max severity.
    Compound,
}

impl HazardSpec {
    /// All specs, in CLI listing order.
    pub const ALL: [HazardSpec; 3] = [HazardSpec::Surge, HazardSpec::Wind, HazardSpec::Compound];

    /// The CLI keyword (`surge` | `wind` | `compound`).
    pub fn keyword(self) -> &'static str {
        match self {
            HazardSpec::Surge => "surge",
            HazardSpec::Wind => "wind",
            HazardSpec::Compound => "compound",
        }
    }

    /// Builds the live model for this spec: the surge model is
    /// calibrated against the synthesized terrain's coastal stations,
    /// the wind model uses the default fragility parameterization,
    /// and `compound` is the union of both.
    pub fn build_model(self, dem: &Dem, calibration: SurgeCalibration) -> Box<dyn HazardModel> {
        self.build_model_with_stations(dem, Stations::from_dem(dem), calibration)
    }

    /// [`build_model`](Self::build_model) with an explicit station
    /// set. The Oahu pipeline passes [`Stations::from_dem`] (the named
    /// shoreline stations); synthetic portfolio regions pass
    /// [`Stations::cardinal_from_dem`], whose stations are derived
    /// from the region's own coastline extremes. `dem` is unused for
    /// the wind hazard (wind needs no bathymetry) but kept in the
    /// signature so every spec builds uniformly.
    pub fn build_model_with_stations(
        self,
        dem: &Dem,
        stations: Stations,
        calibration: SurgeCalibration,
    ) -> Box<dyn HazardModel> {
        let _ = dem;
        let surge = || SurgeHazard::new(ParametricSurge::new(stations.clone(), calibration));
        match self {
            HazardSpec::Surge => Box::new(surge()),
            HazardSpec::Wind => Box::new(WindFragilityHazard::default()),
            HazardSpec::Compound => Box::new(
                CompoundHazard::union(vec![
                    Box::new(surge()),
                    Box::new(WindFragilityHazard::default()),
                ])
                .expect("two parts is never empty"),
            ),
        }
    }
}

impl fmt::Display for HazardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// Rejection for [`HazardSpec::from_str`]; quotes the input verbatim
/// so CLI errors are actionable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseHazardSpecError {
    input: String,
}

impl fmt::Display for ParseHazardSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown hazard '{}' (expected surge | wind | compound)",
            self.input
        )
    }
}

impl std::error::Error for ParseHazardSpecError {}

impl FromStr for HazardSpec {
    type Err = ParseHazardSpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        HazardSpec::ALL
            .into_iter()
            .find(|spec| spec.keyword().eq_ignore_ascii_case(s))
            .ok_or_else(|| ParseHazardSpecError {
                input: s.to_string(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_geo::terrain::{synthesize_oahu, OahuTerrainConfig};

    #[test]
    fn keyword_round_trips_and_is_case_insensitive() {
        for spec in HazardSpec::ALL {
            assert_eq!(spec.keyword().parse::<HazardSpec>().unwrap(), spec);
            assert_eq!(spec.to_string().parse::<HazardSpec>().unwrap(), spec);
            assert_eq!(
                spec.keyword()
                    .to_ascii_uppercase()
                    .parse::<HazardSpec>()
                    .unwrap(),
                spec
            );
        }
        assert_eq!(HazardSpec::default(), HazardSpec::Surge);
    }

    #[test]
    fn junk_is_rejected_with_the_input_quoted() {
        for junk in ["", "surge+wind", "windd", " wind", "flood"] {
            let e = junk.parse::<HazardSpec>().unwrap_err();
            assert!(e.to_string().contains(junk), "must quote {junk:?}: {e}");
        }
    }

    #[test]
    fn built_models_carry_the_expected_ids() {
        let dem = synthesize_oahu(&OahuTerrainConfig::default());
        let cal = SurgeCalibration::default();
        assert_eq!(
            HazardSpec::Surge.build_model(&dem, cal).hazard_id(),
            "surge"
        );
        assert_eq!(HazardSpec::Wind.build_model(&dem, cal).hazard_id(), "wind");
        assert_eq!(
            HazardSpec::Compound.build_model(&dem, cal).hazard_id(),
            "compound(surge+wind)"
        );
    }

    #[test]
    fn explicit_stations_match_the_default_oahu_build() {
        // `build_model` is `build_model_with_stations(from_dem(dem))`:
        // same stations → same parameter digests for every spec.
        let dem = synthesize_oahu(&OahuTerrainConfig::default());
        let cal = SurgeCalibration::default();
        for spec in HazardSpec::ALL {
            let implicit = spec.build_model(&dem, cal);
            let explicit = spec.build_model_with_stations(&dem, Stations::from_dem(&dem), cal);
            let digest = |m: &dyn HazardModel| {
                let mut h = ct_store::StableHasher::new();
                m.digest_params(&mut h);
                h.finish()
            };
            assert_eq!(implicit.hazard_id(), explicit.hazard_id());
            assert_eq!(digest(implicit.as_ref()), digest(explicit.as_ref()));
        }
        // The explicit hook exists because station sets genuinely
        // differ: the cardinal set places stations at coastline
        // extremes, not at Oahu's named shoreline sites. (Station
        // geometry is keyed by the region digest, not digest_params.)
        assert_ne!(Stations::from_dem(&dem), Stations::cardinal_from_dem(&dem));
        let surge = HazardSpec::Surge.build_model_with_stations(
            &dem,
            Stations::cardinal_from_dem(&dem),
            cal,
        );
        assert_eq!(surge.hazard_id(), "surge");
    }
}
