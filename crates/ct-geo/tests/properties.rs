//! Property-based tests for the geospatial substrate.

use ct_geo::{EnuKm, Grid, LatLon, Polygon, Projection};
use proptest::prelude::*;

fn island_latlon() -> impl Strategy<Value = LatLon> {
    (21.2f64..21.75, -158.3f64..-157.6).prop_map(|(lat, lon)| LatLon::new(lat, lon))
}

proptest! {
    /// destination(bearing, d) lands exactly d away (great-circle).
    #[test]
    fn destination_distance_round_trip(
        p in island_latlon(),
        bearing in 0.0f64..360.0,
        d in 0.1f64..500.0,
    ) {
        let q = p.destination(bearing, d);
        prop_assert!((p.distance_km(q) - d).abs() < 0.05, "{} vs {}", p.distance_km(q), d);
    }

    /// The local projection round-trips everywhere in the island
    /// domain.
    #[test]
    fn projection_round_trip(p in island_latlon()) {
        let proj = Projection::new(LatLon::new(21.45, -158.0));
        let back = proj.to_latlon(proj.to_enu(p));
        prop_assert!((back.lat - p.lat).abs() < 1e-9);
        prop_assert!((back.lon - p.lon).abs() < 1e-9);
    }

    /// Triangle inequality for the haversine metric.
    #[test]
    fn haversine_triangle_inequality(
        a in island_latlon(),
        b in island_latlon(),
        c in island_latlon(),
    ) {
        prop_assert!(a.distance_km(c) <= a.distance_km(b) + b.distance_km(c) + 1e-9);
    }

    /// Signed distance agrees with containment for arbitrary convex
    /// quadrilaterals.
    #[test]
    fn polygon_sdf_sign_matches_containment(
        cx in -10.0f64..10.0,
        cy in -10.0f64..10.0,
        r in 1.0f64..20.0,
        px in -40.0f64..40.0,
        py in -40.0f64..40.0,
    ) {
        // A square centred at (cx, cy) with half-width r.
        let poly = Polygon::new(vec![
            EnuKm::new(cx - r, cy - r),
            EnuKm::new(cx + r, cy - r),
            EnuKm::new(cx + r, cy + r),
            EnuKm::new(cx - r, cy + r),
        ]).expect("square");
        let p = EnuKm::new(px, py);
        let sdf = poly.signed_distance_km(p);
        // Skip points within numerical reach of the boundary.
        prop_assume!(sdf.abs() > 1e-6);
        prop_assert_eq!(sdf < 0.0, poly.contains(p), "sdf {} at {:?}", sdf, p);
        // And the unsigned distance to the closest boundary point is
        // consistent.
        let q = poly.closest_boundary_point(p);
        prop_assert!((p.distance_km(q) - sdf.abs()).abs() < 1e-9);
    }

    /// Bilinear sampling at a cell centre returns the stored value.
    #[test]
    fn grid_sample_at_centers(
        cols in 2usize..20,
        rows in 2usize..20,
        cell in 0.1f64..5.0,
        pick_c in 0usize..19,
        pick_r in 0usize..19,
    ) {
        let g = Grid::from_fn(cols, rows, EnuKm::new(-3.0, 4.0), cell, |p| {
            (p.east * 13.7).sin() + (p.north * 3.1).cos()
        }).expect("grid");
        let c = pick_c % cols;
        let r = pick_r % rows;
        let center = g.cell_center(c, r);
        let sampled = g.sample(center).expect("inside");
        prop_assert!((sampled - *g.get(c, r).unwrap()).abs() < 1e-9);
    }

    /// Value noise stays in [-1, 1] and is seed-deterministic.
    #[test]
    fn noise_bounded_and_deterministic(
        seed in any::<u64>(),
        x in -500.0f64..500.0,
        y in -500.0f64..500.0,
        freq in 0.01f64..4.0,
    ) {
        let p = EnuKm::new(x, y);
        let v = ct_geo::noise::value_noise(seed, p, freq);
        prop_assert!((-1.0..=1.0).contains(&v));
        prop_assert_eq!(v, ct_geo::noise::value_noise(seed, p, freq));
    }
}

#[test]
fn oahu_terrain_land_iff_positive_elevation() {
    use ct_geo::terrain::{synthesize_oahu, OahuTerrainConfig};
    let dem = synthesize_oahu(&OahuTerrainConfig::default());
    // is_land and elevation sign agree at a lattice of probes.
    for lat_i in 0..12 {
        for lon_i in 0..12 {
            let p = LatLon::new(21.23 + lat_i as f64 * 0.04, -158.28 + lon_i as f64 * 0.055);
            if let Ok(e) = dem.elevation_at(p) {
                assert_eq!(dem.is_land(p), e > 0.0, "at {p}: elevation {e}");
            }
        }
    }
}
