//! Digital elevation model with land/sea masking and shoreline queries.

use crate::coords::{EnuKm, LatLon, Projection};
use crate::error::GeoError;
use crate::grid::Grid;
use crate::index::ShoreIndex;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// A digital elevation model over a local east/north domain.
///
/// Elevations are metres above mean sea level; negative values are
/// bathymetry (sea floor below sea level). A cell is *land* when its
/// elevation is strictly positive.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dem {
    elevation: Grid<f64>,
    projection: Projection,
    /// Cell centres of land cells that touch at least one sea cell.
    coastline: Vec<EnuKm>,
    /// Lazily-built nearest-shore index over `coastline`. Derived
    /// state: excluded from serialization and equality.
    #[serde(skip)]
    shore_index: OnceLock<ShoreIndex>,
}

impl PartialEq for Dem {
    fn eq(&self, other: &Self) -> bool {
        self.elevation == other.elevation
            && self.projection == other.projection
            && self.coastline == other.coastline
    }
}

impl Dem {
    /// Builds a DEM from an elevation grid (metres, negative = sea
    /// floor) and the projection tying the local frame to geography.
    ///
    /// Coastline cells are extracted eagerly at construction.
    pub fn new(elevation: Grid<f64>, projection: Projection) -> Self {
        let coastline = extract_coastline(&elevation);
        Self {
            elevation,
            projection,
            coastline,
            shore_index: OnceLock::new(),
        }
    }

    /// The underlying elevation raster.
    pub fn elevation_grid(&self) -> &Grid<f64> {
        &self.elevation
    }

    /// The projection mapping geographic coordinates into the DEM's
    /// local frame.
    pub fn projection(&self) -> &Projection {
        &self.projection
    }

    /// Bilinearly-interpolated elevation (m) at a geographic point.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::OutOfBounds`] when the point falls outside
    /// the raster domain.
    pub fn elevation_at(&self, p: LatLon) -> Result<f64, GeoError> {
        self.elevation_at_enu(self.projection.to_enu(p))
            .ok_or_else(|| GeoError::OutOfBounds {
                what: format!("elevation at {p}"),
            })
    }

    /// Bilinearly-interpolated elevation (m) at a local point, or
    /// `None` outside the domain.
    pub fn elevation_at_enu(&self, p: EnuKm) -> Option<f64> {
        self.elevation.sample(p)
    }

    /// Whether the point is on land (elevation > 0). Points outside
    /// the domain count as sea.
    pub fn is_land(&self, p: LatLon) -> bool {
        self.elevation_at_enu(self.projection.to_enu(p))
            .is_some_and(|e| e > 0.0)
    }

    /// Cell centres of all coastline cells (land cells adjacent to
    /// sea), in local km.
    pub fn coastline_cells(&self) -> &[EnuKm] {
        &self.coastline
    }

    /// Nearest coastline cell centre to a local point, with its
    /// distance in km. `None` when the DEM contains no coastline.
    ///
    /// Served by a lazily-built [`ShoreIndex`]; bit-identical to the
    /// linear scan over [`Self::coastline_cells`].
    pub fn nearest_shore(&self, p: EnuKm) -> Option<(EnuKm, f64)> {
        self.shore_index
            .get_or_init(|| ShoreIndex::new(&self.coastline))
            .nearest(p)
    }

    /// Distance from a geographic point to the nearest coastline, km.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::OutOfBounds`] if the DEM has no coastline
    /// at all (fully land or fully sea).
    pub fn distance_to_shore_km(&self, p: LatLon) -> Result<f64, GeoError> {
        self.nearest_shore(self.projection.to_enu(p))
            .map(|(_, d)| d)
            .ok_or_else(|| GeoError::OutOfBounds {
                what: "no coastline in DEM".to_string(),
            })
    }

    /// Mean sea depth (positive metres) along the outward-pointing ray
    /// from `shore` in direction `bearing_deg`, sampled out to
    /// `range_km`. Used to characterise the offshore shelf profile.
    ///
    /// Returns `None` when no sea cells are found along the ray.
    pub fn mean_offshore_depth(
        &self,
        shore: EnuKm,
        bearing_deg: f64,
        range_km: f64,
    ) -> Option<f64> {
        let theta = bearing_deg.to_radians();
        let (de, dn) = (theta.sin(), theta.cos());
        let step = self.elevation.cell_km() / 2.0;
        let mut depths = Vec::new();
        let mut s = step;
        while s <= range_km {
            let q = EnuKm::new(shore.east + de * s, shore.north + dn * s);
            if let Some(e) = self.elevation.sample(q) {
                if e < 0.0 {
                    depths.push(-e);
                }
            }
            s += step;
        }
        if depths.is_empty() {
            None
        } else {
            Some(depths.iter().sum::<f64>() / depths.len() as f64)
        }
    }

    /// Fraction of cells that are land.
    pub fn land_fraction(&self) -> f64 {
        let total = self.elevation.cols() * self.elevation.rows();
        let land = self
            .elevation
            .as_slice()
            .iter()
            .filter(|&&e| e > 0.0)
            .count();
        land as f64 / total as f64
    }
}

/// Finds land cells with at least one 4-neighbour sea cell.
fn extract_coastline(elev: &Grid<f64>) -> Vec<EnuKm> {
    let mut out = Vec::new();
    let (cols, rows) = (elev.cols(), elev.rows());
    let sea = |c: usize, r: usize| elev.get(c, r).is_some_and(|&e| e <= 0.0);
    for r in 0..rows {
        for c in 0..cols {
            let Some(&e) = elev.get(c, r) else { continue };
            if e <= 0.0 {
                continue;
            }
            let near_sea = (c > 0 && sea(c - 1, r))
                || (c + 1 < cols && sea(c + 1, r))
                || (r > 0 && sea(c, r - 1))
                || (r + 1 < rows && sea(c, r + 1));
            if near_sea {
                out.push(elev.cell_center(c, r));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coords::LatLon;

    /// A toy island: a 10 km-radius cone centred at the origin,
    /// surrounded by sea deepening outward.
    fn cone_island() -> Dem {
        let origin = EnuKm::new(-25.0, -25.0);
        let grid = Grid::from_fn(50, 50, origin, 1.0, |p| {
            let r = (p.east * p.east + p.north * p.north).sqrt();
            if r < 10.0 {
                (10.0 - r) * 20.0 // up to 200 m at the peak
            } else {
                -(r - 10.0) * 30.0 // deepening sea
            }
        })
        .unwrap();
        Dem::new(grid, Projection::new(LatLon::new(21.45, -158.0)))
    }

    #[test]
    fn land_and_sea_classification() {
        let dem = cone_island();
        let proj = *dem.projection();
        let center = proj.to_latlon(EnuKm::new(0.0, 0.0));
        let far = proj.to_latlon(EnuKm::new(20.0, 0.0));
        assert!(dem.is_land(center));
        assert!(!dem.is_land(far));
    }

    #[test]
    fn coastline_ring_extracted() {
        let dem = cone_island();
        let ring = dem.coastline_cells();
        assert!(!ring.is_empty());
        for c in ring {
            let r = (c.east * c.east + c.north * c.north).sqrt();
            assert!(
                (8.0..=11.5).contains(&r),
                "coastline cell at radius {r}, expected near 10"
            );
        }
    }

    #[test]
    fn nearest_shore_distance() {
        let dem = cone_island();
        let (_, d) = dem.nearest_shore(EnuKm::new(0.0, 0.0)).unwrap();
        assert!((8.0..=11.0).contains(&d), "got {d}");
        let (_, d) = dem.nearest_shore(EnuKm::new(15.0, 0.0)).unwrap();
        assert!(d < 7.0, "got {d}");
    }

    #[test]
    fn offshore_depth_increases_with_range() {
        let dem = cone_island();
        let shore = EnuKm::new(9.5, 0.0);
        let near = dem.mean_offshore_depth(shore, 90.0, 3.0).unwrap();
        let far = dem.mean_offshore_depth(shore, 90.0, 12.0).unwrap();
        assert!(far > near, "near={near} far={far}");
    }

    #[test]
    fn offshore_depth_none_inland() {
        let dem = cone_island();
        // Pointing inland from the peak: no sea within 5 km.
        assert!(dem
            .mean_offshore_depth(EnuKm::new(-5.0, 0.0), 90.0, 4.0)
            .is_none());
    }

    #[test]
    fn land_fraction_sane() {
        let dem = cone_island();
        let f = dem.land_fraction();
        // Cone of radius 10 in a 50x50 domain: pi*100/2500 ≈ 0.126.
        assert!((0.08..0.2).contains(&f), "got {f}");
    }

    #[test]
    fn elevation_at_out_of_bounds_errors() {
        let dem = cone_island();
        let far = LatLon::new(25.0, -160.0);
        assert!(dem.elevation_at(far).is_err());
    }
}
