//! Deterministic value noise used for terrain synthesis.
//!
//! The generator is hash-based (no RNG state), so the same seed and
//! coordinates always produce the same field regardless of evaluation
//! order — a requirement for reproducible terrain.

use crate::coords::EnuKm;

/// SplitMix64 finalizer; a fast, well-mixed 64-bit hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Hashes integer lattice coordinates and a seed to a value in `[-1, 1]`.
fn lattice_value(seed: u64, xi: i64, yi: i64) -> f64 {
    let h = splitmix64(
        seed ^ (xi as u64).wrapping_mul(0x9E3779B97F4A7C15)
            ^ (yi as u64).wrapping_mul(0xC2B2AE3D27D4EB4F),
    );
    // Map the top 53 bits to [0, 1), then to [-1, 1].
    ((h >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
}

/// Quintic smoothstep used for C2-continuous interpolation.
fn fade(t: f64) -> f64 {
    t * t * t * (t * (t * 6.0 - 15.0) + 10.0)
}

/// Smooth deterministic value noise in `[-1, 1]`.
///
/// `freq` is in cycles per kilometre: higher values produce
/// finer-grained variation.
pub fn value_noise(seed: u64, p: EnuKm, freq: f64) -> f64 {
    let x = p.east * freq;
    let y = p.north * freq;
    let x0 = x.floor();
    let y0 = y.floor();
    let tx = fade(x - x0);
    let ty = fade(y - y0);
    let (xi, yi) = (x0 as i64, y0 as i64);
    let v00 = lattice_value(seed, xi, yi);
    let v10 = lattice_value(seed, xi + 1, yi);
    let v01 = lattice_value(seed, xi, yi + 1);
    let v11 = lattice_value(seed, xi + 1, yi + 1);
    let a = v00 * (1.0 - tx) + v10 * tx;
    let b = v01 * (1.0 - tx) + v11 * tx;
    a * (1.0 - ty) + b * ty
}

/// Fractal Brownian motion: `octaves` layers of [`value_noise`] with
/// doubling frequency and halving amplitude. Result stays in `[-1, 1]`.
pub fn fbm(seed: u64, p: EnuKm, base_freq: f64, octaves: u32) -> f64 {
    let mut total = 0.0;
    let mut amp = 1.0;
    let mut freq = base_freq;
    let mut norm = 0.0;
    for octave in 0..octaves {
        total += amp * value_noise(seed.wrapping_add(octave as u64 * 0x9E37), p, freq);
        norm += amp;
        amp *= 0.5;
        freq *= 2.0;
    }
    if norm > 0.0 {
        total / norm
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let p = EnuKm::new(3.7, -12.9);
        assert_eq!(value_noise(7, p, 0.1), value_noise(7, p, 0.1));
        assert_eq!(fbm(7, p, 0.1, 5), fbm(7, p, 0.1, 5));
    }

    #[test]
    fn seed_changes_field() {
        let p = EnuKm::new(3.7, -12.9);
        assert_ne!(value_noise(1, p, 0.1), value_noise(2, p, 0.1));
    }

    #[test]
    fn bounded() {
        for i in 0..500 {
            let p = EnuKm::new(i as f64 * 0.37, i as f64 * -0.91);
            let v = value_noise(42, p, 0.21);
            assert!((-1.0..=1.0).contains(&v), "value noise out of range: {v}");
            let f = fbm(42, p, 0.21, 6);
            assert!((-1.0..=1.0).contains(&f), "fbm out of range: {f}");
        }
    }

    #[test]
    fn continuity() {
        // Neighbouring samples differ by a small amount: no hard seams
        // across lattice boundaries.
        let eps = 1e-4;
        for i in 0..200 {
            let p = EnuKm::new(i as f64 * 0.05, 1.0);
            let q = EnuKm::new(p.east + eps, p.north);
            let dv = (value_noise(9, p, 1.0) - value_noise(9, q, 1.0)).abs();
            assert!(dv < 0.01, "discontinuity {dv} at {p}");
        }
    }

    #[test]
    fn fbm_zero_octaves_is_zero() {
        assert_eq!(fbm(1, EnuKm::new(1.0, 1.0), 0.5, 0), 0.0);
    }

    #[test]
    fn mean_near_zero() {
        let mut sum = 0.0;
        let n = 2000;
        for i in 0..n {
            let p = EnuKm::new((i % 50) as f64 * 0.73, (i / 50) as f64 * 0.61);
            sum += value_noise(123, p, 0.37);
        }
        let mean: f64 = sum / n as f64;
        assert!(mean.abs() < 0.1, "mean {mean} too far from zero");
    }
}
