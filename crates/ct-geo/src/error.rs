//! Error types for geospatial operations.

use std::fmt;

/// Errors produced by geospatial operations.
#[derive(Debug, Clone, PartialEq)]
pub enum GeoError {
    /// A coordinate was outside the domain of a grid or DEM.
    OutOfBounds {
        /// What was being looked up (for diagnostics).
        what: String,
    },
    /// A grid was constructed with zero rows or columns.
    EmptyGrid,
    /// A polygon had fewer than three vertices.
    DegeneratePolygon {
        /// Number of vertices supplied.
        vertices: usize,
    },
    /// An invalid latitude/longitude was supplied.
    InvalidCoordinate {
        /// Offending latitude in degrees.
        lat: f64,
        /// Offending longitude in degrees.
        lon: f64,
    },
}

impl fmt::Display for GeoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeoError::OutOfBounds { what } => {
                write!(f, "coordinate outside grid domain: {what}")
            }
            GeoError::EmptyGrid => write!(f, "grid must have at least one row and column"),
            GeoError::DegeneratePolygon { vertices } => {
                write!(f, "polygon needs at least 3 vertices, got {vertices}")
            }
            GeoError::InvalidCoordinate { lat, lon } => {
                write!(f, "invalid coordinate lat={lat} lon={lon}")
            }
        }
    }
}

impl std::error::Error for GeoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let errs = [
            GeoError::OutOfBounds { what: "x".into() },
            GeoError::EmptyGrid,
            GeoError::DegeneratePolygon { vertices: 2 },
            GeoError::InvalidCoordinate {
                lat: 100.0,
                lon: 0.0,
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GeoError>();
    }
}
