//! Geographic coordinates and a local tangent-plane projection.

use crate::error::GeoError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Mean Earth radius in kilometres (spherical approximation).
pub const EARTH_RADIUS_KM: f64 = 6371.0088;

/// A geographic coordinate in degrees (WGS-84 latitude/longitude,
/// spherical Earth approximation for distances).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatLon {
    /// Latitude in degrees, positive north.
    pub lat: f64,
    /// Longitude in degrees, positive east.
    pub lon: f64,
}

impl LatLon {
    /// Creates a coordinate.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `lat` is outside `[-90, 90]` or `lon`
    /// outside `[-180, 180]`. Use [`LatLon::try_new`] for validated
    /// construction.
    pub fn new(lat: f64, lon: f64) -> Self {
        debug_assert!(
            (-90.0..=90.0).contains(&lat),
            "latitude out of range: {lat}"
        );
        debug_assert!(
            (-180.0..=180.0).contains(&lon),
            "longitude out of range: {lon}"
        );
        Self { lat, lon }
    }

    /// Creates a coordinate, validating ranges.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidCoordinate`] if latitude is outside
    /// `[-90, 90]` or longitude outside `[-180, 180]`.
    pub fn try_new(lat: f64, lon: f64) -> Result<Self, GeoError> {
        if !(-90.0..=90.0).contains(&lat) || !(-180.0..=180.0).contains(&lon) {
            return Err(GeoError::InvalidCoordinate { lat, lon });
        }
        Ok(Self { lat, lon })
    }

    /// Great-circle (haversine) distance to `other` in kilometres.
    pub fn distance_km(&self, other: LatLon) -> f64 {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().asin()
    }

    /// Initial bearing from `self` to `other` in degrees clockwise from
    /// north, in `[0, 360)`.
    pub fn bearing_deg(&self, other: LatLon) -> f64 {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlon = lon2 - lon1;
        let y = dlon.sin() * lat2.cos();
        let x = lat1.cos() * lat2.sin() - lat1.sin() * lat2.cos() * dlon.cos();
        (y.atan2(x).to_degrees() + 360.0) % 360.0
    }

    /// Destination point after travelling `distance_km` along the given
    /// initial bearing (degrees clockwise from north).
    pub fn destination(&self, bearing_deg: f64, distance_km: f64) -> LatLon {
        let delta = distance_km / EARTH_RADIUS_KM;
        let theta = bearing_deg.to_radians();
        let lat1 = self.lat.to_radians();
        let lon1 = self.lon.to_radians();
        let lat2 = (lat1.sin() * delta.cos() + lat1.cos() * delta.sin() * theta.cos()).asin();
        let lon2 = lon1
            + (theta.sin() * delta.sin() * lat1.cos()).atan2(delta.cos() - lat1.sin() * lat2.sin());
        LatLon {
            lat: lat2.to_degrees(),
            lon: ((lon2.to_degrees() + 540.0) % 360.0) - 180.0,
        }
    }
}

impl fmt::Display for LatLon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.4}, {:.4})", self.lat, self.lon)
    }
}

/// A point in a local east/north tangent plane, in kilometres.
///
/// Produced by [`Projection::to_enu`]; the projection origin maps to
/// `(0, 0)`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnuKm {
    /// Kilometres east of the projection origin.
    pub east: f64,
    /// Kilometres north of the projection origin.
    pub north: f64,
}

impl EnuKm {
    /// Creates a point from east/north offsets in kilometres.
    pub fn new(east: f64, north: f64) -> Self {
        Self { east, north }
    }

    /// Euclidean distance to `other` in kilometres.
    pub fn distance_km(&self, other: EnuKm) -> f64 {
        ((self.east - other.east).powi(2) + (self.north - other.north).powi(2)).sqrt()
    }
}

impl fmt::Display for EnuKm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:+.2}E, {:+.2}N] km", self.east, self.north)
    }
}

/// An equirectangular local tangent-plane projection centred on an
/// origin coordinate.
///
/// Accurate to well under 1 % over island-scale domains (~100 km),
/// which is all the analysis requires.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Projection {
    origin: LatLon,
    cos_lat0: f64,
}

impl Projection {
    /// Creates a projection centred on `origin`.
    pub fn new(origin: LatLon) -> Self {
        Self {
            origin,
            cos_lat0: origin.lat.to_radians().cos(),
        }
    }

    /// The projection origin.
    pub fn origin(&self) -> LatLon {
        self.origin
    }

    /// Projects a geographic coordinate to local east/north kilometres.
    pub fn to_enu(&self, p: LatLon) -> EnuKm {
        let km_per_deg = EARTH_RADIUS_KM * std::f64::consts::PI / 180.0;
        EnuKm {
            east: (p.lon - self.origin.lon) * km_per_deg * self.cos_lat0,
            north: (p.lat - self.origin.lat) * km_per_deg,
        }
    }

    /// Inverse projection from local east/north kilometres.
    pub fn to_latlon(&self, p: EnuKm) -> LatLon {
        let km_per_deg = EARTH_RADIUS_KM * std::f64::consts::PI / 180.0;
        LatLon {
            lat: self.origin.lat + p.north / km_per_deg,
            lon: self.origin.lon + p.east / (km_per_deg * self.cos_lat0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const OAHU: LatLon = LatLon {
        lat: 21.45,
        lon: -158.0,
    };

    #[test]
    fn try_new_validates() {
        assert!(LatLon::try_new(91.0, 0.0).is_err());
        assert!(LatLon::try_new(0.0, 181.0).is_err());
        assert!(LatLon::try_new(21.3, -157.8).is_ok());
    }

    #[test]
    fn haversine_known_distance() {
        // Honolulu to Kahe is roughly 29 km.
        let honolulu = LatLon::new(21.307, -157.858);
        let kahe = LatLon::new(21.354, -158.129);
        let d = honolulu.distance_km(kahe);
        assert!((25.0..35.0).contains(&d), "got {d}");
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = LatLon::new(21.3, -157.9);
        let b = LatLon::new(21.6, -158.2);
        assert!((a.distance_km(b) - b.distance_km(a)).abs() < 1e-9);
        assert!(a.distance_km(a).abs() < 1e-12);
    }

    #[test]
    fn bearing_cardinal_directions() {
        let a = LatLon::new(21.0, -158.0);
        assert!((a.bearing_deg(LatLon::new(22.0, -158.0)) - 0.0).abs() < 1e-6);
        let east = a.bearing_deg(LatLon::new(21.0, -157.0));
        assert!((east - 90.0).abs() < 0.5, "got {east}");
        let south = a.bearing_deg(LatLon::new(20.0, -158.0));
        assert!((south - 180.0).abs() < 1e-6);
    }

    #[test]
    fn destination_round_trips_distance() {
        let a = LatLon::new(21.3, -158.0);
        for bearing in [0.0, 45.0, 133.0, 270.0] {
            let b = a.destination(bearing, 42.0);
            assert!((a.distance_km(b) - 42.0).abs() < 0.01);
        }
    }

    #[test]
    fn projection_round_trip() {
        let proj = Projection::new(OAHU);
        let p = LatLon::new(21.31, -157.86);
        let enu = proj.to_enu(p);
        let back = proj.to_latlon(enu);
        assert!((back.lat - p.lat).abs() < 1e-9);
        assert!((back.lon - p.lon).abs() < 1e-9);
    }

    #[test]
    fn projection_matches_haversine_locally() {
        let proj = Projection::new(OAHU);
        let a = LatLon::new(21.31, -157.86);
        let b = LatLon::new(21.50, -158.20);
        let planar = proj.to_enu(a).distance_km(proj.to_enu(b));
        let sphere = a.distance_km(b);
        let rel = (planar - sphere).abs() / sphere;
        assert!(rel < 0.01, "relative error {rel}");
    }

    #[test]
    fn enu_distance() {
        let a = EnuKm::new(0.0, 0.0);
        let b = EnuKm::new(3.0, 4.0);
        assert!((a.distance_km(b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            LatLon::new(21.3, -157.8).to_string(),
            "(21.3000, -157.8000)"
        );
        assert!(EnuKm::new(1.0, -2.0).to_string().contains('E'));
    }
}
