//! Geospatial substrate for the compound-threats analysis framework.
//!
//! This crate provides the low-level geographic machinery that the
//! hurricane model (`ct-hydro`) and the SCADA topology (`ct-scada`)
//! are built on:
//!
//! * [`LatLon`] geographic coordinates with haversine distances and a
//!   local east/north tangent-plane [`Projection`];
//! * a generic raster [`Grid`] with bilinear sampling;
//! * a digital elevation model ([`Dem`]) with land/sea masking,
//!   coastline extraction and distance-to-shore queries;
//! * closed [`Polygon`]s with point-in-polygon and signed-distance
//!   queries, used to describe island outlines;
//! * deterministic procedural [`noise`] and a region-generic terrain
//!   synthesizer ([`region::synthesize_region`]) with a synthetic Oahu
//!   preset ([`terrain::synthesize_oahu`]);
//! * uniform-grid spatial indexes ([`index::ShoreIndex`],
//!   [`index::SpatialIndex`]) for nearest-shore and
//!   hazard-footprint→asset range queries.
//!
//! Everything here is deterministic: the same inputs always produce the
//! same terrain, which is what makes the downstream Monte-Carlo
//! analysis reproducible.
//!
//! # Example
//!
//! ```
//! use ct_geo::{LatLon, terrain};
//!
//! let dem = terrain::synthesize_oahu(&terrain::OahuTerrainConfig::default());
//! let honolulu = LatLon::new(21.307, -157.858);
//! let elev = dem.elevation_at(honolulu).expect("inside the DEM domain");
//! assert!(elev > 0.0, "downtown Honolulu is on land");
//! ```

pub mod coords;
pub mod dem;
pub mod error;
pub mod grid;
pub mod index;
pub mod noise;
pub mod polygon;
pub mod region;
pub mod terrain;

pub use coords::{EnuKm, LatLon, Projection, EARTH_RADIUS_KM};
pub use dem::Dem;
pub use error::GeoError;
pub use grid::Grid;
pub use index::{ShoreIndex, SpatialIndex};
pub use polygon::Polygon;
pub use region::{synthesize_region, CoastSector, RegionTerrainSpec, RidgeSpec, SectorRule};
