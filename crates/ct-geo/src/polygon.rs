//! Closed polygons with containment and signed-distance queries.

use crate::coords::EnuKm;
use crate::error::GeoError;
use serde::{Deserialize, Serialize};

/// A closed simple polygon in the local east/north plane (km).
///
/// Vertices are stored in order; the closing edge from the last vertex
/// back to the first is implicit. Winding order does not matter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polygon {
    vertices: Vec<EnuKm>,
}

impl Polygon {
    /// Creates a polygon from a vertex list.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::DegeneratePolygon`] if fewer than three
    /// vertices are supplied.
    pub fn new(vertices: Vec<EnuKm>) -> Result<Self, GeoError> {
        if vertices.len() < 3 {
            return Err(GeoError::DegeneratePolygon {
                vertices: vertices.len(),
            });
        }
        Ok(Self { vertices })
    }

    /// The vertex list (closing edge implicit).
    pub fn vertices(&self) -> &[EnuKm] {
        &self.vertices
    }

    /// Tests whether `p` lies inside the polygon (even-odd rule).
    /// Points exactly on the boundary may go either way.
    pub fn contains(&self, p: EnuKm) -> bool {
        let mut inside = false;
        let n = self.vertices.len();
        let mut j = n - 1;
        for i in 0..n {
            let vi = self.vertices[i];
            let vj = self.vertices[j];
            if (vi.north > p.north) != (vj.north > p.north) {
                let t = (p.north - vi.north) / (vj.north - vi.north);
                let x = vi.east + t * (vj.east - vi.east);
                if p.east < x {
                    inside = !inside;
                }
            }
            j = i;
        }
        inside
    }

    /// Unsigned distance from `p` to the polygon boundary, in km.
    pub fn boundary_distance_km(&self, p: EnuKm) -> f64 {
        let mut best = f64::INFINITY;
        let n = self.vertices.len();
        let mut j = n - 1;
        for i in 0..n {
            best = best.min(segment_distance(p, self.vertices[j], self.vertices[i]));
            j = i;
        }
        best
    }

    /// Signed distance: negative inside, positive outside, zero on the
    /// boundary (up to floating point).
    pub fn signed_distance_km(&self, p: EnuKm) -> f64 {
        let d = self.boundary_distance_km(p);
        if self.contains(p) {
            -d
        } else {
            d
        }
    }

    /// Closest point on the polygon boundary to `p`.
    pub fn closest_boundary_point(&self, p: EnuKm) -> EnuKm {
        let mut best = f64::INFINITY;
        let mut best_pt = self.vertices[0];
        let n = self.vertices.len();
        let mut j = n - 1;
        for i in 0..n {
            let q = segment_closest_point(p, self.vertices[j], self.vertices[i]);
            let d = p.distance_km(q);
            if d < best {
                best = d;
                best_pt = q;
            }
            j = i;
        }
        best_pt
    }

    /// Signed area via the shoelace formula (km²). Positive for
    /// counter-clockwise winding.
    pub fn signed_area_km2(&self) -> f64 {
        let n = self.vertices.len();
        let mut acc = 0.0;
        let mut j = n - 1;
        for i in 0..n {
            let (a, b) = (self.vertices[j], self.vertices[i]);
            acc += a.east * b.north - b.east * a.north;
            j = i;
        }
        acc / 2.0
    }

    /// Unsigned area in km².
    pub fn area_km2(&self) -> f64 {
        self.signed_area_km2().abs()
    }

    /// Axis-aligned bounding box `(min, max)`.
    pub fn bounding_box(&self) -> (EnuKm, EnuKm) {
        let mut min = EnuKm::new(f64::INFINITY, f64::INFINITY);
        let mut max = EnuKm::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
        for v in &self.vertices {
            min.east = min.east.min(v.east);
            min.north = min.north.min(v.north);
            max.east = max.east.max(v.east);
            max.north = max.north.max(v.north);
        }
        (min, max)
    }
}

/// Distance from point `p` to segment `ab`.
fn segment_distance(p: EnuKm, a: EnuKm, b: EnuKm) -> f64 {
    p.distance_km(segment_closest_point(p, a, b))
}

/// Closest point to `p` on segment `ab`.
fn segment_closest_point(p: EnuKm, a: EnuKm, b: EnuKm) -> EnuKm {
    let abe = b.east - a.east;
    let abn = b.north - a.north;
    let len2 = abe * abe + abn * abn;
    if len2 == 0.0 {
        return a;
    }
    let t = (((p.east - a.east) * abe + (p.north - a.north) * abn) / len2).clamp(0.0, 1.0);
    EnuKm::new(a.east + t * abe, a.north + t * abn)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> Polygon {
        Polygon::new(vec![
            EnuKm::new(0.0, 0.0),
            EnuKm::new(10.0, 0.0),
            EnuKm::new(10.0, 10.0),
            EnuKm::new(0.0, 10.0),
        ])
        .unwrap()
    }

    #[test]
    fn rejects_degenerate() {
        assert!(matches!(
            Polygon::new(vec![EnuKm::default(), EnuKm::default()]),
            Err(GeoError::DegeneratePolygon { vertices: 2 })
        ));
    }

    #[test]
    fn containment() {
        let sq = square();
        assert!(sq.contains(EnuKm::new(5.0, 5.0)));
        assert!(!sq.contains(EnuKm::new(-1.0, 5.0)));
        assert!(!sq.contains(EnuKm::new(5.0, 10.5)));
    }

    #[test]
    fn signed_distance_signs() {
        let sq = square();
        assert!((sq.signed_distance_km(EnuKm::new(5.0, 5.0)) + 5.0).abs() < 1e-12);
        assert!((sq.signed_distance_km(EnuKm::new(13.0, 5.0)) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn closest_point_on_edge() {
        let sq = square();
        let q = sq.closest_boundary_point(EnuKm::new(5.0, -3.0));
        assert!((q.east - 5.0).abs() < 1e-12 && q.north.abs() < 1e-12);
        // Corner case: nearest to a vertex.
        let q = sq.closest_boundary_point(EnuKm::new(12.0, 12.0));
        assert!((q.east - 10.0).abs() < 1e-12 && (q.north - 10.0).abs() < 1e-12);
    }

    #[test]
    fn area() {
        assert!((square().area_km2() - 100.0).abs() < 1e-12);
        // Winding order reversal preserves unsigned area.
        let mut verts = square().vertices().to_vec();
        verts.reverse();
        assert!((Polygon::new(verts).unwrap().area_km2() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn bounding_box() {
        let (min, max) = square().bounding_box();
        assert_eq!((min.east, min.north), (0.0, 0.0));
        assert_eq!((max.east, max.north), (10.0, 10.0));
    }

    #[test]
    fn concave_polygon_containment() {
        // An L-shape: the notch at top-right is outside.
        let l = Polygon::new(vec![
            EnuKm::new(0.0, 0.0),
            EnuKm::new(10.0, 0.0),
            EnuKm::new(10.0, 5.0),
            EnuKm::new(5.0, 5.0),
            EnuKm::new(5.0, 10.0),
            EnuKm::new(0.0, 10.0),
        ])
        .unwrap();
        assert!(l.contains(EnuKm::new(2.0, 8.0)));
        assert!(!l.contains(EnuKm::new(8.0, 8.0)));
        assert!(l.contains(EnuKm::new(8.0, 2.0)));
        assert!((l.area_km2() - 75.0).abs() < 1e-12);
    }
}
