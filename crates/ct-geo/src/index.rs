//! Uniform-grid spatial indexes.
//!
//! Two index types back the hazard-footprint→asset mapping:
//!
//! - [`ShoreIndex`]: buckets coastline cell centres in the local
//!   east/north frame and answers nearest-neighbour queries by an
//!   expanding ring search. Results are *bit-identical* to the linear
//!   scan (`iter().min_by(total_cmp)`): the same distance expression is
//!   evaluated, and ties break to the lowest point index, which is
//!   exactly the first-minimum element the linear scan returns.
//! - [`SpatialIndex`]: buckets geographic points by degree windows and
//!   answers "all points strictly within `r` km of a centre" queries.
//!   Buckets give a conservative candidate superset; an exact haversine
//!   filter (`distance_km < r`, strict, matching the wind kernel's
//!   footprint gate) produces the hits. Candidate and hit volumes are
//!   reported to the `spatial.candidates` / `spatial.hits` counters,
//!   one batched add per query, so counts stay deterministic across
//!   worker-thread counts.
//!
//! Contract: query footprints must not wrap the ±180° antimeridian;
//! region generators keep portfolios away from it.

use crate::coords::{EnuKm, LatLon, EARTH_RADIUS_KM};

/// A uniform-grid nearest-neighbour index over local-frame points.
#[derive(Debug, Clone)]
pub struct ShoreIndex {
    points: Vec<EnuKm>,
    origin: EnuKm,
    cell_km: f64,
    cols: usize,
    rows: usize,
    buckets: Vec<Vec<u32>>,
}

impl ShoreIndex {
    /// Builds the index. Bucket size adapts to the point density so
    /// typical queries touch O(1) buckets.
    pub fn new(points: &[EnuKm]) -> Self {
        if points.is_empty() {
            return Self {
                points: Vec::new(),
                origin: EnuKm::new(0.0, 0.0),
                cell_km: 1.0,
                cols: 0,
                rows: 0,
                buckets: Vec::new(),
            };
        }
        let (mut min_e, mut max_e) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut min_n, mut max_n) = (f64::INFINITY, f64::NEG_INFINITY);
        for p in points {
            min_e = min_e.min(p.east);
            max_e = max_e.max(p.east);
            min_n = min_n.min(p.north);
            max_n = max_n.max(p.north);
        }
        let span_e = (max_e - min_e).max(1e-9);
        let span_n = (max_n - min_n).max(1e-9);
        let cell_km = (span_e * span_n / points.len() as f64)
            .sqrt()
            .clamp(0.5, 8.0);
        let cols = ((span_e / cell_km).ceil() as usize).max(1);
        let rows = ((span_n / cell_km).ceil() as usize).max(1);
        let origin = EnuKm::new(min_e, min_n);
        let mut buckets = vec![Vec::new(); cols * rows];
        for (i, p) in points.iter().enumerate() {
            let (c, r) = bucket_of(*p, origin, cell_km, cols, rows);
            buckets[r * cols + c].push(i as u32);
        }
        Self {
            points: points.to_vec(),
            origin,
            cell_km,
            cols,
            rows,
            buckets,
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the index holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Nearest indexed point to `p` with its distance in km, or `None`
    /// for an empty index. Equals the linear scan
    /// `points.iter().map(|&c| (c, c.distance_km(p))).min_by(total_cmp)`
    /// bit for bit (ties break to the lowest index, i.e. the first
    /// minimum in iteration order).
    pub fn nearest(&self, p: EnuKm) -> Option<(EnuKm, f64)> {
        if self.points.is_empty() {
            return None;
        }
        let (bc, br) = bucket_of(p, self.origin, self.cell_km, self.cols, self.rows);
        let mut best: Option<(usize, f64)> = None;
        let max_ring = self.cols.max(self.rows);
        for ring in 0..=max_ring {
            if let Some((_, best_d)) = best {
                // Buckets at ring `ring` lie entirely outside the rect
                // covered by rings 0..ring; if the rect's interior
                // already clears best_d around p, no farther ring can
                // improve on (or tie) the current best.
                if self.ring_lower_bound(p, bc, br, ring) > best_d {
                    break;
                }
            }
            self.scan_ring(p, bc, br, ring, &mut best);
        }
        best.map(|(i, d)| (self.points[i], d))
    }

    /// Distance from `p` to the boundary of the rect of buckets with
    /// Chebyshev index < `ring` around `(bc, br)`; 0 when `p` is
    /// outside that rect (no pruning possible yet).
    fn ring_lower_bound(&self, p: EnuKm, bc: usize, br: usize, ring: usize) -> f64 {
        if ring == 0 {
            return 0.0;
        }
        let k = (ring - 1) as f64;
        let lo_e = self.origin.east + (bc as f64 - k) * self.cell_km;
        let hi_e = self.origin.east + (bc as f64 + k + 1.0) * self.cell_km;
        let lo_n = self.origin.north + (br as f64 - k) * self.cell_km;
        let hi_n = self.origin.north + (br as f64 + k + 1.0) * self.cell_km;
        (p.east - lo_e)
            .min(hi_e - p.east)
            .min(p.north - lo_n)
            .min(hi_n - p.north)
            .max(0.0)
    }

    fn scan_ring(
        &self,
        p: EnuKm,
        bc: usize,
        br: usize,
        ring: usize,
        best: &mut Option<(usize, f64)>,
    ) {
        let lo_c = bc.saturating_sub(ring);
        let hi_c = (bc + ring).min(self.cols.saturating_sub(1));
        let lo_r = br.saturating_sub(ring);
        let hi_r = (br + ring).min(self.rows.saturating_sub(1));
        for r in lo_r..=hi_r {
            for c in lo_c..=hi_c {
                // Only the ring's perimeter; inner buckets were
                // scanned by previous rings.
                let on_ring = c.max(bc) - c.min(bc) == ring || r.max(br) - r.min(br) == ring;
                if !on_ring && ring > 0 {
                    continue;
                }
                for &i in &self.buckets[r * self.cols + c] {
                    let i = i as usize;
                    let d = self.points[i].distance_km(p);
                    let better = match *best {
                        None => true,
                        Some((bi, bd)) => d < bd || (d == bd && i < bi),
                    };
                    if better {
                        *best = Some((i, d));
                    }
                }
            }
        }
    }
}

fn bucket_of(p: EnuKm, origin: EnuKm, cell_km: f64, cols: usize, rows: usize) -> (usize, usize) {
    let c = ((p.east - origin.east) / cell_km).floor();
    let r = ((p.north - origin.north) / cell_km).floor();
    let c = if c.is_finite() && c > 0.0 {
        c as usize
    } else {
        0
    };
    let r = if r.is_finite() && r > 0.0 {
        r as usize
    } else {
        0
    };
    (c.min(cols.saturating_sub(1)), r.min(rows.saturating_sub(1)))
}

/// A uniform-grid range-query index over geographic points.
#[derive(Debug, Clone)]
pub struct SpatialIndex {
    points: Vec<LatLon>,
    min_lat: f64,
    min_lon: f64,
    lat_step: f64,
    lon_step: f64,
    cols: usize,
    rows: usize,
    buckets: Vec<Vec<u32>>,
}

impl SpatialIndex {
    /// Builds the index over `points` (asset positions).
    pub fn new(points: Vec<LatLon>) -> Self {
        if points.is_empty() {
            return Self {
                points,
                min_lat: 0.0,
                min_lon: 0.0,
                lat_step: 1.0,
                lon_step: 1.0,
                cols: 0,
                rows: 0,
                buckets: Vec::new(),
            };
        }
        let (mut min_lat, mut max_lat) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut min_lon, mut max_lon) = (f64::INFINITY, f64::NEG_INFINITY);
        for p in &points {
            min_lat = min_lat.min(p.lat);
            max_lat = max_lat.max(p.lat);
            min_lon = min_lon.min(p.lon);
            max_lon = max_lon.max(p.lon);
        }
        let lat_step = ((max_lat - min_lat) / 64.0).max(1e-3);
        let lon_step = ((max_lon - min_lon) / 64.0).max(1e-3);
        let cols = (((max_lon - min_lon) / lon_step).ceil() as usize).max(1);
        let rows = (((max_lat - min_lat) / lat_step).ceil() as usize).max(1);
        let mut buckets = vec![Vec::new(); cols * rows];
        for (i, p) in points.iter().enumerate() {
            let c = (((p.lon - min_lon) / lon_step) as usize).min(cols - 1);
            let r = (((p.lat - min_lat) / lat_step) as usize).min(rows - 1);
            buckets[r * cols + c].push(i as u32);
        }
        Self {
            points,
            min_lat,
            min_lon,
            lat_step,
            lon_step,
            cols,
            rows,
            buckets,
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the index holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The indexed points, in insertion order.
    pub fn points(&self) -> &[LatLon] {
        &self.points
    }

    /// Indices of all points strictly within `radius_km` of `center`,
    /// ascending. Exactly equals the brute-force filter
    /// `points[i].distance_km(center) < radius_km`.
    ///
    /// Reports the scanned candidate count, the hit count, and the
    /// query itself to the `spatial.candidates` / `spatial.hits` /
    /// `spatial.queries` counters (one add each per query), so
    /// `candidates / queries` is the observable mean scan width.
    pub fn within_km(&self, center: LatLon, radius_km: f64) -> Vec<usize> {
        ct_obs::add(ct_obs::names::SPATIAL_QUERIES, 1);
        // `partial_cmp` so a NaN radius lands in the empty arm rather
        // than scanning with NaN window bounds.
        let positive = radius_km.partial_cmp(&0.0) == Some(std::cmp::Ordering::Greater);
        if self.points.is_empty() || !positive {
            ct_obs::add(ct_obs::names::SPATIAL_CANDIDATES, 0);
            ct_obs::add(ct_obs::names::SPATIAL_HITS, 0);
            return Vec::new();
        }
        // Conservative degree window: |Δlat| ≤ r/R exactly (meridian
        // haversine is linear in Δlat); |Δlon| ≤ (π/2)·(r/R)/cos φ
        // using the smallest cosine over the latitude band.
        let radius_rad = radius_km / EARTH_RADIUS_KM;
        let dlat_deg = radius_rad.to_degrees();
        let band_lat = (center.lat.abs() + dlat_deg).min(89.0);
        let min_cos = band_lat.to_radians().cos().max(0.01);
        let dlon_deg = (std::f64::consts::FRAC_PI_2 * radius_rad / min_cos).to_degrees();

        let lo_r = (((center.lat - dlat_deg - self.min_lat) / self.lat_step).floor()).max(0.0);
        let hi_r = ((center.lat + dlat_deg - self.min_lat) / self.lat_step).floor();
        let lo_c = (((center.lon - dlon_deg - self.min_lon) / self.lon_step).floor()).max(0.0);
        let hi_c = ((center.lon + dlon_deg - self.min_lon) / self.lon_step).floor();
        let mut hits = Vec::new();
        let mut candidates = 0u64;
        if hi_r >= 0.0 && hi_c >= 0.0 {
            let lo_r = lo_r as usize;
            let hi_r = (hi_r as usize).min(self.rows.saturating_sub(1));
            let lo_c = lo_c as usize;
            let hi_c = (hi_c as usize).min(self.cols.saturating_sub(1));
            for r in lo_r..=hi_r {
                for c in lo_c..=hi_c {
                    let bucket = &self.buckets[r * self.cols + c];
                    candidates += bucket.len() as u64;
                    for &i in bucket {
                        let i = i as usize;
                        if self.points[i].distance_km(center) < radius_km {
                            hits.push(i);
                        }
                    }
                }
            }
        }
        hits.sort_unstable();
        ct_obs::add(ct_obs::names::SPATIAL_CANDIDATES, candidates);
        ct_obs::add(ct_obs::names::SPATIAL_HITS, hits.len() as u64);
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn linear_nearest(points: &[EnuKm], p: EnuKm) -> Option<(EnuKm, f64)> {
        points
            .iter()
            .map(|&c| (c, c.distance_km(p)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }

    fn brute_within(points: &[LatLon], center: LatLon, radius_km: f64) -> Vec<usize> {
        (0..points.len())
            .filter(|&i| points[i].distance_km(center) < radius_km)
            .collect()
    }

    #[test]
    fn empty_indexes_answer_empty() {
        assert!(ShoreIndex::new(&[]).nearest(EnuKm::new(0.0, 0.0)).is_none());
        assert!(SpatialIndex::new(Vec::new())
            .within_km(LatLon::new(0.0, 0.0), 100.0)
            .is_empty());
    }

    #[test]
    fn single_point_nearest() {
        let pts = [EnuKm::new(3.0, 4.0)];
        let idx = ShoreIndex::new(&pts);
        let (q, d) = idx.nearest(EnuKm::new(0.0, 0.0)).unwrap();
        assert_eq!(q, pts[0]);
        assert_eq!(d, pts[0].distance_km(EnuKm::new(0.0, 0.0)));
    }

    #[test]
    fn duplicate_points_tie_break_to_first() {
        // Two identical points: the linear scan returns the first.
        let pts = [EnuKm::new(1.0, 1.0), EnuKm::new(1.0, 1.0)];
        let idx = ShoreIndex::new(&pts);
        let got = idx.nearest(EnuKm::new(0.0, 0.0));
        let want = linear_nearest(&pts, EnuKm::new(0.0, 0.0));
        assert_eq!(got, want);
    }

    proptest! {
        #[test]
        fn nearest_matches_linear_scan(
            pts in prop::collection::vec((-60.0f64..60.0, -45.0f64..45.0), 1..200),
            queries in prop::collection::vec((-90.0f64..90.0, -70.0f64..70.0), 1..20),
        ) {
            let pts: Vec<EnuKm> = pts.iter().map(|&(e, n)| EnuKm::new(e, n)).collect();
            let idx = ShoreIndex::new(&pts);
            for &(e, n) in &queries {
                let q = EnuKm::new(e, n);
                let got = idx.nearest(q);
                let want = linear_nearest(&pts, q);
                prop_assert_eq!(got.map(|(p, d)| (p.east.to_bits(), p.north.to_bits(), d.to_bits())),
                                want.map(|(p, d)| (p.east.to_bits(), p.north.to_bits(), d.to_bits())));
            }
        }

        #[test]
        fn within_km_matches_brute_force(
            pts in prop::collection::vec((5.0f64..50.0, -170.0f64..-60.0), 1..300),
            center_lat in 0.0f64..55.0,
            center_lon in -175.0f64..-55.0,
            radius in 1.0f64..2000.0,
        ) {
            let pts: Vec<LatLon> = pts.iter().map(|&(la, lo)| LatLon::new(la, lo)).collect();
            let idx = SpatialIndex::new(pts.clone());
            let center = LatLon::new(center_lat, center_lon);
            let got = idx.within_km(center, radius);
            let want = brute_within(&pts, center, radius);
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn counters_report_candidates_and_hits() {
        let pts: Vec<LatLon> = (0..100)
            .map(|i| {
                LatLon::new(
                    20.0 + f64::from(i % 10) * 0.5,
                    -158.0 + f64::from(i / 10) * 0.5,
                )
            })
            .collect();
        let idx = SpatialIndex::new(pts);
        // Other tests share the global registry, so assert on deltas
        // with >= rather than equality.
        let before = ct_obs::snapshot();
        let hits = idx.within_km(LatLon::new(20.2, -157.9), 40.0);
        assert!(!hits.is_empty());
        let after = ct_obs::snapshot();
        let delta =
            |name: &str| after.counter(name).unwrap_or(0) - before.counter(name).unwrap_or(0);
        let cand = delta(ct_obs::names::SPATIAL_CANDIDATES);
        let hit = delta(ct_obs::names::SPATIAL_HITS);
        assert!(hit >= hits.len() as u64, "hit delta {hit} < {}", hits.len());
        assert!(cand >= hit, "candidates {cand} must cover hits {hit}");
    }
}
