//! Region-generic terrain synthesis.
//!
//! [`synthesize_region`] generalizes the Oahu generator: a region is a
//! coastal outline plus inland water bodies, mountain ridges, and a set
//! of *coastal sectors* (per-stretch onshore/offshore slope rules), all
//! captured in a serializable [`RegionTerrainSpec`]. The Oahu preset in
//! [`crate::terrain`] is one such spec; synthetic multi-region
//! portfolios generate theirs procedurally.
//!
//! The elevation formula is shared by every region and kept identical
//! to the original Oahu generator, so the Oahu preset stays
//! bit-identical to the pre-refactor output (pinned by a DEM-digest
//! test in `core`).

use crate::coords::{EnuKm, LatLon, Projection};
use crate::dem::Dem;
use crate::error::GeoError;
use crate::grid::Grid;
use crate::noise::fbm;
use crate::polygon::Polygon;
use serde::{Deserialize, Serialize};

/// One coastal sector's slope parameters: how fast the land rises
/// inland and how fast the sea floor drops offshore.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoastSector {
    /// Onshore terrain slope, metres per km inland.
    pub terrain_slope_m_per_km: f64,
    /// Offshore sea-floor slope, metres of depth per km offshore.
    pub shelf_slope_m_per_km: f64,
}

/// A classification rule mapping a shoreline point (the closest
/// boundary point to the query, in local km) to a sector index. Rules
/// are scanned in order; the first rule whose present constraints all
/// hold wins, else [`RegionTerrainSpec::fallback_sector`] applies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SectorRule {
    /// Matches when the shoreline point's east coordinate is ≤ this.
    pub max_east: Option<f64>,
    /// Matches when the shoreline point's north coordinate is ≤ this.
    pub max_north: Option<f64>,
    /// Matches when the shoreline point's north coordinate is ≥ this.
    pub min_north: Option<f64>,
    /// Index into [`RegionTerrainSpec::sectors`].
    pub sector: usize,
}

impl SectorRule {
    fn matches(&self, q: EnuKm) -> bool {
        self.max_east.is_none_or(|v| q.east <= v)
            && self.max_north.is_none_or(|v| q.north <= v)
            && self.min_north.is_none_or(|v| q.north >= v)
    }
}

/// A mountain ridge: a Gaussian elevation profile around the segment
/// `a`–`b`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RidgeSpec {
    /// One end of the crest line.
    pub a: LatLon,
    /// The other end of the crest line.
    pub b: LatLon,
    /// Peak height contribution in metres.
    pub height_m: f64,
    /// Gaussian width in km.
    pub width_km: f64,
}

/// Everything needed to synthesize one region's DEM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionTerrainSpec {
    /// Human-readable region name (also used in digests and figures).
    pub name: String,
    /// Projection origin: roughly the region centre.
    pub origin: LatLon,
    /// Island/coast outline vertices, in order.
    pub outline: Vec<LatLon>,
    /// Inland water bodies (harbors, lagoons) cut out of the land.
    pub inland_waters: Vec<Vec<LatLon>>,
    /// Mountain ridges.
    pub ridges: Vec<RidgeSpec>,
    /// Coastal sectors referenced by the rules.
    pub sectors: Vec<CoastSector>,
    /// Ordered classification rules over shoreline points.
    pub sector_rules: Vec<SectorRule>,
    /// Sector used when no rule matches.
    pub fallback_sector: usize,
    /// South-west corner of the raster domain, local km.
    pub domain_origin: EnuKm,
    /// Domain extent `(east_km, north_km)`.
    pub extent_km: (f64, f64),
    /// Noise seed; terrain is fully determined by the spec.
    pub seed: u64,
    /// Raster cell size in km.
    pub cell_km: f64,
    /// Small-scale elevation noise amplitude in metres (near coast).
    pub noise_amp_m: f64,
}

impl RegionTerrainSpec {
    /// The sector a point drains to, by its nearest shoreline point.
    pub fn sector_of(&self, outline: &Polygon, p: EnuKm) -> CoastSector {
        let q = outline.closest_boundary_point(p);
        let idx = self
            .sector_rules
            .iter()
            .find(|r| r.matches(q))
            .map_or(self.fallback_sector, |r| r.sector);
        self.sectors[idx.min(self.sectors.len() - 1)]
    }

    /// Validates structural invariants a synthesis run relies on.
    ///
    /// # Errors
    ///
    /// [`GeoError::DegeneratePolygon`] for an outline or water body
    /// with fewer than three vertices; [`GeoError::EmptyGrid`] for a
    /// non-positive cell size or empty domain or an empty sector
    /// table.
    pub fn validate(&self) -> Result<(), GeoError> {
        if self.outline.len() < 3 {
            return Err(GeoError::DegeneratePolygon {
                vertices: self.outline.len(),
            });
        }
        for w in &self.inland_waters {
            if w.len() < 3 {
                return Err(GeoError::DegeneratePolygon { vertices: w.len() });
            }
        }
        if self.sectors.is_empty()
            || self.cell_km <= 0.0
            || !self.cell_km.is_finite()
            || self.extent_km.0 <= 0.0
            || self.extent_km.1 <= 0.0
        {
            return Err(GeoError::EmptyGrid);
        }
        Ok(())
    }
}

/// A projected ridge, ready for evaluation in the local frame.
struct Ridge {
    a: EnuKm,
    b: EnuKm,
    height_m: f64,
    width_km: f64,
}

impl Ridge {
    fn contribution(&self, p: EnuKm) -> f64 {
        let d = segment_distance(p, self.a, self.b);
        self.height_m * (-(d / self.width_km).powi(2)).exp()
    }
}

/// Distance (km) from `p` to the segment `ab`, all in local km.
fn segment_distance(p: EnuKm, a: EnuKm, b: EnuKm) -> f64 {
    let abe = b.east - a.east;
    let abn = b.north - a.north;
    let len2 = abe * abe + abn * abn;
    let t = if len2 == 0.0 {
        0.0
    } else {
        (((p.east - a.east) * abe + (p.north - a.north) * abn) / len2).clamp(0.0, 1.0)
    };
    p.distance_km(EnuKm::new(a.east + t * abe, a.north + t * abn))
}

fn project_ring(projection: &Projection, ring: &[LatLon]) -> Result<Polygon, GeoError> {
    Polygon::new(ring.iter().map(|&p| projection.to_enu(p)).collect())
}

/// Synthesizes a region DEM from its spec.
///
/// The raster covers the outline plus surrounding ocean so the
/// shallow-water surge solver has room for offshore dynamics. The
/// elevation formula is the original Oahu formula, parameterized only
/// through the spec's sectors/ridges/waters — the Oahu preset is
/// bit-identical to the pre-refactor generator.
///
/// # Errors
///
/// Returns [`GeoError`] for degenerate outlines or an empty domain.
pub fn synthesize_region(spec: &RegionTerrainSpec) -> Result<Dem, GeoError> {
    spec.validate()?;
    let projection = Projection::new(spec.origin);
    let outline = project_ring(&projection, &spec.outline)?;
    let waters = spec
        .inland_waters
        .iter()
        .map(|w| project_ring(&projection, w))
        .collect::<Result<Vec<_>, _>>()?;
    let ridge_list: Vec<Ridge> = spec
        .ridges
        .iter()
        .map(|r| Ridge {
            a: projection.to_enu(r.a),
            b: projection.to_enu(r.b),
            height_m: r.height_m,
            width_km: r.width_km,
        })
        .collect();

    let cols = (spec.extent_km.0 / spec.cell_km).round() as usize;
    let rows = (spec.extent_km.1 / spec.cell_km).round() as usize;

    let grid = Grid::from_fn(cols, rows, spec.domain_origin, spec.cell_km, |p| {
        elevation_at(spec, &outline, &waters, &ridge_list, p)
    })?;
    Ok(Dem::new(grid, projection))
}

fn elevation_at(
    spec: &RegionTerrainSpec,
    outline: &Polygon,
    waters: &[Polygon],
    ridge_list: &[Ridge],
    p: EnuKm,
) -> f64 {
    let sdf_out = outline.signed_distance_km(p);
    let water_sdfs: Vec<f64> = waters.iter().map(|w| w.signed_distance_km(p)).collect();
    // Land = inside the outline and outside every inland water body.
    let mut land_sdf = sdf_out;
    for &w in &water_sdfs {
        land_sdf = land_sdf.max(-w);
    }
    if land_sdf < 0.0 {
        let dist_inland = -land_sdf;
        let sector = spec.sector_of(outline, p);
        let base = 0.5 + sector.terrain_slope_m_per_km * dist_inland;
        let ridge: f64 = ridge_list
            .iter()
            .map(|r| r.contribution(p) * (dist_inland / 3.0).min(1.0))
            .sum();
        let amp = spec.noise_amp_m + 0.10 * base;
        let n = amp * fbm(spec.seed, p, 0.15, 4);
        (base + ridge + n).max(0.2)
    } else if let Some(w) = water_sdfs.iter().copied().find(|&w| w < 0.0) {
        // Inside an inland water body: shallow, dredged-channel depths.
        -(4.0 + 6.0 * (-w).min(1.5))
    } else {
        // Open sea: shelf deepening away from the region.
        let sector = spec.sector_of(outline, p);
        let depth = 2.0 + sector.shelf_slope_m_per_km * sdf_out;
        -depth.min(4500.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_spec() -> RegionTerrainSpec {
        let origin = LatLon::new(20.0, -140.0);
        let proj = Projection::new(origin);
        // A rough 12 km-radius octagon.
        let outline = (0..8)
            .map(|i| {
                let theta = f64::from(i) * std::f64::consts::TAU / 8.0;
                proj.to_latlon(EnuKm::new(12.0 * theta.cos(), 12.0 * theta.sin()))
            })
            .collect();
        RegionTerrainSpec {
            name: "toy".into(),
            origin,
            outline,
            inland_waters: Vec::new(),
            ridges: vec![RidgeSpec {
                a: proj.to_latlon(EnuKm::new(-4.0, 0.0)),
                b: proj.to_latlon(EnuKm::new(4.0, 0.0)),
                height_m: 500.0,
                width_km: 3.0,
            }],
            sectors: vec![
                CoastSector {
                    terrain_slope_m_per_km: 2.0,
                    shelf_slope_m_per_km: 15.0,
                },
                CoastSector {
                    terrain_slope_m_per_km: 8.0,
                    shelf_slope_m_per_km: 50.0,
                },
            ],
            sector_rules: vec![SectorRule {
                max_east: Some(0.0),
                max_north: None,
                min_north: None,
                sector: 1,
            }],
            fallback_sector: 0,
            domain_origin: EnuKm::new(-25.0, -25.0),
            extent_km: (50.0, 50.0),
            seed: 7,
            cell_km: 1.0,
            noise_amp_m: 0.5,
        }
    }

    #[test]
    fn toy_region_synthesizes_deterministically() {
        let a = synthesize_region(&toy_spec()).unwrap();
        let b = synthesize_region(&toy_spec()).unwrap();
        assert_eq!(a.elevation_grid().as_slice(), b.elevation_grid().as_slice());
        let f = a.land_fraction();
        // ~pi*144 / 2500 ≈ 0.18 of the domain is land.
        assert!((0.1..0.3).contains(&f), "land fraction {f}");
    }

    #[test]
    fn sector_rules_shape_the_shelf() {
        let dem = synthesize_region(&toy_spec()).unwrap();
        // West sector (sector 1) drops off 50 m/km; east only 15 m/km.
        let west = dem
            .elevation_at_enu(EnuKm::new(-20.0, 0.0))
            .expect("in domain");
        let east = dem
            .elevation_at_enu(EnuKm::new(20.0, 0.0))
            .expect("in domain");
        assert!(west < east, "west {west} should be deeper than east {east}");
    }

    #[test]
    fn validate_rejects_degenerate_specs() {
        let mut bad = toy_spec();
        bad.outline.truncate(2);
        assert!(matches!(
            synthesize_region(&bad),
            Err(GeoError::DegeneratePolygon { vertices: 2 })
        ));
        let mut bad = toy_spec();
        bad.cell_km = 0.0;
        assert!(matches!(synthesize_region(&bad), Err(GeoError::EmptyGrid)));
        let mut bad = toy_spec();
        bad.sectors.clear();
        assert!(matches!(synthesize_region(&bad), Err(GeoError::EmptyGrid)));
    }

    #[test]
    fn inland_waters_cut_out_of_land() {
        let mut spec = toy_spec();
        let proj = Projection::new(spec.origin);
        spec.inland_waters = vec![(0..6)
            .map(|i| {
                let theta = f64::from(i) * std::f64::consts::TAU / 6.0;
                proj.to_latlon(EnuKm::new(6.0 + 2.0 * theta.cos(), 2.0 * theta.sin()))
            })
            .collect()];
        let dem = synthesize_region(&spec).unwrap();
        let e = dem.elevation_at_enu(EnuKm::new(6.0, 0.0)).expect("domain");
        assert!(e < 0.0, "lagoon interior should be water, got {e}");
    }
}
